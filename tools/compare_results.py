#!/usr/bin/env python3
"""Diff two campaign result files (or directories) against per-metric
tolerances — the CI regression gate behind results/golden/.

Campaign mode (default):
    compare_results.py GOLDEN NEW [options]
GOLDEN/NEW are rnoc_campaign result files (schema_version 2) or directories
of them (matching stems are compared; files present on only one side fail).
A point's optional "obs" block (stall/protection observability counters) is
gated like its metrics, addressed as obs.<name>.
Per-metric policy:
  exact  metrics (deterministic latency/FIT/synthesis numbers) must agree to
         --exact-rel-tol (default 1e-9 — identical code and seeds reproduce
         them bit-for-bit; the epsilon only absorbs libm variation across
         toolchains).
  stat   metrics (Monte-Carlo estimates) must agree within their combined
         95% confidence intervals scaled by --stat-sigmas (default 3) plus
         --stat-rel-tol (default 0.02) — so a legitimate code change that
         perturbs RNG consumption does not trip the gate, but a shifted
         distribution does.
Metadata policy: schema_version and config_hash must match (a config_hash
mismatch means the experiment itself changed — regenerate the goldens);
git_sha is informational and ignored.

Perf mode:
    compare_results.py --perf BASELINE NEW [--rel-tol 0.15]
BASELINE/NEW are flat JSON files of numeric metrics (the bench_*.json
format). Comparison is one-sided: a metric fails only when it regresses
beyond the tolerance (keys ending in _seconds regress upward, rates/speedups
regress downward). Booleans must match exactly.

    compare_results.py --perf-merge RUN1 RUN2 -o OUT
Merges repeated perf runs into their best-of (min seconds, max rates) to
damp scheduler noise before gating. A key present in only one run, or a
non-numeric key the runs disagree on, is kept as null — symmetrically, so a
metric that vanished from either run fails the gate instead of escaping it.

    compare_results.py --self-test
Runs the built-in fixture suite (used by ctest) and exits non-zero on any
mismatch with the expected pass/fail outcomes.

Exit status: 0 = within tolerance, 1 = drift, 2 = usage/format error.
--summary-md FILE appends a GitHub-flavoured markdown table (for
$GITHUB_STEP_SUMMARY) with one row per drifted or compared metric.
"""

import argparse
import json
import math
import os
import sys
import tempfile

SCHEMA_VERSION = 2


class Drift:
    def __init__(self, where, message, old=None, new=None, allowed=None):
        self.where = where
        self.message = message
        self.old = old
        self.new = new
        self.allowed = allowed

    def row(self):
        fmt = lambda v: "" if v is None else f"{v:.6g}"
        return (self.where, self.message, fmt(self.old), fmt(self.new),
                fmt(self.allowed))


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_results: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


# --- campaign mode ---------------------------------------------------------

def index_metrics(result):
    points = {}
    for p in result.get("points", []):
        metrics = {m["name"]: m for m in p.get("metrics", [])}
        # Schema v2: the optional observability block is gated with the same
        # per-kind policy, namespaced so it cannot collide with headline
        # metric names.
        for m in p.get("obs", []):
            metrics["obs." + m["name"]] = m
        points[p["id"]] = metrics
    return points


def compare_campaign(golden, new, opts):
    """Returns a list of Drift for one golden/new result pair."""
    drifts = []
    name = golden.get("campaign", "?")

    if golden.get("schema_version") != SCHEMA_VERSION:
        drifts.append(Drift(name, "golden has unsupported schema_version"))
        return drifts
    if new.get("schema_version") != SCHEMA_VERSION:
        drifts.append(Drift(name, "new result has unsupported schema_version"))
        return drifts
    if golden.get("campaign") != new.get("campaign"):
        drifts.append(Drift(name, "campaign name mismatch"))
        return drifts
    if golden.get("config_hash") != new.get("config_hash"):
        drifts.append(Drift(
            name, "config_hash mismatch: the experiment spec changed — "
                  "regenerate results/golden/ (see README)"))
        return drifts
    if golden.get("smoke") != new.get("smoke"):
        drifts.append(Drift(name, "smoke flag mismatch"))
        return drifts

    gold_points = index_metrics(golden)
    new_points = index_metrics(new)
    for pid in gold_points:
        if pid not in new_points:
            drifts.append(Drift(f"{name}/{pid}", "point missing from new result"))
    for pid in new_points:
        if pid not in gold_points:
            drifts.append(Drift(f"{name}/{pid}", "unexpected new point"))

    for pid, gold_metrics in gold_points.items():
        new_metrics = new_points.get(pid)
        if new_metrics is None:
            continue
        for mname, gm in gold_metrics.items():
            where = f"{name}/{pid}/{mname}"
            nm = new_metrics.get(mname)
            if nm is None:
                drifts.append(Drift(where, "metric missing from new result"))
                continue
            if gm.get("kind") != nm.get("kind"):
                drifts.append(Drift(where, "metric kind changed"))
                continue
            gv, nv = gm["value"], nm["value"]
            if gm.get("kind") == "stat":
                ci = math.hypot(gm.get("ci95", 0.0), nm.get("ci95", 0.0))
                allowed = (opts.stat_sigmas / 1.96) * ci \
                    + opts.stat_rel_tol * abs(gv) + opts.stat_abs_tol
                if abs(nv - gv) > allowed:
                    drifts.append(Drift(where, "statistical drift",
                                        gv, nv, allowed))
            else:
                allowed = opts.exact_rel_tol * max(abs(gv), 1.0)
                if abs(nv - gv) > allowed:
                    drifts.append(Drift(where, "exact-metric drift",
                                        gv, nv, allowed))
    return drifts


def campaign_pairs(golden_path, new_path):
    """Yields (stem, golden_file, new_file); missing partners yield None."""
    if os.path.isdir(golden_path) != os.path.isdir(new_path):
        print("compare_results: GOLDEN and NEW must both be files or both be "
              "directories", file=sys.stderr)
        sys.exit(2)
    if not os.path.isdir(golden_path):
        stem = os.path.splitext(os.path.basename(golden_path))[0]
        yield stem, golden_path, new_path
        return
    golden = {f for f in os.listdir(golden_path) if f.endswith(".json")}
    new = {f for f in os.listdir(new_path) if f.endswith(".json")}
    for f in sorted(golden | new):
        stem = os.path.splitext(f)[0]
        yield (stem,
               os.path.join(golden_path, f) if f in golden else None,
               os.path.join(new_path, f) if f in new else None)


def run_campaign_mode(opts):
    drifts, compared = [], 0
    for stem, gfile, nfile in campaign_pairs(opts.golden, opts.new):
        if gfile is None:
            drifts.append(Drift(stem, "no golden baseline for this result "
                                      "(add one under results/golden/)"))
            continue
        if nfile is None:
            drifts.append(Drift(stem, "campaign missing from new results"))
            continue
        drifts.extend(compare_campaign(load_json(gfile), load_json(nfile),
                                       opts))
        compared += 1
    report(drifts, f"{compared} campaign file(s) compared", opts)
    return 1 if drifts else 0


# --- perf mode -------------------------------------------------------------

# Direction of regression per key suffix: True = larger is worse.
def perf_higher_is_worse(key):
    return key.endswith("_seconds")


def run_perf_mode(opts):
    base = load_json(opts.golden)
    new = load_json(opts.new)
    drifts, compared = [], 0
    keys = opts.keys.split(",") if opts.keys else sorted(
        k for k in base if isinstance(base[k], (int, float, bool))
        and not isinstance(base[k], str))
    for key in keys:
        if key not in base or key not in new:
            drifts.append(Drift(key, "metric missing"))
            continue
        bv, nv = base[key], new[key]
        compared += 1
        if isinstance(bv, bool) or isinstance(nv, bool):
            if bv != nv:
                drifts.append(Drift(key, "boolean metric changed",
                                    float(bv), float(nv)))
            continue
        if not isinstance(bv, (int, float)) or not isinstance(nv, (int, float)):
            # e.g. a None from --perf-merge marking a vanished/disagreeing
            # metric — fail it rather than skipping or crashing.
            drifts.append(Drift(key, "metric not numeric in one run"))
            continue
        allowed = opts.rel_tol * max(abs(bv), 1e-12)
        delta = nv - bv if perf_higher_is_worse(key) else bv - nv
        if delta > allowed:
            drifts.append(Drift(key, "perf regression", bv, nv, allowed))
    report(drifts, f"{compared} perf metric(s) gated at "
                   f"±{opts.rel_tol:.0%} (one-sided)", opts)
    return 1 if drifts else 0


def run_perf_merge(opts):
    a, b = load_json(opts.golden), load_json(opts.new)
    merged = {}
    for key in list(a) + [k for k in b if k not in a]:
        if key not in a or key not in b:
            # A metric present in only one run has no valid best-of; keep the
            # key as None (symmetrically) so the gate reports it rather than
            # letting a vanished metric drop out silently.
            merged[key] = None
            continue
        av, bv = a[key], b[key]
        if isinstance(av, bool) or not isinstance(av, (int, float)) \
                or not isinstance(bv, (int, float)):
            # Non-numeric / boolean: runs must agree for the key to be kept.
            merged[key] = av if av == bv else None
            continue
        merged[key] = min(av, bv) if perf_higher_is_worse(key) else max(av, bv)
    with open(opts.output, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"compare_results: wrote best-of-two to {opts.output}")
    return 0


# --- reporting -------------------------------------------------------------

def report(drifts, context, opts):
    if drifts:
        print(f"DRIFT: {len(drifts)} metric(s) out of tolerance "
              f"({context})", file=sys.stderr)
        for d in drifts:
            where, msg, old, new, allowed = d.row()
            detail = f" golden={old} new={new} allowed±{allowed}" \
                if old or new else ""
            print(f"  {where}: {msg}{detail}", file=sys.stderr)
    else:
        print(f"OK: all metrics within tolerance ({context})")
    if opts.summary_md:
        with open(opts.summary_md, "a", encoding="utf-8") as f:
            status = "❌ drift detected" if drifts else "✅ within tolerance"
            f.write(f"### Result comparison — {status}\n\n{context}\n\n")
            if drifts:
                f.write("| metric | problem | golden | new | allowed Δ |\n")
                f.write("|---|---|---|---|---|\n")
                for d in drifts:
                    f.write("| " + " | ".join(d.row()) + " |\n")
                f.write("\n")


# --- self-test -------------------------------------------------------------

def self_test():
    failures = []
    fixtures = 0

    def expect(label, status, expected):
        nonlocal fixtures
        fixtures += 1
        if status != expected:
            failures.append(f"{label}: exit {status}, expected {expected}")

    def make_result(exact=117.0, stat=15.0, ci=0.1, config_hash="h1",
                    obs_stalls=42.0):
        return {
            "schema_version": SCHEMA_VERSION,
            "campaign": "fixture",
            "artifact": "Self-test",
            "config_hash": config_hash,
            "git_sha": "test",
            "smoke": True,
            "seed": 1,
            "points": [{
                "id": "p0",
                "metrics": [
                    {"name": "exact_m", "value": exact, "ci95": 0,
                     "kind": "exact"},
                    {"name": "stat_m", "value": stat, "ci95": ci,
                     "kind": "stat"},
                ],
                "obs": [
                    {"name": "stall_cycles", "value": obs_stalls, "ci95": 0,
                     "kind": "exact"},
                ],
            }],
        }

    def run_pair(label, golden, new, expected, extra=None):
        with tempfile.TemporaryDirectory() as d:
            g, n = os.path.join(d, "g.json"), os.path.join(d, "n.json")
            for path, data in ((g, golden), (n, new)):
                with open(path, "w", encoding="utf-8") as f:
                    json.dump(data, f)
            argv = [g, n] + (extra or [])
            expect(label, main(argv), expected)

    run_pair("identical results pass", make_result(), make_result(), 0)
    run_pair("exact drift fails", make_result(), make_result(exact=117.5), 1)
    run_pair("tiny exact jitter passes", make_result(),
             make_result(exact=117.0 * (1 + 1e-12)), 0)
    run_pair("stat drift within CI passes", make_result(),
             make_result(stat=15.1), 0)
    run_pair("stat drift beyond CI fails", make_result(),
             make_result(stat=19.0), 1)
    run_pair("config hash mismatch fails", make_result(),
             make_result(config_hash="h2"), 1)
    missing = make_result()
    missing["points"][0]["metrics"] = missing["points"][0]["metrics"][:1]
    run_pair("missing metric fails", make_result(), missing, 1)
    run_pair("obs drift fails", make_result(), make_result(obs_stalls=43.0), 1)
    no_obs = make_result()
    del no_obs["points"][0]["obs"]
    run_pair("missing obs block fails", make_result(), no_obs, 1)
    run_pair("extra obs block ignored with plain golden", no_obs,
             make_result(), 0)

    perf_base = {"sweep_fast_seconds": 1.0, "fault_free_cycles_per_sec": 20000,
                 "latencies_identical": True, "trace_hooks_compiled": False}

    def run_perf_pair(label, new, expected):
        with tempfile.TemporaryDirectory() as d:
            g, n = os.path.join(d, "g.json"), os.path.join(d, "n.json")
            for path, data in ((g, perf_base), (n, new)):
                with open(path, "w", encoding="utf-8") as f:
                    json.dump(data, f)
            expect(label, main(["--perf", g, n, "--rel-tol", "0.15"]),
                   expected)

    run_perf_pair("perf identical passes", dict(perf_base), 0)
    run_perf_pair("perf 10% slower passes",
                  dict(perf_base, sweep_fast_seconds=1.10), 0)
    run_perf_pair("perf 20% slower fails",
                  dict(perf_base, sweep_fast_seconds=1.20), 1)
    run_perf_pair("perf 2x faster passes (one-sided)",
                  dict(perf_base, sweep_fast_seconds=0.5), 0)
    run_perf_pair("perf throughput collapse fails",
                  dict(perf_base, fault_free_cycles_per_sec=10000), 1)
    run_perf_pair("perf identity bit flip fails",
                  dict(perf_base, latencies_identical=False), 1)
    run_perf_pair("perf traced binary fails",
                  dict(perf_base, trace_hooks_compiled=True), 1)

    def run_merge(label, r1, r2, expected_merged):
        with tempfile.TemporaryDirectory() as d:
            p1, p2, out = (os.path.join(d, f) for f in
                           ("r1.json", "r2.json", "merged.json"))
            for path, data in ((p1, r1), (p2, r2)):
                with open(path, "w", encoding="utf-8") as f:
                    json.dump(data, f)
            expect(label, main(["--perf-merge", p1, p2, "-o", out]), 0)
            with open(out, encoding="utf-8") as f:
                merged = json.load(f)
            if merged != expected_merged:
                failures.append(f"{label}: merged {merged}, "
                                f"expected {expected_merged}")

    run_merge("merge keeps best-of",
              {"a_seconds": 1.0, "rate": 5, "ok": True},
              {"a_seconds": 2.0, "rate": 7, "ok": True},
              {"a_seconds": 1.0, "rate": 7, "ok": True})
    run_merge("merge nulls keys missing from either run",
              {"a_seconds": 1.0, "only_in_1": 3.0},
              {"a_seconds": 2.0, "only_in_2": 4.0},
              {"a_seconds": 1.0, "only_in_1": None, "only_in_2": None})
    run_perf_pair("perf vanished (null) metric fails",
                  dict(perf_base, fault_free_cycles_per_sec=None), 1)

    if failures:
        print("self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"self-test ok ({fixtures} fixtures)")
    return 0


# --- entry point -----------------------------------------------------------

def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("golden", nargs="?", help="golden result file or dir")
    ap.add_argument("new", nargs="?", help="new result file or dir")
    ap.add_argument("--perf", action="store_true",
                    help="flat perf-JSON mode with one-sided gating")
    ap.add_argument("--perf-merge", action="store_true",
                    help="merge two perf runs into their best-of")
    ap.add_argument("-o", "--output", help="output file for --perf-merge")
    ap.add_argument("--keys", help="comma-separated perf keys to gate "
                                   "(default: all numeric keys in baseline)")
    ap.add_argument("--rel-tol", type=float, default=0.15,
                    help="perf-mode relative tolerance (default 0.15)")
    ap.add_argument("--exact-rel-tol", type=float, default=1e-9,
                    help="campaign-mode tolerance for exact metrics")
    ap.add_argument("--stat-sigmas", type=float, default=3.0,
                    help="campaign-mode sigma multiple for stat metrics")
    ap.add_argument("--stat-rel-tol", type=float, default=0.02,
                    help="campaign-mode extra relative slack for stat metrics")
    ap.add_argument("--stat-abs-tol", type=float, default=1e-12)
    ap.add_argument("--summary-md",
                    help="append a markdown summary table to this file")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture suite")
    opts = ap.parse_args(argv)

    if opts.self_test:
        return self_test()
    if opts.golden is None or opts.new is None:
        ap.print_usage(sys.stderr)
        return 2
    if opts.perf_merge:
        if not opts.output:
            print("compare_results: --perf-merge requires -o", file=sys.stderr)
            return 2
        return run_perf_merge(opts)
    if opts.perf:
        return run_perf_mode(opts)
    return run_campaign_mode(opts)


if __name__ == "__main__":
    sys.exit(main())
