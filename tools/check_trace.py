#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by --trace-out.

Checks, per (pid, tid) lane:
  - the file parses as strict JSON with the expected top-level shape,
  - duration events ('B'/'E') appear with monotonically non-decreasing
    timestamps in file order (Perfetto requires in-order spans per track),
  - every 'B' has a matching 'E' (balanced, properly nested).

Instant ('i') and metadata ('M') events are checked for required fields but
not for ordering. Exit 0 = valid, 1 = violation, 2 = usage/IO error.

Usage: check_trace.py FILE.json
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__.strip())
        sys.exit(2)
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot load '{sys.argv[1]}': {e}")
        sys.exit(2)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    last_ts: dict[tuple[int, int], float] = {}
    open_spans: dict[tuple[int, int], list[str]] = defaultdict(list)
    counts = defaultdict(int)

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        if ph not in ("B", "E", "i", "M"):
            fail(f"event {i}: unexpected phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            if "name" not in e or "pid" not in e:
                fail(f"metadata event {i} lacks name/pid")
            continue
        for field in ("name", "ts", "pid", "tid"):
            if field not in e:
                fail(f"event {i} ({ph}) lacks required field '{field}'")
        lane = (e["pid"], e["tid"])
        if ph == "i":
            continue
        ts = e["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            fail(
                f"event {i}: timestamp {ts} < {last_ts[lane]} on lane "
                f"pid={lane[0]} tid={lane[1]} (spans must be in order)"
            )
        last_ts[lane] = ts
        if ph == "B":
            open_spans[lane].append(e["name"])
        else:  # 'E'
            if not open_spans[lane]:
                fail(
                    f"event {i}: 'E' with no open 'B' on lane "
                    f"pid={lane[0]} tid={lane[1]}"
                )
            open_spans[lane].pop()

    for lane, stack in open_spans.items():
        if stack:
            fail(
                f"{len(stack)} unclosed 'B' event(s) on lane "
                f"pid={lane[0]} tid={lane[1]} (first: {stack[0]!r})"
            )

    total = sum(counts.values())
    print(
        f"check_trace: OK: {total} events "
        f"(B/E={counts['B']}/{counts['E']}, i={counts['i']}, M={counts['M']}) "
        f"across {len(last_ts)} lanes"
    )


if __name__ == "__main__":
    main()
