#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by --trace-out or by
rnoc_served --span-trace-out.

Checks, per (pid, tid) lane:
  - the file parses as strict JSON with the expected top-level shape,
  - duration events ('B'/'E') appear with monotonically non-decreasing
    timestamps in file order (Perfetto requires in-order spans per track),
  - every 'B' has a matching 'E' (balanced, properly nested).

Instant ('i') and metadata ('M') events are checked for required fields but
not for ordering. Exit 0 = valid, 1 = violation, 2 = usage/IO error.

--daemon additionally validates the span accounting of an rnoc_served
trace: every 'request' span that completed ok must be matched by exactly
`points` 'execute'/'cache-hit' spans carrying its job id, with no point id
appearing twice within a job. The accounting is skipped (with a notice)
when otherData.spans_dropped > 0 — a full span ring means the trace is a
window, not a ledger. --min-jobs N fails the run if fewer than N completed
request spans are present (so a smoke harness can prove the daemon traced
the work it was given).

Usage: check_trace.py [--daemon] [--min-jobs N] FILE.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def check_lanes(events: list) -> dict:
    """Base validation: shapes, per-lane ordering, balanced B/E."""
    last_ts: dict[tuple[int, int], float] = {}
    open_spans: dict[tuple[int, int], list[str]] = defaultdict(list)
    counts = defaultdict(int)

    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        if ph not in ("B", "E", "i", "M"):
            fail(f"event {i}: unexpected phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            if "name" not in e or "pid" not in e:
                fail(f"metadata event {i} lacks name/pid")
            continue
        for field in ("name", "ts", "pid", "tid"):
            if field not in e:
                fail(f"event {i} ({ph}) lacks required field '{field}'")
        lane = (e["pid"], e["tid"])
        if ph == "i":
            continue
        ts = e["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            fail(
                f"event {i}: timestamp {ts} < {last_ts[lane]} on lane "
                f"pid={lane[0]} tid={lane[1]} (spans must be in order)"
            )
        last_ts[lane] = ts
        if ph == "B":
            open_spans[lane].append(e["name"])
        else:  # 'E'
            if not open_spans[lane]:
                fail(
                    f"event {i}: 'E' with no open 'B' on lane "
                    f"pid={lane[0]} tid={lane[1]}"
                )
            open_spans[lane].pop()

    for lane, stack in open_spans.items():
        if stack:
            fail(
                f"{len(stack)} unclosed 'B' event(s) on lane "
                f"pid={lane[0]} tid={lane[1]} (first: {stack[0]!r})"
            )

    total = sum(counts.values())
    print(
        f"check_trace: OK: {total} events "
        f"(B/E={counts['B']}/{counts['E']}, i={counts['i']}, M={counts['M']}) "
        f"across {len(last_ts)} lanes"
    )
    return counts


def check_daemon(doc: dict, events: list, min_jobs: int) -> None:
    """Daemon span accounting: requests vs execute/cache-hit point spans."""
    other = doc.get("otherData", {})
    if not isinstance(other, dict):
        fail("--daemon: 'otherData' is not an object")
    dropped = other.get("spans_dropped", 0)

    requests = []  # (job, campaign, points, ok)
    points_by_job: dict[int, list[str]] = defaultdict(list)
    for i, e in enumerate(events):
        if e.get("ph") != "B":
            continue
        name = e["name"]
        args = e.get("args")
        if not isinstance(args, dict) or "job" not in args:
            fail(f"--daemon: span event {i} ({name!r}) lacks args.job")
        if name == "request":
            for field in ("campaign", "points", "ok"):
                if field not in args:
                    fail(f"--daemon: request span {i} lacks args.{field}")
            requests.append(
                (args["job"], args["campaign"], args["points"], args["ok"])
            )
        elif name in ("execute", "cache-hit"):
            if "id" not in args:
                fail(f"--daemon: {name} span {i} lacks args.id")
            points_by_job[args["job"]].append(args["id"])

    completed = [r for r in requests if r[3]]
    if len(completed) < min_jobs:
        fail(
            f"--daemon: {len(completed)} completed request span(s), "
            f"expected at least {min_jobs}"
        )

    if dropped > 0:
        print(
            f"check_trace: --daemon: span ring dropped {dropped} span(s); "
            f"skipping per-job point accounting (trace is a window)"
        )
        return

    jobs_seen = {r[0] for r in requests}
    for job, ids in sorted(points_by_job.items()):
        if job not in jobs_seen:
            fail(f"--daemon: point spans for job {job} with no request span")
        dupes = {x for x in ids if ids.count(x) > 1}
        if dupes:
            fail(
                f"--daemon: job {job} traced point(s) more than once: "
                f"{sorted(dupes)[:5]}"
            )
    for job, campaign, points, ok in requests:
        if not ok:
            continue  # Failed jobs legitimately stop mid-campaign.
        traced = len(points_by_job.get(job, []))
        if traced != points:
            fail(
                f"--daemon: job {job} ({campaign!r}) declared {points} "
                f"point(s) but traced {traced} execute/cache-hit span(s)"
            )
    print(
        f"check_trace: --daemon OK: {len(requests)} request span(s) "
        f"({len(completed)} ok), "
        f"{sum(len(v) for v in points_by_job.values())} point span(s), "
        f"accounting exact"
    )


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="check_trace.py",
        description="Validate a Chrome trace-event JSON file.",
    )
    parser.add_argument("file", metavar="FILE.json")
    parser.add_argument(
        "--daemon",
        action="store_true",
        help="also validate rnoc_served per-job span accounting",
    )
    parser.add_argument(
        "--min-jobs",
        type=int,
        default=0,
        metavar="N",
        help="with --daemon: require at least N completed request spans",
    )
    args = parser.parse_args()

    try:
        with open(args.file, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot load '{args.file}': {e}")
        sys.exit(2)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    check_lanes(events)
    if args.daemon:
        check_daemon(doc, events, args.min_jobs)


if __name__ == "__main__":
    main()
