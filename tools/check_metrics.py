#!/usr/bin/env python3
"""Validates Prometheus text exposition as served by rnoc_served's
`metrics` op (`rnoc_campaign --connect SOCK --metrics | check_metrics.py`).

Checks:
  - every non-comment line matches the sample grammar
    `name{label="value",...} value` with a finite or +Inf/-Inf/NaN value,
  - every sample belongs to a family announced by a preceding # TYPE line,
  - # TYPE declares a known type (counter/gauge/summary/histogram/untyped)
    and appears at most once per family,
  - counter family names end in _total; summary families may emit
    quantile-labeled samples plus NAME_sum / NAME_count,
  - no duplicate (name, labels) sample,
  - --require FAMILY (repeatable) fails unless that family has >= 1 sample.

Reads stdin, or a file given as the positional argument. Exit 0 = valid,
1 = violation, 2 = usage/IO error. --self-test runs built-in fixtures.

Usage: check_metrics.py [--require FAMILY]... [FILE]
"""

from __future__ import annotations

import argparse
import re
import sys

TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_RE = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
SAMPLE_RE = re.compile(
    rf"^({NAME_RE})(?:\{{({LABEL_RE}(?:,{LABEL_RE})*)?\}})?"
    rf" (-?(?:[0-9.eE+-]+|Inf)|\+Inf|NaN)(?: -?[0-9]+)?$"
)
VALUE_RE = re.compile(r"^[+-]?(Inf|NaN|[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$")


def family_of(name: str, types: dict[str, str]) -> str:
    """Maps a sample name to its declared family: summary/histogram
    samples may carry the _sum/_count/_bucket suffix of their family."""
    if name in types:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        base = name.removesuffix(suffix)
        if base != name and base in types:
            return base
    return name


def check(text: str, require: list[str]) -> list[str]:
    """Returns the list of violations (empty = valid exposition)."""
    errors: list[str] = []
    types: dict[str, str] = {}
    samples_seen: set[str] = set()
    family_samples: dict[str, int] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed # TYPE line")
                continue
            family, mtype = parts[2], parts[3]
            if mtype not in TYPES:
                errors.append(f"line {lineno}: unknown type {mtype!r}")
            if family in types:
                errors.append(f"line {lineno}: duplicate # TYPE for {family}")
            types[family] = mtype
            if mtype == "counter" and not family.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter family {family!r} must end "
                    f"in _total"
                )
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unknown comment {line[:40]!r}")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: not a valid sample: {line[:60]!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        if not VALUE_RE.match(value):
            errors.append(f"line {lineno}: bad sample value {value!r}")
        family = family_of(name, types)
        if family not in types:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        else:
            mtype = types[family]
            if name != family and mtype not in ("summary", "histogram"):
                errors.append(
                    f"line {lineno}: suffixed sample {name!r} under "
                    f"{mtype} family {family!r}"
                )
            if 'quantile="' in labels and mtype != "summary":
                errors.append(
                    f"line {lineno}: quantile label outside a summary"
                )
        key = f"{name}{{{labels}}}"
        if key in samples_seen:
            errors.append(f"line {lineno}: duplicate sample {key}")
        samples_seen.add(key)
        family_samples[family] = family_samples.get(family, 0) + 1

    for family in require:
        if family_samples.get(family, 0) < 1:
            errors.append(f"required family {family!r} has no samples")
    return errors


SELF_TESTS = [
    # (name, text, required families, should_pass)
    (
        "minimal-valid",
        "# HELP rnoc_jobs_total jobs\n# TYPE rnoc_jobs_total counter\n"
        "rnoc_jobs_total 3\n"
        "# TYPE rnoc_queue_depth gauge\n"
        'rnoc_queue_depth{lane="bulk"} 0\n'
        'rnoc_queue_depth{lane="interactive"} 2\n'
        "# TYPE rnoc_request_us summary\n"
        'rnoc_request_us{quantile="0.5"} 120.5\n'
        "rnoc_request_us_sum 950\nrnoc_request_us_count 4\n",
        ["rnoc_jobs_total", "rnoc_request_us"],
        True,
    ),
    ("no-type", "rnoc_lost 1\n", [], False),
    (
        "dup-sample",
        "# TYPE rnoc_x gauge\nrnoc_x 1\nrnoc_x 2\n",
        [],
        False,
    ),
    (
        "counter-suffix",
        "# TYPE rnoc_jobs counter\nrnoc_jobs 1\n",
        [],
        False,
    ),
    (
        "quantile-on-gauge",
        '# TYPE rnoc_x gauge\nrnoc_x{quantile="0.5"} 1\n',
        [],
        False,
    ),
    (
        "missing-required",
        "# TYPE rnoc_x gauge\nrnoc_x 1\n",
        ["rnoc_absent_total"],
        False,
    ),
    ("bad-value", "# TYPE rnoc_x gauge\nrnoc_x lots\n", [], False),
]


def self_test() -> None:
    failures = 0
    for name, text, require, should_pass in SELF_TESTS:
        errors = check(text, require)
        ok = not errors if should_pass else bool(errors)
        if not ok:
            failures += 1
            print(f"check_metrics: self-test {name!r} FAILED")
            for e in errors:
                print(f"  {e}")
    if failures:
        sys.exit(1)
    print(f"check_metrics: self-test OK ({len(SELF_TESTS)} fixtures)")


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="check_metrics.py",
        description="Validate Prometheus text exposition.",
    )
    parser.add_argument("file", nargs="?", help="exposition file (default stdin)")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FAMILY",
        help="fail unless FAMILY has at least one sample (repeatable)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        self_test()
        return

    try:
        if args.file:
            with open(args.file, encoding="utf-8") as f:
                text = f.read()
        else:
            text = sys.stdin.read()
    except OSError as e:
        print(f"check_metrics: cannot read input: {e}")
        sys.exit(2)

    errors = check(text, args.require)
    if errors:
        for e in errors:
            print(f"check_metrics: FAIL: {e}")
        sys.exit(1)
    lines = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"check_metrics: OK: {lines} samples")


if __name__ == "__main__":
    main()
