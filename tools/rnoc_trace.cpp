// rnoc_trace — record and replay traffic traces from the command line.
//
//   rnoc_trace record --traffic ocean --out ocean.trace [--measure N]
//   rnoc_trace replay --in ocean.trace [--faults N] [--mode baseline]
#include <cstdio>
#include <fstream>
#include <string>

#include "common/options.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "traffic/app_profiles.hpp"
#include "traffic/trace.hpp"

using namespace rnoc;

namespace {

const std::set<std::string> kKeys = {"traffic", "out", "in",   "mesh",
                                     "warmup",  "measure", "drain", "faults",
                                     "mode",    "seed", "rate", "trace-out",
                                     "trace-sample", "help"};

void usage() {
  std::printf(
      "rnoc_trace record --traffic <name|uniform> --out FILE [--rate R]\n"
      "rnoc_trace replay --in FILE [--faults N] [--mode baseline|protected]\n"
      "common: --mesh WxH --warmup N --measure N --drain N --seed S\n"
      "        --trace-out FILE [--trace-sample N]   flit-level Perfetto\n"
      "        timeline of the run (needs -DRNOC_TRACE=ON)\n");
}

/// Applies the --trace-out/--trace-sample flags to the mesh config; errors
/// out in untraced builds where the hooks are compiled away.
void apply_trace_flags(const Options& opt, noc::SimConfig& cfg) {
  const std::string trace_out = opt.get("trace-out", "");
  const auto sample = static_cast<std::uint64_t>(opt.get_int("trace-sample", 1));
  require(sample >= 1, "--trace-sample must be >= 1");
#ifdef RNOC_TRACE
  if (!trace_out.empty()) cfg.mesh.obs.trace_sample = sample;
#else
  (void)cfg;
  require(trace_out.empty(),
          "--trace-out needs an observability build "
          "(rebuild with -DRNOC_TRACE=ON)");
#endif
}

/// Writes the Chrome trace JSON after a run if --trace-out was given.
void write_trace(const Options& opt, noc::Simulator& sim) {
  const std::string trace_out = opt.get("trace-out", "");
  if (trace_out.empty()) return;
#ifdef RNOC_TRACE
  const obs::Observer& observer = sim.mesh().observer();
  std::ofstream os(trace_out);
  require(static_cast<bool>(os),
          "--trace-out: cannot open '" + trace_out + "'");
  os << observer.chrome_trace_json();
  std::printf("wrote %zu trace events -> %s\n",
              observer.trace().events().size(), trace_out.c_str());
#else
  (void)sim;
#endif
}

noc::SimConfig sim_config(const Options& opt) {
  noc::SimConfig cfg;
  const std::string mesh = opt.get("mesh", "8x8");
  const auto x = mesh.find('x');
  require(x != std::string::npos, "--mesh expects WxH");
  cfg.mesh.dims.x = std::atoi(mesh.substr(0, x).c_str());
  cfg.mesh.dims.y = std::atoi(mesh.substr(x + 1).c_str());
  cfg.warmup = static_cast<Cycle>(opt.get_int("warmup", 2000));
  cfg.measure = static_cast<Cycle>(opt.get_int("measure", 8000));
  cfg.drain_limit = static_cast<Cycle>(opt.get_int("drain", 20000));
  cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const std::string mode = opt.get("mode", "protected");
  require(mode == "protected" || mode == "baseline", "--mode invalid");
  cfg.mesh.router.mode = mode == "protected" ? core::RouterMode::Protected
                                             : core::RouterMode::Baseline;
  return cfg;
}

int do_record(const Options& opt) {
  const std::string out = opt.get("out", "");
  require(!out.empty(), "record: --out FILE required");
  const std::string name = opt.get("traffic", "uniform");

  std::shared_ptr<traffic::TrafficModel> inner;
  if (name == "uniform") {
    traffic::SyntheticConfig tc;
    tc.injection_rate = opt.get_double("rate", 0.10);
    inner = std::make_shared<traffic::SyntheticTraffic>(tc);
  } else {
    inner = traffic::make_traffic(traffic::find_profile(name));
  }
  auto recorder = std::make_shared<traffic::TraceRecorder>(inner);

  auto cfg = sim_config(opt);
  apply_trace_flags(opt, cfg);
  noc::Simulator sim(cfg, recorder);
  const auto rep = sim.run();
  write_trace(opt, sim);

  std::ofstream os(out);
  require(static_cast<bool>(os), "record: cannot open '" + out + "'");
  os << "# rnoc trace: traffic=" << name << " packets=" << rep.packets_sent
     << "\n";
  recorder->save(os);
  std::printf("recorded %zu packets (avg latency %.2f cy) -> %s\n",
              recorder->trace().size(), rep.avg_total_latency(), out.c_str());
  return 0;
}

int do_replay(const Options& opt) {
  const std::string in = opt.get("in", "");
  require(!in.empty(), "replay: --in FILE required");
  std::ifstream is(in);
  require(static_cast<bool>(is), "replay: cannot open '" + in + "'");
  auto entries = traffic::TraceRecorder::parse(is);
  require(!entries.empty(), "replay: trace is empty");
  std::printf("replaying %zu packets from %s\n", entries.size(), in.c_str());

  auto cfg = sim_config(opt);
  apply_trace_flags(opt, cfg);
  noc::Simulator sim(cfg, std::make_shared<traffic::TraceReplay>(entries));
  const int faults = static_cast<int>(opt.get_int("faults", 0));
  if (faults > 0) {
    Rng rng(cfg.seed ^ 0x7ace);
    sim.set_fault_plan(fault::FaultPlan::random(
        cfg.mesh.dims, {noc::kMeshPorts, cfg.mesh.router.vcs},
        cfg.mesh.router.mode, faults, cfg.warmup > 0 ? cfg.warmup : 1, rng,
        cfg.mesh.router.mode == core::RouterMode::Protected));
  }
  const auto rep = sim.run();
  write_trace(opt, sim);
  std::printf("delivered %llu/%llu packets, avg latency %.2f cy%s\n",
              static_cast<unsigned long long>(rep.packets_received),
              static_cast<unsigned long long>(rep.packets_sent),
              rep.avg_total_latency(),
              rep.deadlock_suspected ? " [DEADLOCK]" : "");
  return rep.undelivered_flits == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt(argc, argv, kKeys);
    if (opt.has("help") || opt.positional().empty()) {
      usage();
      return opt.has("help") ? 0 : 1;
    }
    const std::string verb = opt.positional().front();
    if (verb == "record") return do_record(opt);
    if (verb == "replay") return do_replay(opt);
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rnoc_trace: %s\n", e.what());
    return 1;
  }
}
