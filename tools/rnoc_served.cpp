// rnoc_served — the campaign results daemon.
//
//   rnoc_served --socket PATH [--cache DIR] [--cache-max-mb N]
//               [--workers N] [--git-sha SHA] [--quiet]
//               [--telemetry-out FILE] [--telemetry-max-mb N]
//               [--span-trace-out FILE] [--tick-ms N]
//               [--exit-after-points N]
//
// Long-running service that executes registered campaigns on a two-lane
// work-stealing scheduler and serves repeated points from a persistent
// on-disk cache keyed by (schema version, config hash, git SHA). Clients
// speak line-delimited JSON over the unix socket; `rnoc_campaign
// --connect PATH` is the stock client and produces byte-identical result
// files to local execution.
//
// Telemetry is always on (the `metrics` and `watch` wire ops): spans,
// latency quantiles, queue/cache gauges and a structured event stream,
// all derived data that never touches result bytes (client output stays
// byte-identical, test-enforced). --telemetry-out journals the events to
// a size-capped JSONL file with atomic rotation; --span-trace-out writes
// a Chrome/Perfetto trace of the span ring at clean shutdown; --tick-ms
// sets the cadence of the periodic "metrics" event watchers receive.
//
// SIGTERM/SIGINT shut down cleanly: in-flight jobs fail with a terminal
// error line, the cache index is flushed, and the socket file is removed.
// --exit-after-points N is a test hook: the process _exit()s the instant
// the Nth point has been computed (cached hits do not count), simulating
// a kill -9 mid-campaign for the resume-determinism tests.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <unistd.h>

#include "campaign/engine.hpp"
#include "common/options.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"

using namespace rnoc;

namespace {

serve::Server* g_server = nullptr;

void handle_signal(int) {
  // request_stop is async-signal-safe: atomic flag + shutdown(2).
  if (g_server) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt(argc, argv,
                      {"socket", "cache", "cache-max-mb", "workers",
                       "git-sha", "quiet", "exit-after-points",
                       "telemetry-out", "telemetry-max-mb",
                       "span-trace-out", "tick-ms", "help"});
    if (opt.get_bool("help", false)) {
      std::printf(
          "usage: rnoc_served --socket PATH [--cache DIR] [--cache-max-mb N]\n"
          "                   [--workers N] [--git-sha SHA] [--quiet]\n"
          "                   [--telemetry-out FILE] [--telemetry-max-mb N]\n"
          "                   [--span-trace-out FILE] [--tick-ms N]\n"
          "                   [--exit-after-points N]\n");
      return 0;
    }
    const std::string socket_path = opt.get("socket", "");
    if (socket_path.empty()) {
      std::fprintf(stderr, "rnoc_served: --socket PATH is required\n");
      return 2;
    }
    const bool quiet = opt.get_bool("quiet", false);
    const std::int64_t exit_after = opt.get_int("exit-after-points", 0);

    const std::string span_trace_out = opt.get("span-trace-out", "");
    const std::string git_sha = opt.get("git-sha", campaign::read_git_sha("."));

    // The hub outlives service and server (declared first, destroyed
    // last): both hold raw pointers into it.
    serve::TelemetryHub::Config tcfg;
    tcfg.journal_path = opt.get("telemetry-out", "");
    tcfg.journal_max_bytes = static_cast<std::uint64_t>(
                                 opt.get_int("telemetry-max-mb", 4)) *
                             1024 * 1024;
    tcfg.tick_interval_ms =
        static_cast<std::uint64_t>(opt.get_int("tick-ms", 1000));
    tcfg.git_sha = git_sha;
    serve::TelemetryHub telemetry(tcfg);

    serve::CampaignService::Config scfg;
    scfg.workers = static_cast<int>(opt.get_int("workers", 0));
    scfg.cache_root = opt.get("cache", "");
    scfg.cache_max_bytes = static_cast<std::uint64_t>(
                               opt.get_int("cache-max-mb", 0)) *
                           1024 * 1024;
    scfg.git_sha = git_sha;
    scfg.telemetry = &telemetry;
    if (exit_after > 0) {
      scfg.on_point_computed = [exit_after](std::uint64_t computed) {
        if (computed >= static_cast<std::uint64_t>(exit_after)) {
          // Simulated kill -9: no destructors, no cache flush, no socket
          // cleanup — the recovery paths have to cope with all of that.
          _exit(9);
        }
      };
    }
    serve::CampaignService service(scfg);

    serve::Server::Config cfg;
    cfg.socket_path = socket_path;
    cfg.telemetry = &telemetry;
    if (!quiet) {
      cfg.log = [](const std::string& msg) {
        std::printf("%s\n", msg.c_str());
        std::fflush(stdout);
      };
    }
    serve::Server server(cfg, service);
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    server.run();  // Stops the service (failing in-flight jobs) on exit.
    g_server = nullptr;

    if (!span_trace_out.empty()) {
      telemetry.write_span_trace(span_trace_out);
      if (!quiet)
        std::printf("rnoc_served: span trace -> %s\n", span_trace_out.c_str());
    }

    if (!quiet) {
      const serve::CampaignService::Stats s = service.stats();
      const serve::ResultCache::Stats c = service.cache_stats();
      std::printf(
          "rnoc_served: %llu jobs (%llu coalesced), %llu points computed, "
          "%llu served from cache (%llu entries on disk)\n",
          static_cast<unsigned long long>(s.jobs_submitted),
          static_cast<unsigned long long>(s.jobs_coalesced),
          static_cast<unsigned long long>(s.points_computed),
          static_cast<unsigned long long>(s.points_cached),
          static_cast<unsigned long long>(c.entries));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rnoc_served: %s\n", e.what());
    return 1;
  }
}
