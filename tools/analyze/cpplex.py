"""Shared C++ lexer and token-level extraction for the rnoc analyzer.

This is deliberately not a regex-over-lines scanner: source text is lexed
into a token stream (comments, string/char literals — including raw
strings — and preprocessor directives handled properly), and every rule
below works on token sequences. That gives the token-family rules the
precision the old tools/lint.py regexes lacked (no false hits inside
strings or comments, multi-line constructs handled) without requiring a
full C++ parser.

Provided extractors:
  tokenize(text)               -> [Token]
  find_enum_classes(tokens)    -> {enum_name: [enumerator, ...]}
  find_switches(tokens)        -> [Switch] (case labels, default?, span)
  find_new_expressions(tokens) -> [Token] (allocating `new` keywords)
  find_raw_rng(tokens)         -> [Token] (rand/srand/std::random_device)
  find_unordered_iteration(tokens) -> [(Token, reason)]
"""

from dataclasses import dataclass, field


@dataclass
class Token:
    kind: str  # 'ident', 'number', 'punct', 'pp' (preprocessor directive)
    text: str
    line: int


KEYWORDS_NOT_NAMES = {
    "if", "else", "for", "while", "do", "return", "switch", "case",
    "default", "break", "continue", "new", "delete", "operator", "enum",
    "class", "struct", "using", "namespace", "template", "typename",
    "const", "constexpr", "static", "inline", "virtual", "override",
    "public", "private", "protected", "sizeof", "throw", "try", "catch",
}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")


def tokenize(text):
    """Lex C++ source into tokens; comments and literals are dropped,
    preprocessor directives become single 'pp' tokens (with continuation
    lines folded), everything else becomes ident/number/punct tokens."""
    toks = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        two = text[i:i + 2]
        if two == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if two == "/*":
            j = text.find("*/", i + 2)
            if j < 0:
                break
            line += text.count("\n", i, j + 2)
            i = j + 2
            continue
        if c == "#" and at_line_start:
            # Fold backslash-continued directive lines into one token.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if text[k - 1:k] == "\\" or text[k - 2:k] == "\\\r":
                    j = k + 1
                else:
                    break
            directive = text[i:k]
            toks.append(Token("pp", directive.split("\n")[0].strip(), line))
            line += directive.count("\n") + 1
            i = k + 1
            continue
        at_line_start = False
        # Raw string literal  R"delim( ... )delim"
        if c == "R" and text[i + 1:i + 2] == '"':
            j = text.find("(", i + 2)
            if 0 < j < i + 20:
                delim = text[i + 2:j]
                end = text.find(")" + delim + '"', j)
                if end < 0:
                    break
                line += text.count("\n", i, end)
                i = end + len(delim) + 2
                continue
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            line += text.count("\n", i, j)
            i = min(j + 1, n)
            continue
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            toks.append(Token("ident", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in _IDENT_CONT or text[j] in ".'"):
                j += 1
            toks.append(Token("number", text[i:j], line))
            i = j
            continue
        # Multi-char punctuation we care about as units.
        for p in ("::", "->", "<<", ">>", "=="):
            if text.startswith(p, i):
                toks.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Token("punct", c, line))
            i += 1
    return toks


def find_enum_classes(tokens):
    """Returns {name: [enumerators]} for every `enum class`/`enum struct`
    definition in the token stream (forward declarations are skipped)."""
    enums = {}
    i, n = 0, len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "ident" and t.text == "enum" and i + 2 < n and \
                tokens[i + 1].text in ("class", "struct") and \
                tokens[i + 2].kind == "ident":
            name = tokens[i + 2].text
            j = i + 3
            # Skip optional ": underlying_type" up to '{' or ';'.
            while j < n and tokens[j].text not in ("{", ";"):
                j += 1
            if j < n and tokens[j].text == "{":
                members = []
                depth = 1
                j += 1
                expect_name = True
                while j < n and depth > 0:
                    tt = tokens[j]
                    if tt.text == "{":
                        depth += 1
                    elif tt.text == "}":
                        depth -= 1
                    elif depth == 1:
                        if expect_name and tt.kind == "ident":
                            members.append(tt.text)
                            expect_name = False
                        elif tt.text == ",":
                            expect_name = True
                    j += 1
                enums[name] = members
            i = j
        else:
            i += 1
    return enums


@dataclass
class Switch:
    line: int                      # line of the `switch` keyword
    cases: list = field(default_factory=list)   # [(line, [label tokens])]
    has_default: bool = False
    default_line: int = 0


def find_switches(tokens):
    """Returns every switch statement with its top-level case labels.
    Nested switches are returned as their own entries; their labels are
    not attributed to the outer switch."""
    switches = []
    _scan_switches(tokens, 0, len(tokens), switches)
    return switches


def _skip_parens(tokens, i, n):
    """tokens[i] == '('; returns index just past the matching ')'."""
    depth = 0
    while i < n:
        if tokens[i].text == "(":
            depth += 1
        elif tokens[i].text == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _scan_switches(tokens, i, n, out):
    while i < n:
        t = tokens[i]
        if t.kind == "ident" and t.text == "switch" and i + 1 < n and \
                tokens[i + 1].text == "(":
            body = _skip_parens(tokens, i + 1, n)
            if body < n and tokens[body].text == "{":
                sw = Switch(line=t.line)
                end = _parse_switch_body(tokens, body, n, sw, out)
                out.append(sw)
                i = end
                continue
        i += 1


def _parse_switch_body(tokens, i, n, sw, out):
    """tokens[i] == '{' of a switch body. Collects case/default labels at
    any brace depth of this switch, recursing into nested switches."""
    depth = 0
    while i < n:
        t = tokens[i]
        if t.text == "{":
            depth += 1
            i += 1
        elif t.text == "}":
            depth -= 1
            i += 1
            if depth == 0:
                return i
        elif t.kind == "ident" and t.text == "switch" and i + 1 < n and \
                tokens[i + 1].text == "(":
            body = _skip_parens(tokens, i + 1, n)
            if body < n and tokens[body].text == "{":
                inner = Switch(line=t.line)
                i = _parse_switch_body(tokens, body, n, inner, out)
                out.append(inner)
            else:
                i = body
        elif t.kind == "ident" and t.text == "case":
            j = i + 1
            label = []
            while j < n and tokens[j].text not in (":", ";", "{", "}"):
                label.append(tokens[j])
                j += 1
            sw.cases.append((t.line, label))
            i = j
        elif t.kind == "ident" and t.text == "default" and i + 1 < n and \
                tokens[i + 1].text == ":":
            sw.has_default = True
            sw.default_line = t.line
            i += 2
        else:
            i += 1
    return i


def case_label_enum(label_tokens):
    """For a case label like `SiteType::RcSpare` (optionally namespace-
    qualified), returns (enum_name, enumerator) or None."""
    idents = [t.text for t in label_tokens if t.kind == "ident"]
    seps = [t.text for t in label_tokens if t.kind == "punct"]
    if len(idents) >= 2 and "::" in seps:
        return idents[-2], idents[-1]
    return None


def find_new_expressions(tokens):
    """Allocating `new` keyword tokens. `operator new` declarations and
    `::new (ptr) T` placement forms used by allocator internals are still
    reported — the repo bans them all outside approved code."""
    hits = []
    for i, t in enumerate(tokens):
        if t.kind == "ident" and t.text == "new":
            prev = tokens[i - 1] if i > 0 else None
            if prev and prev.kind == "ident" and prev.text == "operator":
                continue  # declaring/overriding operator new, not allocating
            hits.append(t)
    return hits


def find_raw_rng(tokens):
    """rand()/srand() calls and std::random_device mentions."""
    hits = []
    for i, t in enumerate(tokens):
        if t.kind != "ident":
            continue
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        if t.text in ("rand", "srand") and nxt and nxt.text == "(":
            prev = tokens[i - 1] if i > 0 else None
            if prev and prev.text in (".", "->"):
                continue  # member named rand on some object, not libc
            hits.append(t)
        elif t.text == "random_device":
            hits.append(t)
    return hits


_UNORDERED = {"unordered_map", "unordered_set",
              "unordered_multimap", "unordered_multiset"}


def find_unordered_iteration(tokens):
    """Iteration over unordered associative containers: range-for over an
    expression mentioning an unordered container (by type or by a variable
    declared with one earlier in the file), or .begin()/.cbegin() on such
    a variable. Iteration order is implementation-defined, so any result
    derived from it breaks seed-determinism."""
    # Pass 1: names declared with an unordered container type.
    unordered_vars = set()
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind == "ident" and t.text in _UNORDERED:
            # Find '<' ... matching '>' then the declared name(s).
            j = i + 1
            if j < n and tokens[j].text == "<":
                depth = 0
                while j < n:
                    if tokens[j].text == "<":
                        depth += 1
                    elif tokens[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif tokens[j].text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    j += 1
                j += 1
                if j < n and tokens[j].kind == "ident":
                    unordered_vars.add(tokens[j].text)
    hits = []
    # Pass 2: range-for and explicit iterator loops.
    for i, t in enumerate(tokens):
        if t.kind == "ident" and t.text == "for" and i + 1 < n and \
                tokens[i + 1].text == "(":
            end = _skip_parens(tokens, i + 1, n)
            inner = tokens[i + 2:end - 1]
            if any(x.text == ":" for x in inner):
                names = {x.text for x in inner if x.kind == "ident"}
                if names & _UNORDERED:
                    hits.append((t, "range-for over an unordered container"))
                elif names & unordered_vars:
                    hits.append((t, "range-for over unordered container "
                                    "variable"))
        elif t.kind == "ident" and t.text in ("begin", "cbegin") and \
                i + 1 < n and tokens[i + 1].text == "(" and i >= 2 and \
                tokens[i - 1].text in (".", "->") and \
                tokens[i - 2].text in unordered_vars:
            hits.append((t, "iterator over unordered container variable"))
    return hits
