"""Compile-database-driven whole-program call graph for the rnoc analyzer.

The graph is extracted from the compiler, not from source text:

* GCC backend (default): every translation unit in compile_commands.json
  is re-driven through the build's own compiler with
  `-fcallgraph-info=su,da -O0 -S`, and the emitted VCG .ci files (one
  node per function with mangled name, demangled signature and
  declaration location; one edge per call site with file:line) are parsed
  and merged into one program graph. -O0 keeps every call explicit (no
  inlining), so transitive reachability is exact at the
  template-instantiation level — std::vector::push_back shows its path
  to operator new, a chrono clock shows its ::now() call, etc.

* libclang backend (optional): the same TU set walked through the Clang
  Python bindings when `clang.cindex` is importable. Gated because the
  container toolchain ships GCC only; `--backend libclang` fails with a
  clear message when the bindings are absent.

Per-TU results are cached under <cache-dir> keyed by the compile command
and the mtimes of the TU plus every header it includes (from `-MM`), so
a clean re-run after an unrelated change only re-extracts what changed.
"""

import hashlib
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field


@dataclass
class Node:
    name: str                # mangled (or plain C) symbol name
    demangled: str = ""
    decl: str = ""           # "file:line" of the definition when known
    external: bool = False   # declared but not defined in any scanned TU


@dataclass
class ProgramGraph:
    nodes: dict = field(default_factory=dict)   # name -> Node
    edges: dict = field(default_factory=dict)   # name -> [(callee, site)]

    def add_node(self, name, demangled="", decl="", external=False):
        node = self.nodes.get(name)
        if node is None:
            node = Node(name, demangled, decl, external)
            self.nodes[name] = node
        else:
            if demangled and not node.demangled:
                node.demangled = demangled
            if decl and (not node.decl or node.external):
                node.decl = decl
            node.external = node.external and external
        return node

    def add_edge(self, caller, callee, site=""):
        self.edges.setdefault(caller, []).append((callee, site))

    def match_nodes(self, patterns):
        """All node names whose demangled (or raw) name matches any of the
        compiled regex `patterns` (searched, not fullmatched)."""
        out = []
        for name, node in self.nodes.items():
            label = node.demangled or name
            if any(p.search(label) for p in patterns):
                out.append(name)
        return out

    def _matches(self, name, patterns):
        node = self.nodes.get(name)
        if node is None:
            return any(p.search(name) for p in patterns)
        return any(p.search(name) or
                   (node.demangled and p.search(node.demangled))
                   for p in patterns)

    def reach(self, roots, banned, prune):
        """BFS from `roots`. Traversal does not descend into nodes whose
        name/demangled name matches a `prune` pattern. Returns a list of
        (root, path) for every first hit of a `banned`-matching node,
        where path is [(name, site), ...] from root (site empty) to the
        hit, each site being the "file:line" of the call edge into that
        node."""
        hits = []
        for root in sorted(roots):
            seen = {root}
            queue = [(root, [(root, "")])]
            while queue:
                cur, path = queue.pop(0)
                for callee, site in self.edges.get(cur, ()):  # noqa: B020
                    if self._matches(callee, banned):
                        hits.append((root, path + [(callee, site)]))
                        continue
                    if callee in seen:
                        continue
                    seen.add(callee)
                    if self._matches(callee, prune):
                        continue
                    queue.append((callee, path + [(callee, site)]))
        return hits

    def label(self, name):
        node = self.nodes.get(name)
        return (node.demangled or name) if node else name


# --------------------------------------------------------------------------
# Compile database
# --------------------------------------------------------------------------

def load_compile_db(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def entry_argv(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry["command"])


def entry_defines(entry):
    return {a[2:].split("=")[0] for a in entry_argv(entry)
            if a.startswith("-D")}


def entry_source(entry):
    return os.path.normpath(os.path.join(entry["directory"], entry["file"]))


def select_tus(db, root, subdir="src", want_defines=frozenset(),
               reject_defines=frozenset()):
    """One entry per source file under <root>/<subdir>, preferring entries
    whose -D set contains `want_defines` and avoids `reject_defines`
    (used to pick the plain-library variant of each TU)."""
    prefix = os.path.join(os.path.abspath(root), subdir) + os.sep
    chosen = {}
    for entry in db:
        src = entry_source(entry)
        if not src.startswith(prefix):
            continue
        defs = entry_defines(entry)
        score = (len(defs & reject_defines), -len(defs & want_defines))
        prev = chosen.get(src)
        if prev is None or score < prev[0]:
            chosen[src] = (score, entry)
    return {src: e for src, (_, e) in sorted(chosen.items())}


# --------------------------------------------------------------------------
# GCC backend
# --------------------------------------------------------------------------

_RE_NODE = re.compile(
    r'^node: \{ title: "(.*?)" label: "(.*?)"(?: shape : (\w+))? \}')
_RE_EDGE = re.compile(
    r'^edge: \{ sourcename: "(.*?)" targetname: "(.*?)"'
    r'(?: label: "(.*?)")? \}')

_STRIP_ARGS = {"-c", "-S", "-E"}
_STRIP_NEXT = {"-o", "-MF", "-MT", "-MQ", "-MD", "-MMD"}


def _cgraph_command(entry, out_path):
    """Rewrites a compile-db command into a callgraph extraction command:
    -O0 (no inlining — keep every call edge), -S to out_path, warnings
    silenced, dependency generation stripped."""
    argv = entry_argv(entry)
    out = [argv[0]]
    skip = False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a in _STRIP_NEXT:
            skip = True
            continue
        if a in _STRIP_ARGS or a.startswith("-O") or a == "-Werror" \
                or a.startswith("-fdiagnostics") or a.startswith("-M"):
            continue
        out.append(a)
    out += ["-O0", "-w", "-fcallgraph-info=su,da", "-S", "-o", out_path]
    return out


def _split_title(title):
    """VCG node titles are `mangled` for public symbols and externals,
    `<tu-file>:mangled` for TU-local/comdat symbols. The mangled part
    never contains ':', so split on the last one."""
    if ":" in title:
        return title.rsplit(":", 1)[1]
    return title


def parse_ci(text, graph):
    for line in text.splitlines():
        m = _RE_NODE.match(line)
        if m:
            title, label, shape = m.groups()
            name = _split_title(title)
            parts = label.split("\\n")
            demangled = parts[0]
            decl = parts[1] if len(parts) > 1 else ""
            graph.add_node(name, demangled, decl,
                           external=(shape == "ellipse"))
            continue
        m = _RE_EDGE.match(line)
        if m:
            src, dst, site = m.groups()
            graph.add_edge(_split_title(src), _split_title(dst), site or "")


def _tu_cache_key(entry, source):
    """Command + mtimes of the TU and all its includes (via -MM)."""
    h = hashlib.sha256()
    h.update(" ".join(entry_argv(entry)).encode())
    deps = [source]
    argv = [a for a in entry_argv(entry)
            if not (a in _STRIP_ARGS or a == source or a == entry["file"])]
    cmd = [argv[0]] + [a for a in argv[1:] if a.startswith(("-I", "-D",
                                                            "-std"))]
    cmd += ["-MM", "-MT", "x", source]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             cwd=entry["directory"], timeout=120)
        if out.returncode == 0:
            text = out.stdout.replace("\\\n", " ")
            deps += [d for d in text.split()[1:] if os.path.exists(d)]
    except OSError:
        pass
    for d in sorted(set(deps)):
        try:
            h.update(f"{d}:{os.stat(d).st_mtime_ns}".encode())
        except OSError:
            h.update(f"{d}:gone".encode())
    return h.hexdigest()


def _extract_tu_gcc(entry, cache_dir):
    source = entry_source(entry)
    cached = None
    if cache_dir:
        key = _tu_cache_key(entry, source)
        cached = os.path.join(cache_dir, key + ".ci")
        if os.path.exists(cached):
            with open(cached, encoding="utf-8") as f:
                return source, f.read(), None
    with tempfile.TemporaryDirectory(prefix="rnoc_cg_") as tmp:
        out_s = os.path.join(tmp, "tu.s")
        cmd = _cgraph_command(entry, out_s)
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=entry["directory"], timeout=600)
        ci_path = os.path.join(tmp, "tu.ci")
        if proc.returncode != 0 or not os.path.exists(ci_path):
            lines = proc.stderr.strip().splitlines()
            err = next((ln for ln in lines if "error:" in ln),
                       lines[-1] if lines else "no .ci emitted")
            return source, None, err
        with open(ci_path, encoding="utf-8") as f:
            text = f.read()
    if cached:
        os.makedirs(cache_dir, exist_ok=True)
        tmp_path = cached + f".tmp{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as f:
            f.write(text)
        os.replace(tmp_path, cached)
    return source, text, None


def build_graph_gcc(entries, jobs, cache_dir=None):
    """Merged ProgramGraph over `entries` (compile-db entries). Returns
    (graph, errors) where errors is [(source, message)]."""
    graph = ProgramGraph()
    errors = []
    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        for source, text, err in pool.map(
                lambda e: _extract_tu_gcc(e, cache_dir), entries):
            if err is not None:
                errors.append((source, err))
            else:
                parse_ci(text, graph)
    return graph, errors


# --------------------------------------------------------------------------
# libclang backend (gated: the container toolchain has no libclang)
# --------------------------------------------------------------------------

def libclang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def build_graph_libclang(entries, jobs):  # noqa: ARG001 (jobs unused)
    """AST-level graph via the Clang Python bindings. Functionally the
    same shape as the GCC backend's graph, but edges carry the spelling
    location of each call expression and nodes use USRs mapped to mangled
    names where available."""
    from clang import cindex

    index = cindex.Index.create()
    graph = ProgramGraph()
    errors = []
    for entry in entries:
        source = entry_source(entry)
        args = [a for a in entry_argv(entry)[1:]
                if a not in _STRIP_ARGS and a != entry["file"]
                and not a.startswith("-o")]
        try:
            tu = index.parse(source, args=args)
        except cindex.TranslationUnitLoadError as exc:
            errors.append((source, str(exc)))
            continue

        def name_of(cursor):
            return cursor.mangled_name or cursor.spelling

        def walk(cursor, current):
            kind = cursor.kind
            if kind in (cindex.CursorKind.FUNCTION_DECL,
                        cindex.CursorKind.CXX_METHOD,
                        cindex.CursorKind.CONSTRUCTOR,
                        cindex.CursorKind.DESTRUCTOR,
                        cindex.CursorKind.FUNCTION_TEMPLATE) and \
                    cursor.is_definition():
                loc = cursor.location
                current = name_of(cursor)
                graph.add_node(current, cursor.displayname,
                               f"{loc.file}:{loc.line}" if loc.file else "")
            elif kind == cindex.CursorKind.CALL_EXPR and current:
                ref = cursor.referenced
                if ref is not None:
                    callee = name_of(ref)
                    graph.add_node(callee, ref.displayname, "",
                                   external=not ref.is_definition())
                    loc = cursor.location
                    site = f"{loc.file}:{loc.line}" if loc.file else ""
                    graph.add_edge(current, callee, site)
            for child in cursor.get_children():
                walk(child, current)

        walk(tu.cursor, None)
    return graph, errors
