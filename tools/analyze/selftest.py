"""Fixture-driven self-test for the rnoc analyzer (`rnoc_analyze --self-test`).

Builds a throwaway mini repo in a temp directory from the negative
fixtures under tests/analyze_fixtures (each a deliberate violation of one
rule family), synthesises a compile_commands.json for the TUs the
call-graph and zero-cost rules need, and runs the real analyzer CLI
against it. Asserted scenarios:

  1. Every fixture's expected rule fires on the expected file, the clean
     fixture stays clean, and the dirty tree exits non-zero.
  2. A baseline suppressing every finding (with justifications) turns the
     same tree green.
  3. A stale suppression (fingerprint with no matching finding) fails.
  4. A suppression without a written justification fails.
  5. A mini repo containing only the clean fixture passes with no
     baseline at all.

The scenarios share one mini repo (and therefore one per-TU call-graph
cache), so the graph is extracted once and replayed for the baseline
mechanics runs.
"""

import json
import os
import shlex
import shutil
import subprocess
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
_ANALYZE = os.path.join(_HERE, "rnoc_analyze.py")


def _build_mini_repo(tmp, name, fixtures_dir, manifest, only=None):
    """Copies fixtures into <tmp>/<name>/ per the manifest and writes a
    synthetic compile database (absolute paths, no defines — so every
    zero-cost guard counts as off). Returns (repo_root, compile_db)."""
    repo = os.path.join(tmp, name)
    build = os.path.join(repo, "build")
    os.makedirs(build)
    cxx = os.environ.get("CXX", "c++")
    entries = []
    for fx in manifest["fixtures"]:
        if only is not None and fx["file"] not in only:
            continue
        dest = os.path.join(repo, *fx["dest"].split("/"))
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copyfile(os.path.join(fixtures_dir, fx["file"]), dest)
        if fx.get("compile"):
            obj = os.path.join(build, fx["file"] + ".o")
            entries.append({
                "directory": build,
                "command": " ".join(shlex.quote(a) for a in [
                    cxx, "-std=c++20", "-I" + os.path.join(repo, "src"),
                    "-c", dest, "-o", obj]),
                "file": dest,
            })
    db = os.path.join(build, "compile_commands.json")
    with open(db, "w", encoding="utf-8") as f:
        json.dump(entries, f, indent=1)
    return repo, db


def _run(repo, db, baseline=""):
    out_json = os.path.join(repo, "findings.json")
    cmd = [sys.executable, _ANALYZE, "--root", repo, "--compile-db", db,
           "--baseline", baseline, "--json", out_json]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=900)
    data = {}
    if os.path.exists(out_json):
        with open(out_json, encoding="utf-8") as f:
            data = json.load(f)
    return proc, data


def run(repo_root):
    fixtures_dir = os.path.join(repo_root, "tests", "analyze_fixtures")
    manifest_path = os.path.join(fixtures_dir, "manifest.json")
    if not os.path.exists(manifest_path):
        print(f"selftest: missing {manifest_path}", file=sys.stderr)
        return 1
    with open(manifest_path, encoding="utf-8") as f:
        manifest = json.load(f)

    failures = []

    def check(cond, what):
        print(f"  {'ok  ' if cond else 'FAIL'} {what}")
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="rnoc_selftest_") as tmp:
        # -- scenario 1: every fixture fires its rule ------------------
        print("selftest: dirty mini repo (all fixtures, no baseline)")
        repo, db = _build_mini_repo(tmp, "dirty", fixtures_dir, manifest)
        proc, data = _run(repo, db)
        check(proc.returncode == 1,
              f"dirty tree exits 1 (got {proc.returncode}: "
              f"{proc.stderr.strip().splitlines()[-1:]})")
        findings = data.get("findings", [])
        for fx in manifest["fixtures"]:
            dest = os.path.join(*fx["dest"].split("/"))
            for rule, want in fx.get("expect", {}).items():
                got = sum(1 for f in findings
                          if f["rule"] == rule and f["file"] == dest)
                check(got >= want,
                      f"{rule} fires on {fx['file']} "
                      f"(got {got}, want >= {want})")
            if not fx.get("expect"):
                stray = [f for f in findings if f["file"] == dest]
                check(not stray,
                      f"no findings on clean fixture {fx['file']} "
                      f"(got {[(f['rule'], f['line']) for f in stray]})")

        # -- scenario 2: baseline suppresses everything ----------------
        print("selftest: fully-suppressed baseline")
        sup = [{"fingerprint": fp, "rule": r, "file": fi,
                "justification": "deliberate fixture violation "
                                 "(self-test suppression)"}
               for fp, r, fi in sorted({(f["fingerprint"], f["rule"],
                                         f["file"]) for f in findings})]
        bl_path = os.path.join(tmp, "baseline.json")
        with open(bl_path, "w", encoding="utf-8") as f:
            json.dump({"schema": 1, "suppressions": sup}, f)
        proc, data = _run(repo, db, baseline=bl_path)
        check(proc.returncode == 0,
              f"fully-suppressed tree exits 0 (got {proc.returncode})")
        check(not data.get("findings"), "no unsuppressed findings remain")
        check(len(data.get("suppressed", [])) == len(findings),
              "every finding is accounted for as suppressed")

        # -- scenario 3: stale suppression fails -----------------------
        print("selftest: stale suppression")
        with open(bl_path, "w", encoding="utf-8") as f:
            json.dump({"schema": 1, "suppressions": sup + [{
                "fingerprint": "deadbeef0000", "rule": "naked-new",
                "file": "src/nowhere.cpp",
                "justification": "points at nothing (self-test)"}]}, f)
        proc, data = _run(repo, db, baseline=bl_path)
        check(proc.returncode == 1,
              f"stale suppression exits 1 (got {proc.returncode})")
        check("stale" in proc.stderr, "stale suppression is reported")

        # -- scenario 4: suppression without justification fails -------
        print("selftest: suppression without justification")
        nojust = [dict(s, justification="") for s in sup]
        with open(bl_path, "w", encoding="utf-8") as f:
            json.dump({"schema": 1, "suppressions": nojust}, f)
        proc, _ = _run(repo, db, baseline=bl_path)
        check(proc.returncode == 1,
              f"missing justification exits 1 (got {proc.returncode})")
        check("justification" in proc.stderr,
              "missing justification is reported")

        # -- scenario 5: clean-only mini repo passes -------------------
        print("selftest: clean mini repo")
        repo2, db2 = _build_mini_repo(tmp, "clean", fixtures_dir, manifest,
                                      only={"clean_ok.cpp"})
        proc, data = _run(repo2, db2)
        check(proc.returncode == 0,
              f"clean mini repo exits 0 (got {proc.returncode}; "
              f"findings: {data.get('findings')})")

    n_checks = "all" if not failures else f"{len(failures)} failed"
    print(f"selftest: {n_checks} checks passed"
          if not failures else f"selftest: {len(failures)} check(s) FAILED")
    return 1 if failures else 0
