#!/usr/bin/env python3
"""rnoc domain static analyzer: proves the repo's core guarantees at the
compile-graph level instead of trusting runtime tests to catch drift.

Rule families (see README "Static analysis" and tools/analyze/baseline.json):

  determinism       From every function reachable from the campaign engine,
                    the simulator step/run entry points and the fault
                    injector, ban wall-clock/CPU-time reads, libc
                    randomness, environment/locale reads (transitively,
                    through the whole call graph) and iteration over
                    unordered containers. Campaign results, traces and
                    checkpoints must be pure functions of (spec, seed).

  hotpath-alloc     From Router::step_*, the VC/switch allocators, the
                    crossbar and the link push paths, ban any reachable
                    allocation (operator new, malloc family). The router
                    hot path is allocation-free by design (PR 1); this
                    keeps it that way by construction. Exception-throw
                    paths are pruned: aborting the simulation may
                    allocate, granting a request may not.

  zero-cost-off     Translation units compiled without RNOC_TRACE /
                    RNOC_INVARIANTS must not reference any rnoc::obs:: or
                    NocChecker symbol (checked on the actual object files
                    with nm). "Zero cost when off" is a binary property,
                    so it is proven on binaries.

  exhaustive-switch Switches over domain enums (StallCause, SimCore,
                    SiteType, ...: every `enum class` declared in src/
                    headers) must enumerate every variant and must not
                    carry a `default:` — adding an enum member must fail
                    compilation (-Werror=switch) everywhere it matters,
                    not be silently swallowed.

  naked-new         (folded from tools/lint.py, token-level) No `new`
                    expressions anywhere; ownership goes through
                    containers and smart pointers.

  raw-rng           (folded from tools/lint.py, token-level) rand()/
                    srand()/std::random_device only under src/common/.

Findings carry stable fingerprints, diffed against a committed
suppression baseline (tools/analyze/baseline.json): a clean tree passes,
new violations fail, and stale suppressions are themselves errors.
"""

import argparse
import hashlib
import json
import os
import re
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import callgraph  # noqa: E402
import cpplex  # noqa: E402

HEADER_EXT = (".hpp", ".h")
SOURCE_EXT = (".cpp", ".cc") + HEADER_EXT
TOKEN_DIRS = ("src", "tests", "tools", "bench", "examples")

# --- determinism rule configuration -----------------------------------
# Entry points: everything results/replay-determinism depends on.
DET_ROOTS = [
    r"\brnoc::campaign::[\w:~<>]+\(",
    # The campaign service's point-execute path: a cached point and a
    # freshly computed point must be indistinguishable, so the scheduler/
    # cache layers may not introduce wall-clock or rng sinks into it.
    r"\brnoc::serve::CampaignService::execute_point\(",
    r"\brnoc::serve::ResultCache::[\w:~]+\(",
    r"\brnoc::noc::Simulator::[\w:~]+\(",
    r"\brnoc::noc::SweepRunner::[\w:~]+\(",
    r"\brnoc::noc::Mesh::step[\w]*\(",
    r"\brnoc::noc::Router::step_[\w]*\(",
    r"\brnoc::fault::[\w:~<>]+\(",
]
# Banned sinks: wall clock, CPU time, libc randomness, environment and
# locale. Matched against both the raw symbol and the demangled label.
DET_BANNED = [
    r"^(time|clock|clock_gettime|clock_getres|gettimeofday|timespec_get"
    r"|ftime|localtime|localtime_r|gmtime|gmtime_r|mktime|strftime"
    r"|rand|srand|random|srandom|rand_r|lrand48|mrand48|drand48"
    r"|getenv|secure_getenv|setenv|setlocale|nl_langinfo|uselocale)$",
    r"std::chrono::[\w:]*(system_clock|steady_clock|high_resolution_clock)"
    r"[\w:]*::now",
    r"std::random_device",
]
# Pruned subtrees (documented exemptions — not baseline suppressions,
# because they are structural, not per-site):
#  * ThreadPool: worker scheduling order never reaches result values;
#    shard-count/interleaving invariance is separately test-enforced
#    (test_campaign_engine), and the pool's sync primitives are the only
#    clock-adjacent code (condition_variable waits).
#  * I/O error paths (std::__throw_*, exception constructors): aborting
#    is allowed to read whatever it wants.
#  * serve wire/socket/server/scheduler plumbing: connection handling,
#    send/recv timeouts and worker condition_variable scheduling are
#    clock-adjacent by design and never reach point values — the execute
#    path (CampaignService::execute_point -> ResultCache ->
#    campaign::run_point_unit) is rooted separately above, so a sink
#    leaking INTO point execution is still flagged.
DET_PRUNE = [
    r"\brnoc::ThreadPool::",
    r"\brnoc::serve::(Server|PointScheduler|Fd|LineReader)::",
    r"\brnoc::serve::(send_line|listen_unix|accept_unix|connect_unix)\(",
    # The telemetry hub is, by design, the one wall-clock site in the
    # serve layer: every span/event timestamp is steady_clock read inside
    # its TU. It only ever *observes* the request lifecycle — nothing in
    # it feeds back into point values, and the serve smoke harness
    # enforces that client results stay byte-identical to local execution
    # with the hub attached. Reaching it from a determinism root means
    # "this code reports telemetry", not "this code depends on time".
    r"\brnoc::serve::TelemetryHub::",
    r"std::__throw_",
    r"__cxa_",
]

# --- hotpath-alloc rule configuration ---------------------------------
ALLOC_ROOTS = [
    r"\brnoc::noc::Router::step_[\w]*\(",
    r"\brnoc::noc::VcAllocator::step[\w]*\(",
    r"\brnoc::noc::SwitchAllocator::step[\w]*\(",
    r"\brnoc::noc::Crossbar::(can_traverse|traverse)\(",
    r"\brnoc::noc::Link::push[\w]*\(",
    r"\brnoc::noc::EccLink::push[\w]*\(",
]
# Allocating operator new (any overload without a placement void*
# parameter) and the malloc family.
ALLOC_BANNED = [
    r"operator new(\[\])?\((?![^)]*void\*)",
    r"^(malloc|calloc|realloc|reallocarray|aligned_alloc|posix_memalign"
    r"|strdup|strndup)$",
]
# Exception-throw machinery is the approved cold path: a failed
# invariant/require aborts the run, and the abort may allocate. Granting
# a request may not, so everything else reaching new/malloc is flagged.
ALLOC_PRUNE = [
    r"std::__throw_",
    r"__cxa_",
    r"std::(runtime_error|logic_error|invalid_argument|out_of_range"
    r"|length_error|domain_error|range_error|overflow_error"
    r"|underflow_error|bad_alloc|bad_function_call)::",
    r"std::terminate",
]

# --- zero-cost-off rule configuration ---------------------------------
ZC_GUARDS = {
    "RNOC_TRACE": {
        "symbol": r"\brnoc::obs::",
        "exempt_dirs": (os.path.join("src", "obs"),),
        "exempt_files": (),
    },
    "RNOC_INVARIANTS": {
        "symbol": r"\bNocChecker\b|\brnoc::noc::invariants?\b",
        "exempt_dirs": (),
        "exempt_files": (os.path.join("src", "noc", "invariants.cpp"),),
    },
}

RULES = ("determinism", "hotpath-alloc", "zero-cost-off",
         "exhaustive-switch", "naked-new", "raw-rng")


def fingerprint(*parts):
    h = hashlib.sha1("|".join(parts).encode()).hexdigest()
    return h[:12]


class Finding:
    def __init__(self, rule, file, line, message, key_parts, path=None):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.fingerprint = fingerprint(rule, *key_parts)
        self.path = path or []

    def as_json(self):
        d = {"rule": self.rule, "file": self.file, "line": self.line,
             "message": self.message, "fingerprint": self.fingerprint}
        if self.path:
            d["path"] = self.path
        return d

    def render(self):
        loc = f"{self.file}:{self.line}" if self.line else self.file
        text = f"{loc}: [{self.rule}] {self.message} " \
               f"(fingerprint {self.fingerprint})"
        if self.path:
            text += "\n    call path: " + "\n            -> ".join(self.path)
        return text


def rel(root, path):
    path = os.path.normpath(path)
    root = os.path.abspath(root)
    if os.path.isabs(path) and path.startswith(root + os.sep):
        return os.path.relpath(path, root)
    return path


def site_file_line(site, root):
    if not site:
        return "", 0
    parts = site.rsplit(":", 2)
    if len(parts) >= 2 and parts[1].isdigit():
        return rel(root, parts[0]), int(parts[1])
    return rel(root, site), 0


# --------------------------------------------------------------------------
# Call-graph rules (determinism reachability, hot-path allocation)
# --------------------------------------------------------------------------

def short_label(label, limit=110):
    label = re.sub(r"\s+", " ", label).strip()
    return label if len(label) <= limit else label[:limit - 3] + "..."


def run_graph_rule(rule, graph, root_pats, banned_pats, prune_pats, repo,
                   findings):
    roots = graph.match_nodes(root_pats)
    hits = graph.reach(roots, banned_pats, prune_pats)
    seen = {}
    repo_abs = os.path.abspath(repo) + os.sep
    for root, path in hits:
        # Anchor the finding at the last call edge whose call site is in
        # repo source: that is the line where our code hands control to
        # the offending subtree, regardless of how deep inside system
        # headers the banned symbol finally appears.
        anchor_idx = 0
        for i, (_name, site) in enumerate(path):
            f, _l = site_file_line(site, repo)
            abs_f = os.path.join(repo_abs, f) if f and not os.path.isabs(f) \
                else f
            if f and abs_f.startswith(repo_abs):
                anchor_idx = i
        file, line = site_file_line(path[anchor_idx][1], repo)
        caller = path[max(anchor_idx - 1, 0)][0]
        sink = path[-1][0]
        # One finding per (anchor caller, sink): the same offending call
        # reached from many entry points is one violation, not many.
        key = (caller, sink)
        root_l = short_label(graph.label(root), 80)
        if key in seen:
            seen[key].append(root_l)
            continue
        seen[key] = [root_l]
        what = ("nondeterministic call" if rule == "determinism"
                else "allocation")
        findings.append(Finding(
            rule, file, line,
            f"{what} in `{short_label(graph.label(caller), 80)}` reaches "
            f"`{short_label(graph.label(sink), 80)}` "
            f"(entry point: {root_l})",
            key_parts=[caller, sink],
            path=[short_label(graph.label(p)) for p, _s in path]))


# --------------------------------------------------------------------------
# zero-cost-off: nm over the objects of unguarded TUs
# --------------------------------------------------------------------------

def entry_object_path(entry):
    argv = callgraph.entry_argv(entry)
    for i, a in enumerate(argv):
        if a == "-o" and i + 1 < len(argv):
            return os.path.normpath(
                os.path.join(entry["directory"], argv[i + 1]))
    return None


def object_symbols(entry):
    """Returns (demangled symbol list, error). Prefers the object the
    build already produced; recompiles to a temp object when missing."""
    obj = entry_object_path(entry)
    src = callgraph.entry_source(entry)
    tmp = None
    try:
        if not obj or not os.path.exists(obj) or (
                os.path.exists(src) and
                os.stat(obj).st_mtime < os.stat(src).st_mtime):
            tmp = tempfile.NamedTemporaryFile(suffix=".o", delete=False)
            tmp.close()
            argv = callgraph.entry_argv(entry)
            cmd, skip = [argv[0]], False
            for a in argv[1:]:
                if skip:
                    skip = False
                    continue
                if a == "-o":
                    skip = True
                    continue
                if a == "-Werror" or a.startswith("-M"):
                    continue
                cmd.append(a)
            cmd += ["-w", "-o", tmp.name]
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  cwd=entry["directory"], timeout=600)
            if proc.returncode != 0:
                return None, (proc.stderr.strip().splitlines() or
                              ["compile failed"])[-1]
            obj = tmp.name
        nm = subprocess.run(["nm", "--format=posix", "-C", obj],
                            capture_output=True, text=True, timeout=120)
        if nm.returncode != 0:
            return None, nm.stderr.strip()
        syms = []
        for line in nm.stdout.splitlines():
            # posix format: "<name> <type> [value [size]]"; demangled
            # names contain spaces, but type/value/size never contain
            # '(' — split from the right.
            m = re.match(r"^(.*) ([A-Za-z]) [0-9a-f ]*$", line)
            if m:
                syms.append((m.group(1).strip(), m.group(2)))
        return syms, None
    finally:
        if tmp is not None:
            os.unlink(tmp.name)


def run_zero_cost_rule(db, repo, findings, notes):
    plain = callgraph.select_tus(
        db, repo, "src",
        reject_defines=frozenset(ZC_GUARDS.keys()))
    checked_tus = 0
    for src, entry in plain.items():
        defs = callgraph.entry_defines(entry)
        relsrc = rel(repo, src)
        active = {g: cfg for g, cfg in ZC_GUARDS.items()
                  if g not in defs
                  and not any(relsrc.startswith(d + os.sep) or
                              os.path.dirname(relsrc) == d
                              for d in cfg["exempt_dirs"])
                  and relsrc not in cfg["exempt_files"]}
        if not active:
            continue
        syms, err = object_symbols(entry)
        checked_tus += 1
        if syms is None:
            findings.append(Finding(
                "zero-cost-off", relsrc, 0,
                f"could not inspect object symbols: {err}",
                key_parts=[relsrc, "inspect-error"]))
            continue
        for guard, cfg in active.items():
            pat = re.compile(cfg["symbol"])
            bad = sorted({name for name, _t in syms if pat.search(name)})
            for name in bad:
                findings.append(Finding(
                    "zero-cost-off", relsrc, 0,
                    f"TU compiled without {guard} references "
                    f"`{short_label(name)}` — the layer must cost nothing "
                    "when off",
                    key_parts=[relsrc, guard, name]))
    notes.append(f"zero-cost-off: inspected {checked_tus} unguarded TU(s)")


# --------------------------------------------------------------------------
# exhaustive-switch + token rules (shared lexing pass)
# --------------------------------------------------------------------------

#: Directories skipped by every source-level scan. analyze_fixtures holds
#: deliberate rule violations for the self-test; scanning them in the real
#: tree would make the fixtures themselves findings.
EXCLUDE_DIRS = {"analyze_fixtures", "build"}


def iter_source_files(repo, dirs):
    for d in dirs:
        base = os.path.join(repo, d)
        for dirpath, dn, names in os.walk(base):
            dn[:] = sorted(x for x in dn if x not in EXCLUDE_DIRS)
            for name in sorted(names):
                if name.endswith(SOURCE_EXT):
                    yield os.path.join(dirpath, name)


def collect_domain_enums(repo):
    """Every `enum class` declared in a src/ header is a domain enum."""
    enums = {}
    for path in iter_source_files(repo, ("src",)):
        if not path.endswith(HEADER_EXT):
            continue
        with open(path, encoding="utf-8") as f:
            toks = cpplex.tokenize(f.read())
        for name, members in cpplex.find_enum_classes(toks).items():
            if members:
                enums.setdefault(name, members)
    return enums


def run_switch_rule(repo, enums, findings):
    for path in iter_source_files(repo, ("src",)):
        relpath = rel(repo, path)
        with open(path, encoding="utf-8") as f:
            toks = cpplex.tokenize(f.read())
        for sw in cpplex.find_switches(toks):
            votes = {}
            for _line, label in sw.cases:
                ref = cpplex.case_label_enum(label)
                if ref and ref[0] in enums and ref[1] in enums[ref[0]]:
                    votes.setdefault(ref[0], set()).add(ref[1])
            if not votes:
                continue  # not a domain-enum switch (or unattributable)
            enum_name = max(votes, key=lambda k: len(votes[k]))
            covered = votes[enum_name]
            missing = [m for m in enums[enum_name] if m not in covered]
            if missing:
                findings.append(Finding(
                    "exhaustive-switch", relpath, sw.line,
                    f"switch over {enum_name} misses "
                    f"{{{', '.join(missing)}}} — enumerate every variant "
                    "so new members fail compilation",
                    key_parts=[relpath, enum_name,
                               "missing:" + ",".join(missing)]))
            if sw.has_default:
                findings.append(Finding(
                    "exhaustive-switch", relpath, sw.default_line,
                    f"switch over {enum_name} has a `default:` that would "
                    "silently swallow new variants; enumerate instead",
                    key_parts=[relpath, enum_name, "default"]))


def run_token_rules(repo, findings):
    common_prefix = os.path.join("src", "common") + os.sep
    det_prefixes = tuple(os.path.join("src", d) + os.sep
                         for d in ("campaign", "obs", "noc", "fault",
                                   "serve"))
    for path in iter_source_files(repo, TOKEN_DIRS):
        relpath = rel(repo, path)
        with open(path, encoding="utf-8") as f:
            toks = cpplex.tokenize(f.read())
        for idx, t in enumerate(cpplex.find_new_expressions(toks)):
            findings.append(Finding(
                "naked-new", relpath, t.line,
                "new expression; use containers or std::make_unique/"
                "make_shared",
                key_parts=[relpath, "new", str(idx)]))
        if not relpath.startswith(common_prefix):
            for idx, t in enumerate(cpplex.find_raw_rng(toks)):
                findings.append(Finding(
                    "raw-rng", relpath, t.line,
                    f"raw libc/std randomness (`{t.text}`); use common/rng "
                    "(seeded, splittable) instead",
                    key_parts=[relpath, t.text, str(idx)]))
        if relpath.startswith(det_prefixes):
            for idx, (t, why) in enumerate(
                    cpplex.find_unordered_iteration(toks)):
                findings.append(Finding(
                    "determinism", relpath, t.line,
                    f"{why}: iteration order is implementation-defined and "
                    "leaks into seed-deterministic results",
                    key_parts=[relpath, "unordered-iter", str(idx)]))


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

def load_baseline(path):
    if not path or not os.path.exists(path):
        return [], []
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    errors = []
    sup = data.get("suppressions", [])
    for s in sup:
        if not s.get("fingerprint"):
            errors.append("baseline entry without fingerprint")
        if not s.get("justification", "").strip():
            errors.append(f"suppression {s.get('fingerprint', '?')} has no "
                          "written justification; every baseline entry "
                          "must say why it is acceptable")
    return sup, errors


def apply_baseline(findings, suppressions, active_rules):
    by_fp = {s["fingerprint"]: s for s in suppressions}
    kept, suppressed = [], []
    used = set()
    for f in findings:
        if f.fingerprint in by_fp:
            suppressed.append(f)
            used.add(f.fingerprint)
        else:
            kept.append(f)
    # A suppression is only stale when the rule it belongs to actually ran
    # this invocation; a --rules subset must not invalidate the rest of the
    # baseline. Entries without a rule tag are judged on full runs only.
    full = set(RULES) <= set(active_rules)
    stale = [s for s in suppressions
             if s["fingerprint"] not in used
             and (full or s.get("rule", "") in active_rules)]
    return kept, suppressed, stale


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def build_graph(args, db, repo):
    entries = list(callgraph.select_tus(
        db, repo, "src",
        reject_defines=frozenset(ZC_GUARDS.keys())).values())
    backend = args.backend
    if backend == "auto":
        backend = "gcc"
    if backend == "libclang":
        if not callgraph.libclang_available():
            sys.exit("rnoc_analyze: --backend libclang requested but the "
                     "clang.cindex Python bindings are not installed "
                     "(pip install libclang); the default gcc backend "
                     "needs only the build compiler")
        return callgraph.build_graph_libclang(entries, args.jobs)
    cache = None if args.no_cache else args.cache_dir
    return callgraph.build_graph_gcc(entries, args.jobs, cache)


def analyze(args, repo):
    findings, notes = [], []
    rules = set(args.rules.split(",")) if args.rules else set(RULES)
    unknown = rules - set(RULES)
    if unknown:
        sys.exit(f"rnoc_analyze: unknown rule(s): {', '.join(unknown)}")

    need_graph = rules & {"determinism", "hotpath-alloc"}
    need_db = need_graph or "zero-cost-off" in rules
    db = None
    if need_db:
        if not args.compile_db or not os.path.exists(args.compile_db):
            sys.exit("rnoc_analyze: --compile-db is required (configure "
                     "with the `analyze` preset or any CMake build; "
                     "CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
        db = callgraph.load_compile_db(args.compile_db)

    if need_graph:
        graph, errors = build_graph(args, db, repo)
        for src, err in errors:
            findings.append(Finding(
                "determinism", rel(repo, src), 0,
                f"call-graph extraction failed: {err}",
                key_parts=[rel(repo, src), "extract-error"]))
        if "determinism" in rules:
            run_graph_rule("determinism", graph,
                           [re.compile(p) for p in DET_ROOTS],
                           [re.compile(p) for p in DET_BANNED],
                           [re.compile(p) for p in DET_PRUNE],
                           repo, findings)
        if "hotpath-alloc" in rules:
            run_graph_rule("hotpath-alloc", graph,
                           [re.compile(p) for p in ALLOC_ROOTS],
                           [re.compile(p) for p in ALLOC_BANNED],
                           [re.compile(p) for p in ALLOC_PRUNE],
                           repo, findings)
        notes.append(f"call graph: {len(graph.nodes)} nodes, "
                     f"{sum(len(v) for v in graph.edges.values())} edges")

    if "zero-cost-off" in rules:
        run_zero_cost_rule(db, repo, findings, notes)

    if "exhaustive-switch" in rules:
        enums = collect_domain_enums(repo)
        notes.append(f"exhaustive-switch: {len(enums)} domain enums")
        run_switch_rule(repo, enums, findings)

    if rules & {"naked-new", "raw-rng", "determinism"}:
        token_findings = []
        run_token_rules(repo, token_findings)
        findings += [f for f in token_findings if f.rule in rules]

    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.fingerprint))
    return findings, notes, rules


def write_summary_md(path, findings, suppressed, stale, notes):
    lines = ["## rnoc static analysis", "",
             "| rule | violations | suppressed |", "| --- | --- | --- |"]
    for rule in RULES:
        n = sum(1 for f in findings if f.rule == rule)
        s = sum(1 for f in suppressed if f.rule == rule)
        lines.append(f"| {rule} | {n} | {s} |")
    lines.append(f"| **total** | **{len(findings)}** | "
                 f"**{len(suppressed)}** |")
    if stale:
        lines += ["", f"**{len(stale)} stale suppression(s)** — remove "
                      "them from tools/analyze/baseline.json:"]
        lines += [f"- `{s['fingerprint']}` ({s.get('rule', '?')}) "
                  f"{s.get('file', '')}" for s in stale]
    if notes:
        lines += [""] + [f"- {n}" for n in notes]
    with open(path, "a", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))),
        help="repository root (default: two levels up from this script)")
    ap.add_argument("--compile-db",
                    help="path to compile_commands.json (default: "
                         "<root>/build/compile_commands.json)")
    ap.add_argument("--baseline",
                    help="suppression baseline (default: baseline.json "
                         "next to this script); pass '' to disable")
    ap.add_argument("--rules", help="comma-separated subset of: "
                                    + ",".join(RULES))
    ap.add_argument("--backend", choices=("auto", "gcc", "libclang"),
                    default="auto")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    ap.add_argument("--cache-dir",
                    help="per-TU call-graph cache (default: "
                         "rnoc_analyze_cache next to the compile db)")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--json", help="write findings as JSON to this path")
    ap.add_argument("--summary-md",
                    help="append a per-rule markdown summary (CI step "
                         "summary format, like compare_results.py)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite (tests/analyze_fixtures) "
                         "and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        import selftest
        return selftest.run(os.path.abspath(args.root))

    repo = os.path.abspath(args.root)
    if args.compile_db is None:
        args.compile_db = os.path.join(repo, "build",
                                       "compile_commands.json")
    if args.cache_dir is None and args.compile_db:
        args.cache_dir = os.path.join(
            os.path.dirname(os.path.abspath(args.compile_db)),
            "rnoc_analyze_cache")
    if args.baseline is None:
        args.baseline = os.path.join(os.path.dirname(
            os.path.abspath(__file__)), "baseline.json")

    findings, notes, active_rules = analyze(args, repo)
    suppressions, baseline_errors = load_baseline(args.baseline)
    findings, suppressed, stale = apply_baseline(findings, suppressions,
                                                 active_rules)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump({
                "schema": 1,
                "rules": {r: sum(1 for x in findings if x.rule == r)
                          for r in RULES},
                "findings": [x.as_json() for x in findings],
                "suppressed": [x.as_json() for x in suppressed],
                "stale_suppressions": stale,
                "baseline_errors": baseline_errors,
                "notes": notes,
            }, f, indent=1)
            f.write("\n")
    if args.summary_md:
        write_summary_md(args.summary_md, findings, suppressed, stale,
                         notes)

    for f in findings:
        print(f.render())
    for err in baseline_errors:
        print(f"baseline: {err}", file=sys.stderr)
    for s in stale:
        print(f"baseline: stale suppression {s['fingerprint']} "
              f"({s.get('rule', '?')} {s.get('file', '')}) — the finding "
              "no longer exists; remove it", file=sys.stderr)

    ok = not findings and not stale and not baseline_errors
    status = "clean" if ok else \
        f"{len(findings)} finding(s), {len(stale)} stale suppression(s)"
    print(f"rnoc_analyze: {status}"
          + (f" [{len(suppressed)} suppressed by baseline]"
             if suppressed else ""),
          file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
