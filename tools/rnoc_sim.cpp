// rnoc_sim — command-line front end to the simulator.
//
// Examples:
//   rnoc_sim                                   # 8x8, uniform 0.1, protected
//   rnoc_sim --traffic ocean --faults 64
//   rnoc_sim --traffic uniform --rate 0.15 --mode baseline --faults 4
//   rnoc_sim --mesh 4x4 --vcs 2 --traffic transpose --rate 0.08
//   rnoc_sim --traffic canneal --faults 128 --fit-weighted
//   rnoc_sim --transients 200 --transient-duration 50
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/options.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/telemetry.hpp"
#include "reliability/site_fit.hpp"
#include "traffic/app_profiles.hpp"
#include "traffic/bursty.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

const std::set<std::string> kKeys = {
    "mesh",     "vcs",     "depth",   "mode",        "traffic",
    "rate",     "packet",  "warmup",  "measure",     "drain",
    "faults",   "seed",    "fit-weighted", "transients",
    "transient-duration", "routing", "vnets", "trace-out",
    "trace-sample", "metrics-out", "heatmap", "help"};

void usage() {
  std::printf(
      "rnoc_sim — cycle-accurate reliable-NoC simulator\n\n"
      "  --mesh WxH            mesh size (default 8x8)\n"
      "  --vcs N               virtual channels per port (default 4)\n"
      "  --depth N             flits per VC buffer (default 4)\n"
      "  --mode M              protected | baseline (default protected)\n"
      "  --routing R           xy | oddeven (default xy)\n"
      "  --vnets N             virtual networks (default 1; must divide vcs)\n"
      "  --traffic T           uniform|transpose|bitcomp|tornado|neighbor|hotspot\n"
      "                        |bursty, or a SPLASH-2/PARSEC benchmark (e.g. ocean)\n"
      "  --rate R              injection rate, flits/node/cycle (synthetic only)\n"
      "  --packet N            packet size in flits (synthetic only, default 5)\n"
      "  --warmup/measure/drain N   phase lengths in cycles\n"
      "  --faults N            permanent faults injected during warmup\n"
      "  --fit-weighted        draw fault sites proportional to their FIT\n"
      "  --transients N        transient faults over the whole run (extension)\n"
      "  --transient-duration N  cycles each transient lasts (default 100)\n"
      "  --seed S              RNG seed (default 1)\n"
      "  --trace-out FILE      write a Chrome trace-event JSON timeline\n"
      "                        (load in ui.perfetto.dev; needs -DRNOC_TRACE=ON)\n"
      "  --trace-sample N      trace packets with id %% N == 0 (default 1)\n"
      "  --metrics-out FILE    write the stall-cause metrics snapshot as JSON\n"
      "  --heatmap             print per-router heatmaps after the run\n");
}

std::shared_ptr<traffic::TrafficModel> build_traffic(const Options& opt) {
  const std::string name = opt.get("traffic", "uniform");
  const std::map<std::string, traffic::Pattern> synth = {
      {"uniform", traffic::Pattern::UniformRandom},
      {"transpose", traffic::Pattern::Transpose},
      {"bitcomp", traffic::Pattern::BitComplement},
      {"tornado", traffic::Pattern::Tornado},
      {"neighbor", traffic::Pattern::Neighbor},
      {"hotspot", traffic::Pattern::Hotspot},
  };
  const auto it = synth.find(name);
  if (it != synth.end()) {
    traffic::SyntheticConfig tc;
    tc.pattern = it->second;
    tc.injection_rate = opt.get_double("rate", 0.10);
    tc.packet_size = static_cast<int>(opt.get_int("packet", 5));
    if (tc.pattern == traffic::Pattern::Hotspot) tc.hotspots = {27, 36};
    return std::make_shared<traffic::SyntheticTraffic>(tc);
  }
  if (name == "bursty") {
    traffic::BurstyConfig bc;
    // Interpret --rate as the long-run mean load at a 1:3 on/off split.
    const double mean = opt.get_double("rate", 0.10);
    bc.mean_on = 60;
    bc.mean_off = 180;
    bc.burst_rate = std::min(1.0, mean * 4.0);
    bc.packet_size = static_cast<int>(opt.get_int("packet", 5));
    return std::make_shared<traffic::BurstyTraffic>(bc);
  }
  return traffic::make_traffic(traffic::find_profile(name));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt(argc, argv, kKeys);
    if (opt.has("help")) {
      usage();
      return 0;
    }

    noc::SimConfig cfg;
    const std::string mesh = opt.get("mesh", "8x8");
    const auto x = mesh.find('x');
    require(x != std::string::npos, "--mesh expects WxH, e.g. 8x8");
    cfg.mesh.dims.x = std::atoi(mesh.substr(0, x).c_str());
    cfg.mesh.dims.y = std::atoi(mesh.substr(x + 1).c_str());
    cfg.mesh.router.vcs = static_cast<int>(opt.get_int("vcs", 4));
    cfg.mesh.router.vc_depth = static_cast<int>(opt.get_int("depth", 4));
    const std::string mode = opt.get("mode", "protected");
    require(mode == "protected" || mode == "baseline",
            "--mode must be 'protected' or 'baseline'");
    cfg.mesh.router.mode = mode == "protected" ? core::RouterMode::Protected
                                               : core::RouterMode::Baseline;
    const std::string routing = opt.get("routing", "xy");
    require(routing == "xy" || routing == "oddeven",
            "--routing must be 'xy' or 'oddeven'");
    cfg.mesh.router.routing = routing == "xy" ? noc::RoutingAlgo::XY
                                              : noc::RoutingAlgo::OddEven;
    cfg.mesh.router.vnets = static_cast<int>(opt.get_int("vnets", 1));
    cfg.warmup = static_cast<Cycle>(opt.get_int("warmup", 3000));
    cfg.measure = static_cast<Cycle>(opt.get_int("measure", 10000));
    cfg.drain_limit = static_cast<Cycle>(opt.get_int("drain", 20000));
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

    const std::string trace_out = opt.get("trace-out", "");
    const std::string metrics_out = opt.get("metrics-out", "");
    const auto trace_sample =
        static_cast<std::uint64_t>(opt.get_int("trace-sample", 1));
    require(trace_sample >= 1, "--trace-sample must be >= 1");
#ifdef RNOC_TRACE
    if (!trace_out.empty()) cfg.mesh.obs.trace_sample = trace_sample;
#else
    require(trace_out.empty() && metrics_out.empty(),
            "--trace-out/--metrics-out need an observability build "
            "(rebuild with -DRNOC_TRACE=ON)");
#endif
    const bool heatmaps = opt.get_bool("heatmap", false);
    if (heatmaps && cfg.telemetry_interval == 0) cfg.telemetry_interval = 100;

    noc::Simulator sim(cfg, build_traffic(opt));

    const int faults = static_cast<int>(opt.get_int("faults", 0));
    const int transients = static_cast<int>(opt.get_int("transients", 0));
    const fault::FaultGeometry geom{noc::kMeshPorts, cfg.mesh.router.vcs,
                                    cfg.mesh.router.vnets};
    Rng rng(cfg.seed ^ 0xfa17u);
    fault::FaultPlan plan;
    if (faults > 0) {
      if (opt.get_bool("fit-weighted", false)) {
        rel::RouterGeometry rg;
        rg.ports = noc::kMeshPorts;
        rg.vcs = cfg.mesh.router.vcs;
        rg.mesh_x = cfg.mesh.dims.x;
        rg.mesh_y = cfg.mesh.dims.y;
        std::vector<fault::FaultPlan::WeightedSiteRef> refs;
        for (const auto& ws : rel::weighted_sites(
                 rg, rel::paper_calibrated_params(), false))
          refs.push_back({ws.site, ws.fit});
        plan = fault::FaultPlan::fit_weighted(
            cfg.mesh.dims, geom, cfg.mesh.router.mode, refs, faults,
            cfg.warmup > 0 ? cfg.warmup : 1, rng,
            cfg.mesh.router.mode == core::RouterMode::Protected);
      } else {
        plan = fault::FaultPlan::random(
            cfg.mesh.dims, geom, cfg.mesh.router.mode, faults,
            cfg.warmup > 0 ? cfg.warmup : 1, rng,
            cfg.mesh.router.mode == core::RouterMode::Protected);
      }
    }
    if (transients > 0) {
      const auto burst = fault::FaultPlan::transient_burst(
          cfg.mesh.dims, geom, transients, cfg.warmup + cfg.measure,
          static_cast<Cycle>(opt.get_int("transient-duration", 100)), rng);
      for (const auto& e : burst.entries())
        plan.add(e.at, e.router, e.site, e.duration);
    }
    if (!plan.empty()) sim.set_fault_plan(std::move(plan));

    const noc::SimReport rep = sim.run();

    std::printf("rnoc_sim: %dx%d mesh, %d VCs, %s router, traffic=%s\n",
                cfg.mesh.dims.x, cfg.mesh.dims.y, cfg.mesh.router.vcs,
                mode.c_str(), opt.get("traffic", "uniform").c_str());
    std::printf("  cycles run          : %llu\n",
                static_cast<unsigned long long>(rep.cycles_run));
    std::printf("  packets sent/recv   : %llu / %llu\n",
                static_cast<unsigned long long>(rep.packets_sent),
                static_cast<unsigned long long>(rep.packets_received));
    std::printf("  avg latency         : %.2f cycles (network %.2f)\n",
                rep.avg_total_latency(), rep.avg_network_latency());
    std::printf("  p50 / p95 / p99     : %.0f / %.0f / %.0f cycles\n",
                rep.latency_percentile(0.50), rep.latency_percentile(0.95),
                rep.latency_percentile(0.99));
    std::printf("  throughput          : %.4f flits/node/cycle\n",
                rep.throughput_flits_node_cycle);
    std::printf("  energy              : %.2f uJ total, %.2f pJ/flit "
                "(protection %.2f nJ)\n",
                rep.energy.total_pj() / 1e6,
                rep.energy.per_flit_pj(rep.flits_received),
                rep.energy.protection_pj / 1e3);
    std::printf("  faults injected     : %d\n", rep.faults_injected);
    std::printf("  undelivered flits   : %llu%s\n",
                static_cast<unsigned long long>(rep.undelivered_flits),
                rep.deadlock_suspected ? "  [DEADLOCK SUSPECTED]" : "");
    const auto& ev = rep.router_events;
    if (ev.rc_spare_uses + ev.va1_borrows + ev.va2_retries +
            ev.sa1_bypass_grants + ev.sa1_transfers +
            ev.xb_secondary_traversals >
        0) {
      std::printf("  protection events   : rc_spare=%llu va_borrow=%llu "
                  "va2_retry=%llu sa_bypass=%llu sa_xfer=%llu xb_sec=%llu\n",
                  static_cast<unsigned long long>(ev.rc_spare_uses),
                  static_cast<unsigned long long>(ev.va1_borrows),
                  static_cast<unsigned long long>(ev.va2_retries),
                  static_cast<unsigned long long>(ev.sa1_bypass_grants),
                  static_cast<unsigned long long>(ev.sa1_transfers),
                  static_cast<unsigned long long>(ev.xb_secondary_traversals));
    }
#ifdef RNOC_TRACE
    const obs::Observer& observer = sim.mesh().observer();
    if (!trace_out.empty()) {
      std::ofstream os(trace_out);
      require(static_cast<bool>(os),
              "--trace-out: cannot open '" + trace_out + "'");
      os << observer.chrome_trace_json();
      std::printf("  trace               : %zu events (%llu dropped) -> %s "
                  "[sample 1/%llu]\n",
                  observer.trace().events().size(),
                  static_cast<unsigned long long>(observer.trace().dropped()),
                  trace_out.c_str(),
                  static_cast<unsigned long long>(trace_sample));
      std::printf("%s", observer.metrics().snapshot_text().c_str());
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      require(static_cast<bool>(os),
              "--metrics-out: cannot open '" + metrics_out + "'");
      os << observer.metrics().snapshot_json();
    }
#endif
    if (heatmaps) {
      const noc::Mesh& mesh = sim.mesh();
      std::printf("crossbar traversals:\n%s",
                  noc::heatmap(mesh, noc::HeatmapMetric::Traversals).c_str());
      std::printf("blocked VC cycles:\n%s",
                  noc::heatmap(mesh, noc::HeatmapMetric::BlockedCycles).c_str());
      std::printf("injected faults:\n%s",
                  noc::heatmap(mesh, noc::HeatmapMetric::Faults).c_str());
      std::printf("stall cycles:\n%s",
                  noc::heatmap(mesh, noc::HeatmapMetric::StallCycles).c_str());
      if (sim.occupancy().samples() > 0)
        std::printf("buffer occupancy:\n%s",
                    sim.occupancy().heatmap(cfg.mesh.dims).c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rnoc_sim: %s\n(use --help for usage)\n", e.what());
    return 1;
  }
}
