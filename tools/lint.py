#!/usr/bin/env python3
"""Repo lint: enforces rnoc source rules that clang-tidy cannot express.

Rules
  rng            rand(), srand() and std::random_device appear only under
                 src/common/ (the deterministic Rng wrapper is the sole
                 randomness source; sweeps must be reproducible from seeds).
  naked-new      no `new` expressions anywhere; ownership goes through
                 containers and smart pointers.
  iostream       no std::cout/std::cerr/printf in src/ library code; the
                 library reports through return values and exceptions
                 (stderr is allowed only in noc/invariants.cpp, whose
                 abort path must print without touching the iostreams).
  pragma-once    every header starts its include guard with #pragma once.
  determinism    src/campaign/, src/obs/, src/noc/ and src/fault/ never read
                 wall-clock time, CPU time, or the environment (std::chrono,
                 time(), clock(), getenv): campaign results must be pure
                 functions of (spec, seed, smoke), traces/metrics must be
                 byte-stable across reruns, and simulator/fault-injection
                 runs must replay bit-identically from their seeds, or
                 resume, golden-baseline comparison and the degraded-mode
                 determinism tests break. This covers the event-driven core
                 (noc/event_queue.hpp and the scheduling paths in mesh/
                 router/link): event timestamps and intra-cycle FIFO order
                 are part of the bit-identity contract with the sweep
                 oracle, so the event clock must never touch real time.
  self-contained every src/noc, src/campaign, src/obs and src/fault header
                 compiles on its own (include-what-you-use at the
                 compile-or-fail level), checked with `c++ -fsyntax-only`
                 unless --no-compile-headers. New event-queue headers under
                 src/noc are swept automatically.

Exit status is non-zero when any rule fires; findings print as
file:line: [rule] message, one per line, so editors and CI annotate them.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

CODE_DIRS = ("src", "tests", "tools", "bench", "examples")
HEADER_EXT = (".hpp", ".h")
SOURCE_EXT = (".cpp", ".cc") + HEADER_EXT

RE_RNG = re.compile(r"\b(?:std::)?(?:rand|srand)\s*\(|std::random_device")
RE_NEW = re.compile(r"\bnew\b(?!\s*\()\s*(?:\(\s*[\w:]+\s*\)\s*)?[\w:<(]")
RE_COUT = re.compile(r"std::c(?:out|err)\b|\bprintf\s*\(")
RE_NONDET = re.compile(
    r"std::chrono\b|\b(?:std::)?(?:time|clock|getenv)\s*\(")


def strip_code(text):
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(root):
    for d in CODE_DIRS:
        base = os.path.join(root, d)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXT):
                    yield os.path.join(dirpath, name)


def check_text_rules(root, path, findings):
    rel = os.path.relpath(path, root)
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    code = strip_code(raw)

    in_src = rel.startswith("src" + os.sep)
    # Determinism rule: campaign results, obs traces/metrics, simulator runs
    # and fault injection must all be reproducible from seeds alone, so none
    # of these layers may consult the clock or the environment.
    in_deterministic = any(
        rel.startswith(os.path.join("src", d))
        for d in ("campaign", "obs", "noc", "fault")
    )
    rng_exempt = rel.startswith(os.path.join("src", "common"))
    cout_exempt = rel == os.path.join("src", "noc", "invariants.cpp")

    for lineno, line in enumerate(code.splitlines(), start=1):
        if not rng_exempt and RE_RNG.search(line):
            findings.append(
                f"{rel}:{lineno}: [rng] raw libc/std randomness; use "
                "common/rng (seeded, splittable) instead"
            )
        if RE_NEW.search(line):
            findings.append(
                f"{rel}:{lineno}: [naked-new] new expression; use containers "
                "or std::make_unique/make_shared"
            )
        if in_src and not cout_exempt and RE_COUT.search(line):
            findings.append(
                f"{rel}:{lineno}: [iostream] stdout/stderr output from "
                "library code; return data or throw instead"
            )
        if in_deterministic and RE_NONDET.search(line):
            findings.append(
                f"{rel}:{lineno}: [determinism] wall-clock/environment read "
                "in seed-deterministic code (campaign/obs/noc/fault); "
                "results must be pure functions of their seeds"
            )

    if rel.endswith(HEADER_EXT) and "#pragma once" not in code:
        findings.append(f"{rel}:1: [pragma-once] header without #pragma once")


def check_self_contained(root, findings, compiler):
    """Each covered subsystem header must compile standalone."""
    for subdir in ("noc", "campaign", "obs", "fault"):
        base = os.path.join(root, "src", subdir)
        headers = sorted(
            f for f in os.listdir(base) if f.endswith(HEADER_EXT)
        )
        for name in headers:
            path = os.path.join(base, name)
            cmd = [
                compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
                "-I", os.path.join(root, "src"), path,
            ]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first = (proc.stderr.strip().splitlines()
                         or ["(no output)"])[0]
                findings.append(
                    f"src/{subdir}/{name}:1: [self-contained] header does "
                    f"not compile standalone: {first}"
                )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--no-compile-headers", action="store_true",
                    help="skip the noc header self-containment compile check")
    args = ap.parse_args()
    root = os.path.abspath(args.root)

    findings = []
    for path in iter_files(root):
        check_text_rules(root, path, findings)

    if not args.no_compile_headers:
        compiler = (os.environ.get("CXX") or shutil.which("c++")
                    or shutil.which("g++") or shutil.which("clang++"))
        if compiler:
            check_self_contained(root, findings, compiler)
        else:
            print("lint: no C++ compiler found; skipping self-contained check",
                  file=sys.stderr)

    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
