#!/usr/bin/env python3
"""Repo lint: source rules that need neither a call graph nor clang-tidy.

The heavyweight rules that used to live here (rng, naked-new, the
determinism regex) moved to tools/analyze/rnoc_analyze.py, which checks
them with a real lexer and transitive call-graph reachability instead of
per-line regexes. What remains are the purely textual/structural rules:

Rules
  iostream       no std::cout/std::cerr/printf in src/ library code; the
                 library reports through return values and exceptions
                 (stderr is allowed only in noc/invariants.cpp, whose
                 abort path must print without touching the iostreams).
  pragma-once    every header starts its include guard with #pragma once.
  self-contained every src/noc, src/campaign, src/serve, src/obs and
                 src/fault header compiles on its own (include-what-you-use
                 at the compile-or-fail level), checked with
                 `c++ -fsyntax-only` unless --no-compile-headers.

`--self-test` exercises each rule against generated fixtures in a temp
tree (one violation per rule plus a clean file) and exits non-zero if any
rule fails to fire or false-positives.

Exit status is non-zero when any rule fires; findings print as
file:line: [rule] message, one per line, so editors and CI annotate them.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

CODE_DIRS = ("src", "tests", "tools", "bench", "examples")
HEADER_EXT = (".hpp", ".h")
SOURCE_EXT = (".cpp", ".cc") + HEADER_EXT
# analyze_fixtures holds deliberate analyzer-rule violations; build trees
# hold generated code. Neither is ours to lint.
EXCLUDE_DIRS = {"analyze_fixtures", "build"}

RE_COUT = re.compile(r"std::c(?:out|err)\b|\bprintf\s*\(")


def strip_code(text):
    """Blanks comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(root):
    for d in CODE_DIRS:
        base = os.path.join(root, d)
        for dirpath, dn, names in os.walk(base):
            dn[:] = sorted(x for x in dn if x not in EXCLUDE_DIRS)
            for name in sorted(names):
                if name.endswith(SOURCE_EXT):
                    yield os.path.join(dirpath, name)


def check_text_rules(root, path, findings):
    rel = os.path.relpath(path, root)
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    code = strip_code(raw)

    in_src = rel.startswith("src" + os.sep)
    cout_exempt = rel == os.path.join("src", "noc", "invariants.cpp")

    for lineno, line in enumerate(code.splitlines(), start=1):
        if in_src and not cout_exempt and RE_COUT.search(line):
            findings.append(
                f"{rel}:{lineno}: [iostream] stdout/stderr output from "
                "library code; return data or throw instead"
            )

    if rel.endswith(HEADER_EXT) and "#pragma once" not in code:
        findings.append(f"{rel}:1: [pragma-once] header without #pragma once")


def check_self_contained(root, findings, compiler):
    """Each covered subsystem header must compile standalone."""
    for subdir in ("noc", "campaign", "obs", "fault", "serve"):
        base = os.path.join(root, "src", subdir)
        if not os.path.isdir(base):
            continue
        headers = sorted(
            f for f in os.listdir(base) if f.endswith(HEADER_EXT)
        )
        for name in headers:
            path = os.path.join(base, name)
            cmd = [
                compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
                "-I", os.path.join(root, "src"), path,
            ]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                first = (proc.stderr.strip().splitlines()
                         or ["(no output)"])[0]
                findings.append(
                    f"src/{subdir}/{name}:1: [self-contained] header does "
                    f"not compile standalone: {first}"
                )


def find_compiler():
    return (os.environ.get("CXX") or shutil.which("c++")
            or shutil.which("g++") or shutil.which("clang++"))


def run_lint(root, compile_headers=True):
    findings = []
    for path in iter_files(root):
        check_text_rules(root, path, findings)
    if compile_headers:
        compiler = find_compiler()
        if compiler:
            check_self_contained(root, findings, compiler)
        else:
            print("lint: no C++ compiler found; skipping self-contained "
                  "check", file=sys.stderr)
    return findings


# Fixtures for --self-test: (relative path, contents, rule that must fire
# — None for the clean control file).
_SELFTEST_FIXTURES = [
    ("src/noc/iostream_bad.cpp",
     '#include <iostream>\nnamespace rnoc::noc {\n'
     'void report() { std::cout << "x"; }\n}\n',
     "iostream"),
    ("src/noc/guardless.hpp",
     "namespace rnoc::noc { struct Guardless {}; }\n",
     "pragma-once"),
    ("src/noc/not_self_contained.hpp",
     "#pragma once\nnamespace rnoc::noc {\n"
     "inline int size_of(const std::string& s) "
     "{ return (int)s.size(); }\n}\n",
     "self-contained"),
    ("src/noc/clean.hpp",
     "#pragma once\nnamespace rnoc::noc { inline int two() "
     "{ return 2; } }\n",
     None),
]


def self_test():
    failures = []

    def check(cond, what):
        print(f"  {'ok  ' if cond else 'FAIL'} {what}")
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="rnoc_lint_st_") as tmp:
        for d in ("noc", "campaign", "obs", "fault", "serve"):
            os.makedirs(os.path.join(tmp, "src", d), exist_ok=True)
        for relpath, text, _rule in _SELFTEST_FIXTURES:
            dest = os.path.join(tmp, *relpath.split("/"))
            with open(dest, "w", encoding="utf-8") as f:
                f.write(text)

        print("lint self-test: dirty tree")
        findings = run_lint(tmp, compile_headers=find_compiler() is not None)
        for relpath, _text, rule in _SELFTEST_FIXTURES:
            rel = os.path.join(*relpath.split("/"))
            hits = [f for f in findings
                    if f.startswith(rel + ":") and (rule or "") in f]
            if rule is None:
                stray = [f for f in findings if f.startswith(rel + ":")]
                check(not stray, f"clean fixture stays clean ({relpath})")
            else:
                check(any(f"[{rule}]" in f for f in hits),
                      f"{rule} fires on {relpath}")

        print("lint self-test: clean tree")
        for relpath, _text, rule in _SELFTEST_FIXTURES:
            if rule is not None:
                os.unlink(os.path.join(tmp, *relpath.split("/")))
        findings = run_lint(tmp, compile_headers=find_compiler() is not None)
        check(not findings, f"violation-free tree is clean ({findings})")

    print("lint self-test: " + ("all checks passed" if not failures
                                else f"{len(failures)} check(s) FAILED"))
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--no-compile-headers", action="store_true",
                    help="skip the noc header self-containment compile check")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lint rules against generated fixtures "
                         "and exit")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = os.path.abspath(args.root)

    findings = run_lint(root, compile_headers=not args.no_compile_headers)
    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
