// rnoc_campaign — the one experiment driver for every paper figure.
//
//   rnoc_campaign --list
//       Enumerate the registered campaigns.
//   rnoc_campaign [--smoke] [--out DIR] [--shards N] [--print]
//       Run every campaign and write results/<campaign>.json files.
//   rnoc_campaign --run NAME [--smoke] ...
//       Run one campaign.
//   rnoc_campaign --connect SOCKET [--lane interactive|bulk] ...
//       Same runs, executed by an rnoc_served daemon: points come off its
//       work-stealing scheduler and persistent result cache, and the
//       result files are byte-identical to local execution (test-enforced).
//   rnoc_campaign --connect SOCKET --metrics [--metrics-format prometheus|json]
//       One telemetry scrape, body printed verbatim (CI pipes it to the
//       Prometheus exposition checker).
//   rnoc_campaign --connect SOCKET --watch [--watch-count N]
//       Live view: subscribes to the daemon's telemetry event stream and
//       renders point rates, queue depths, in-flight work and cache hit
//       rate from the periodic metrics events (plus one line per
//       submit/coalesce/done). Exits nonzero with a clear message if the
//       daemon dies mid-watch; --watch-count N exits cleanly after N
//       metrics snapshots.
//
// Runs checkpoint completed shards under <out>/.checkpoints/: a killed run
// re-invoked with the same arguments resumes from the finished shards and
// produces a byte-identical result file (the engine's determinism contract).
// Checkpoints are removed after each campaign completes; pass --keep-checkpoints
// to retain them, or --fresh to discard existing ones up front.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/registry.hpp"
#include "common/options.hpp"
#include "serve/client.hpp"

using namespace rnoc;

namespace {

int list_campaigns() {
  std::printf("%-22s %-12s %7s %7s  %s\n", "campaign", "artifact", "points",
              "smoke", "description");
  for (const auto& spec : campaign::campaign_registry()) {
    std::printf("%-22s %-12s %7zu %7zu  %s\n", spec.name.c_str(),
                spec.artifact.c_str(), spec.point_ids(false).size(),
                spec.point_ids(true).size(), spec.description.c_str());
  }
  std::printf("%zu campaigns registered\n",
              campaign::campaign_registry().size());
  return 0;
}

int select_specs(const Options& opt,
                 std::vector<const campaign::CampaignSpec*>& specs) {
  if (opt.has("run")) {
    const std::string name = opt.get("run", "");
    const campaign::CampaignSpec* spec = campaign::find_campaign(name);
    if (!spec) {
      std::fprintf(stderr,
                   "rnoc_campaign: unknown campaign '%s' (see --list)\n",
                   name.c_str());
      return 2;
    }
    specs.push_back(spec);
  } else {
    for (const auto& spec : campaign::campaign_registry())
      specs.push_back(&spec);
  }
  return 0;
}

/// One-shot telemetry scrape; prints the body exactly as served.
int run_metrics(const Options& opt) {
  const std::string format = opt.get("metrics-format", "prometheus");
  const serve::MetricsReply reply =
      serve::daemon_metrics(opt.get("connect", ""), format);
  if (!reply.ok) {
    std::fprintf(stderr, "rnoc_campaign: metrics: %s\n", reply.error.c_str());
    return 1;
  }
  std::fputs(reply.body.c_str(), stdout);
  if (!reply.body.empty() && reply.body.back() != '\n') std::fputc('\n', stdout);
  return 0;
}

double num_or(const campaign::JsonValue* v, double fallback) {
  return v && v->is(campaign::JsonValue::Type::Number) ? v->as_number()
                                                       : fallback;
}

/// Live watch mode: render rates/deltas from the daemon's periodic
/// "metrics" telemetry events and one line per job lifecycle event.
int run_watch(const Options& opt) {
  const std::int64_t watch_count = opt.get_int("watch-count", 0);
  std::int64_t metrics_seen = 0;
  double last_t_us = 0, last_done = 0;
  bool have_last = false;

  const serve::WatchOutcome out = serve::watch_daemon(
      opt.get("connect", ""), [&](const campaign::JsonValue& ev) {
        const campaign::JsonValue* type = ev.find("type");
        if (!type || !type->is(campaign::JsonValue::Type::String))
          return true;
        const std::string& kind = type->as_string();
        const double t_us = num_or(ev.find("t_us"), 0);
        if (kind == "metrics") {
          const campaign::JsonValue* counters = ev.find("counters");
          const campaign::JsonValue* gauges = ev.find("gauges");
          if (!counters || !gauges) return true;
          const double done = num_or(counters->find("points_computed"), 0) +
                              num_or(counters->find("points_cached"), 0);
          const double hits = num_or(counters->find("cache_hits"), 0);
          const double misses = num_or(counters->find("cache_misses"), 0);
          const double lookups = hits + misses;
          double rate = 0;
          if (have_last && t_us > last_t_us)
            rate = (done - last_done) / ((t_us - last_t_us) / 1e6);
          std::printf(
              "watch %8.1fs | %6.1f pts/s | queue i/b %g/%g | in-flight %g "
              "| waiters %g | cache %g entries, hit %4.1f%% | steals %g\n",
              t_us / 1e6, rate,
              num_or(gauges->find("queue_depth{lane=\"interactive\"}"), 0),
              num_or(gauges->find("queue_depth{lane=\"bulk\"}"), 0),
              num_or(gauges->find("points_in_flight"), 0),
              num_or(gauges->find("coalesced_waiters"), 0),
              num_or(gauges->find("cache_entries"), 0),
              lookups > 0 ? 100.0 * hits / lookups : 0.0,
              num_or(counters->find("sched_steals"), 0));
          std::fflush(stdout);
          last_t_us = t_us;
          last_done = done;
          have_last = true;
          if (watch_count > 0 && ++metrics_seen >= watch_count)
            return false;  // Clean, client-initiated end.
        } else if (kind == "submit" || kind == "coalesce" ||
                   kind == "done" || kind == "failed") {
          const campaign::JsonValue* campaign_name = ev.find("campaign");
          const campaign::JsonValue* error = ev.find("error");
          std::printf("watch %8.1fs | %s %s (job %g)%s%s\n", t_us / 1e6,
                      kind.c_str(),
                      campaign_name ? campaign_name->as_string().c_str() : "?",
                      num_or(ev.find("job"), 0), error ? ": " : "",
                      error ? error->as_string().c_str() : "");
          std::fflush(stdout);
        }
        return true;
      });
  if (!out.ok) {
    std::fprintf(stderr, "rnoc_campaign: watch: %s\n", out.error.c_str());
    return 1;
  }
  return 0;
}

/// Client mode: submit to an rnoc_served daemon and write its result bytes
/// verbatim (that verbatim write is the byte-identity contract).
int run_connected(const Options& opt) {
  const bool smoke = opt.get_bool("smoke", false);
  const std::string out_dir = opt.get("out", "results");
  const std::string socket_path = opt.get("connect", "");
  // Smoke sweeps are what humans wait on; deep campaigns ride the bulk lane.
  const serve::Lane lane =
      serve::lane_from_name(opt.get("lane", smoke ? "interactive" : "bulk"));
  const std::string git_sha =
      opt.get("git-sha", campaign::read_git_sha("."));

  std::vector<const campaign::CampaignSpec*> specs;
  if (const int rc = select_specs(opt, specs); rc != 0) return rc;

  serve::ClientProgress progress;
  std::string current;  // Campaign in flight; read only by the callback.
  if (opt.get_bool("progress", false)) {
    progress = [&current](std::size_t done, std::size_t total,
                          const std::string& id, bool cached) {
      std::printf("  [%s] point %zu/%zu%s: %s\n", current.c_str(), done,
                  total, cached ? " (cached)" : "", id.c_str());
      std::fflush(stdout);
    };
  }

  for (const campaign::CampaignSpec* spec : specs) {
    current = spec->name;
    const serve::ClientOutcome out = serve::run_campaign_via_daemon(
        socket_path, spec->name, smoke, lane, git_sha, progress);
    if (!out.ok) {
      std::fprintf(stderr, "rnoc_campaign: %s: %s\n", spec->name.c_str(),
                   out.error.c_str());
      return 1;
    }
    std::filesystem::create_directories(out_dir);
    const std::string path = out_dir + "/" + spec->name + ".json";
    campaign::write_text_atomic(path, out.result_text);
    std::printf("campaign %-22s %3zu points  %zu cached, %zu computed "
                "(daemon)  -> %s\n",
                spec->name.c_str(), out.points, out.cache_hits,
                out.executed, path.c_str());
    if (opt.get_bool("print", false)) {
      const campaign::CampaignResult r =
          campaign::result_from_json(out.result_text);
      std::printf("%s\n", campaign::format_result(r).c_str());
    }
  }
  return 0;
}

int run_campaigns(const Options& opt) {
  const bool smoke = opt.get_bool("smoke", false);
  const std::string out_dir = opt.get("out", "results");
  const std::string ckpt_dir =
      opt.get("checkpoint-dir", out_dir + "/.checkpoints");

  std::vector<const campaign::CampaignSpec*> specs;
  if (const int rc = select_specs(opt, specs); rc != 0) return rc;

  campaign::RunOptions run_opts;
  run_opts.smoke = smoke;
  run_opts.shards = static_cast<int>(opt.get_int("shards", 0));
  run_opts.checkpoint_dir = ckpt_dir;
  run_opts.git_sha = opt.get("git-sha", campaign::read_git_sha("."));

  std::string current;  // Campaign being run; read only by the callback.
  if (opt.get_bool("progress", false)) {
    run_opts.progress = [&current](std::size_t done, std::size_t total,
                                   int shard, const std::string& id) {
      std::printf("  [%s] point %zu/%zu (shard %d): %s\n", current.c_str(),
                  done, total, shard, id.c_str());
      std::fflush(stdout);
    };
  }

  for (const campaign::CampaignSpec* spec : specs) {
    current = spec->name;
    if (opt.get_bool("fresh", false))
      campaign::remove_checkpoints(*spec, run_opts);
    const campaign::RunOutcome outcome =
        campaign::run_campaign(*spec, run_opts);
    if (!outcome.complete) {
      std::fprintf(stderr, "rnoc_campaign: %s did not complete\n",
                   spec->name.c_str());
      return 1;
    }
    const std::string path = out_dir + "/" + spec->name + ".json";
    campaign::write_result_file(outcome.result, path);
    if (!opt.get_bool("keep-checkpoints", false))
      campaign::remove_checkpoints(*spec, run_opts);
    std::printf("campaign %-22s %3zu points  %d/%d shards run, %d resumed"
                "  -> %s\n",
                spec->name.c_str(), outcome.result.points.size(),
                outcome.shards_run, outcome.shards_total,
                outcome.shards_resumed, path.c_str());
    if (opt.get_bool("print", false))
      std::printf("%s\n", campaign::format_result(outcome.result).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt(argc, argv,
                      {"list", "run", "smoke", "out", "checkpoint-dir",
                       "shards", "git-sha", "fresh", "keep-checkpoints",
                       "print", "progress", "connect", "lane", "metrics",
                       "metrics-format", "watch", "watch-count", "help"});
    if (opt.get_bool("help", false)) {
      std::printf(
          "usage: rnoc_campaign [--list] [--run NAME] [--smoke] [--out DIR]\n"
          "                     [--shards N] [--checkpoint-dir DIR] [--fresh]\n"
          "                     [--keep-checkpoints] [--print] [--progress] "
          "[--git-sha SHA]\n"
          "                     [--connect SOCKET [--lane interactive|bulk]\n"
          "                      [--metrics [--metrics-format prometheus|json]]\n"
          "                      [--watch [--watch-count N]]]\n");
      return 0;
    }
    if (opt.get_bool("list", false)) return list_campaigns();
    if (opt.has("connect")) {
      if (opt.get_bool("metrics", false)) return run_metrics(opt);
      if (opt.get_bool("watch", false)) return run_watch(opt);
      return run_connected(opt);
    }
    return run_campaigns(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rnoc_campaign: %s\n", e.what());
    return 1;
  }
}
