// Ablation A4: latency vs offered load for synthetic patterns, fault-free vs
// a heavily fault-injected protected mesh. Shows the fault penalty growing
// with load (degraded resources saturate earlier) — the effect behind the
// PARSEC-vs-SPLASH-2 gap in Figures 7/8.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/sweep.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

constexpr traffic::Pattern kPatterns[] = {traffic::Pattern::UniformRandom,
                                          traffic::Pattern::Transpose,
                                          traffic::Pattern::Hotspot};
constexpr double kRates[] = {0.02, 0.06, 0.10, 0.14, 0.18};

noc::SimConfig sim_config() {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain_limit = 25000;
  cfg.progress_timeout = 25000;
  return cfg;
}

noc::SweepJob make_job(traffic::Pattern pattern, double rate, bool faults) {
  noc::SweepJob job;
  job.cfg = sim_config();
  traffic::SyntheticConfig tc;
  tc.pattern = pattern;
  tc.injection_rate = rate;
  tc.packet_size = 5;
  if (pattern == traffic::Pattern::Hotspot) tc.hotspots = {27, 36};
  job.make_traffic = [tc] {
    return std::make_shared<traffic::SyntheticTraffic>(tc);
  };
  if (faults) {
    Rng rng(99);
    job.faults = fault::FaultPlan::random(
        job.cfg.mesh.dims, {noc::kMeshPorts, job.cfg.mesh.router.vcs},
        core::RouterMode::Protected, 128, job.cfg.warmup, rng, true);
  }
  return job;
}

double run_once(traffic::Pattern pattern, double rate, bool faults) {
  const auto reports = noc::SweepRunner().run({make_job(pattern, rate, faults)});
  return reports[0].avg_total_latency();
}

void print_sweep() {
  // Whole grid (pattern x rate x {clean, faulty}) as one parallel batch.
  std::vector<noc::SweepJob> jobs;
  for (const auto pattern : kPatterns)
    for (const double rate : kRates) {
      jobs.push_back(make_job(pattern, rate, false));
      jobs.push_back(make_job(pattern, rate, true));
    }
  const auto reports = noc::SweepRunner().run(jobs);

  std::printf("Load sweep: latency vs injection rate, fault-free vs 128 "
              "faults (protected 8x8)\n\n");
  std::size_t i = 0;
  for (const auto pattern : kPatterns) {
    std::printf("pattern: %s\n", traffic::pattern_name(pattern));
    std::printf("  %8s %12s %12s %10s\n", "rate", "fault-free", "faulty",
                "penalty");
    for (const double rate : kRates) {
      const double clean = reports[i++].avg_total_latency();
      const double faulty = reports[i++].avg_total_latency();
      std::printf("  %8.2f %9.2f cy %9.2f cy %+9.1f%%\n", rate, clean, faulty,
                  100 * (faulty / clean - 1.0));
    }
    std::printf("\n");
  }
}

void BM_UniformLoad(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    double l = run_once(traffic::Pattern::UniformRandom, rate, false);
    benchmark::DoNotOptimize(l);
  }
  state.SetLabel("rate=" + std::to_string(rate));
}
BENCHMARK(BM_UniformLoad)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
