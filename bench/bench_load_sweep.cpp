// Ablation A4: latency vs offered load for synthetic patterns, fault-free vs
// a heavily fault-injected protected mesh. Shows the fault penalty growing
// with load (degraded resources saturate earlier) — the effect behind the
// PARSEC-vs-SPLASH-2 gap in Figures 7/8.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/sweep.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

noc::SimConfig sim_config() {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain_limit = 25000;
  cfg.progress_timeout = 25000;
  return cfg;
}

noc::SweepJob make_job(traffic::Pattern pattern, double rate, bool faults) {
  noc::SweepJob job;
  job.cfg = sim_config();
  traffic::SyntheticConfig tc;
  tc.pattern = pattern;
  tc.injection_rate = rate;
  tc.packet_size = 5;
  if (pattern == traffic::Pattern::Hotspot) tc.hotspots = {27, 36};
  job.make_traffic = [tc] {
    return std::make_shared<traffic::SyntheticTraffic>(tc);
  };
  if (faults) {
    Rng rng(99);
    job.faults = fault::FaultPlan::random(
        job.cfg.mesh.dims, {noc::kMeshPorts, job.cfg.mesh.router.vcs},
        core::RouterMode::Protected, 128, job.cfg.warmup, rng, true);
  }
  return job;
}

double run_once(traffic::Pattern pattern, double rate, bool faults) {
  const auto reports = noc::SweepRunner().run({make_job(pattern, rate, faults)});
  return reports[0].avg_total_latency();
}

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_sweep() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("load_sweep"))
                        .c_str());
  std::printf("Expected shape: the fault penalty grows with offered load "
              "(degraded resources\nsaturate earlier) — the effect behind "
              "the PARSEC-vs-SPLASH-2 gap in Figures 7/8.\n\n");
}

void BM_UniformLoad(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    double l = run_once(traffic::Pattern::UniformRandom, rate, false);
    benchmark::DoNotOptimize(l);
  }
  state.SetLabel("rate=" + std::to_string(rate));
}
BENCHMARK(BM_UniformLoad)->Arg(5)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
