// Ablation A2: per-mechanism latency cost. Injects faults of a single
// pipeline-stage class on every router and measures the latency penalty that
// each protection mechanism pays, isolating the contributions that blend
// together in Figures 7/8.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

noc::SimConfig sim_config() {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.warmup = 2000;
  cfg.measure = 8000;
  cfg.drain_limit = 15000;
  return cfg;
}

std::shared_ptr<traffic::TrafficModel> traffic_model() {
  traffic::SyntheticConfig tc;
  tc.injection_rate = 0.12;
  tc.packet_size = 5;
  return std::make_shared<traffic::SyntheticTraffic>(tc);
}

/// One fault of `type` on every router (random port/VC).
fault::FaultPlan plan_of(fault::SiteType type, const noc::SimConfig& cfg,
                         std::uint64_t seed) {
  Rng rng(seed);
  fault::FaultPlan plan;
  for (NodeId n = 0; n < cfg.mesh.dims.nodes(); ++n) {
    const int port = static_cast<int>(rng.next_below(noc::kMeshPorts));
    const int vc = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.mesh.router.vcs)));
    const bool per_vc = type == fault::SiteType::Va1ArbiterSet ||
                        type == fault::SiteType::Va2Arbiter;
    plan.add(rng.next_below(cfg.warmup), n, {type, port, per_vc ? vc : 0});
  }
  return plan;
}

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_study() {
  std::printf("%s",
              rnoc::campaign::format_result(
                  rnoc::campaign::run_registry_inline("ablation_mechanisms"))
                  .c_str());
  std::printf("Expected shape: RC ~free (spatial redundancy), VA2 small "
              "(+1 cycle on allocation),\nVA1 small under low VC contention, "
              "SA1 and XB largest (serialization).\n\n");
}

void BM_AblatedSim(benchmark::State& state) {
  auto cfg = sim_config();
  cfg.measure = 2000;
  auto tm = traffic_model();
  for (auto _ : state) {
    noc::Simulator sim(cfg, tm);
    sim.set_fault_plan(plan_of(fault::SiteType::XbMux, cfg, 7));
    auto rep = sim.run();
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_AblatedSim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
