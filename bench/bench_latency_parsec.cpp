// Reproduces paper Figure 8: average packet latency of PARSEC application
// traffic on the 8x8 mesh, fault-free vs fault-injected protected router.
// Paper reference: overall latency increase ~13% under multiple faults.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "latency_common.hpp"

using namespace rnoc;

namespace {

void BM_ParsecApp(benchmark::State& state) {
  const auto& apps = traffic::parsec_profiles();
  const auto& profile = apps[static_cast<std::size_t>(state.range(0))];
  auto cfg = benchx::figure_sim_config();
  cfg.measure = 3000;
  for (auto _ : state) {
    auto r = benchx::run_app(profile, cfg, 9);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(profile.name);
}
BENCHMARK(BM_ParsecApp)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The figure itself now lives in the campaign registry; this binary is a
  // thin wrapper so the historical CLI keeps working.
  std::printf("%s", campaign::format_result(
                        campaign::run_registry_inline("latency_parsec"))
                        .c_str());
  std::printf("paper reference: overall latency increase ~13%% under "
              "multiple faults\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
