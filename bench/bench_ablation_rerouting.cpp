// Ablation A5: router-level protection (this paper) vs network-level
// rerouting (the Vicis strategy) under identical crossbar-mux faults.
//
// Three configurations face the same XbMux fault sets:
//   1. baseline router + XY routing         -> traffic wedges
//   2. baseline router + fault-aware tables -> delivered, detour latency
//   3. protected router + XY routing        -> delivered, secondary-path cost
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/sweep.hpp"
#include "noc/table_routing.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

noc::SimConfig sim_config(core::RouterMode mode,
                          noc::RoutingAlgo algo = noc::RoutingAlgo::XY) {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.mesh.router.mode = mode;
  cfg.mesh.router.routing = algo;
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain_limit = 12000;
  cfg.progress_timeout = 6000;
  return cfg;
}

std::shared_ptr<traffic::TrafficModel> traffic_model() {
  traffic::SyntheticConfig tc;
  tc.injection_rate = 0.10;
  tc.packet_size = 5;
  return std::make_shared<traffic::SyntheticTraffic>(tc);
}

noc::SweepJob make_job(core::RouterMode mode, const noc::FaultAwareTables* t,
                       noc::RoutingAlgo algo = noc::RoutingAlgo::XY) {
  noc::SweepJob job;
  job.cfg = sim_config(mode, algo);
  job.make_traffic = traffic_model;
  job.tables = t;
  return job;
}

/// `count` XbMux faults on distinct routers, on non-West mesh ports (the
/// west-first turn model cannot detour a dead West link; see
/// noc/table_routing.hpp), keeping the rerouted mesh fully connected.
struct MuxFaultSet {
  fault::FaultPlan plan;
  std::vector<noc::DeadLink> dead_links;
};

MuxFaultSet make_faults(const noc::MeshDims& dims, int count,
                        std::uint64_t seed) {
  Rng rng(seed);
  const int candidate_ports[] = {noc::port_of(noc::Direction::North),
                                 noc::port_of(noc::Direction::East),
                                 noc::port_of(noc::Direction::South)};
  MuxFaultSet out;
  std::set<NodeId> used;
  int guard = 0;
  while (static_cast<int>(out.dead_links.size()) < count && ++guard < 10000) {
    const auto r = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(dims.nodes())));
    if (used.count(r)) continue;
    const int port = candidate_ports[rng.next_below(3)];
    // The port must exist (not at the mesh edge).
    const Coord c = dims.coord_of(r);
    if (port == noc::port_of(noc::Direction::North) && c.y == 0) continue;
    if (port == noc::port_of(noc::Direction::South) && c.y == dims.y - 1) continue;
    if (port == noc::port_of(noc::Direction::East) && c.x == dims.x - 1) continue;
    auto links = out.dead_links;
    links.push_back({r, port});
    if (!noc::FaultAwareTables::build(dims, links).fully_connected()) continue;
    out.dead_links = std::move(links);
    used.insert(r);
    out.plan.add(500 + 100 * out.dead_links.size(), r,
                 {fault::SiteType::XbMux, port, 0});
  }
  return out;
}

struct RunResult {
  double latency = 0.0;
  bool wedged = false;
};

void print_study() {
  const noc::MeshDims dims{8, 8};
  const int counts[] = {1, 2, 4, 8};

  // Build the fault sets and routing tables first (the tables must outlive
  // the batch), then run the reference plus all four configurations per
  // fault count as one parallel batch.
  std::vector<MuxFaultSet> fault_sets;
  std::vector<noc::FaultAwareTables> tables;
  for (const int count : counts) {
    fault_sets.push_back(make_faults(dims, count, 42 + count));
    tables.push_back(
        noc::FaultAwareTables::build(dims, fault_sets.back().dead_links));
  }

  // Job 0: fault-free reference latency (XY; protected mode is identical
  // fault-free). Then per count: XY, odd-even, reroute tables, protected.
  std::vector<noc::SweepJob> jobs;
  jobs.push_back(make_job(core::RouterMode::Protected, nullptr));
  for (std::size_t ci = 0; ci < fault_sets.size(); ++ci) {
    noc::SweepJob variants[] = {
        make_job(core::RouterMode::Baseline, nullptr),
        make_job(core::RouterMode::Baseline, nullptr,
                 noc::RoutingAlgo::OddEven),
        make_job(core::RouterMode::Baseline, &tables[ci]),
        make_job(core::RouterMode::Protected, nullptr),
    };
    for (auto& job : variants) {
      job.faults = fault_sets[ci].plan;
      jobs.push_back(std::move(job));
    }
  }
  const auto reports = noc::SweepRunner().run(jobs);

  const double base_latency = reports[0].avg_total_latency();
  std::printf("Router-level protection vs network-level rerouting "
              "(ablation A5)\nuniform 0.10 flits/node/cycle, 8x8 mesh; "
              "fault-free latency %.2f cycles\n\n",
              base_latency);
  std::printf("%8s | %-24s | %-24s | %-24s | %-24s\n", "XB muxes",
              "baseline + XY", "baseline + odd-even",
              "baseline + reroute tables", "protected + XY (paper)");

  for (std::size_t ci = 0; ci < fault_sets.size(); ++ci) {
    auto result = [&](std::size_t variant) {
      const noc::SimReport& rep = reports[1 + 4 * ci + variant];
      RunResult r;
      r.latency = rep.avg_total_latency();
      r.wedged = rep.deadlock_suspected || rep.undelivered_flits > 0;
      return r;
    };
    auto cell = [&](const RunResult& r, char* buf, std::size_t n) {
      if (r.wedged)
        std::snprintf(buf, n, "WEDGED");
      else
        std::snprintf(buf, n, "%.2f cy (%+.1f%%)", r.latency,
                      100 * (r.latency / base_latency - 1.0));
    };
    char a[64], b[64], c[64], d[64];
    cell(result(0), a, sizeof a);
    cell(result(1), b, sizeof b);
    cell(result(2), c, sizeof c);
    cell(result(3), d, sizeof d);
    std::printf("%8d | %-24s | %-24s | %-24s | %-24s\n", counts[ci], a, b, c,
                d);
  }
  std::printf("\nThe protected router pays less than rerouting (the detour "
              "lengthens paths and\nconcentrates load). Minimal-adaptive "
              "odd-even still wedges: it can only dodge a\ndead mux when an "
              "alternative minimal direction exists at that hop, and "
              "same-row\nflows have none — adaptivity without misrouting is "
              "not fault tolerance.\n\n");
}

void BM_RerouteTablesBuild(benchmark::State& state) {
  const noc::MeshDims dims{8, 8};
  const MuxFaultSet faults = make_faults(dims, 8, 7);
  for (auto _ : state) {
    auto t = noc::FaultAwareTables::build(dims, faults.dead_links);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RerouteTablesBuild);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
