// Ablation A5: router-level protection (this paper) vs network-level
// rerouting (the Vicis strategy) under identical crossbar-mux faults.
//
// Three configurations face the same XbMux fault sets:
//   1. baseline router + XY routing         -> traffic wedges
//   2. baseline router + fault-aware tables -> delivered, detour latency
//   3. protected router + XY routing        -> delivered, secondary-path cost
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/table_routing.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

noc::SimConfig sim_config(core::RouterMode mode,
                          noc::RoutingAlgo algo = noc::RoutingAlgo::XY) {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.mesh.router.mode = mode;
  cfg.mesh.router.routing = algo;
  cfg.warmup = 2000;
  cfg.measure = 6000;
  cfg.drain_limit = 12000;
  cfg.progress_timeout = 6000;
  return cfg;
}

std::shared_ptr<traffic::TrafficModel> traffic_model() {
  traffic::SyntheticConfig tc;
  tc.injection_rate = 0.10;
  tc.packet_size = 5;
  return std::make_shared<traffic::SyntheticTraffic>(tc);
}

/// `count` XbMux faults on distinct routers, on non-West mesh ports (the
/// west-first turn model cannot detour a dead West link; see
/// noc/table_routing.hpp), keeping the rerouted mesh fully connected.
struct MuxFaultSet {
  fault::FaultPlan plan;
  std::vector<noc::DeadLink> dead_links;
};

MuxFaultSet make_faults(const noc::MeshDims& dims, int count,
                        std::uint64_t seed) {
  Rng rng(seed);
  const int candidate_ports[] = {noc::port_of(noc::Direction::North),
                                 noc::port_of(noc::Direction::East),
                                 noc::port_of(noc::Direction::South)};
  MuxFaultSet out;
  std::set<NodeId> used;
  int guard = 0;
  while (static_cast<int>(out.dead_links.size()) < count && ++guard < 10000) {
    const auto r = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(dims.nodes())));
    if (used.count(r)) continue;
    const int port = candidate_ports[rng.next_below(3)];
    // The port must exist (not at the mesh edge).
    const Coord c = dims.coord_of(r);
    if (port == noc::port_of(noc::Direction::North) && c.y == 0) continue;
    if (port == noc::port_of(noc::Direction::South) && c.y == dims.y - 1) continue;
    if (port == noc::port_of(noc::Direction::East) && c.x == dims.x - 1) continue;
    auto links = out.dead_links;
    links.push_back({r, port});
    if (!noc::FaultAwareTables::build(dims, links).fully_connected()) continue;
    out.dead_links = std::move(links);
    used.insert(r);
    out.plan.add(500 + 100 * out.dead_links.size(), r,
                 {fault::SiteType::XbMux, port, 0});
  }
  return out;
}

struct RunResult {
  double latency = 0.0;
  bool wedged = false;
};

void print_study() {
  const noc::MeshDims dims{8, 8};

  // Fault-free reference latency (XY, protected mode is identical fault-free).
  double base_latency;
  {
    noc::Simulator sim(sim_config(core::RouterMode::Protected),
                       traffic_model());
    base_latency = sim.run().avg_total_latency();
  }
  std::printf("Router-level protection vs network-level rerouting "
              "(ablation A5)\nuniform 0.10 flits/node/cycle, 8x8 mesh; "
              "fault-free latency %.2f cycles\n\n",
              base_latency);
  std::printf("%8s | %-24s | %-24s | %-24s | %-24s\n", "XB muxes",
              "baseline + XY", "baseline + odd-even",
              "baseline + reroute tables", "protected + XY (paper)");

  for (const int count : {1, 2, 4, 8}) {
    const MuxFaultSet faults = make_faults(dims, count, 42 + count);
    const auto tables =
        noc::FaultAwareTables::build(dims, faults.dead_links);

    auto run_one = [&](core::RouterMode mode, const noc::FaultAwareTables* t,
                       noc::RoutingAlgo algo = noc::RoutingAlgo::XY) {
      noc::Simulator sim(sim_config(mode, algo), traffic_model());
      if (t) sim.mesh().set_routing_tables(t);
      fault::FaultPlan plan;
      for (const auto& e : faults.plan.entries())
        plan.add(e.at, e.router, e.site);
      sim.set_fault_plan(std::move(plan));
      const auto rep = sim.run();
      RunResult r;
      r.latency = rep.avg_total_latency();
      r.wedged = rep.deadlock_suspected || rep.undelivered_flits > 0;
      return r;
    };

    const RunResult xy = run_one(core::RouterMode::Baseline, nullptr);
    const RunResult oe = run_one(core::RouterMode::Baseline, nullptr,
                                 noc::RoutingAlgo::OddEven);
    const RunResult rt = run_one(core::RouterMode::Baseline, &tables);
    const RunResult pr = run_one(core::RouterMode::Protected, nullptr);

    auto cell = [&](const RunResult& r, char* buf, std::size_t n) {
      if (r.wedged)
        std::snprintf(buf, n, "WEDGED");
      else
        std::snprintf(buf, n, "%.2f cy (%+.1f%%)", r.latency,
                      100 * (r.latency / base_latency - 1.0));
    };
    char a[64], b[64], c[64], d[64];
    cell(xy, a, sizeof a);
    cell(oe, b, sizeof b);
    cell(rt, c, sizeof c);
    cell(pr, d, sizeof d);
    std::printf("%8d | %-24s | %-24s | %-24s | %-24s\n", count, a, b, c, d);
  }
  std::printf("\nThe protected router pays less than rerouting (the detour "
              "lengthens paths and\nconcentrates load). Minimal-adaptive "
              "odd-even still wedges: it can only dodge a\ndead mux when an "
              "alternative minimal direction exists at that hop, and "
              "same-row\nflows have none — adaptivity without misrouting is "
              "not fault tolerance.\n\n");
}

void BM_RerouteTablesBuild(benchmark::State& state) {
  const noc::MeshDims dims{8, 8};
  const MuxFaultSet faults = make_faults(dims, 8, 7);
  for (auto _ : state) {
    auto t = noc::FaultAwareTables::build(dims, faults.dead_links);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RerouteTablesBuild);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
