// Reproduces paper Table I: FIT values of the baseline pipeline stages.
// Paper reference: RC 117, VA 1478, SA 203, XB 1024 (5x5 router, 4 VCs,
// 8x8 mesh, TDDB at 1 V / 300 K).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "reliability/fit.hpp"

using namespace rnoc::rel;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_table() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("fit_table1"))
                        .c_str());
  std::printf("paper reference: RC 117 | VA 1478 | SA 203 | XB 1024 | "
              "total 2822\n\n");
}

void BM_BaselineFitTable(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  for (auto _ : state) {
    auto table = baseline_fit_table(g, params);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_BaselineFitTable);

void BM_StageFitRollup(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  const auto table = baseline_fit_table(g, params);
  for (auto _ : state) {
    auto fits = stage_fits(table);
    benchmark::DoNotOptimize(fits);
  }
}
BENCHMARK(BM_StageFitRollup);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
