// Reproduces paper Table I: FIT values of the baseline pipeline stages.
// Paper reference: RC 117, VA 1478, SA 203, XB 1024 (5x5 router, 4 VCs,
// 8x8 mesh, TDDB at 1 V / 300 K).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "reliability/fit.hpp"

using namespace rnoc::rel;

namespace {

void print_table() {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  std::printf("%s\n", format_fit_table(baseline_fit_table(g, params),
                                       "Table I: FIT of baseline pipeline "
                                       "stages (failures per 1e9 hours)")
                          .c_str());
  const StageFits s = baseline_stage_fits(g, params);
  std::printf("paper reference: RC 117 | VA 1478 | SA 203 | XB 1024 | total 2822\n");
  std::printf("reproduced     : RC %.0f | VA %.0f | SA %.0f | XB %.0f | total %.0f\n\n",
              s.rc, s.va, s.sa, s.xb, s.rounded().total());
}

void BM_BaselineFitTable(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  for (auto _ : state) {
    auto table = baseline_fit_table(g, params);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_BaselineFitTable);

void BM_StageFitRollup(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  const auto table = baseline_fit_table(g, params);
  for (auto _ : state) {
    auto fits = stage_fits(table);
    benchmark::DoNotOptimize(fits);
  }
}
BENCHMARK(BM_StageFitRollup);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
