// Reproduces paper Table III: SPF comparison of the proposed router against
// BulletProof, Vicis and RoCo. Published rows are reproduced verbatim; our
// structural reconstructions of the three competitors are Monte-Carlo'd
// alongside for validation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/bulletproof.hpp"
#include "campaign/registry.hpp"
#include "baselines/roco.hpp"
#include "baselines/vicis.hpp"
#include "core/spf_analysis.hpp"
#include "core/spf_montecarlo.hpp"
#include "synthesis/router_netlists.hpp"

using namespace rnoc;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_table() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("spf_table3"))
                        .c_str());
  std::printf("paper reference row for the proposed router: 31%% area | "
              "15 faults-to-failure | SPF 11.4\n\n");
}

void BM_AnalyticSpf(benchmark::State& state) {
  for (auto _ : state) {
    auto a = core::analytic_spf(5, 4, 0.31);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_AnalyticSpf);

void BM_BaselineModelMc(benchmark::State& state) {
  for (auto _ : state) {
    auto s = baselines::mc_faults_to_failure(
        baselines::vicis_model(), static_cast<std::uint64_t>(state.range(0)), 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BaselineModelMc)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
