// Reproduces paper Table III: SPF comparison of the proposed router against
// BulletProof, Vicis and RoCo. Published rows are reproduced verbatim; our
// structural reconstructions of the three competitors are Monte-Carlo'd
// alongside for validation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/bulletproof.hpp"
#include "baselines/roco.hpp"
#include "baselines/vicis.hpp"
#include "core/spf_analysis.hpp"
#include "core/spf_montecarlo.hpp"
#include "synthesis/router_netlists.hpp"

using namespace rnoc;

namespace {

void print_table() {
  constexpr std::uint64_t kTrials = 100000;
  const auto bp_mc =
      baselines::mc_faults_to_failure(baselines::bulletproof_model(), kTrials, 1);
  const auto vc_mc =
      baselines::mc_faults_to_failure(baselines::vicis_model(), kTrials, 1);
  const auto rc_mc =
      baselines::mc_faults_to_failure(baselines::roco_model(), kTrials, 1);

  const auto synth = synth::synthesize(rel::RouterGeometry{});
  const auto proposed =
      core::analytic_spf(5, 4, synth.area_overhead_with_detection);

  std::printf("Table III: SPF comparison (paper §VIII)\n");
  std::printf("%-14s %8s %18s %8s   %s\n", "Architecture", "Area", "FaultsToFail",
              "SPF", "our structural model (MC)");
  const auto bp = baselines::bulletproof_published();
  std::printf("%-14s %7.0f%% %18.2f %8.2f   ftf %.2f, spf %.2f\n", bp.name,
              100 * bp.area_overhead, bp.faults_to_failure, bp.spf,
              bp_mc.mean(), bp_mc.mean() / (1 + bp.area_overhead));
  std::printf("%-14s %7.0f%% %18.2f %8.2f   ftf %.2f, spf %.2f\n", "Vicis",
              100 * baselines::vicis_published_area(),
              baselines::vicis_published_ftf(), baselines::vicis_published_spf(),
              vc_mc.mean(),
              vc_mc.mean() / (1 + baselines::vicis_published_area()));
  std::printf("%-14s %8s %18.2f %7.2f*   ftf %.2f (*upper bound)\n", "RoCo",
              "N/A", baselines::roco_published_ftf(),
              baselines::roco_published_spf_upper_bound(), rc_mc.mean());
  std::printf("%-14s %7.0f%% %18.2f %8.2f   analytic (min 2, max 28, mean 15)\n",
              "Proposed", 100 * synth.area_overhead_with_detection,
              proposed.mean_faults_to_failure, proposed.spf);
  std::printf("\npaper reference row for the proposed router: 31%% | 15 | 11.4\n\n");
}

void BM_AnalyticSpf(benchmark::State& state) {
  for (auto _ : state) {
    auto a = core::analytic_spf(5, 4, 0.31);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_AnalyticSpf);

void BM_BaselineModelMc(benchmark::State& state) {
  for (auto _ : state) {
    auto s = baselines::mc_faults_to_failure(
        baselines::vicis_model(), static_cast<std::uint64_t>(state.range(0)), 1);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BaselineModelMc)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
