// Reproduces paper Figure 7: average packet latency of SPLASH-2 application
// traffic on the 8x8 mesh, fault-free vs fault-injected protected router.
// Paper reference: overall latency increase ~10% under multiple faults.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "latency_common.hpp"

using namespace rnoc;

namespace {

void BM_Splash2App(benchmark::State& state) {
  const auto& apps = traffic::splash2_profiles();
  const auto& profile = apps[static_cast<std::size_t>(state.range(0))];
  auto cfg = benchx::figure_sim_config();
  cfg.measure = 3000;  // timing-only run; the printed figure uses the full window
  for (auto _ : state) {
    auto r = benchx::run_app(profile, cfg, 7);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(profile.name);
}
BENCHMARK(BM_Splash2App)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The figure itself now lives in the campaign registry; this binary is a
  // thin wrapper so the historical CLI keeps working.
  std::printf("%s", campaign::format_result(
                        campaign::run_registry_inline("latency_splash2"))
                        .c_str());
  std::printf("paper reference: overall latency increase ~10%% under "
              "multiple faults\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
