// Ablation A3: Monte-Carlo faults-to-failure distribution of the protected
// router vs the paper's analytic mean-of-extremes accounting, plus the
// baseline router and a pipeline-sites-only variant.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "common/stats.hpp"
#include "core/spf_analysis.hpp"
#include "core/spf_montecarlo.hpp"

using namespace rnoc;
using namespace rnoc::core;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_study() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("spf_montecarlo"))
                        .c_str());
  std::printf("The analytic number averages the best and worst adversarial "
              "fault placements;\nrandom placement (the BulletProof/Vicis "
              "methodology) lands lower, as expected.\n\n");
}

void BM_McSpfProtected(benchmark::State& state) {
  SpfMcConfig cfg;
  cfg.trials = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto r = monte_carlo_spf(cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK(BM_McSpfProtected)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
