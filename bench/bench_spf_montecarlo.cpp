// Ablation A3: Monte-Carlo faults-to-failure distribution of the protected
// router vs the paper's analytic mean-of-extremes accounting, plus the
// baseline router and a pipeline-sites-only variant.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/stats.hpp"
#include "core/spf_analysis.hpp"
#include "core/spf_montecarlo.hpp"

using namespace rnoc;
using namespace rnoc::core;

namespace {

void print_study() {
  constexpr std::uint64_t kTrials = 100000;
  const SpfAnalysis analytic = analytic_spf(5, 4, 0.31);

  SpfMcConfig prot;
  prot.trials = kTrials;
  SpfMcConfig pipe_only = prot;
  pipe_only.include_correction_sites = false;
  SpfMcConfig base = prot;
  base.mode = RouterMode::Baseline;

  const auto r_prot = monte_carlo_spf(prot);
  const auto r_pipe = monte_carlo_spf(pipe_only);
  const auto r_base = monte_carlo_spf(base);

  std::printf("Monte-Carlo faults-to-failure, %llu trials (ablation A3)\n\n",
              static_cast<unsigned long long>(kTrials));
  std::printf("%-38s %8s %6s %6s %8s\n", "model", "mean", "min", "max", "SPF");
  auto row = [](const char* name, const SpfMcResult& r) {
    std::printf("%-38s %8.2f %6.0f %6.0f %8.2f\n", name,
                r.faults_to_failure.mean(), r.faults_to_failure.min(),
                r.faults_to_failure.max(), r.spf);
  };
  row("baseline (unprotected)", r_base);
  row("protected, all 79 sites", r_prot);
  row("protected, pipeline sites only", r_pipe);
  std::printf("%-38s %8.1f %6d %6d %8.2f   (paper Table III)\n",
              "analytic mean-of-extremes", analytic.mean_faults_to_failure,
              analytic.min_faults_to_failure, analytic.max_faults_to_failure,
              analytic.spf);
  std::printf("\nThe analytic number averages the best and worst adversarial "
              "fault placements;\nrandom placement (the BulletProof/Vicis "
              "methodology) lands lower, as expected.\n\n");
}

void BM_McSpfProtected(benchmark::State& state) {
  SpfMcConfig cfg;
  cfg.trials = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto r = monte_carlo_spf(cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.trials));
}
BENCHMARK(BM_McSpfProtected)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
