// Reproduces paper §VI-A: area and power overhead of the correction
// circuitry from the 45 nm cell-library synthesis model.
// Paper reference: +28% area / +29% power (correction only), +31% / +30%
// with the fault-detection mechanism included.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "synthesis/router_netlists.hpp"

using namespace rnoc;
using namespace rnoc::synth;

namespace {

void print_report() {
  const rel::RouterGeometry g;
  const auto rep = synthesize(g);
  const auto base = baseline_router_netlists(g);
  const auto corr = correction_netlists(g);
  const auto& lib = CellLibrary::generic45();

  std::printf("Synthesis report (paper §VI-A), 45 nm, 5x5 router, 4 VCs\n\n");
  std::printf("%-18s %12s %12s\n", "block", "area (um^2)", "cells");
  auto row = [&](const char* n, const Netlist& nl) {
    std::printf("%-18s %12.1f %12lld\n", n, nl.area_um2(lib),
                static_cast<long long>(nl.total_cells()));
  };
  row("baseline RC", base.rc);
  row("baseline VA", base.va);
  row("baseline SA", base.sa);
  row("baseline XB", base.xb);
  row("correction RC", corr.rc);
  row("correction VA", corr.va);
  row("correction SA", corr.sa);
  row("correction XB", corr.xb);

  std::printf("\n                       area     power\n");
  std::printf("baseline pipeline  %8.0f  %8.0f\n", rep.base_area_um2,
              rep.base_power_uw);
  std::printf("correction         %8.0f  %8.0f\n", rep.corr_area_um2,
              rep.corr_power_uw);
  std::printf("overhead            %6.1f%%   %6.1f%%   (paper: 28%% / 29%%)\n",
              100 * rep.area_overhead, 100 * rep.power_overhead);
  std::printf("with detection      %6.1f%%   %6.1f%%   (paper: 31%% / 30%%)\n\n",
              100 * rep.area_overhead_with_detection,
              100 * rep.power_overhead_with_detection);
}

void BM_Synthesize(benchmark::State& state) {
  const rel::RouterGeometry g;
  for (auto _ : state) {
    auto rep = synthesize(g);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_Synthesize);

void BM_SynthesizeVsVcs(benchmark::State& state) {
  rel::RouterGeometry g;
  g.vcs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto rep = synthesize(g);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_SynthesizeVsVcs)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
