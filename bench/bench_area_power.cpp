// Reproduces paper §VI-A: area and power overhead of the correction
// circuitry from the 45 nm cell-library synthesis model.
// Paper reference: +28% area / +29% power (correction only), +31% / +30%
// with the fault-detection mechanism included.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "synthesis/router_netlists.hpp"

using namespace rnoc;
using namespace rnoc::synth;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_report() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("area_power"))
                        .c_str());
  std::printf("paper reference: correction only +28%% area / +29%% power; "
              "with detection +31%% / +30%%\n\n");
}

void BM_Synthesize(benchmark::State& state) {
  const rel::RouterGeometry g;
  for (auto _ : state) {
    auto rep = synthesize(g);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_Synthesize);

void BM_SynthesizeVsVcs(benchmark::State& state) {
  rel::RouterGeometry g;
  g.vcs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto rep = synthesize(g);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_SynthesizeVsVcs)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
