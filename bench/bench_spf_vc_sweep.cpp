// Ablation A1 (paper §VIII-E): SPF as a function of the number of virtual
// channels per input port. The paper notes SPF falls to 7 with 2 VCs and
// rises beyond 11 with more than 4 VCs; the area overhead comes from the
// synthesis model at each geometry.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "core/spf_analysis.hpp"
#include "core/spf_montecarlo.hpp"
#include "synthesis/router_netlists.hpp"

using namespace rnoc;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_sweep() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("spf_vc_sweep"))
                        .c_str());
  std::printf("paper reference: SPF 11.4 at 4 VCs; falls to ~7 with 2 VCs "
              "(paper §VIII-E)\n\n");
}

void BM_SpfSweepPoint(benchmark::State& state) {
  const int vcs = static_cast<int>(state.range(0));
  rel::RouterGeometry g;
  g.vcs = vcs;
  for (auto _ : state) {
    const double overhead = synth::synthesize(g).area_overhead_with_detection;
    auto a = core::analytic_spf(5, vcs, overhead);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SpfSweepPoint)->Arg(2)->Arg(4)->Arg(8);

void BM_McSpfAtVcs(benchmark::State& state) {
  core::SpfMcConfig cfg;
  cfg.geometry = {5, static_cast<int>(state.range(0))};
  cfg.trials = 2000;
  for (auto _ : state) {
    auto r = core::monte_carlo_spf(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_McSpfAtVcs)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
