// Simulator throughput: how fast the cycle-accurate model runs.
//
// Two sections:
//
//  1. Low/medium-load sweep (the PR-6 headline): 8x8 uniform-random runs at
//     0.05 / 0.20 / 0.40 flits/node/cycle, timed under the ActiveList core
//     and the EventDriven core. Construction is excluded from the timed
//     window (the timer starts after the Simulator — mesh, NIs, links — is
//     built) and each core is warmed with a small untimed run first.
//     Reported per load: simulated cycles/s and flit-hops/s (crossbar
//     traversals per wall second — work actually done, so an idle-skipping
//     core cannot inflate it by skipping cycles), plus the event/active
//     speedup and a bit-identity check of the two reports.
//
//  2. The Figure-7 app sweep timed twice — full-sweep sequential reference
//     (the seed's loop structure: every router, every stage, every cycle,
//     one run after another) vs fast path (event core on the thread pool) —
//     checking every run's latency statistics are bit-identical.
//
// The in-binary reference is a *lower bound* on the speedup over the seed
// implementation: it still benefits from the untoggleable fast-path work
// (ring buffers, allocation-free allocators, O(1) accounting). EXPERIMENTS.md
// records measured ratios; BENCH_sim_throughput.json carries the numbers the
// CI perf gate tracks across commits.
//
// --smoke shrinks the workload for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "latency_common.hpp"
#include "noc/sweep.hpp"
#include "traffic/app_profiles.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Latency statistics (and therefore simulated behaviour) identical?
bool report_equal(const noc::SimReport& a, const noc::SimReport& b) {
  return a.total_latency.count() == b.total_latency.count() &&
         a.total_latency.mean() == b.total_latency.mean() &&
         a.network_latency.mean() == b.network_latency.mean() &&
         a.packets_received == b.packets_received &&
         a.flits_received == b.flits_received &&
         a.router_events.flits_traversed == b.router_events.flits_traversed &&
         a.cycles_run == b.cycles_run;
}

bool reports_match(const std::vector<noc::SimReport>& a,
                   const std::vector<noc::SimReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!report_equal(a[i], b[i])) return false;
  return true;
}

// --- Section 1: low/medium-load core comparison ---

noc::SimConfig load_sweep_config(bool smoke) {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.warmup = smoke ? 200 : 1000;
  cfg.measure = smoke ? 2000 : 20000;
  cfg.drain_limit = smoke ? 5000 : 30000;
  cfg.seed = 7;
  return cfg;
}

struct TimedRun {
  noc::SimReport rep;
  double seconds = 0.0;
};

TimedRun time_load_run(const noc::SimConfig& base, double load,
                       noc::SimCore core) {
  noc::SimConfig cfg = base;
  cfg.mesh.core = core;
  traffic::SyntheticConfig tc;
  tc.injection_rate = load;
  tc.packet_size = 5;
  noc::Simulator sim(cfg, std::make_shared<traffic::SyntheticTraffic>(tc));
  // Timer starts here: mesh/NI/link construction is setup, not simulation.
  const auto t0 = Clock::now();
  TimedRun r;
  r.rep = sim.run();
  r.seconds = seconds_since(t0);
  return r;
}

struct LoadPoint {
  double load = 0.0;
  const char* key;  ///< JSON key stem, e.g. "load05".
  double active_cps = 0.0, active_fhps = 0.0;
  double event_cps = 0.0, event_fhps = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

std::vector<LoadPoint> run_load_sweep(bool smoke) {
  const noc::SimConfig base = load_sweep_config(smoke);
  // Warm each core once (icache, allocator pools) outside any timed window.
  {
    noc::SimConfig warm = base;
    warm.warmup = 100;
    warm.measure = 400;
    warm.drain_limit = 2000;
    time_load_run(warm, 0.1, noc::SimCore::ActiveList);
    time_load_run(warm, 0.1, noc::SimCore::EventDriven);
  }
  std::vector<LoadPoint> points = {
      {0.05, "load05", 0, 0, 0, 0, 0, false},
      {0.20, "load20", 0, 0, 0, 0, 0, false},
      {0.40, "load40", 0, 0, 0, 0, 0, false},
  };
  for (LoadPoint& p : points) {
    const TimedRun active =
        time_load_run(base, p.load, noc::SimCore::ActiveList);
    const TimedRun event =
        time_load_run(base, p.load, noc::SimCore::EventDriven);
    p.active_cps = static_cast<double>(active.rep.cycles_run) / active.seconds;
    p.active_fhps =
        static_cast<double>(active.rep.router_events.flits_traversed) /
        active.seconds;
    p.event_cps = static_cast<double>(event.rep.cycles_run) / event.seconds;
    p.event_fhps =
        static_cast<double>(event.rep.router_events.flits_traversed) /
        event.seconds;
    p.speedup = p.event_cps / p.active_cps;
    p.identical = report_equal(active.rep, event.rep);
  }
  return points;
}

// --- Section 2: Figure-7 app sweep ---

/// The Figure-7 job list: (fault-free, faulted) pair per app, same config
/// and seeds as bench_latency_splash2.
std::vector<noc::SweepJob> figure7_jobs(const noc::SimConfig& cfg,
                                        std::size_t napps, noc::SimCore core) {
  const auto& apps = traffic::splash2_profiles();
  if (napps > apps.size()) napps = apps.size();
  noc::SimConfig mode_cfg = cfg;
  mode_cfg.mesh.core = core;
  std::vector<noc::SweepJob> jobs;
  for (std::size_t i = 0; i < napps; ++i) {
    auto pair = benchx::app_jobs(apps[i], mode_cfg, 1000 + i);
    for (auto& j : pair) jobs.push_back(std::move(j));
  }
  return jobs;
}

/// Runs the jobs the way the seed simulator did: one after another on the
/// calling thread.
std::vector<noc::SimReport> run_sequential(
    const std::vector<noc::SweepJob>& jobs) {
  std::vector<noc::SimReport> reports;
  reports.reserve(jobs.size());
  for (const auto& job : jobs) {
    noc::Simulator sim(job.cfg, job.make_traffic());
    if (!job.faults.entries().empty()) sim.set_fault_plan(job.faults);
    reports.push_back(sim.run());
  }
  return reports;
}

struct SingleRunRate {
  double cycles_per_sec = 0.0;
  double flits_per_sec = 0.0;
};

SingleRunRate time_single_run(const noc::SweepJob& job) {
  noc::Simulator sim(job.cfg, job.make_traffic());
  if (!job.faults.entries().empty()) sim.set_fault_plan(job.faults);
  const auto t0 = Clock::now();
  const auto rep = sim.run();
  const double dt = seconds_since(t0);
  SingleRunRate r;
  r.cycles_per_sec = static_cast<double>(rep.cycles_run) / dt;
  // All flits the network moved end to end, not just measured-window ones.
  r.flits_per_sec = static_cast<double>(rep.flits_received) / dt;
  return r;
}

int run(bool smoke) {
  // Low/medium-load core comparison.
  const auto points = run_load_sweep(smoke);
  bool load_identical = true;
  double speedup_min = 0.0;
  std::printf("Simulator cores, 8x8 uniform random (size-5 packets)\n\n");
  std::printf("  %-6s %14s %14s %14s %14s %9s %s\n", "load", "active cyc/s",
              "event cyc/s", "active fh/s", "event fh/s", "speedup",
              "identical");
  for (const auto& p : points) {
    std::printf("  %-6.2f %14.0f %14.0f %14.0f %14.0f %8.1fx %s\n", p.load,
                p.active_cps, p.event_cps, p.active_fhps, p.event_fhps,
                p.speedup, p.identical ? "yes" : "NO (BUG)");
    load_identical = load_identical && p.identical;
    speedup_min = speedup_min == 0.0 ? p.speedup
                                     : std::min(speedup_min, p.speedup);
  }
  const bool meets_10x = speedup_min >= 10.0;
  std::printf("\n  min event speedup: %.1fx (>=10x: %s)\n\n", speedup_min,
              meets_10x ? "yes" : "NO");

  noc::SimConfig cfg = benchx::figure_sim_config();
  std::size_t napps = 8;  // 8 apps x {fault-free, faulted} = 16 runs
  if (smoke) {
    cfg.warmup = 500;
    cfg.measure = 1500;
    cfg.drain_limit = 5000;
    napps = 2;
  }

  // Single-run rates, event core.
  const auto single_jobs = figure7_jobs(cfg, 1, noc::SimCore::EventDriven);
  const SingleRunRate clean = time_single_run(single_jobs[0]);
  const SingleRunRate faulted = time_single_run(single_jobs[1]);
  std::printf("Coherence traffic (8x8 mesh, event core)\n\n");
  std::printf("  fault-free run: %10.0f cycles/s %12.0f flits/s\n",
              clean.cycles_per_sec, clean.flits_per_sec);
  std::printf("  faulted run:    %10.0f cycles/s %12.0f flits/s\n\n",
              faulted.cycles_per_sec, faulted.flits_per_sec);

  // Figure-7 sweep, full-sweep sequential reference vs fast path.
  const auto ref_jobs = figure7_jobs(cfg, napps, noc::SimCore::FullSweep);
  const auto fast_jobs = figure7_jobs(cfg, napps, noc::SimCore::EventDriven);

  auto t0 = Clock::now();
  const auto ref_reports = run_sequential(ref_jobs);
  const double ref_s = seconds_since(t0);

  t0 = Clock::now();
  const auto fast_reports = noc::SweepRunner().run(fast_jobs);
  const double fast_s = seconds_since(t0);

  const bool match = reports_match(ref_reports, fast_reports);
  const double speedup = ref_s / fast_s;
  std::printf("Figure-7 sweep (%zu runs):\n", ref_jobs.size());
  std::printf("  full-sweep sequential reference: %8.2f s\n", ref_s);
  std::printf("  fast (event core, parallel):     %8.2f s\n", fast_s);
  std::printf("  speedup vs in-binary reference: %.2fx   "
              "latencies identical: %s\n",
              speedup, match ? "yes" : "NO (BUG)");
  std::printf("  (lower bound: the reference shares the fast data "
              "structures; see EXPERIMENTS.md\n"
              "   for the measured ratio against the seed commit)\n\n");

  std::FILE* out = std::fopen("BENCH_sim_throughput.json", "w");
  if (out) {
    std::fprintf(out,
                 "{\"bench\": \"sim_throughput\", \"smoke\": %s, "
                 "\"mesh\": \"8x8\", \"sweep_runs\": %zu, "
                 "\"trace_hooks_compiled\": %s",
                 smoke ? "true" : "false", ref_jobs.size(),
                 // The perf gate compares throughput against an untraced
                 // baseline; a boolean (exact-match in the gate, unlike
                 // one-sided numerics) makes a mismatched RNOC_TRACE=ON
                 // binary fail loudly.
#ifdef RNOC_TRACE
                 "true"
#else
                 "false"
#endif
    );
    for (const auto& p : points)
      std::fprintf(out,
                   ", \"%s_active_cycles_per_sec\": %.0f"
                   ", \"%s_event_cycles_per_sec\": %.0f"
                   ", \"%s_active_flit_hops_per_sec\": %.0f"
                   ", \"%s_event_flit_hops_per_sec\": %.0f"
                   ", \"%s_event_speedup\": %.3f",
                   p.key, p.active_cps, p.key, p.event_cps, p.key,
                   p.active_fhps, p.key, p.event_fhps, p.key, p.speedup);
    std::fprintf(
        out,
        ", \"event_speedup_min\": %.3f, \"meets_10x\": %s, "
        "\"load_reports_identical\": %s, "
        "\"fault_free_cycles_per_sec\": %.0f, "
        "\"fault_free_flits_per_sec\": %.0f, "
        "\"faulted_cycles_per_sec\": %.0f, "
        "\"faulted_flits_per_sec\": %.0f, "
        "\"sweep_reference_seconds\": %.4f, \"sweep_fast_seconds\": %.4f, "
        "\"speedup_vs_reference\": %.3f, \"latencies_identical\": %s}\n",
        speedup_min, meets_10x ? "true" : "false",
        load_identical ? "true" : "false", clean.cycles_per_sec,
        clean.flits_per_sec, faulted.cycles_per_sec, faulted.flits_per_sec,
        ref_s, fast_s, speedup, match ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_sim_throughput.json\n");
  }

  if (!match || !load_identical) {
    std::fprintf(stderr,
                 "FAIL: fast-path reports differ from full-sweep reports\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  return run(smoke);
}
