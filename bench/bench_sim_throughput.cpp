// Simulator throughput: how fast the cycle-accurate model runs on the
// Figure-7 workload.
//
// Reports simulated cycles/sec and flits/sec for single 8x8 fault-free and
// faulted runs, then times the 16-run Figure-7 app sweep twice — full-sweep
// sequential reference (the seed's loop structure: every router, every
// stage, every cycle, one run after another) vs fast path (active-router
// scheduling on the thread pool) — checking that every run's latency
// statistics are bit-identical between the two.
//
// Note the in-binary reference is a *lower bound* on the speedup over the
// seed implementation: it still benefits from the untoggleable fast-path
// work (ring buffers, allocation-free allocators, O(1) accounting, fault
// fast paths). EXPERIMENTS.md records the measured wall-clock ratio against
// the actual seed commit; the absolute cycles/sec and sweep seconds emitted
// in BENCH_sim_throughput.json are the numbers to track across commits.
//
// --smoke shrinks the workload for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "latency_common.hpp"
#include "noc/sweep.hpp"
#include "traffic/app_profiles.hpp"

using namespace rnoc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The Figure-7 job list: (fault-free, faulted) pair per app, same config
/// and seeds as bench_latency_splash2.
std::vector<noc::SweepJob> figure7_jobs(const noc::SimConfig& cfg,
                                        std::size_t napps,
                                        bool active_scheduling) {
  const auto& apps = traffic::splash2_profiles();
  if (napps > apps.size()) napps = apps.size();
  noc::SimConfig mode_cfg = cfg;
  mode_cfg.mesh.active_scheduling = active_scheduling;
  std::vector<noc::SweepJob> jobs;
  for (std::size_t i = 0; i < napps; ++i) {
    auto pair = benchx::app_jobs(apps[i], mode_cfg, 1000 + i);
    for (auto& j : pair) jobs.push_back(std::move(j));
  }
  return jobs;
}

/// Runs the jobs the way the seed simulator did: one after another on the
/// calling thread.
std::vector<noc::SimReport> run_sequential(
    const std::vector<noc::SweepJob>& jobs) {
  std::vector<noc::SimReport> reports;
  reports.reserve(jobs.size());
  for (const auto& job : jobs) {
    noc::Simulator sim(job.cfg, job.make_traffic());
    if (!job.faults.entries().empty()) sim.set_fault_plan(job.faults);
    reports.push_back(sim.run());
  }
  return reports;
}

/// Latency statistics (and therefore simulated behaviour) identical?
bool reports_match(const std::vector<noc::SimReport>& a,
                   const std::vector<noc::SimReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].total_latency.count() != b[i].total_latency.count() ||
        a[i].total_latency.mean() != b[i].total_latency.mean() ||
        a[i].network_latency.mean() != b[i].network_latency.mean() ||
        a[i].packets_received != b[i].packets_received ||
        a[i].flits_received != b[i].flits_received ||
        a[i].cycles_run != b[i].cycles_run)
      return false;
  }
  return true;
}

struct SingleRunRate {
  double cycles_per_sec = 0.0;
  double flits_per_sec = 0.0;
};

SingleRunRate time_single_run(const noc::SweepJob& job) {
  const auto t0 = Clock::now();
  noc::Simulator sim(job.cfg, job.make_traffic());
  if (!job.faults.entries().empty()) sim.set_fault_plan(job.faults);
  const auto rep = sim.run();
  const double dt = seconds_since(t0);
  SingleRunRate r;
  r.cycles_per_sec = static_cast<double>(rep.cycles_run) / dt;
  // All flits the network moved end to end, not just measured-window ones.
  r.flits_per_sec = static_cast<double>(rep.flits_received) / dt;
  return r;
}

int run(bool smoke) {
  noc::SimConfig cfg = benchx::figure_sim_config();
  std::size_t napps = 8;  // 8 apps x {fault-free, faulted} = 16 runs
  if (smoke) {
    cfg.warmup = 500;
    cfg.measure = 1500;
    cfg.drain_limit = 5000;
    napps = 2;
  }

  // Single-run rates, fast path.
  const auto single_jobs = figure7_jobs(cfg, 1, /*active_scheduling=*/true);
  const SingleRunRate clean = time_single_run(single_jobs[0]);
  const SingleRunRate faulted = time_single_run(single_jobs[1]);
  std::printf("Simulator throughput (8x8 mesh, coherence traffic)\n\n");
  std::printf("  fault-free run: %10.0f cycles/s %12.0f flits/s\n",
              clean.cycles_per_sec, clean.flits_per_sec);
  std::printf("  faulted run:    %10.0f cycles/s %12.0f flits/s\n\n",
              faulted.cycles_per_sec, faulted.flits_per_sec);

  // Figure-7 sweep, full-sweep sequential reference vs fast path.
  const auto ref_jobs = figure7_jobs(cfg, napps, /*active_scheduling=*/false);
  const auto fast_jobs = figure7_jobs(cfg, napps, /*active_scheduling=*/true);

  auto t0 = Clock::now();
  const auto ref_reports = run_sequential(ref_jobs);
  const double ref_s = seconds_since(t0);

  t0 = Clock::now();
  const auto fast_reports = noc::SweepRunner().run(fast_jobs);
  const double fast_s = seconds_since(t0);

  const bool match = reports_match(ref_reports, fast_reports);
  const double speedup = ref_s / fast_s;
  std::printf("Figure-7 sweep (%zu runs):\n", ref_jobs.size());
  std::printf("  full-sweep sequential reference:    %8.2f s\n", ref_s);
  std::printf("  fast (active scheduling, parallel): %8.2f s\n", fast_s);
  std::printf("  speedup vs in-binary reference: %.2fx   "
              "latencies identical: %s\n",
              speedup, match ? "yes" : "NO (BUG)");
  std::printf("  (lower bound: the reference shares the fast data "
              "structures; see EXPERIMENTS.md\n"
              "   for the measured ratio against the seed commit)\n\n");

  std::FILE* out = std::fopen("BENCH_sim_throughput.json", "w");
  if (out) {
    std::fprintf(
        out,
        "{\"bench\": \"sim_throughput\", \"smoke\": %s, "
        "\"mesh\": \"8x8\", \"sweep_runs\": %zu, "
        "\"trace_hooks_compiled\": %s, "
        "\"fault_free_cycles_per_sec\": %.0f, "
        "\"fault_free_flits_per_sec\": %.0f, "
        "\"faulted_cycles_per_sec\": %.0f, "
        "\"faulted_flits_per_sec\": %.0f, "
        "\"sweep_reference_seconds\": %.4f, \"sweep_fast_seconds\": %.4f, "
        "\"speedup_vs_reference\": %.3f, \"latencies_identical\": %s}\n",
        smoke ? "true" : "false", ref_jobs.size(),
        // The perf gate compares throughput against an untraced baseline; a
        // boolean (exact-match in the gate, unlike one-sided numerics) makes
        // a mismatched RNOC_TRACE=ON binary fail loudly.
#ifdef RNOC_TRACE
        "true",
#else
        "false",
#endif
        clean.cycles_per_sec,
        clean.flits_per_sec, faulted.cycles_per_sec, faulted.flits_per_sec,
        ref_s, fast_s, speedup, match ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_sim_throughput.json\n");
  }

  if (!match) {
    std::fprintf(stderr,
                 "FAIL: fast-path reports differ from full-sweep reports\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  return run(smoke);
}
