// Reproduces paper Table II: FIT rates of the correction circuitry.
// Paper reference: RC 117, VA 60, SA 53, XB 416 (total 646).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "reliability/fit.hpp"

using namespace rnoc::rel;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_table() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("fit_table2"))
                        .c_str());
  std::printf("paper reference: RC 117 | VA 60 | SA 53 | XB 416 | "
              "total 646\n\n");
}

void BM_CorrectionFitTable(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  for (auto _ : state) {
    auto table = correction_fit_table(g, params);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_CorrectionFitTable);

/// Geometry sweep shows how correction FIT scales with VC count.
void BM_CorrectionFitVsVcs(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  RouterGeometry g;
  g.vcs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto fits = correction_stage_fits(g, params);
    benchmark::DoNotOptimize(fits);
  }
}
BENCHMARK(BM_CorrectionFitVsVcs)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
