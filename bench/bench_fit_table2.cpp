// Reproduces paper Table II: FIT rates of the correction circuitry.
// Paper reference: RC 117, VA 60, SA 53, XB 416 (total 646).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "reliability/fit.hpp"

using namespace rnoc::rel;

namespace {

void print_table() {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  std::printf("%s\n", format_fit_table(correction_fit_table(g, params),
                                       "Table II: FIT of the correction "
                                       "circuitry (failures per 1e9 hours)")
                          .c_str());
  const StageFits s = correction_stage_fits(g, params);
  std::printf("paper reference: RC 117 | VA 60 | SA 53 | XB 416 | total 646\n");
  std::printf("reproduced     : RC %.0f | VA %.0f | SA %.0f | XB %.0f | total %.0f\n\n",
              s.rc, s.va, s.sa, s.xb, s.total());
}

void BM_CorrectionFitTable(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  for (auto _ : state) {
    auto table = correction_fit_table(g, params);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_CorrectionFitTable);

/// Geometry sweep shows how correction FIT scales with VC count.
void BM_CorrectionFitVsVcs(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  RouterGeometry g;
  g.vcs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto fits = correction_stage_fits(g, params);
    benchmark::DoNotOptimize(fits);
  }
}
BENCHMARK(BM_CorrectionFitVsVcs)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
