// Reproduces paper §VII-D (Eqs. 4-7): MTTF of the baseline and protected
// routers and the ~6x reliability improvement, plus a Monte-Carlo
// cross-check of the parallel-pair lifetime.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "common/rng.hpp"
#include "reliability/mttf.hpp"
#include "reliability/structural_mttf.hpp"

using namespace rnoc::rel;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_report() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("mttf"))
                        .c_str());
  std::printf("paper reference: MTTF_baseline 354,358 h | MTTF_protected "
              "2,190,696 h | ~6x improvement\n"
              "(the paper's Eq.5 adds the 1/(l1+l2) term after Gaver 1963; "
              "see EXPERIMENTS.md)\n\n");
}

void BM_MttfReport(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  for (auto _ : state) {
    auto rep = mttf_report(g, params);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_MttfReport);

void BM_MonteCarloMttf(benchmark::State& state) {
  rnoc::Rng rng(7);
  for (auto _ : state) {
    double v = monte_carlo_parallel_mttf(2822.0, 646.0,
                                         static_cast<std::uint64_t>(state.range(0)),
                                         rng);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MonteCarloMttf)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
