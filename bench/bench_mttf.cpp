// Reproduces paper §VII-D (Eqs. 4-7): MTTF of the baseline and protected
// routers and the ~6x reliability improvement, plus a Monte-Carlo
// cross-check of the parallel-pair lifetime.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "reliability/mttf.hpp"
#include "reliability/structural_mttf.hpp"

using namespace rnoc::rel;

namespace {

void print_report() {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  const auto rep = mttf_report(g, params);

  std::printf("MTTF analysis (paper §VII-D)\n");
  std::printf("  lambda1 (baseline pipeline FIT)   : %8.0f\n", rep.fit_baseline);
  std::printf("  lambda2 (correction circuitry FIT): %8.0f\n", rep.fit_correction);
  std::printf("  Eq.4 MTTF_baseline  = 1e9/%0.f%26s = %10.0f h (paper: 354,358)\n",
              rep.fit_baseline, "", rep.mttf_baseline_h);
  std::printf("  Eq.6 MTTF_protected = 1e9/l1 + 1e9/l2 + 1e9/(l1+l2) = %10.0f h (paper: 2,190,696)\n",
              rep.mttf_protected_h);
  std::printf("  Eq.7 improvement    = %.2fx (paper: ~6x)\n\n", rep.improvement);

  rnoc::Rng rng(7);
  const double mc = monte_carlo_parallel_mttf(rep.fit_baseline,
                                              rep.fit_correction, 500000, rng);
  std::printf("cross-checks:\n");
  std::printf("  E[max(X1,X2)] analytic : %10.0f h\n",
              parallel_pair_mttf(rep.fit_baseline, rep.fit_correction));
  std::printf("  E[max(X1,X2)] MonteCarlo (500k trials): %10.0f h\n", mc);
  std::printf("  (the paper's Eq.5 adds the 1/(l1+l2) term after Gaver 1963;\n"
              "   see EXPERIMENTS.md for the discussion)\n\n");

  // Extension: site-level structural MTTF against the real failure
  // predicate, instead of the paper's two-aggregate-block abstraction.
  StructuralMttfConfig base_cfg, prot_cfg;
  base_cfg.mode = rnoc::core::RouterMode::Baseline;
  base_cfg.trials = prot_cfg.trials = 50000;
  const auto base = structural_mttf(base_cfg);
  const auto prot = structural_mttf(prot_cfg);
  std::printf("structural Monte-Carlo (per-site TDDB lifetimes + failure "
              "predicate, 50k trials):\n");
  std::printf("  baseline  MTTF : %10.0f h  (Eq.4 predicts %10.0f)\n",
              base.lifetime_hours.mean(),
              rnoc::kBillionHours / base.total_site_fit);
  std::printf("  protected MTTF : %10.0f h -> improvement %.2fx\n",
              prot.lifetime_hours.mean(),
              prot.lifetime_hours.mean() / base.lifetime_hours.mean());
  std::printf("  %.0f%% of protected lifetimes end at an uncovered P-select "
              "mux\n  (single point of failure the two-block model cannot "
              "see)\n\n",
              100.0 * prot.single_point_fraction);

  // Network view (the paper's motivation: one dead router can paralyze the
  // chip): time to the FIRST failure among the 64 routers of the 8x8 mesh.
  StructuralMttfConfig net_cfg;
  net_cfg.trials = 800;
  StructuralMttfConfig net_base = net_cfg;
  net_base.mode = rnoc::core::RouterMode::Baseline;
  const auto net_b = network_structural_mttf(net_base, 64);
  const auto net_p = network_structural_mttf(net_cfg, 64);
  std::printf("64-router network MTTF (first router failure):\n");
  std::printf("  baseline  : %8.0f h   protected: %8.0f h   (%.2fx)\n\n",
              net_b.lifetime_hours.mean(), net_p.lifetime_hours.mean(),
              net_p.lifetime_hours.mean() / net_b.lifetime_hours.mean());
}

void BM_MttfReport(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  for (auto _ : state) {
    auto rep = mttf_report(g, params);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_MttfReport);

void BM_MonteCarloMttf(benchmark::State& state) {
  rnoc::Rng rng(7);
  for (auto _ : state) {
    double v = monte_carlo_parallel_mttf(2822.0, 646.0,
                                         static_cast<std::uint64_t>(state.range(0)),
                                         rng);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MonteCarloMttf)->Arg(1000)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
