// Ablation A7: reliability vs operating environment. Exercises the V/T
// dependence of the FORC TDDB model (paper Eq. 2): FIT, MTTF and the
// protected router's improvement factor across supply voltages and
// temperatures, plus the wear-out (Weibull) sensitivity of the structural
// MTTF. The paper evaluates only (1 V, 300 K); this sweep shows how far its
// conclusions carry.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "reliability/mttf.hpp"
#include "reliability/structural_mttf.hpp"

using namespace rnoc::rel;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_sweep() {
  std::printf("%s",
              rnoc::campaign::format_result(
                  rnoc::campaign::run_registry_inline("environment_sweep"))
                  .c_str());
  std::printf("FIT scales steeply with voltage and temperature (Eq. 2), but "
              "the improvement\nfactor is invariant; wear-out (Weibull shape "
              "> 1) squeezes the redundancy win.\nThe paper evaluates only "
              "(1 V, 300 K).\n\n");
}

void BM_MttfAtOperatingPoint(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  OperatingPoint op{1.0, static_cast<double>(state.range(0))};
  for (auto _ : state) {
    auto rep = mttf_report(g, params, false, op);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_MttfAtOperatingPoint)->Arg(300)->Arg(360);

void BM_StructuralMttfWeibull(benchmark::State& state) {
  StructuralMttfConfig cfg;
  cfg.trials = 2000;
  cfg.weibull_shape = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto r = structural_mttf(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StructuralMttfWeibull)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
