// Ablation A7: reliability vs operating environment. Exercises the V/T
// dependence of the FORC TDDB model (paper Eq. 2): FIT, MTTF and the
// protected router's improvement factor across supply voltages and
// temperatures, plus the wear-out (Weibull) sensitivity of the structural
// MTTF. The paper evaluates only (1 V, 300 K); this sweep shows how far its
// conclusions carry.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/thread_pool.hpp"
#include "reliability/mttf.hpp"
#include "reliability/structural_mttf.hpp"

using namespace rnoc::rel;

namespace {

constexpr double kVdds[] = {0.9, 1.0, 1.1};
constexpr double kTemps[] = {300.0, 330.0, 360.0};
constexpr double kShapes[] = {1.0, 1.5, 2.0, 3.0};

void print_sweep() {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;

  // Evaluate the V/T grid in parallel, then print in order. The inner
  // structural_mttf Monte-Carlo also uses global_pool(); its nested
  // parallel_for runs inline on the worker (see common/thread_pool.hpp).
  std::vector<MttfReport> grid(std::size(kVdds) * std::size(kTemps));
  rnoc::global_pool().parallel_for(grid.size(), [&](std::size_t i,
                                                    std::size_t) {
    const double vdd = kVdds[i / std::size(kTemps)];
    const double temp = kTemps[i % std::size(kTemps)];
    grid[i] = mttf_report(g, params, /*as_printed=*/false, {vdd, temp});
  });

  std::printf("Reliability vs operating point (ablation A7; paper point is "
              "1.0 V / 300 K)\n\n");
  std::printf("%8s %8s %14s %14s %12s\n", "Vdd", "T(K)", "baseline FIT",
              "MTTF base (h)", "improvement");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::printf("%8.2f %8.0f %14.1f %14.0f %11.2fx\n",
                kVdds[i / std::size(kTemps)], kTemps[i % std::size(kTemps)],
                grid[i].fit_baseline, grid[i].mttf_baseline_h,
                grid[i].improvement);
  }
  std::printf("\nFIT scales steeply with voltage and temperature (Eq. 2), "
              "but the improvement\nfactor is invariant: both the pipeline "
              "and its correction circuitry accelerate\ntogether. The "
              "paper's 6x claim is operating-point-independent.\n\n");

  // shape x {baseline, protected} lifetimes, also fanned out on the pool.
  std::vector<double> lifetimes(2 * std::size(kShapes));
  rnoc::global_pool().parallel_for(
      lifetimes.size(), [&](std::size_t i, std::size_t) {
        StructuralMttfConfig cfg;
        if (i % 2 == 0) cfg.mode = rnoc::core::RouterMode::Baseline;
        cfg.trials = 20000;
        cfg.weibull_shape = kShapes[i / 2];
        lifetimes[i] = structural_mttf(cfg).lifetime_hours.mean();
      });

  std::printf("Structural MTTF vs hazard shape (Weibull; 1.0 = exponential "
              "/ SOFR):\n");
  std::printf("%8s %16s %16s %12s\n", "shape", "baseline (h)",
              "protected (h)", "improvement");
  for (std::size_t s = 0; s < std::size(kShapes); ++s) {
    const double mb = lifetimes[2 * s];
    const double mp = lifetimes[2 * s + 1];
    std::printf("%8.1f %16.0f %16.0f %11.2fx\n", kShapes[s], mb, mp, mp / mb);
  }
  std::printf("\nWear-out (shape > 1) squeezes the redundancy win: spare and "
              "primary age\ntogether, so the second failure follows the "
              "first sooner than exponential\nhazards predict — the MTTF "
              "improvement shrinks as hazards steepen.\n\n");
}

void BM_MttfAtOperatingPoint(benchmark::State& state) {
  const auto params = paper_calibrated_params();
  const RouterGeometry g;
  OperatingPoint op{1.0, static_cast<double>(state.range(0))};
  for (auto _ : state) {
    auto rep = mttf_report(g, params, false, op);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_MttfAtOperatingPoint)->Arg(300)->Arg(360);

void BM_StructuralMttfWeibull(benchmark::State& state) {
  StructuralMttfConfig cfg;
  cfg.trials = 2000;
  cfg.weibull_shape = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto r = structural_mttf(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StructuralMttfWeibull)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
