// Forwarder: the Figure 7 / Figure 8 latency harness moved into the library
// as src/campaign/figures.hpp so the campaign registry and these benches
// share one definition of the experiment. This header keeps the historical
// rnoc::benchx names used by the benchmark registrations.
#pragma once

#include "campaign/figures.hpp"
#include "campaign/registry.hpp"

namespace rnoc::benchx {

using campaign::AppLatency;

inline noc::SimConfig figure_sim_config() {
  return campaign::figure_sim_config(/*smoke=*/false);
}

inline std::vector<noc::SweepJob> app_jobs(const traffic::AppProfile& profile,
                                           const noc::SimConfig& cfg,
                                           std::uint64_t seed) {
  return campaign::figure_app_jobs(profile, cfg, seed);
}

inline AppLatency run_app(const traffic::AppProfile& profile,
                          const noc::SimConfig& cfg, std::uint64_t seed) {
  return campaign::run_figure_app(profile, cfg, seed);
}

}  // namespace rnoc::benchx
