// Shared harness for the Figure 7 / Figure 8 latency reproductions: run each
// benchmark application on the 8x8 protected mesh fault-free and with the
// paper's per-stage fault schedule, and report both latencies.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/sweep.hpp"
#include "traffic/app_profiles.hpp"

namespace rnoc::benchx {

struct AppLatency {
  std::string name;
  double fault_free = 0.0;
  double with_faults = 0.0;
  double increase() const { return with_faults / fault_free - 1.0; }
};

inline noc::SimConfig figure_sim_config() {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};  // the paper's 64-core mesh
  cfg.mesh.router.mode = core::RouterMode::Protected;
  cfg.warmup = 3000;
  cfg.measure = 10000;
  cfg.drain_limit = 20000;
  return cfg;
}

/// The paper's §IX schedule scaled to simulation length: one permanent fault
/// per pipeline stage on every router, staggered through warmup.
inline fault::FaultPlan figure_fault_plan(const noc::SimConfig& cfg,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> all;
  for (NodeId n = 0; n < cfg.mesh.dims.nodes(); ++n) all.push_back(n);
  return fault::FaultPlan::per_stage(
      cfg.mesh.dims, {noc::kMeshPorts, cfg.mesh.router.vcs}, all,
      cfg.warmup / 5, rng);
}

/// The fault-free/faulted job pair for one application. The two jobs share
/// a config and seed but own separate traffic-model instances, so they can
/// run on different workers.
inline std::vector<noc::SweepJob> app_jobs(const traffic::AppProfile& profile,
                                           const noc::SimConfig& cfg,
                                           std::uint64_t seed) {
  noc::SweepJob clean;
  clean.cfg = cfg;
  clean.make_traffic = [profile] { return traffic::make_traffic(profile); };
  noc::SweepJob faulty = clean;
  faulty.faults = figure_fault_plan(cfg, seed);
  return {std::move(clean), std::move(faulty)};
}

inline AppLatency check_app_pair(const std::string& name,
                                 const noc::SimReport& clean,
                                 const noc::SimReport& faulty) {
  require(!clean.deadlock_suspected,
          "latency bench: fault-free run deadlocked");
  require(!faulty.deadlock_suspected, "latency bench: faulty run deadlocked");
  require(faulty.undelivered_flits == 0,
          "latency bench: protected run lost flits");
  return {name, clean.avg_total_latency(), faulty.avg_total_latency()};
}

inline AppLatency run_app(const traffic::AppProfile& profile,
                          const noc::SimConfig& cfg, std::uint64_t seed) {
  const auto reports = noc::SweepRunner().run(app_jobs(profile, cfg, seed));
  return check_app_pair(profile.name, reports[0], reports[1]);
}

inline void print_figure(const char* title,
                         const std::vector<traffic::AppProfile>& apps,
                         double paper_overall_increase) {
  // One batch of (fault-free, faulted) pairs across the whole figure; the
  // sweep runner fans the 2 x apps simulations out over the thread pool.
  std::vector<noc::SweepJob> jobs;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    auto pair = app_jobs(apps[i], figure_sim_config(), 1000 + i);
    for (auto& j : pair) jobs.push_back(std::move(j));
  }
  const auto reports = noc::SweepRunner().run(jobs);

  std::printf("%s\n", title);
  std::printf("fault schedule: one permanent fault per pipeline stage per "
              "router (paper §IX, scaled)\n\n");
  std::printf("%-14s %12s %12s %10s\n", "benchmark", "fault-free",
              "with faults", "increase");
  double sum_ff = 0.0, sum_f = 0.0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const AppLatency r =
        check_app_pair(apps[i].name, reports[2 * i], reports[2 * i + 1]);
    std::printf("%-14s %9.2f cy %9.2f cy %+9.1f%%\n", r.name.c_str(),
                r.fault_free, r.with_faults, 100 * r.increase());
    sum_ff += r.fault_free;
    sum_f += r.with_faults;
  }
  const double overall = sum_f / sum_ff - 1.0;
  std::printf("%-14s %12s %12s %+9.1f%%   (paper: ~%.0f%%)\n\n", "OVERALL", "",
              "", 100 * overall, 100 * paper_overall_increase);
}

}  // namespace rnoc::benchx
