// Reproduces paper §VI-B: per-stage critical-path impact of the correction
// circuitry, found by the zero-slack clock sweep.
// Paper reference: RC ~0%, VA +20%, SA +10%, XB +25%.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "campaign/registry.hpp"
#include "synthesis/timing.hpp"

using namespace rnoc::synth;

namespace {

// Thin wrapper over the campaign registry: the experiment definition lives
// in src/campaign/registry.cpp; this binary keeps the historical CLI.
void print_report() {
  std::printf("%s", rnoc::campaign::format_result(
                        rnoc::campaign::run_registry_inline("critical_path"))
                        .c_str());
  std::printf("paper reference: RC ~0%% | VA +20%% | SA +10%% | XB +25%% "
              "critical-path overhead\n\n");
}

void BM_CriticalPathReport(benchmark::State& state) {
  const rnoc::rel::RouterGeometry g;
  for (auto _ : state) {
    auto t = critical_path_report(g);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_CriticalPathReport);

void BM_ZeroSlackSweep(benchmark::State& state) {
  const rnoc::rel::RouterGeometry g;
  const auto& lib = CellLibrary::generic45();
  const auto path = protected_critical_path(Stage::XB, g);
  for (auto _ : state) {
    double p = zero_slack_period(path, lib);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ZeroSlackSweep);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
