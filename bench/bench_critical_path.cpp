// Reproduces paper §VI-B: per-stage critical-path impact of the correction
// circuitry, found by the zero-slack clock sweep.
// Paper reference: RC ~0%, VA +20%, SA +10%, XB +25%.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "synthesis/timing.hpp"

using namespace rnoc::synth;

namespace {

void print_report() {
  const rnoc::rel::RouterGeometry g;
  const auto& lib = CellLibrary::generic45();
  const TimingReport t = critical_path_report(g);

  std::printf("Critical-path analysis (paper §VI-B), zero-slack clock sweep\n\n");
  std::printf("%-6s %14s %15s %10s %10s\n", "stage", "baseline (ps)",
              "protected (ps)", "overhead", "paper");
  auto row = [&](const char* n, const StageTiming& s, const char* paper) {
    std::printf("%-6s %14.0f %15.0f %9.1f%% %10s\n", n, s.baseline_ps,
                s.protected_ps, 100 * s.overhead(), paper);
  };
  row("RC", t.rc, "~0%");
  row("VA", t.va, "+20%");
  row("SA", t.sa, "+10%");
  row("XB", t.xb, "+25%");

  // Demonstrate the zero-slack sweep itself on the protected VA stage.
  const auto path = protected_critical_path(Stage::VA, g);
  std::printf("\nzero-slack clock period for protected VA stage: %.1f ps "
              "(path delay %.1f ps)\n\n",
              zero_slack_period(path, lib), path_delay_ps(path, lib));

  // Frequency-derating analysis (not in the paper): if the protected router
  // must clock at its own worst stage instead of the baseline's, each cycle
  // lengthens — a real-time cost on top of the cycle-count penalties of
  // Figures 7/8.
  double base_period = 0.0, prot_period = 0.0;
  for (const StageTiming* s : {&t.rc, &t.va, &t.sa, &t.xb}) {
    base_period = std::max(base_period, s->baseline_ps);
    prot_period = std::max(prot_period, s->protected_ps);
  }
  std::printf("clock derating: baseline period %.0f ps (%.2f GHz) -> "
              "protected %.0f ps (%.2f GHz), %+.1f%% per-cycle time\n",
              base_period, 1000.0 / base_period, prot_period,
              1000.0 / prot_period,
              100.0 * (prot_period / base_period - 1.0));
  std::printf("combined with Fig.7's +10%% cycles, wall-clock latency grows "
              "~%+.0f%% if the\nprotected router cannot hide the slower "
              "stage (the paper reports cycle counts).\n\n",
              100.0 * (1.10 * prot_period / base_period - 1.0));
}

void BM_CriticalPathReport(benchmark::State& state) {
  const rnoc::rel::RouterGeometry g;
  for (auto _ : state) {
    auto t = critical_path_report(g);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_CriticalPathReport);

void BM_ZeroSlackSweep(benchmark::State& state) {
  const rnoc::rel::RouterGeometry g;
  const auto& lib = CellLibrary::generic45();
  const auto path = protected_critical_path(Stage::XB, g);
  for (auto _ : state) {
    double p = zero_slack_period(path, lib);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ZeroSlackSweep);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
