// Fault-injection study: sweep the number of injected permanent faults and
// chart how the protected network's latency degrades while delivery stays
// perfect — then show the baseline router collapsing under a handful of
// faults. Reproduces the qualitative story behind the paper's Figures 7/8.
//
//   ./fault_injection_study [benchmark=ocean]
#include <cstdio>
#include <string>

#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "traffic/app_profiles.hpp"

using namespace rnoc;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "ocean";
  const auto& profile = traffic::find_profile(app);
  auto traffic = traffic::make_traffic(profile);

  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.warmup = 3000;
  cfg.measure = 12000;
  cfg.drain_limit = 20000;

  std::printf("fault-injection study on %s (%s) over an 8x8 mesh\n\n",
              profile.name.c_str(), profile.suite.c_str());

  noc::Simulator clean(cfg, traffic);
  const double base_latency = clean.run().avg_total_latency();
  std::printf("%8s %12s %10s %12s %12s\n", "faults", "latency", "cost",
              "delivered", "events/kcyc");

  for (const int faults : {0, 8, 16, 32, 64, 128, 192, 256}) {
    Rng rng(1234 + static_cast<std::uint64_t>(faults));
    noc::Simulator sim(cfg, traffic);
    if (faults > 0) {
      sim.set_fault_plan(fault::FaultPlan::random(
          cfg.mesh.dims, {noc::kMeshPorts, cfg.mesh.router.vcs},
          core::RouterMode::Protected, faults, cfg.warmup, rng, true));
    }
    const auto rep = sim.run();
    const auto& ev = rep.router_events;
    const double events =
        static_cast<double>(ev.va1_borrows + ev.sa1_bypass_grants +
                            ev.sa1_transfers + ev.xb_secondary_traversals +
                            ev.va2_retries) /
        (static_cast<double>(rep.cycles_run) / 1000.0);
    std::printf("%8d %9.2f cy %+8.1f%% %11llu%c %12.1f\n", faults,
                rep.avg_total_latency(),
                100.0 * (rep.avg_total_latency() / base_latency - 1.0),
                static_cast<unsigned long long>(rep.packets_received),
                rep.undelivered_flits == 0 ? ' ' : '!', events);
  }

  std::printf("\nbaseline (unprotected) router for comparison:\n");
  for (const int faults : {1, 2, 4, 8}) {
    Rng rng(77 + static_cast<std::uint64_t>(faults));
    noc::SimConfig bcfg = cfg;
    bcfg.mesh.router.mode = core::RouterMode::Baseline;
    bcfg.progress_timeout = 5000;
    noc::Simulator sim(bcfg, traffic);
    sim.set_fault_plan(fault::FaultPlan::random(
        bcfg.mesh.dims, {noc::kMeshPorts, bcfg.mesh.router.vcs},
        core::RouterMode::Baseline, faults, bcfg.warmup, rng, false));
    const auto rep = sim.run();
    std::printf("  %2d faults: %s, %llu flits stranded\n", faults,
                rep.deadlock_suspected ? "network wedged (deadlock watchdog)"
                                       : "finished",
                static_cast<unsigned long long>(rep.undelivered_flits));
  }
  return 0;
}
