// Quickstart: simulate an 8x8 mesh of protected routers under uniform random
// traffic, print latency/throughput, then repeat with permanent faults
// injected and watch the fault-tolerance mechanisms keep traffic flowing.
//
//   ./quickstart [injection_rate] [num_faults]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

void print_report(const char* label, const noc::SimReport& rep) {
  std::printf("%-22s avg latency %6.2f cycles | network %6.2f | "
              "%llu packets | throughput %.4f flits/node/cycle%s\n",
              label, rep.avg_total_latency(), rep.avg_network_latency(),
              static_cast<unsigned long long>(rep.packets_received),
              rep.throughput_flits_node_cycle,
              rep.deadlock_suspected ? " [DEADLOCK]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const double rate = argc > 1 ? std::atof(argv[1]) : 0.10;
  const int faults = argc > 2 ? std::atoi(argv[2]) : 64;

  // Configure the network: 8x8 mesh, 5-port routers, 4 VCs, 4-flit buffers,
  // the paper's protected router mode.
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.mesh.router.mode = core::RouterMode::Protected;
  cfg.warmup = 3000;
  cfg.measure = 15000;
  cfg.drain_limit = 20000;

  traffic::SyntheticConfig tc;
  tc.pattern = traffic::Pattern::UniformRandom;
  tc.injection_rate = rate;
  tc.packet_size = 5;
  auto traffic = std::make_shared<traffic::SyntheticTraffic>(tc);

  std::printf("rnoc quickstart: 8x8 mesh, uniform random, %.2f flits/node/cycle\n\n",
              rate);

  // 1) Fault-free run.
  noc::Simulator clean(cfg, traffic);
  const auto clean_rep = clean.run();
  print_report("fault-free:", clean_rep);

  // 2) Same network with permanent faults injected during warmup.
  Rng rng(2024);
  noc::Simulator faulty(cfg, traffic);
  faulty.set_fault_plan(fault::FaultPlan::random(
      cfg.mesh.dims, {noc::kMeshPorts, cfg.mesh.router.vcs},
      core::RouterMode::Protected, faults, cfg.warmup, rng,
      /*tolerable_only=*/true));
  const auto rep = faulty.run();
  std::printf("\ninjected %d permanent faults across the mesh\n", faults);
  print_report("with faults:", rep);

  std::printf("\nlatency cost of the faults: %+.1f%%\n",
              100.0 * (rep.avg_total_latency() / clean_rep.avg_total_latency() -
                       1.0));
  std::printf("undelivered flits: %llu (the protected router drops nothing)\n\n",
              static_cast<unsigned long long>(rep.undelivered_flits));

  const auto& ev = rep.router_events;
  std::printf("protection mechanisms engaged:\n");
  std::printf("  RC spare-unit switches        %10llu\n",
              static_cast<unsigned long long>(ev.rc_spare_uses));
  std::printf("  VA arbiter borrows            %10llu\n",
              static_cast<unsigned long long>(ev.va1_borrows));
  std::printf("  VA stage-2 reallocations      %10llu\n",
              static_cast<unsigned long long>(ev.va2_retries));
  std::printf("  SA bypass grants              %10llu\n",
              static_cast<unsigned long long>(ev.sa1_bypass_grants));
  std::printf("  SA VC-to-VC transfers         %10llu\n",
              static_cast<unsigned long long>(ev.sa1_transfers));
  std::printf("  XB secondary-path traversals  %10llu\n",
              static_cast<unsigned long long>(ev.xb_secondary_traversals));
  return 0;
}
