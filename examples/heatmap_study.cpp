// Spatial study: where does traffic actually go when a router breaks?
// Renders traversal/occupancy heatmaps for three scenarios — a healthy mesh,
// a mesh with a faulted-but-protected router (load stays put), and a
// baseline mesh detouring around a dead link via fault-aware tables (load
// visibly piles onto the detour).
#include <cstdio>

#include "noc/simulator.hpp"
#include "noc/table_routing.hpp"
#include "noc/telemetry.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

noc::SimConfig sim_config(core::RouterMode mode) {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.mesh.router.mode = mode;
  cfg.warmup = 1000;
  cfg.measure = 8000;
  cfg.drain_limit = 15000;
  cfg.telemetry_interval = 16;
  return cfg;
}

std::shared_ptr<traffic::TrafficModel> traffic_model() {
  traffic::SyntheticConfig tc;
  tc.injection_rate = 0.10;
  tc.packet_size = 5;
  return std::make_shared<traffic::SyntheticTraffic>(tc);
}

}  // namespace

int main() {
  const NodeId victim = noc::MeshDims{8, 8}.node_of({3, 3});

  std::printf("=== healthy mesh (uniform 0.10) ===\n");
  {
    noc::Simulator sim(sim_config(core::RouterMode::Protected),
                       traffic_model());
    const auto rep = sim.run();
    std::printf("latency %.2f cy\n%s\n", rep.avg_total_latency(),
                noc::heatmap(sim.mesh(), noc::HeatmapMetric::Traversals).c_str());
  }

  std::printf("=== protected router (3,3) carrying 4 faults ===\n");
  {
    noc::Simulator sim(sim_config(core::RouterMode::Protected),
                       traffic_model());
    fault::FaultPlan plan;
    plan.add(100, victim, {fault::SiteType::RcPrimary, 1, 0});
    plan.add(200, victim, {fault::SiteType::Va1ArbiterSet, 2, 0});
    plan.add(300, victim, {fault::SiteType::Sa1Arbiter, 3, 0});
    plan.add(400, victim, {fault::SiteType::XbMux, 2, 0});
    sim.set_fault_plan(std::move(plan));
    const auto rep = sim.run();
    std::printf("latency %.2f cy — traffic still flows through (3,3):\n%s\n",
                rep.avg_total_latency(),
                noc::heatmap(sim.mesh(), noc::HeatmapMetric::Traversals).c_str());
    std::printf("blocked-cycle map (protection absorbs the faults):\n%s\n",
                noc::heatmap(sim.mesh(), noc::HeatmapMetric::BlockedCycles).c_str());
  }

  std::printf("=== baseline mesh, dead East link at (3,3), rerouted ===\n");
  {
    auto cfg = sim_config(core::RouterMode::Baseline);
    noc::Simulator sim(cfg, traffic_model());
    const auto tables = noc::FaultAwareTables::build(
        cfg.mesh.dims, {{victim, noc::port_of(noc::Direction::East)}});
    sim.mesh().set_routing_tables(&tables);
    fault::FaultPlan plan;
    plan.add(0, victim, {fault::SiteType::XbMux,
                         noc::port_of(noc::Direction::East), 0});
    sim.set_fault_plan(std::move(plan));
    const auto rep = sim.run();
    std::printf("latency %.2f cy — the detour concentrates load around "
                "(3,3):\n%s\n",
                rep.avg_total_latency(),
                noc::heatmap(sim.mesh(), noc::HeatmapMetric::Traversals).c_str());
    std::printf("average buffer occupancy:\n%s\n",
                sim.occupancy().heatmap(cfg.mesh.dims).c_str());
  }
  return 0;
}
