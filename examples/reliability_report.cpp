// Reliability report: prints the paper's full reliability analysis for a
// configurable router geometry — itemized FIT tables (Tables I/II), MTTF
// (Eqs. 4-7), synthesis overheads (§VI) and SPF (§VIII, Table III).
//
//   ./reliability_report [ports=5] [vcs=4]
#include <cstdio>
#include <cstdlib>

#include "baselines/bulletproof.hpp"
#include "baselines/roco.hpp"
#include "baselines/vicis.hpp"
#include "core/spf_analysis.hpp"
#include "core/spf_montecarlo.hpp"
#include "reliability/fit.hpp"
#include "reliability/mttf.hpp"
#include "synthesis/router_netlists.hpp"
#include "synthesis/timing.hpp"

using namespace rnoc;

int main(int argc, char** argv) {
  rel::RouterGeometry g;
  if (argc > 1) g.ports = std::atoi(argv[1]);
  if (argc > 2) g.vcs = std::atoi(argv[2]);
  const auto params = rel::paper_calibrated_params();

  std::printf("==== rnoc reliability report: %dx%d router, %d VCs/port ====\n\n",
              g.ports, g.ports, g.vcs);

  std::printf("%s\n", rel::format_fit_table(
                          rel::baseline_fit_table(g, params),
                          "Table I: FIT of baseline pipeline stages").c_str());
  std::printf("%s\n", rel::format_fit_table(
                          rel::correction_fit_table(g, params),
                          "Table II: FIT of correction circuitry").c_str());

  const auto mttf = rel::mttf_report(g, params);
  std::printf("MTTF analysis (TDDB, SOFR):\n");
  std::printf("  baseline pipeline FIT  : %8.0f -> MTTF %10.0f h\n",
              mttf.fit_baseline, mttf.mttf_baseline_h);
  std::printf("  correction circuit FIT : %8.0f\n", mttf.fit_correction);
  std::printf("  protected router MTTF  : %10.0f h\n", mttf.mttf_protected_h);
  std::printf("  reliability improvement: %.2fx\n\n", mttf.improvement);

  const auto synth = synth::synthesize(g);
  std::printf("Synthesis (45 nm cell-library model):\n");
  std::printf("  baseline pipeline area : %8.0f um^2, power %8.0f uW\n",
              synth.base_area_um2, synth.base_power_uw);
  std::printf("  correction circuitry   : %8.0f um^2, power %8.0f uW\n",
              synth.corr_area_um2, synth.corr_power_uw);
  std::printf("  area overhead  %.1f%% (+detection: %.1f%%)\n",
              100 * synth.area_overhead,
              100 * synth.area_overhead_with_detection);
  std::printf("  power overhead %.1f%% (+detection: %.1f%%)\n\n",
              100 * synth.power_overhead,
              100 * synth.power_overhead_with_detection);

  const auto timing = synth::critical_path_report(g);
  std::printf("Critical path (baseline -> protected, ps):\n");
  std::printf("  RC %6.0f -> %6.0f (%+.1f%%)\n", timing.rc.baseline_ps,
              timing.rc.protected_ps, 100 * timing.rc.overhead());
  std::printf("  VA %6.0f -> %6.0f (%+.1f%%)\n", timing.va.baseline_ps,
              timing.va.protected_ps, 100 * timing.va.overhead());
  std::printf("  SA %6.0f -> %6.0f (%+.1f%%)\n", timing.sa.baseline_ps,
              timing.sa.protected_ps, 100 * timing.sa.overhead());
  std::printf("  XB %6.0f -> %6.0f (%+.1f%%)\n\n", timing.xb.baseline_ps,
              timing.xb.protected_ps, 100 * timing.xb.overhead());

  const auto spf =
      core::analytic_spf(g.ports, g.vcs, synth.area_overhead_with_detection);
  std::printf("SPF (analytic, paper §VIII):\n");
  for (const auto& s : spf.stages)
    std::printf("  %-3s min-to-fail %2d  max-tolerated %2d  (%s)\n",
                s.stage.c_str(), s.min_faults_to_failure,
                s.max_faults_tolerated, s.mechanism.c_str());
  std::printf("  min %d, max tolerated %d, mean %.1f -> SPF %.2f\n\n",
              spf.min_faults_to_failure, spf.max_faults_tolerated,
              spf.mean_faults_to_failure, spf.spf);

  core::SpfMcConfig mc;
  mc.geometry = {g.ports, g.vcs};
  mc.area_overhead = synth.area_overhead_with_detection;
  const auto mcr = core::monte_carlo_spf(mc);
  std::printf("SPF (Monte Carlo, random fault placement, %llu trials):\n",
              static_cast<unsigned long long>(mc.trials));
  std::printf("  faults-to-failure mean %.2f [min %.0f, max %.0f] -> SPF %.2f\n\n",
              mcr.faults_to_failure.mean(), mcr.faults_to_failure.min(),
              mcr.faults_to_failure.max(), mcr.spf);

  std::printf("Table III comparison:\n");
  const auto bp = baselines::bulletproof_published();
  std::printf("  %-12s area %4.0f%%  faults-to-fail %5.2f  SPF %5.2f\n",
              bp.name, 100 * bp.area_overhead, bp.faults_to_failure, bp.spf);
  std::printf("  %-12s area %4.0f%%  faults-to-fail %5.2f  SPF %5.2f\n",
              "Vicis", 100 * baselines::vicis_published_area(),
              baselines::vicis_published_ftf(), baselines::vicis_published_spf());
  std::printf("  %-12s area  N/A   faults-to-fail %5.2f  SPF <%4.2f\n", "RoCo",
              baselines::roco_published_ftf(),
              baselines::roco_published_spf_upper_bound());
  std::printf("  %-12s area %4.0f%%  faults-to-fail %5.2f  SPF %5.2f  <-- this work\n",
              "Proposed", 100 * synth.area_overhead_with_detection,
              spf.mean_faults_to_failure, spf.spf);
  return 0;
}
