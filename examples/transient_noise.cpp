// Transient-vs-permanent fault study (extension; the paper's §V targets
// permanent faults and assumes transients are handled by lower-level
// mechanisms). Shows that the protected router rides out transient bursts
// with a bounded latency blip and no loss — and that even the *baseline*
// router survives transients, because the blocage clears when the fault
// does; permanence is what makes the baseline collapse.
//
//   ./transient_noise [bursts=200] [duration=100]
#include <cstdio>
#include <cstdlib>

#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "traffic/patterns.hpp"

using namespace rnoc;

namespace {

noc::SimConfig sim_config(core::RouterMode mode) {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};
  cfg.mesh.router.mode = mode;
  cfg.warmup = 2000;
  cfg.measure = 10000;
  cfg.drain_limit = 20000;
  cfg.progress_timeout = 10000;
  return cfg;
}

std::shared_ptr<traffic::TrafficModel> traffic_model() {
  traffic::SyntheticConfig tc;
  tc.injection_rate = 0.10;
  tc.packet_size = 5;
  return std::make_shared<traffic::SyntheticTraffic>(tc);
}

void report(const char* label, const noc::SimReport& rep, double base) {
  std::printf("  %-34s %7.2f cy (%+5.1f%%)  undelivered %llu%s\n", label,
              rep.avg_total_latency(),
              100.0 * (rep.avg_total_latency() / base - 1.0),
              static_cast<unsigned long long>(rep.undelivered_flits),
              rep.deadlock_suspected ? "  [WEDGED]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const int bursts = argc > 1 ? std::atoi(argv[1]) : 200;
  const Cycle duration = argc > 2 ? static_cast<Cycle>(std::atoll(argv[2])) : 100;
  const fault::FaultGeometry geom{noc::kMeshPorts, 4};

  double base;
  {
    noc::Simulator sim(sim_config(core::RouterMode::Protected),
                       traffic_model());
    base = sim.run().avg_total_latency();
  }
  std::printf("transient-fault study: %d transients of %llu cycles each, "
              "8x8 mesh, uniform 0.10\nfault-free latency: %.2f cycles\n\n",
              bursts, static_cast<unsigned long long>(duration), base);

  for (const auto mode :
       {core::RouterMode::Protected, core::RouterMode::Baseline}) {
    const char* mname =
        mode == core::RouterMode::Protected ? "protected" : "baseline";
    std::printf("%s router:\n", mname);

    {  // Transient burst.
      auto cfg = sim_config(mode);
      noc::Simulator sim(cfg, traffic_model());
      Rng rng(99);
      sim.set_fault_plan(fault::FaultPlan::transient_burst(
          cfg.mesh.dims, geom, bursts, cfg.warmup + cfg.measure, duration,
          rng));
      report("transient burst", sim.run(), base);
    }
    {  // The same number of faults, but permanent.
      auto cfg = sim_config(mode);
      noc::Simulator sim(cfg, traffic_model());
      Rng rng(99);
      const bool tolerable = mode == core::RouterMode::Protected;
      int count = tolerable ? bursts / 4 : 8;
      sim.set_fault_plan(fault::FaultPlan::random(cfg.mesh.dims, geom, mode,
                                                  count, cfg.warmup, rng,
                                                  tolerable));
      char label[64];
      std::snprintf(label, sizeof label, "%d permanent faults", count);
      report(label, sim.run(), base);
    }
    std::printf("\n");
  }
  return 0;
}
