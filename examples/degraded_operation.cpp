// Degraded-operation walkthrough: drives a single protected router through
// every fault scenario of paper §V, one mechanism at a time, printing what
// the correction circuitry does and what each tolerance costs in cycles.
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "core/protection.hpp"
#include "noc/router.hpp"

using namespace rnoc;
using namespace rnoc::noc;

namespace {

/// Minimal single-router rig (center of a 3x3 mesh; all ports legal routes).
struct Rig {
  explicit Rig(core::RouterMode mode) {
    RouterConfig cfg;
    cfg.mode = mode;
    cfg.default_winner_epoch = 1000;
    router = std::make_unique<Router>(4, MeshDims{3, 3}, cfg);
    for (int p = 0; p < kMeshPorts; ++p) {
      in.push_back(std::make_unique<Link>());
      out.push_back(std::make_unique<Link>());
      router->attach_input(p, in.back().get());
      router->attach_output(p, out.back().get());
    }
  }

  void step(Cycle now) {
    router->step_accept(now);
    router->step_st(now);
    router->step_sa(now);
    router->step_va(now);
    router->step_rc(now);
  }

  /// Sends a single-flit packet into `in_port` heading out of `out_dir`;
  /// returns the delivery cycle, or nullopt if blocked within 40 cycles.
  std::optional<Cycle> shoot(int in_port, Direction out_dir, int vc = 0) {
    static const NodeId dst_of[] = {4, 1, 5, 7, 3};  // Local,N,E,S,W
    Flit f;
    f.type = FlitType::HeadTail;
    f.packet = ++next_packet;
    f.src = 0;
    f.dst = dst_of[port_of(out_dir)];
    f.vc = vc;
    in[static_cast<std::size_t>(in_port)]->push_flit(f, clock);
    ++clock;
    for (Cycle end = clock + 40; clock < end; ++clock) {
      step(clock);
      if (out[static_cast<std::size_t>(port_of(out_dir))]->take_flit(clock)) {
        const Cycle arrival = clock;
        ++clock;
        return arrival;
      }
      // Recycle credits so repeated shots never stall on flow control.
      for (int p = 0; p < kMeshPorts; ++p)
        while (in[static_cast<std::size_t>(p)]->take_credit(clock)) {
        }
    }
    return std::nullopt;
  }

  std::unique_ptr<Router> router;
  std::vector<std::unique_ptr<Link>> in, out;
  Cycle clock = 0;
  PacketId next_packet = 0;
};

void report(const char* what, std::optional<Cycle> sent_at,
            std::optional<Cycle> baseline_cost, std::optional<Cycle> got) {
  if (got && sent_at) {
    const Cycle cost = *got - *sent_at;
    std::printf("  %-46s delivered, %llu cycles", what,
                static_cast<unsigned long long>(cost));
    if (baseline_cost)
      std::printf(" (%+lld vs fault-free)",
                  static_cast<long long>(cost) -
                      static_cast<long long>(*baseline_cost));
    std::printf("\n");
  } else {
    std::printf("  %-46s BLOCKED (fault not tolerable)\n", what);
  }
}

}  // namespace

int main() {
  using fault::SiteType;
  const int west = port_of(Direction::West);
  const int east = port_of(Direction::East);

  std::printf("degraded-operation walkthrough (paper §V mechanisms)\n\n");

  // Fault-free reference cost.
  Cycle ref_cost;
  {
    Rig rig(core::RouterMode::Protected);
    const Cycle sent = rig.clock;
    const auto got = rig.shoot(west, Direction::East);
    ref_cost = *got - sent;
    std::printf("fault-free router: %llu cycles through the 4-stage pipeline\n\n",
                static_cast<unsigned long long>(ref_cost));
  }

  std::printf("RC stage — spatial redundancy:\n");
  {
    Rig rig(core::RouterMode::Protected);
    rig.router->faults().inject({SiteType::RcPrimary, west, 0});
    const Cycle sent = rig.clock;
    report("primary RC unit dead (spare takes over)", sent, ref_cost,
           rig.shoot(west, Direction::East));
    rig.router->faults().inject({SiteType::RcSpare, west, 0});
    const Cycle sent2 = rig.clock;
    report("both RC units dead", sent2, ref_cost,
           rig.shoot(west, Direction::East));
  }

  std::printf("\nVA stage 1 — arbiter sharing between VCs:\n");
  {
    Rig rig(core::RouterMode::Protected);
    rig.router->faults().inject({SiteType::Va1ArbiterSet, west, 0});
    const Cycle sent = rig.clock;
    report("VC0 arbiter set dead (borrows from idle VC1)", sent, ref_cost,
           rig.shoot(west, Direction::East, 0));
    std::printf("    borrows recorded: %llu\n",
                static_cast<unsigned long long>(
                    rig.router->stats().va1_borrows));
  }

  std::printf("\nVA stage 2 — inherent redundancy (retry):\n");
  {
    Rig rig(core::RouterMode::Protected);
    rig.router->faults().inject({SiteType::Va2Arbiter, east, 0});
    const Cycle sent = rig.clock;
    report("downstream VC0 arbiter dead (reallocates, +1 cy)", sent, ref_cost,
           rig.shoot(west, Direction::East));
  }

  std::printf("\nSA stage 1 — bypass path and VC transfer:\n");
  {
    Rig rig(core::RouterMode::Protected);
    rig.router->faults().inject({SiteType::Sa1Arbiter, west, 0});
    const Cycle sent = rig.clock;
    report("SA arbiter dead, flit on default-winner VC0", sent, ref_cost,
           rig.shoot(west, Direction::East, 0));
    const Cycle sent2 = rig.clock;
    report("SA arbiter dead, flit on VC1 (transfer, +1 cy)", sent2, ref_cost,
           rig.shoot(west, Direction::East, 1));
    std::printf("    transfers recorded: %llu\n",
                static_cast<unsigned long long>(
                    rig.router->stats().sa1_transfers));
  }

  std::printf("\nXB stage — secondary path:\n");
  {
    Rig rig(core::RouterMode::Protected);
    rig.router->faults().inject({SiteType::XbMux, east, 0});
    const Cycle sent = rig.clock;
    report("East mux dead (rides neighbour mux + demux)", sent, ref_cost,
           rig.shoot(west, Direction::East));
    std::printf("    secondary traversals: %llu (via mux M%d)\n",
                static_cast<unsigned long long>(
                    rig.router->stats().xb_secondary_traversals),
                core::secondary_mux_for_output(east, kMeshPorts));
  }

  std::printf("\nbaseline router under the same faults:\n");
  for (const auto& [site, label] :
       std::vector<std::pair<fault::FaultSite, const char*>>{
           {{SiteType::RcPrimary, west, 0}, "RC unit dead"},
           {{SiteType::Va1ArbiterSet, west, 0}, "VA arbiter set dead"},
           {{SiteType::Sa1Arbiter, west, 0}, "SA arbiter dead"},
           {{SiteType::XbMux, east, 0}, "crossbar mux dead"}}) {
    Rig rig(core::RouterMode::Baseline);
    rig.router->faults().inject(site);
    const Cycle sent = rig.clock;
    report(label, sent, std::nullopt, rig.shoot(west, Direction::East));
  }
  return 0;
}
