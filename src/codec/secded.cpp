#include "codec/secded.hpp"

#include "common/types.hpp"

namespace rnoc::codec {
namespace {

// 1-based codeword positions 1..38 form a Hamming(38,32) code: positions
// 1,2,4,8,16,32 carry check bits, the remaining 32 positions carry data in
// ascending order. Storage bit i (0-based) holds position i+1; storage bit
// 38 holds the overall parity.
constexpr int kHammingPositions = 38;
constexpr int kParityStorageBit = 38;

bool is_power_of_two(int x) { return (x & (x - 1)) == 0; }

bool get_bit(std::uint64_t w, int pos) { return (w >> pos) & 1ull; }

std::uint64_t with_bit(std::uint64_t w, int pos, bool v) {
  return v ? (w | (1ull << pos)) : (w & ~(1ull << pos));
}

/// XOR of the 1-based positions of all set bits in positions 1..38.
int syndrome_of(std::uint64_t w) {
  int s = 0;
  for (int pos = 1; pos <= kHammingPositions; ++pos)
    if (get_bit(w, pos - 1)) s ^= pos;
  return s;
}

bool overall_parity(std::uint64_t w) {
  bool p = false;
  for (int i = 0; i < kCodewordBits; ++i) p ^= get_bit(w, i);
  return p;
}

}  // namespace

std::uint64_t secded_encode(std::uint32_t data) {
  std::uint64_t w = 0;
  // Scatter the data bits into the non-power-of-two positions.
  int data_index = 0;
  for (int pos = 1; pos <= kHammingPositions; ++pos) {
    if (is_power_of_two(pos)) continue;
    w = with_bit(w, pos - 1, get_bit(data, data_index));
    ++data_index;
  }
  // Check bits make each position-group parity even: check bit at position
  // p equals the syndrome bit it controls.
  const int s = syndrome_of(w);
  for (int p = 1; p <= kHammingPositions; p <<= 1)
    w = with_bit(w, p - 1, (s & p) != 0);
  // Overall parity makes the whole 39-bit word even.
  w = with_bit(w, kParityStorageBit, overall_parity(w));
  return w;
}

DecodeResult secded_decode(std::uint64_t codeword) {
  require((codeword >> kCodewordBits) == 0,
          "secded_decode: codeword wider than 39 bits");
  const int s = syndrome_of(codeword);
  const bool p = overall_parity(codeword);

  DecodeResult r;
  std::uint64_t w = codeword;
  if (s == 0 && !p) {
    r.status = DecodeStatus::Ok;
  } else if (p) {
    // Odd number of flips => single error. Syndrome 0 means the overall
    // parity bit itself flipped; otherwise it names the flipped position.
    r.status = DecodeStatus::CorrectedSingle;
    if (s != 0) {
      if (s > kHammingPositions) {
        // A "single" flip cannot produce an out-of-range syndrome; treat as
        // an uncorrectable multi-bit upset.
        r.status = DecodeStatus::DetectedDouble;
      } else {
        w = with_bit(w, s - 1, !get_bit(w, s - 1));
      }
    }
  } else {
    // Even flips with nonzero syndrome: uncorrectable double error.
    r.status = DecodeStatus::DetectedDouble;
  }

  if (r.status != DecodeStatus::DetectedDouble) {
    int data_index = 0;
    std::uint32_t data = 0;
    for (int pos = 1; pos <= kHammingPositions; ++pos) {
      if (is_power_of_two(pos)) continue;
      if (get_bit(w, pos - 1))
        data |= (1u << data_index);
      ++data_index;
    }
    r.data = data;
  }
  return r;
}

std::uint64_t flip_bit(std::uint64_t codeword, int pos) {
  require(pos >= 0 && pos < kCodewordBits, "flip_bit: position out of range");
  return codeword ^ (1ull << pos);
}

}  // namespace rnoc::codec
