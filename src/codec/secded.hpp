// SECDED (single-error-correct, double-error-detect) Hamming code for the
// 32-bit flit datapath.
//
// This is the low-overhead ECC Vicis (Fick et al., DAC'09) uses to tolerate
// datapath faults; we implement it as a standalone substrate so the Vicis
// baseline's datapath mechanism is real, and so links can optionally carry
// protected flits (noc/link semantics stay value-based; see NoisyChannel in
// the tests for the error-injection harness).
//
// Layout: extended Hamming(39,32) — 32 data bits, 6 check bits at power-of-
// two codeword positions, plus one overall-parity bit, 39 bits total.
#pragma once

#include <cstdint>

namespace rnoc::codec {

/// Total codeword width in bits (32 data + 6 check + 1 overall parity).
inline constexpr int kCodewordBits = 39;

enum class DecodeStatus {
  Ok,              ///< No error detected.
  CorrectedSingle, ///< One bit flipped; corrected.
  DetectedDouble,  ///< Two bits flipped; detected, not correctable.
};

struct DecodeResult {
  std::uint32_t data = 0;
  DecodeStatus status = DecodeStatus::Ok;
};

/// Encodes 32 data bits into a 39-bit SECDED codeword (bits [38:0]).
std::uint64_t secded_encode(std::uint32_t data);

/// Decodes a (possibly corrupted) codeword. Single-bit errors anywhere in
/// the codeword (data, check or parity bit) are corrected; double-bit errors
/// are reported as DetectedDouble with unspecified data.
DecodeResult secded_decode(std::uint64_t codeword);

/// Flips bit `pos` (0-based, < kCodewordBits) of a codeword — the fault-
/// injection primitive used by tests and the Vicis datapath model.
std::uint64_t flip_bit(std::uint64_t codeword, int pos);

}  // namespace rnoc::codec
