// Monte-Carlo faults-to-failure estimation — the "experimental approach"
// BulletProof and Vicis used for their SPF numbers (paper §VIII, Table III
// footnote), applied to our router's structural model.
//
// Each trial injects faults one at a time into uniformly random distinct
// sites until the failure predicate trips, and records how many faults the
// router absorbed.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/protection.hpp"
#include "fault/fault_model.hpp"

namespace rnoc::core {

struct SpfMcConfig {
  fault::FaultGeometry geometry{5, 4};
  RouterMode mode = RouterMode::Protected;
  std::uint64_t trials = 20000;
  std::uint64_t seed = 1;
  double area_overhead = 0.31;
  /// Include correction-circuitry sites in the fault population (they are
  /// silicon too — BulletProof's SPF definition counts them).
  bool include_correction_sites = true;
};

struct SpfMcResult {
  RunningStats faults_to_failure;
  double spf = 0.0;  ///< mean faults-to-failure / (1 + area overhead).
};

/// Runs the Monte-Carlo campaign (parallelized over the global thread pool;
/// deterministic for a given seed and trial count).
SpfMcResult monte_carlo_spf(const SpfMcConfig& cfg);

}  // namespace rnoc::core
