// Router-level failure predicate (DESIGN.md §6, paper §VIII accounting).
//
// Decides whether a router with a given set of permanent faults can still
// perform its function. For the baseline router any fault is fatal (there is
// no correction circuitry); for the protected router failure requires one of
// the per-stage protection mechanisms to be exhausted.
#pragma once

#include <string>
#include <vector>

#include "core/protection.hpp"
#include "fault/fault_model.hpp"

namespace rnoc::core {

/// Per-port capability checks for the protected router.
bool rc_port_ok(const fault::RouterFaultState& f, RouterMode mode, int port);
bool va_port_ok(const fault::RouterFaultState& f, RouterMode mode, int port);
bool sa_port_ok(const fault::RouterFaultState& f, RouterMode mode, int port);

/// True when output port `out` can still be reached through the crossbar
/// (primary path, or the secondary path on the protected router).
bool output_reachable(const fault::RouterFaultState& f, RouterMode mode,
                      int out);

/// True when at least one downstream-VC arbiter of output `out` still works
/// (the inherent stage-2 VA redundancy, paper §V-B3).
bool va2_output_ok(const fault::RouterFaultState& f, RouterMode mode, int out);

struct FailureAnalysis {
  bool failed = false;
  std::vector<std::string> reasons;
};

/// Full router check. Baseline: failed iff any fault is present.
FailureAnalysis analyze_router(const fault::RouterFaultState& f,
                               RouterMode mode);

inline bool router_failed(const fault::RouterFaultState& f, RouterMode mode) {
  return analyze_router(f, mode).failed;
}

}  // namespace rnoc::core
