#include "core/structural_model.hpp"

#include "common/types.hpp"

namespace rnoc::core {

std::vector<StageInventory> protection_inventory(int ports, int vcs) {
  require(ports >= 3, "protection_inventory: need at least 3 ports");
  require(vcs >= 2, "protection_inventory: need at least 2 VCs");
  return {
      {"RC", 2, ports, "spatial redundancy (duplicate RC unit per port)"},
      {"VA", vcs, ports * (vcs - 1),
       "arbiter-set sharing between the VCs of an input port"},
      {"SA", 2, ports, "bypass path with rotating default winner"},
      {"XB", 2, 2, "secondary path through a neighbouring crossbar mux"},
  };
}

}  // namespace rnoc::core
