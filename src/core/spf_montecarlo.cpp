#include "core/spf_montecarlo.hpp"

#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/failure_predicate.hpp"

namespace rnoc::core {

SpfMcResult monte_carlo_spf(const SpfMcConfig& cfg) {
  require(cfg.trials > 0, "monte_carlo_spf: need at least one trial");
  const auto all_sites = fault::RouterFaultState::enumerate_sites(
      cfg.geometry, cfg.include_correction_sites &&
                        cfg.mode == RouterMode::Protected);

  ThreadPool& pool = global_pool();
  const std::size_t shards = pool.size();
  std::vector<RunningStats> shard_stats(shards);

  // Deterministic per-shard streams regardless of thread scheduling.
  Rng master(cfg.seed);
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shard_rngs.push_back(master.split());

  const std::uint64_t per_shard = (cfg.trials + shards - 1) / shards;
  pool.parallel_for(shards, [&](std::size_t shard, std::size_t) {
    Rng rng = shard_rngs[shard];
    RunningStats& stats = shard_stats[shard];
    const std::uint64_t begin = shard * per_shard;
    const std::uint64_t end = std::min(cfg.trials, begin + per_shard);
    std::vector<fault::FaultSite> order = all_sites;
    for (std::uint64_t t = begin; t < end; ++t) {
      rng.shuffle(order);
      fault::RouterFaultState state(cfg.geometry);
      int injected = 0;
      for (const auto& site : order) {
        state.inject(site);
        ++injected;
        if (router_failed(state, cfg.mode)) break;
      }
      stats.add(static_cast<double>(injected));
    }
  });

  SpfMcResult result;
  for (const auto& s : shard_stats) result.faults_to_failure.merge(s);
  result.spf =
      result.faults_to_failure.mean() / (1.0 + cfg.area_overhead);
  return result;
}

}  // namespace rnoc::core
