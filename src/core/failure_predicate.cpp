#include "core/failure_predicate.hpp"

#include <sstream>

namespace rnoc::core {

using fault::SiteType;

bool rc_port_ok(const fault::RouterFaultState& f, RouterMode mode, int port) {
  if (!f.has(SiteType::RcPrimary, port)) return true;
  return mode == RouterMode::Protected && !f.has(SiteType::RcSpare, port);
}

bool va_port_ok(const fault::RouterFaultState& f, RouterMode mode, int port) {
  const int vcs = f.geometry().vcs;
  if (mode == RouterMode::Baseline) {
    for (int v = 0; v < vcs; ++v)
      if (f.has(SiteType::Va1ArbiterSet, port, v)) return false;
    return true;
  }
  // Protected: arbiter sharing works while any sibling set survives.
  for (int v = 0; v < vcs; ++v)
    if (!f.has(SiteType::Va1ArbiterSet, port, v)) return true;
  return false;
}

bool sa_port_ok(const fault::RouterFaultState& f, RouterMode mode, int port) {
  if (!f.has(SiteType::Sa1Arbiter, port)) return true;
  return mode == RouterMode::Protected && !f.has(SiteType::Sa1Bypass, port);
}

bool output_reachable(const fault::RouterFaultState& f, RouterMode mode,
                      int out) {
  const bool primary_ok =
      !f.has(SiteType::XbMux, out) && !f.has(SiteType::Sa2Arbiter, out);
  if (mode == RouterMode::Baseline) return primary_ok;
  if (f.has(SiteType::XbPSelect, out)) return false;
  if (primary_ok) return true;
  const int sec = secondary_mux_for_output(out, f.geometry().ports);
  return !f.has(SiteType::XbMux, sec) && !f.has(SiteType::Sa2Arbiter, sec) &&
         !f.has(SiteType::XbDemux, sec);
}

bool va2_output_ok(const fault::RouterFaultState& f, RouterMode mode,
                   int out) {
  const int vcs = f.geometry().vcs;
  if (mode == RouterMode::Baseline) {
    for (int v = 0; v < vcs; ++v)
      if (f.has(SiteType::Va2Arbiter, out, v)) return false;
    return true;
  }
  // The inherent stage-2 redundancy only works within a virtual network
  // (packets cannot re-allocate across vnets), so every vnet's VC range
  // needs a surviving arbiter.
  const int vnets = f.geometry().vnets;
  const int per_vnet = vcs / vnets;
  for (int vn = 0; vn < vnets; ++vn) {
    bool alive = false;
    for (int v = vn * per_vnet; v < (vn + 1) * per_vnet && !alive; ++v)
      alive = !f.has(SiteType::Va2Arbiter, out, v);
    if (!alive) return false;
  }
  return true;
}

FailureAnalysis analyze_router(const fault::RouterFaultState& f,
                               RouterMode mode) {
  FailureAnalysis a;
  if (mode == RouterMode::Baseline) {
    // The unprotected router has no way to mask any permanent fault in its
    // pipeline (paper §VII treats every baseline component as critical).
    if (f.count() > 0) {
      a.failed = true;
      a.reasons.push_back("baseline router: permanent fault present");
    }
    return a;
  }
  const int ports = f.geometry().ports;
  auto fail = [&](int port, const char* what) {
    a.failed = true;
    std::ostringstream os;
    os << what << " exhausted at port " << port;
    a.reasons.push_back(os.str());
  };
  for (int p = 0; p < ports; ++p) {
    if (!rc_port_ok(f, mode, p)) fail(p, "RC redundancy");
    if (!va_port_ok(f, mode, p)) fail(p, "VA arbiter sharing");
    if (!sa_port_ok(f, mode, p)) fail(p, "SA bypass");
    if (!output_reachable(f, mode, p)) fail(p, "crossbar paths");
    if (!va2_output_ok(f, mode, p)) fail(p, "VA stage-2 redundancy");
  }
  return a;
}

}  // namespace rnoc::core
