#include "core/spf_analysis.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace rnoc::core {

SpfAnalysis analytic_spf(int ports, int vcs, double area_overhead) {
  require(area_overhead > 0.0, "analytic_spf: area overhead must be positive");
  SpfAnalysis a;
  a.stages = protection_inventory(ports, vcs);
  a.min_faults_to_failure = a.stages.front().min_faults_to_failure;
  a.max_faults_tolerated = 0;
  for (const auto& s : a.stages) {
    a.min_faults_to_failure =
        std::min(a.min_faults_to_failure, s.min_faults_to_failure);
    a.max_faults_tolerated += s.max_faults_tolerated;
  }
  a.max_faults_to_failure = a.max_faults_tolerated + 1;
  a.mean_faults_to_failure =
      0.5 * static_cast<double>(a.min_faults_to_failure +
                                a.max_faults_to_failure);
  a.area_overhead = area_overhead;
  a.spf = a.mean_faults_to_failure / (1.0 + area_overhead);
  return a;
}

}  // namespace rnoc::core
