// Structural protection inventory: how many faults each pipeline stage of
// the protected router can absorb, and what exhausts it (paper §VIII A-D).
#pragma once

#include <string>
#include <vector>

namespace rnoc::core {

/// Per-stage fault-tolerance accounting for a P-port, V-VC protected router.
struct StageInventory {
  std::string stage;
  int min_faults_to_failure = 0;  ///< Smallest fault set that kills the stage.
  int max_faults_tolerated = 0;   ///< Largest fault set the stage survives.
  std::string mechanism;          ///< The protection mechanism involved.
};

/// The four stages' accounting (paper §VIII-A..D):
///   RC: min 2 (unit + spare of one port),  max P (one per port)
///   VA: min V (all sets of one port),      max P*(V-1)
///   SA: min 2 (arbiter + bypass),          max P
///   XB: min 2 (primary + secondary),       max 2
std::vector<StageInventory> protection_inventory(int ports, int vcs);

}  // namespace rnoc::core
