// Wiring of the paper's crossbar secondary path (paper §V-D, Fig. 6) and the
// router operating mode.
//
// The protected crossbar gives every output port a second way in: output k is
// normally driven by its primary mux M_k, and on a fault in M_k the flit is
// steered through a neighbouring mux M_sec(k), a demux D hanging off that
// mux, and the 2:1 output-select mux P_k. The concrete wiring below matches
// the component counts of Fig. 6 for a 5-port router (one 1:3 demux on M1,
// 1:2 demuxes on M2..M4, five P muxes) and its failure analysis: M1 and M3
// (0-based) may both fail and the router stays functional; any further mux
// fault is fatal.
#pragma once

#include "common/types.hpp"

namespace rnoc::core {

/// How a router reacts to permanent faults in its pipeline.
enum class RouterMode {
  Baseline,   ///< Generic 4-stage router: any pipeline fault blocks traffic.
  Protected,  ///< The paper's fault-tolerant router (paper §V).
};

/// Index of the crossbar mux that provides the *secondary* path to output
/// port `out` (0-based). For 5 ports: {1, 2, 1, 4, 3} — i.e. out0 and out2
/// share M1 (whose demux is the single 1:3), out1 borrows M2, and out3/out4
/// cover each other.
inline int secondary_mux_for_output(int out, int ports) {
  require(ports >= 3, "secondary_mux_for_output: need at least 3 ports");
  require(out >= 0 && out < ports, "secondary_mux_for_output: bad port");
  if (out == 0 || out == 2) return 1;
  if (out % 2 == 1) return (out + 1 < ports) ? out + 1 : out - 1;
  return out - 1;
}

/// Number of output ports whose secondary path routes through mux `m`
/// (drives the size of the demux on that mux; 0 means no demux).
inline int secondary_fanout_of_mux(int m, int ports) {
  int n = 0;
  for (int out = 0; out < ports; ++out)
    if (out != m && secondary_mux_for_output(out, ports) == m) ++n;
  return n;
}

}  // namespace rnoc::core
