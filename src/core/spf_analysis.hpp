// Analytic Silicon Protection Factor (paper §VIII).
//
// SPF = (mean number of faults to cause failure) / (1 + area overhead).
// The paper computes the mean as the average of the minimum number of faults
// that can cause failure and the maximum number of faults that can be
// tolerated plus one.
#pragma once

#include "core/structural_model.hpp"

namespace rnoc::core {

struct SpfAnalysis {
  std::vector<StageInventory> stages;
  int min_faults_to_failure = 0;
  int max_faults_tolerated = 0;
  int max_faults_to_failure = 0;  ///< max tolerated + 1.
  double mean_faults_to_failure = 0.0;
  double area_overhead = 0.0;  ///< Fractional (0.31 = 31%).
  double spf = 0.0;
};

/// Paper §VIII-E for a geometry. Defaults (5 ports, 4 VCs, 31% overhead)
/// give min 2, max tolerated 27, mean 15, SPF 11.45 (~11.4 as printed).
SpfAnalysis analytic_spf(int ports = 5, int vcs = 4,
                         double area_overhead = 0.31);

}  // namespace rnoc::core
