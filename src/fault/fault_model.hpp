// Permanent-fault model for the router pipeline.
//
// Fault *sites* are the physical components of the four pipeline stages plus
// the correction circuitry, matching the granularity of the paper's Table I /
// Table II and §VIII fault accounting. Faults are permanent: once injected a
// site stays faulty.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rnoc::fault {

enum class SiteType : std::uint8_t {
  RcPrimary,     ///< Primary RC unit of input port `a`.
  RcSpare,       ///< Duplicate RC unit of input port `a` (correction).
  Va1ArbiterSet, ///< The po v:1 arbiters of input VC (`a` = port, `b` = vc).
                 ///< A fault anywhere in the set disables the whole set (§V-B1).
  Va2Arbiter,    ///< Stage-2 VA arbiter of downstream VC (`a` = out port, `b` = vc).
  Sa1Arbiter,    ///< Stage-1 SA v:1 arbiter of input port `a`.
  Sa1Bypass,     ///< Bypass mux/register of input port `a` (correction).
  Sa2Arbiter,    ///< Stage-2 SA pi:1 arbiter of output port `a`.
  XbMux,         ///< Primary crossbar mux M of output port `a`.
  XbDemux,       ///< Secondary-path demux hanging off mux `a` (correction).
  XbPSelect,     ///< Output-select 2:1 mux P in front of output port `a` (correction).
};

std::string site_type_name(SiteType t);

/// One injectable component instance.
struct FaultSite {
  SiteType type = SiteType::RcPrimary;
  int a = 0;  ///< Port index (input or output, see SiteType).
  int b = 0;  ///< VC index where applicable, else 0.

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

std::string to_string(const FaultSite& s);

/// True for site types addressed per (port, vc) rather than per port.
inline bool type_uses_vc(SiteType t) {
  return t == SiteType::Va1ArbiterSet || t == SiteType::Va2Arbiter;
}

/// Geometry needed to enumerate and validate fault sites. `vnets` matters
/// for the failure predicate: VA stage-2 redundancy (paper §V-B3) only works
/// within a virtual network, so each vnet needs a surviving arbiter.
struct FaultGeometry {
  int ports = 5;
  int vcs = 4;
  int vnets = 1;
};

/// Per-router permanent-fault state: a bitset over all sites.
class RouterFaultState {
 public:
  explicit RouterFaultState(const FaultGeometry& g);

  const FaultGeometry& geometry() const { return geom_; }

  /// Inline: this is the router pipeline's innermost predicate (called for
  /// every candidate VC/port every cycle).
  bool has(SiteType t, int a, int b = 0) const {
    return faulty_[index_of(t, a, b)];
  }
  bool has(const FaultSite& s) const { return has(s.type, s.a, s.b); }

  /// Marks a site permanently faulty. Injecting an already-faulty site is a
  /// no-op that returns false.
  bool inject(const FaultSite& s);

  /// Clears one site (used for transient faults that expire). Returns false
  /// when the site was not faulty.
  bool remove(const FaultSite& s);

  void clear();
  int count() const { return count_; }

  /// All distinct injectable sites for a geometry. `include_correction`
  /// adds the correction-circuitry sites (spares, bypasses, secondary path),
  /// which only exist on the protected router.
  static std::vector<FaultSite> enumerate_sites(const FaultGeometry& g,
                                                bool include_correction);

 private:
  std::size_t index_of(SiteType t, int a, int b) const {
    require(a >= 0 && a < geom_.ports, "RouterFaultState: port out of range");
    require(b >= 0 && b < geom_.vcs, "RouterFaultState: vc out of range");
    require(type_uses_vc(t) || b == 0,
            "RouterFaultState: vc index on a per-port site");
    const auto ti = static_cast<std::size_t>(t);
    return (ti * static_cast<std::size_t>(geom_.ports) +
            static_cast<std::size_t>(a)) *
               static_cast<std::size_t>(geom_.vcs) +
           static_cast<std::size_t>(b);
  }

  FaultGeometry geom_;
  std::vector<bool> faulty_;
  int count_ = 0;
};

}  // namespace rnoc::fault
