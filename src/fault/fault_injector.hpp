// Fault injection scheduling (paper §IX).
//
// The paper accelerates fault injection by drawing injection times from a
// uniform random variable (mean 10M cycles) instead of the tiny real FIT
// rates; we keep that methodology with a configurable mean so simulations of
// any length see the same number and placement of faults.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/protection.hpp"
#include "fault/fault_model.hpp"
#include "noc/mesh.hpp"

namespace rnoc::fault {

struct ScheduledFault {
  Cycle at = 0;
  NodeId router = kInvalidNode;
  FaultSite site;
  /// 0 = permanent. A nonzero duration makes the fault transient: it clears
  /// again `duration` cycles after injection (extension; the paper's §IX
  /// experiments inject permanent faults only).
  Cycle duration = 0;
};

/// An ordered set of fault injections.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(Cycle at, NodeId router, FaultSite site, Cycle duration = 0);
  const std::vector<ScheduledFault>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Paper §IX methodology: `num_faults` faults at uniform-random cycles in
  /// [0, horizon), each in a random pipeline-stage component of a random
  /// router. With `tolerable_only` (the paper's latency experiments measure
  /// a *functioning* protected network), sites whose cumulative injection
  /// would trip the router failure predicate are re-drawn.
  static FaultPlan random(const noc::MeshDims& dims, const FaultGeometry& g,
                          core::RouterMode mode, int num_faults, Cycle horizon,
                          Rng& rng, bool tolerable_only = true);

  /// One fault per pipeline stage (RC, VA, SA, XB) on each of
  /// `faulty_routers` distinct routers, at staggered times. This mirrors the
  /// paper's "fault injected into a pipeline stage after N cycles of its
  /// operation" schedule.
  static FaultPlan per_stage(const noc::MeshDims& dims, const FaultGeometry& g,
                             const std::vector<NodeId>& faulty_routers,
                             Cycle stagger, Rng& rng);

  /// FIT-weighted placement: sites are drawn with probability proportional
  /// to their Table I FIT rates (the paper's "ideal way to simulate faults",
  /// §IX), at uniform-random times in [0, horizon). `site_weights` pairs
  /// each injectable site with its FIT (see reliability/site_fit.hpp);
  /// weights for correction-circuitry sites are ignored when the mode's
  /// failure predicate would trip (tolerable_only).
  struct WeightedSiteRef {
    FaultSite site;
    double weight = 1.0;
  };
  static FaultPlan fit_weighted(const noc::MeshDims& dims,
                                const FaultGeometry& g,
                                core::RouterMode mode,
                                const std::vector<WeightedSiteRef>& sites,
                                int num_faults, Cycle horizon, Rng& rng,
                                bool tolerable_only = true);

  /// Transient-fault burst (extension): `num_faults` faults of `duration`
  /// cycles each, at uniform-random times/sites. Transients need no
  /// tolerability screen — they clear on their own.
  static FaultPlan transient_burst(const noc::MeshDims& dims,
                                   const FaultGeometry& g, int num_faults,
                                   Cycle horizon, Cycle duration, Rng& rng);

  /// Lethal plan (degraded-mode experiments): permanent faults on `victims`
  /// distinct random routers at cycle `at`, chosen so each victim's failure
  /// predicate trips under `mode`. Baseline mode dies from any single
  /// pipeline fault; Protected mode needs its redundancy exhausted (primary
  /// + spare RC on one input port), so the same Baseline-lethal site set is
  /// extended rather than replaced when mode == Protected.
  static FaultPlan lethal(const noc::MeshDims& dims, const FaultGeometry& g,
                          core::RouterMode mode, int victims, Cycle at,
                          Rng& rng);

 private:
  std::vector<ScheduledFault> entries_;  ///< Kept sorted by `at`.
};

/// Applies a plan's due entries to a mesh as simulation time advances.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Injects every scheduled fault with `at <= now` and clears transient
  /// faults whose duration has elapsed. Returns count injected.
  int apply_due(Cycle now, noc::Mesh& mesh);

  int injected() const { return injected_; }
  int expired() const { return expired_; }
  bool done() const {
    return next_ >= plan_.entries().size() && expiries_.empty();
  }

  /// Earliest cycle at which apply_due has work (next scheduled injection
  /// or transient expiry), or kNeverCycle when done. Both simulator cores
  /// skip the apply_due call entirely until this cycle: apply_due is a
  /// no-op (returns 0) before it, so the gate is exact.
  Cycle next_due_cycle() const {
    Cycle due = kNeverCycle;
    if (next_ < plan_.entries().size()) due = plan_.entries()[next_].at;
    if (!expiries_.empty() && expiries_.front().at < due)
      due = expiries_.front().at;
    return due;
  }

 private:
  struct Expiry {
    Cycle at;
    NodeId router;
    FaultSite site;
  };

  /// Pending expiry for (router, site), or end(). At most one exists per
  /// site: overlapping transients extend it, a permanent cancels it.
  std::vector<Expiry>::iterator find_expiry(NodeId router,
                                            const FaultSite& site);

  FaultPlan plan_;
  std::size_t next_ = 0;
  int injected_ = 0;
  int expired_ = 0;
  std::vector<Expiry> expiries_;  ///< Kept sorted by `at`.
};

}  // namespace rnoc::fault
