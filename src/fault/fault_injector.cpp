#include "fault/fault_injector.hpp"

#include <algorithm>

#include "core/failure_predicate.hpp"

namespace rnoc::fault {

void FaultPlan::add(Cycle at, NodeId router, FaultSite site, Cycle duration) {
  entries_.push_back({at, router, site, duration});
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const ScheduledFault& a, const ScheduledFault& b) {
                     return a.at < b.at;
                   });
}

namespace {

/// Baseline-pipeline sites only (the paper injects into pipeline stages;
/// correction-circuitry sites are used by the SPF analyses, not by the
/// latency experiments).
std::vector<FaultSite> pipeline_sites(const FaultGeometry& g) {
  return RouterFaultState::enumerate_sites(g, /*include_correction=*/false);
}

}  // namespace

FaultPlan FaultPlan::random(const noc::MeshDims& dims, const FaultGeometry& g,
                            core::RouterMode mode, int num_faults,
                            Cycle horizon, Rng& rng, bool tolerable_only) {
  require(num_faults >= 0, "FaultPlan::random: negative fault count");
  require(horizon >= 1, "FaultPlan::random: empty horizon");
  const auto sites = pipeline_sites(g);

  // Shadow fault states to evaluate tolerability of cumulative injections.
  std::vector<RouterFaultState> shadow;
  shadow.reserve(static_cast<std::size_t>(dims.nodes()));
  for (int i = 0; i < dims.nodes(); ++i) shadow.emplace_back(g);

  FaultPlan plan;
  for (int k = 0; k < num_faults; ++k) {
    constexpr int kMaxAttempts = 10000;
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttempts && !placed; ++attempt) {
      const auto r = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(dims.nodes())));
      const FaultSite site = sites[static_cast<std::size_t>(
          rng.next_below(sites.size()))];
      auto& fs = shadow[static_cast<std::size_t>(r)];
      if (fs.has(site)) continue;  // Site already faulty.
      fs.inject(site);
      if (tolerable_only && core::router_failed(fs, mode)) {
        // Would kill the router: rebuild the shadow without this fault.
        RouterFaultState redo(g);
        // (RouterFaultState has no erase; reconstruct from plan entries.)
        for (const auto& e : plan.entries())
          if (e.router == r) redo.inject(e.site);
        fs = redo;
        continue;
      }
      const Cycle at = static_cast<Cycle>(rng.next_below(horizon));
      plan.add(at, r, site);
      placed = true;
    }
    require(placed,
            "FaultPlan::random: placement attempts exhausted; num_faults "
            "exceeds what the router mode can tolerate with tolerable_only "
            "(Baseline tolerates none; Protected is bounded by its spares)");
  }
  return plan;
}

FaultPlan FaultPlan::per_stage(const noc::MeshDims& dims,
                               const FaultGeometry& g,
                               const std::vector<NodeId>& faulty_routers,
                               Cycle stagger, Rng& rng) {
  require(stagger >= 1, "FaultPlan::per_stage: stagger must be positive");
  FaultPlan plan;
  for (const NodeId r : faulty_routers) {
    require(r >= 0 && r < dims.nodes(), "FaultPlan::per_stage: bad router id");
    const int port = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(g.ports)));
    const int vc =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(g.vcs)));
    // One fault per pipeline stage, staggered in time (paper §IX).
    const FaultSite per_stage_sites[4] = {
        {SiteType::RcPrimary, port, 0},
        {SiteType::Va1ArbiterSet, port, vc},
        {SiteType::Sa1Arbiter, port, 0},
        {SiteType::XbMux, port, 0},
    };
    Cycle t = stagger;
    for (const auto& site : per_stage_sites) {
      plan.add(t, r, site);
      t += stagger;
    }
  }
  return plan;
}

FaultPlan FaultPlan::fit_weighted(const noc::MeshDims& dims,
                                  const FaultGeometry& g,
                                  core::RouterMode mode,
                                  const std::vector<WeightedSiteRef>& sites,
                                  int num_faults, Cycle horizon, Rng& rng,
                                  bool tolerable_only) {
  require(!sites.empty(), "FaultPlan::fit_weighted: empty site list");
  require(num_faults >= 0 && horizon >= 1,
          "FaultPlan::fit_weighted: bad count/horizon");
  double total = 0.0;
  for (const auto& s : sites) {
    require(s.weight >= 0.0, "FaultPlan::fit_weighted: negative weight");
    total += s.weight;
  }
  require(total > 0.0, "FaultPlan::fit_weighted: all weights zero");

  std::vector<RouterFaultState> shadow;
  for (int i = 0; i < dims.nodes(); ++i) shadow.emplace_back(g);

  FaultPlan plan;
  for (int k = 0; k < num_faults; ++k) {
    constexpr int kMaxAttempts = 10000;
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttempts && !placed; ++attempt) {
      // Roulette-wheel site draw proportional to FIT.
      double pick = rng.next_double() * total;
      std::size_t idx = 0;
      for (; idx + 1 < sites.size(); ++idx) {
        pick -= sites[idx].weight;
        if (pick <= 0.0) break;
      }
      const FaultSite site = sites[idx].site;
      const auto r = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(dims.nodes())));
      auto& fs = shadow[static_cast<std::size_t>(r)];
      if (fs.has(site)) continue;
      fs.inject(site);
      if (tolerable_only && core::router_failed(fs, mode)) {
        RouterFaultState redo(g);
        for (const auto& e : plan.entries())
          if (e.router == r) redo.inject(e.site);
        fs = redo;
        continue;
      }
      plan.add(static_cast<Cycle>(rng.next_below(horizon)), r, site);
      placed = true;
    }
    require(placed,
            "FaultPlan::fit_weighted: placement attempts exhausted; "
            "num_faults exceeds what the router mode can tolerate with "
            "tolerable_only, or every positive-weight site is already "
            "faulty");
  }
  return plan;
}

FaultPlan FaultPlan::transient_burst(const noc::MeshDims& dims,
                                     const FaultGeometry& g, int num_faults,
                                     Cycle horizon, Cycle duration, Rng& rng) {
  require(num_faults >= 0 && horizon >= 1 && duration >= 1,
          "FaultPlan::transient_burst: bad parameters");
  const auto sites = pipeline_sites(g);
  FaultPlan plan;
  for (int k = 0; k < num_faults; ++k) {
    const auto r = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(dims.nodes())));
    const FaultSite site =
        sites[static_cast<std::size_t>(rng.next_below(sites.size()))];
    plan.add(static_cast<Cycle>(rng.next_below(horizon)), r, site, duration);
  }
  return plan;
}

FaultPlan FaultPlan::lethal(const noc::MeshDims& dims, const FaultGeometry& g,
                            core::RouterMode mode, int victims, Cycle at,
                            Rng& rng) {
  require(victims >= 0 && victims <= dims.nodes(),
          "FaultPlan::lethal: victim count exceeds mesh size");
  // Distinct victims via partial Fisher-Yates over the node ids.
  std::vector<NodeId> ids(static_cast<std::size_t>(dims.nodes()));
  for (int i = 0; i < dims.nodes(); ++i) ids[static_cast<std::size_t>(i)] = i;
  FaultPlan plan;
  for (int k = 0; k < victims; ++k) {
    const auto pick = static_cast<std::size_t>(k) + static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(dims.nodes() - k)));
    std::swap(ids[static_cast<std::size_t>(k)], ids[pick]);
    const NodeId r = ids[static_cast<std::size_t>(k)];
    const int port = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(g.ports)));
    RouterFaultState shadow(g);
    plan.add(at, r, {SiteType::RcPrimary, port, 0});
    shadow.inject({SiteType::RcPrimary, port, 0});
    if (!core::router_failed(shadow, mode)) {
      // Protected survives a lone RC fault; exhaust the spare too.
      plan.add(at, r, {SiteType::RcSpare, port, 0});
      shadow.inject({SiteType::RcSpare, port, 0});
    }
    require(core::router_failed(shadow, mode),
            "FaultPlan::lethal: generated site set does not trip the "
            "failure predicate");
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

std::vector<FaultInjector::Expiry>::iterator FaultInjector::find_expiry(
    NodeId router, const FaultSite& site) {
  return std::find_if(expiries_.begin(), expiries_.end(),
                      [&](const Expiry& x) {
                        return x.router == router && x.site == site;
                      });
}

int FaultInjector::apply_due(Cycle now, noc::Mesh& mesh) {
  int n = 0;
  const auto& es = plan_.entries();
  while (next_ < es.size() && es[next_].at <= now) {
    const auto& e = es[next_];
    const bool fresh = mesh.router(e.router).faults().inject(e.site);
    if (fresh) {
      ++injected_;
      ++n;
      mesh.notify_fault(e.router);
    }
    if (e.duration > 0) {
      // Transient: arm (or, if the site already carries a pending expiry
      // from an overlapping transient, extend) the healing deadline. A
      // site that is faulty with *no* pending expiry is permanently
      // faulty: the transient adds nothing and must not arm a heal.
      const auto it = find_expiry(e.router, e.site);
      if (it != expiries_.end()) {
        it->at = std::max(it->at, e.at + e.duration);
        std::sort(expiries_.begin(), expiries_.end(),
                  [](const Expiry& a, const Expiry& b) { return a.at < b.at; });
      } else if (fresh) {
        expiries_.push_back({e.at + e.duration, e.router, e.site});
        std::sort(expiries_.begin(), expiries_.end(),
                  [](const Expiry& a, const Expiry& b) { return a.at < b.at; });
      }
    } else {
      // Permanent: upgrade the site. Cancel any pending transient expiry
      // so it cannot heal a fault that is now permanent.
      const auto it = find_expiry(e.router, e.site);
      if (it != expiries_.end()) expiries_.erase(it);
    }
    ++next_;
  }
  while (!expiries_.empty() && expiries_.front().at <= now) {
    const Expiry& x = expiries_.front();
    if (mesh.router(x.router).faults().remove(x.site)) {
      ++expired_;
      mesh.notify_fault(x.router);
    }
    expiries_.erase(expiries_.begin());
  }
  return n;
}

}  // namespace rnoc::fault
