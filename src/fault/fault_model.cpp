#include "fault/fault_model.hpp"

#include <sstream>

namespace rnoc::fault {
namespace {

/// Sites indexed per (type, port, vc). Layout: blocks per SiteType in
/// declaration order; per-port types use vc 0 only.
constexpr int kTypeCount = 10;

bool type_is_correction(SiteType t) {
  switch (t) {
    case SiteType::RcSpare:
    case SiteType::Sa1Bypass:
    case SiteType::XbDemux:
    case SiteType::XbPSelect:
      return true;
    case SiteType::RcPrimary:
    case SiteType::Va1ArbiterSet:
    case SiteType::Va2Arbiter:
    case SiteType::Sa1Arbiter:
    case SiteType::Sa2Arbiter:
    case SiteType::XbMux:
      return false;
  }
  return false;
}

}  // namespace

std::string site_type_name(SiteType t) {
  switch (t) {
    case SiteType::RcPrimary: return "RcPrimary";
    case SiteType::RcSpare: return "RcSpare";
    case SiteType::Va1ArbiterSet: return "Va1ArbiterSet";
    case SiteType::Va2Arbiter: return "Va2Arbiter";
    case SiteType::Sa1Arbiter: return "Sa1Arbiter";
    case SiteType::Sa1Bypass: return "Sa1Bypass";
    case SiteType::Sa2Arbiter: return "Sa2Arbiter";
    case SiteType::XbMux: return "XbMux";
    case SiteType::XbDemux: return "XbDemux";
    case SiteType::XbPSelect: return "XbPSelect";
  }
  return "?";
}

std::string to_string(const FaultSite& s) {
  std::ostringstream os;
  os << site_type_name(s.type) << "(port=" << s.a;
  if (type_uses_vc(s.type)) os << ", vc=" << s.b;
  os << ")";
  return os.str();
}

RouterFaultState::RouterFaultState(const FaultGeometry& g) : geom_(g) {
  require(g.ports >= 2 && g.vcs >= 1, "RouterFaultState: bad geometry");
  require(g.vnets >= 1 && g.vcs % g.vnets == 0,
          "RouterFaultState: vcs must divide evenly into vnets");
  faulty_.assign(static_cast<std::size_t>(kTypeCount) *
                     static_cast<std::size_t>(g.ports) *
                     static_cast<std::size_t>(g.vcs),
                 false);
}

bool RouterFaultState::inject(const FaultSite& s) {
  const std::size_t i = index_of(s.type, s.a, s.b);
  if (faulty_[i]) return false;
  faulty_[i] = true;
  ++count_;
  return true;
}

bool RouterFaultState::remove(const FaultSite& s) {
  const std::size_t i = index_of(s.type, s.a, s.b);
  if (!faulty_[i]) return false;
  faulty_[i] = false;
  --count_;
  return true;
}

void RouterFaultState::clear() {
  faulty_.assign(faulty_.size(), false);
  count_ = 0;
}

std::vector<FaultSite> RouterFaultState::enumerate_sites(
    const FaultGeometry& g, bool include_correction) {
  std::vector<FaultSite> sites;
  auto add_per_port = [&](SiteType t) {
    for (int p = 0; p < g.ports; ++p) sites.push_back({t, p, 0});
  };
  auto add_per_port_vc = [&](SiteType t) {
    for (int p = 0; p < g.ports; ++p)
      for (int v = 0; v < g.vcs; ++v) sites.push_back({t, p, v});
  };
  for (int ti = 0; ti < kTypeCount; ++ti) {
    const auto t = static_cast<SiteType>(ti);
    if (type_is_correction(t) && !include_correction) continue;
    if (t == SiteType::XbDemux) {
      // Demuxes hang off muxes M1..M_{P-1} (0-based), not off M0.
      for (int p = 1; p < g.ports; ++p) sites.push_back({t, p, 0});
      continue;
    }
    if (type_uses_vc(t))
      add_per_port_vc(t);
    else
      add_per_port(t);
  }
  return sites;
}

}  // namespace rnoc::fault
