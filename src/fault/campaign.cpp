#include "fault/campaign.hpp"

#include <vector>

#include "common/thread_pool.hpp"

namespace rnoc::fault {

CampaignResult run_campaign(const CampaignConfig& cfg,
                            std::shared_ptr<traffic::TrafficModel> traffic) {
  require(cfg.runs >= 1, "run_campaign: need at least one run");

  CampaignResult result;

  // Fault-free reference.
  {
    noc::Simulator ref(cfg.sim, traffic);
    const noc::SimReport rep = ref.run();
    require(!rep.deadlock_suspected,
            "run_campaign: fault-free reference deadlocked (load too high?)");
    result.baseline_latency = rep.avg_total_latency();
  }

  const FaultGeometry geom{noc::kMeshPorts, cfg.sim.mesh.router.vcs};

  struct RunOutput {
    double latency = 0.0;
    bool deadlocked = false;
    std::uint64_t undelivered = 0;
    noc::RouterStats events;
  };
  std::vector<RunOutput> outputs(static_cast<std::size_t>(cfg.runs));

  global_pool().parallel_for(
      static_cast<std::size_t>(cfg.runs), [&](std::size_t run, std::size_t) {
        Rng rng(cfg.seed + 0x9e3779b9u * (run + 1));
        noc::SimConfig sim = cfg.sim;
        sim.seed = cfg.sim.seed + run + 1;
        noc::Simulator simulator(sim, traffic);
        FaultPlan plan = FaultPlan::random(
            sim.mesh.dims, geom, sim.mesh.router.mode, cfg.faults_per_run,
            sim.warmup > 0 ? sim.warmup : 1, rng, cfg.tolerable_only);
        simulator.set_fault_plan(std::move(plan));
        const noc::SimReport rep = simulator.run();
        RunOutput& out = outputs[run];
        out.latency = rep.avg_total_latency();
        out.deadlocked = rep.deadlock_suspected;
        out.undelivered = rep.undelivered_flits;
        out.events = rep.router_events;
      });

  for (const RunOutput& out : outputs) {
    if (out.deadlocked) ++result.deadlocked_runs;
    result.faulty_latency.add(out.latency);
    if (result.baseline_latency > 0.0)
      result.latency_increase.add(out.latency / result.baseline_latency - 1.0);
    result.undelivered_flits += out.undelivered;
    result.protection_events.merge(out.events);
  }
  return result;
}

}  // namespace rnoc::fault
