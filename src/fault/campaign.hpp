// Fault-injection campaigns on the live network simulator: many randomized
// runs comparing a fault-free network against fault-injected ones, verifying
// continued packet delivery and measuring the latency cost (the methodology
// behind the paper's Figures 7 and 8).
#pragma once

#include <memory>

#include "common/stats.hpp"
#include "noc/simulator.hpp"

namespace rnoc::fault {

struct CampaignConfig {
  noc::SimConfig sim{};
  int runs = 8;             ///< Fault-injected runs (different seeds/placements).
  int faults_per_run = 16;  ///< Faults injected per run across the mesh.
  std::uint64_t seed = 1;
  bool tolerable_only = true;
};

struct CampaignResult {
  double baseline_latency = 0.0;  ///< Fault-free average packet latency.
  RunningStats faulty_latency;    ///< Per-run average latencies with faults.
  RunningStats latency_increase;  ///< Per-run (faulty/fault-free - 1).
  int deadlocked_runs = 0;
  std::uint64_t undelivered_flits = 0;  ///< Summed over runs.
  noc::RouterStats protection_events;   ///< Summed protection-mechanism activity.
};

/// Runs one fault-free reference simulation plus `runs` fault-injected ones.
/// The traffic model must be stateless (the built-in models are); it is
/// shared across runs.
CampaignResult run_campaign(const CampaignConfig& cfg,
                            std::shared_ptr<traffic::TrafficModel> traffic);

}  // namespace rnoc::fault
