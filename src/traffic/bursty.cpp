#include "traffic/bursty.hpp"

#include "common/types.hpp"

namespace rnoc::traffic {
namespace {

SyntheticConfig pattern_config(const BurstyConfig& cfg) {
  SyntheticConfig sc;
  sc.pattern = cfg.pattern;
  sc.injection_rate = cfg.burst_rate;
  sc.packet_size = cfg.packet_size;
  sc.hotspots = cfg.hotspots;
  sc.hotspot_fraction = cfg.hotspot_fraction;
  return sc;
}

}  // namespace

BurstyTraffic::BurstyTraffic(const BurstyConfig& cfg)
    : cfg_(cfg), pattern_(pattern_config(cfg)) {
  require(cfg.burst_rate > 0.0 && cfg.burst_rate <= 1.0,
          "BurstyTraffic: burst rate must lie in (0,1]");
  require(cfg.mean_on >= 1.0 && cfg.mean_off >= 1.0,
          "BurstyTraffic: phase lengths must be at least one cycle");
}

void BurstyTraffic::init(const noc::MeshDims& dims) {
  TrafficModel::init(dims);
  pattern_.init(dims);
  on_.assign(static_cast<std::size_t>(dims.nodes()), false);
}

bool BurstyTraffic::is_on(NodeId node) const {
  require(node >= 0 && node < static_cast<NodeId>(on_.size()),
          "BurstyTraffic: node out of range");
  return on_[static_cast<std::size_t>(node)];
}

void BurstyTraffic::generate(Cycle now, NodeId node, Rng& rng,
                             std::vector<noc::PacketDesc>& out) {
  // Geometric phase transitions: leave the current phase with probability
  // 1/mean_length per cycle.
  auto state = on_[static_cast<std::size_t>(node)];
  if (state) {
    if (rng.next_bool(1.0 / cfg_.mean_on)) state = false;
  } else {
    if (rng.next_bool(1.0 / cfg_.mean_off)) state = true;
  }
  on_[static_cast<std::size_t>(node)] = state;
  if (state) pattern_.generate(now, node, rng, out);
}

}  // namespace rnoc::traffic
