// Directory-based cache-coherence traffic (the gem5/GARNET substitute).
//
// Models the NoC-visible behaviour of a MOESI_CMP_directory-style protocol
// on a mesh CMP (paper §IX): each node's L1 issues misses at a per-benchmark
// rate to the address-interleaved home directory; the home answers with a
// multi-flit data response, sometimes forwarding to a remote owner and
// sometimes invalidating sharers that acknowledge to the requester.
#pragma once

#include "traffic/patterns.hpp"

namespace rnoc::traffic {

/// NoC message classes carried in Flit::traffic_class. Numbered so that with
/// two virtual networks (noc/vnet.hpp, class mod vnets) the request-like
/// messages (Request/Forward/Invalidate, even) and the response-like ones
/// (Data/Ack, odd) land on disjoint VC pools — the standard protocol-
/// deadlock-avoidance split.
enum class CoherenceClass : std::uint8_t {
  Request = 0,    ///< L1 miss -> home directory (1 control flit).
  Data = 1,       ///< Data response (cache line, multi-flit).
  Forward = 2,    ///< Home -> remote owner (1 control flit).
  Ack = 3,        ///< Sharer -> requester (1 control flit).
  Invalidate = 4, ///< Home -> sharer (1 control flit).
};

struct CoherenceConfig {
  /// L1 miss (request) probability per node per cycle.
  double request_rate = 0.01;
  /// Probability a request is owned remotely and must be forwarded.
  double forward_prob = 0.2;
  /// Probability a request triggers invalidations.
  double invalidate_prob = 0.1;
  /// Number of sharers invalidated when it does.
  int sharers = 2;
  /// Directory/L2 service latency before the response leaves the home.
  Cycle service_delay = 20;
  /// Owner lookup latency before a forwarded data response leaves.
  Cycle forward_delay = 8;
  /// Cache-line data packet length in flits (control packets are 1 flit).
  int data_flits = 5;
};

class CoherenceTraffic : public TrafficModel {
 public:
  explicit CoherenceTraffic(const CoherenceConfig& cfg);

  const CoherenceConfig& config() const { return cfg_; }

  void generate(Cycle now, NodeId node, Rng& rng,
                std::vector<noc::PacketDesc>& out) override;

  void on_delivered(const noc::Flit& tail, NodeId at, Cycle now, Rng& rng,
                    std::vector<Response>& responses) override;

 private:
  NodeId random_other_node(NodeId self, Rng& rng) const;

  CoherenceConfig cfg_;
};

}  // namespace rnoc::traffic
