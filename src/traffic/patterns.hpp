// Traffic generation: the TrafficModel interface and the classic synthetic
// patterns (uniform random, transpose, bit-complement, tornado, neighbor,
// hotspot) used by the load-sweep benches.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "noc/flit.hpp"
#include "noc/routing.hpp"

namespace rnoc::traffic {

/// A reply a traffic model wants injected in reaction to a delivery.
struct Response {
  NodeId node = kInvalidNode;  ///< Where the response originates.
  noc::PacketDesc desc;        ///< id/created filled in by the simulator.
  Cycle ready = 0;             ///< Earliest injection cycle (service delay).
};

/// Interface every workload implements. The simulator calls `generate` once
/// per node per cycle while sources run, and `on_delivered` when a packet's
/// tail ejects (for request/response protocols).
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;

  virtual void init(const noc::MeshDims& dims) { dims_ = dims; }

  /// Appends packets created at `node` this cycle (src/dst/size/class only;
  /// the simulator assigns id and creation time).
  virtual void generate(Cycle now, NodeId node, Rng& rng,
                        std::vector<noc::PacketDesc>& out) = 0;

  /// True when next_injection() below is implemented with draws identical
  /// to per-cycle generate() calls, letting the event-driven simulator core
  /// skip source cycles instead of sweeping every node every cycle. Models
  /// keeping the default are stepped cycle-by-cycle while sources run.
  virtual bool supports_event_injection() const { return false; }

  /// Event-core source scan: advances `node`'s private RNG exactly as
  /// per-cycle generate() calls for cycles [from, horizon) would, appends
  /// the packets of the first cycle that creates any, and returns that
  /// cycle (kNeverCycle when the whole range is quiet). Only called when
  /// supports_event_injection() is true.
  virtual Cycle next_injection(Cycle /*from*/, Cycle /*horizon*/,
                               NodeId /*node*/, Rng& /*rng*/,
                               std::vector<noc::PacketDesc>& /*out*/) {
    return kNeverCycle;
  }

  /// Reaction to a delivered packet (tail flit) at node `at`.
  virtual void on_delivered(const noc::Flit& /*tail*/, NodeId /*at*/,
                            Cycle /*now*/, Rng& /*rng*/,
                            std::vector<Response>& /*responses*/) {}

 protected:
  noc::MeshDims dims_{};
};

enum class Pattern {
  UniformRandom,  ///< Destination uniform over all other nodes.
  Transpose,      ///< (x, y) -> (y mod X, x mod Y): the classic transpose on
                  ///< square meshes, axis-folded on rectangular ones so every
                  ///< destination stays inside the mesh.
  BitComplement,  ///< node -> ~node (mod N).
  Tornado,        ///< Half-way around each dimension.
  Neighbor,       ///< (x+1, y) wraparound.
  Hotspot,        ///< A fraction of traffic targets designated hotspots.
};

const char* pattern_name(Pattern p);

struct SyntheticConfig {
  Pattern pattern = Pattern::UniformRandom;
  /// Offered load in flits per node per cycle.
  double injection_rate = 0.1;
  int packet_size = 5;
  std::vector<NodeId> hotspots;     ///< For Pattern::Hotspot.
  double hotspot_fraction = 0.5;    ///< Share of packets aimed at hotspots.
};

/// Bernoulli packet sources with a fixed destination pattern.
class SyntheticTraffic : public TrafficModel {
 public:
  explicit SyntheticTraffic(const SyntheticConfig& cfg);

  /// Validates mesh-dependent configuration (hotspot ids must name nodes).
  void init(const noc::MeshDims& dims) override;

  void generate(Cycle now, NodeId node, Rng& rng,
                std::vector<noc::PacketDesc>& out) override;

  bool supports_event_injection() const override { return true; }
  Cycle next_injection(Cycle from, Cycle horizon, NodeId node, Rng& rng,
                       std::vector<noc::PacketDesc>& out) override;

  /// The pattern's destination for `node` (hotspot/uniform consult `rng`).
  NodeId destination(NodeId node, Rng& rng) const;

 private:
  SyntheticConfig cfg_;
};

}  // namespace rnoc::traffic
