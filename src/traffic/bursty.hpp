// Bursty (on-off Markov-modulated) traffic sources.
//
// Real application traffic is not Bernoulli: cores alternate between
// communication phases and compute phases. Each node here carries a
// two-state Markov chain — ON (injecting at `burst_rate`) and OFF (silent) —
// with geometric sojourn times, the standard on-off fluid model. The mean
// offered load is burst_rate * p_on where p_on = on_len / (on_len+off_len),
// but queueing behaviour differs sharply from Bernoulli at equal load:
// bursts stress buffers and expose tail-latency effects the average hides.
#pragma once

#include "traffic/patterns.hpp"

namespace rnoc::traffic {

struct BurstyConfig {
  /// Destination pattern for generated packets.
  Pattern pattern = Pattern::UniformRandom;
  /// Injection rate while ON, flits/node/cycle.
  double burst_rate = 0.4;
  /// Mean ON and OFF phase lengths in cycles (geometric).
  double mean_on = 50.0;
  double mean_off = 150.0;
  int packet_size = 5;
  std::vector<NodeId> hotspots;
  double hotspot_fraction = 0.5;

  /// Long-run offered load in flits/node/cycle.
  double mean_load() const {
    return burst_rate * mean_on / (mean_on + mean_off);
  }
};

class BurstyTraffic : public TrafficModel {
 public:
  explicit BurstyTraffic(const BurstyConfig& cfg);

  void init(const noc::MeshDims& dims) override;
  void generate(Cycle now, NodeId node, Rng& rng,
                std::vector<noc::PacketDesc>& out) override;

  /// Whether `node`'s source is currently in its ON phase (for tests).
  bool is_on(NodeId node) const;

 private:
  BurstyConfig cfg_;
  SyntheticTraffic pattern_;     ///< Reused for destination selection.
  std::vector<bool> on_;         ///< Per-node phase.
};

}  // namespace rnoc::traffic
