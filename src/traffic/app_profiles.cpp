#include "traffic/app_profiles.hpp"

#include "common/types.hpp"

namespace rnoc::traffic {
namespace {

AppProfile make(const std::string& suite, const std::string& name,
                double request_rate, double forward_prob,
                double invalidate_prob, int sharers) {
  AppProfile p;
  p.name = name;
  p.suite = suite;
  p.coherence.request_rate = request_rate;
  p.coherence.forward_prob = forward_prob;
  p.coherence.invalidate_prob = invalidate_prob;
  p.coherence.sharers = sharers;
  return p;
}

}  // namespace

const std::vector<AppProfile>& splash2_profiles() {
  // Request rates reflect relative L1-miss NoC loads of the SPLASH-2 apps on
  // a 64-core CMP: ocean/radix are communication-heavy, the water codes are
  // compute-bound, barnes/fmm/raytrace sit in between.
  static const std::vector<AppProfile> profiles = {
      make("SPLASH-2", "barnes", 0.012, 0.25, 0.12, 2),
      make("SPLASH-2", "fmm", 0.010, 0.20, 0.10, 2),
      make("SPLASH-2", "lu", 0.008, 0.10, 0.06, 1),
      make("SPLASH-2", "ocean", 0.020, 0.15, 0.10, 2),
      make("SPLASH-2", "radix", 0.022, 0.10, 0.08, 1),
      make("SPLASH-2", "raytrace", 0.014, 0.30, 0.10, 2),
      make("SPLASH-2", "water-ns", 0.006, 0.15, 0.08, 1),
      make("SPLASH-2", "water-sp", 0.007, 0.15, 0.08, 1),
      make("SPLASH-2", "cholesky", 0.011, 0.15, 0.08, 1),
      make("SPLASH-2", "fft", 0.018, 0.10, 0.06, 1),
  };
  return profiles;
}

const std::vector<AppProfile>& parsec_profiles() {
  // PARSEC working sets are larger and its sharing patterns heavier, so the
  // aggregate network load exceeds SPLASH-2's (canneal/dedup/ferret are the
  // big communicators, blackscholes/swaptions the light ones).
  static const std::vector<AppProfile> profiles = {
      make("PARSEC", "blackscholes", 0.008, 0.10, 0.05, 1),
      make("PARSEC", "bodytrack", 0.015, 0.25, 0.12, 2),
      make("PARSEC", "canneal", 0.020, 0.30, 0.15, 3),
      make("PARSEC", "dedup", 0.021, 0.25, 0.12, 2),
      make("PARSEC", "ferret", 0.020, 0.25, 0.12, 2),
      make("PARSEC", "fluidanimate", 0.016, 0.20, 0.10, 2),
      make("PARSEC", "swaptions", 0.010, 0.10, 0.05, 1),
      make("PARSEC", "vips", 0.018, 0.20, 0.10, 2),
      make("PARSEC", "x264", 0.020, 0.25, 0.12, 2),
      make("PARSEC", "facesim", 0.017, 0.20, 0.10, 2),
      make("PARSEC", "streamcluster", 0.019, 0.15, 0.08, 1),
  };
  return profiles;
}

const AppProfile& find_profile(const std::string& name) {
  for (const auto& p : splash2_profiles())
    if (p.name == name) return p;
  for (const auto& p : parsec_profiles())
    if (p.name == name) return p;
  require(false, "find_profile: unknown benchmark '" + name + "'");
  // Unreachable; placate control-flow analysis.
  return splash2_profiles().front();
}

std::shared_ptr<CoherenceTraffic> make_traffic(const AppProfile& p) {
  return std::make_shared<CoherenceTraffic>(p.coherence);
}

}  // namespace rnoc::traffic
