#include "traffic/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/types.hpp"

namespace rnoc::traffic {

TraceRecorder::TraceRecorder(std::shared_ptr<TrafficModel> inner)
    : inner_(std::move(inner)) {
  require(inner_ != nullptr, "TraceRecorder: inner model required");
}

void TraceRecorder::init(const noc::MeshDims& dims) {
  TrafficModel::init(dims);
  inner_->init(dims);
}

void TraceRecorder::generate(Cycle now, NodeId node, Rng& rng,
                             std::vector<noc::PacketDesc>& out) {
  const std::size_t before = out.size();
  inner_->generate(now, node, rng, out);
  for (std::size_t i = before; i < out.size(); ++i) {
    const noc::PacketDesc& p = out[i];
    entries_.push_back({now, node, p.dst, p.size_flits, p.traffic_class,
                        p.payload});
  }
}

void TraceRecorder::on_delivered(const noc::Flit& tail, NodeId at, Cycle now,
                                 Rng& rng, std::vector<Response>& responses) {
  const std::size_t before = responses.size();
  inner_->on_delivered(tail, at, now, rng, responses);
  for (std::size_t i = before; i < responses.size(); ++i) {
    const Response& r = responses[i];
    // Record the response at its injection-ready time; replay then treats
    // it as an ordinary source packet with the dependency baked in.
    entries_.push_back({std::max(r.ready, now + 1), r.node, r.desc.dst,
                        r.desc.size_flits, r.desc.traffic_class,
                        r.desc.payload});
  }
}

void TraceRecorder::save(std::ostream& os) const {
  std::vector<TraceEntry> sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
  for (const TraceEntry& e : sorted) {
    os << e.cycle << ' ' << e.src << ' ' << e.dst << ' ' << e.size_flits
       << ' ' << static_cast<int>(e.traffic_class) << ' ' << e.payload
       << '\n';
  }
}

std::vector<TraceEntry> TraceRecorder::parse(std::istream& is) {
  std::vector<TraceEntry> entries;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e;
    int cls = 0;
    ls >> e.cycle >> e.src >> e.dst >> e.size_flits >> cls >> e.payload;
    require(static_cast<bool>(ls), "TraceRecorder::parse: malformed line '" +
                                       line + "'");
    require(cls >= 0 && cls <= 255, "TraceRecorder::parse: bad class");
    e.traffic_class = static_cast<std::uint8_t>(cls);
    entries.push_back(e);
  }
  return entries;
}

TraceReplay::TraceReplay(std::vector<TraceEntry> entries)
    : entries_(std::move(entries)) {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.cycle < b.cycle;
                   });
}

void TraceReplay::init(const noc::MeshDims& dims) {
  TrafficModel::init(dims);
  per_node_entries_.assign(static_cast<std::size_t>(dims.nodes()), {});
  per_node_cursor_.assign(static_cast<std::size_t>(dims.nodes()), 0);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TraceEntry& e = entries_[i];
    require(e.src >= 0 && e.src < dims.nodes() && e.dst >= 0 &&
                e.dst < dims.nodes(),
            "TraceReplay: trace node outside this mesh");
    per_node_entries_[static_cast<std::size_t>(e.src)].push_back(i);
  }
}

void TraceReplay::generate(Cycle now, NodeId node, Rng&,
                           std::vector<noc::PacketDesc>& out) {
  auto& cursor = per_node_cursor_[static_cast<std::size_t>(node)];
  const auto& mine = per_node_entries_[static_cast<std::size_t>(node)];
  while (cursor < mine.size() && entries_[mine[cursor]].cycle <= now) {
    const TraceEntry& e = entries_[mine[cursor]];
    noc::PacketDesc p;
    p.src = e.src;
    p.dst = e.dst;
    p.size_flits = e.size_flits;
    p.traffic_class = e.traffic_class;
    p.payload = e.payload;
    out.push_back(p);
    ++cursor;
  }
}

}  // namespace rnoc::traffic
