// Per-benchmark NoC traffic profiles standing in for SPLASH-2 and PARSEC
// full-system traces (paper §IX; see DESIGN.md §1 for the substitution
// rationale). Each profile parameterizes the coherence traffic model with a
// request rate and protocol mix chosen so relative network loads follow the
// benchmarks' published NoC characteristics (PARSEC loads the network harder
// than SPLASH-2 on average, matching the paper's 13% vs 10% fault penalty).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "traffic/coherence.hpp"

namespace rnoc::traffic {

struct AppProfile {
  std::string name;
  std::string suite;  ///< "SPLASH-2" or "PARSEC".
  CoherenceConfig coherence;
};

const std::vector<AppProfile>& splash2_profiles();
const std::vector<AppProfile>& parsec_profiles();

/// Looks a profile up by name across both suites; throws if unknown.
const AppProfile& find_profile(const std::string& name);

/// Builds the traffic model for a profile.
std::shared_ptr<CoherenceTraffic> make_traffic(const AppProfile& p);

}  // namespace rnoc::traffic
