// Traffic trace recording and replay.
//
// A TraceRecorder wraps any TrafficModel and logs every packet it creates —
// both source packets and protocol responses — as one line per packet. A
// TraceReplay feeds a recorded trace back into the simulator, which makes
// experiments repeatable across traffic-model changes and lets externally
// captured traces (e.g. from a full-system simulator) drive the network.
//
// Text format, one packet per line:
//   <cycle> <src> <dst> <size_flits> <class> <payload>
// Lines are written in nondecreasing cycle order.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "traffic/patterns.hpp"

namespace rnoc::traffic {

/// One recorded packet creation.
struct TraceEntry {
  Cycle cycle = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int size_flits = 1;
  std::uint8_t traffic_class = 0;
  std::uint64_t payload = 0;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Wraps a traffic model and records everything it generates.
class TraceRecorder : public TrafficModel {
 public:
  explicit TraceRecorder(std::shared_ptr<TrafficModel> inner);

  void init(const noc::MeshDims& dims) override;
  void generate(Cycle now, NodeId node, Rng& rng,
                std::vector<noc::PacketDesc>& out) override;
  void on_delivered(const noc::Flit& tail, NodeId at, Cycle now, Rng& rng,
                    std::vector<Response>& responses) override;

  const std::vector<TraceEntry>& trace() const { return entries_; }

  /// Serializes the trace (sorted by cycle) to a stream / parses it back.
  void save(std::ostream& os) const;
  static std::vector<TraceEntry> parse(std::istream& is);

 private:
  std::shared_ptr<TrafficModel> inner_;
  std::vector<TraceEntry> entries_;
};

/// Replays a recorded trace: packets are created at their recorded cycles;
/// no responses are generated (responses were recorded as packets).
class TraceReplay : public TrafficModel {
 public:
  explicit TraceReplay(std::vector<TraceEntry> entries);

  void init(const noc::MeshDims& dims) override;
  void generate(Cycle now, NodeId node, Rng& rng,
                std::vector<noc::PacketDesc>& out) override;

  std::size_t size() const { return entries_.size(); }

 private:
  /// Entries sorted by (cycle, src); per-node cursors into the sorted list.
  std::vector<TraceEntry> entries_;
  std::vector<std::size_t> order_;            ///< indices sorted by cycle
  std::vector<std::size_t> per_node_cursor_;  ///< next order_ index per node
  std::vector<std::vector<std::size_t>> per_node_entries_;
};

}  // namespace rnoc::traffic
