#include "traffic/patterns.hpp"

#include "common/types.hpp"

namespace rnoc::traffic {

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::UniformRandom: return "uniform_random";
    case Pattern::Transpose: return "transpose";
    case Pattern::BitComplement: return "bit_complement";
    case Pattern::Tornado: return "tornado";
    case Pattern::Neighbor: return "neighbor";
    case Pattern::Hotspot: return "hotspot";
  }
  unreachable("pattern_name: unhandled Pattern");
}

SyntheticTraffic::SyntheticTraffic(const SyntheticConfig& cfg) : cfg_(cfg) {
  require(cfg.injection_rate >= 0.0 && cfg.injection_rate <= 1.0,
          "SyntheticTraffic: injection rate must lie in [0,1] flits/node/cycle");
  require(cfg.packet_size >= 1, "SyntheticTraffic: bad packet size");
  if (cfg.pattern == Pattern::Hotspot) {
    require(!cfg.hotspots.empty(), "SyntheticTraffic: hotspot list empty");
    require(cfg.hotspot_fraction >= 0.0 && cfg.hotspot_fraction <= 1.0,
            "SyntheticTraffic: hotspot_fraction must lie in [0,1]");
  }
}

void SyntheticTraffic::init(const noc::MeshDims& dims) {
  TrafficModel::init(dims);
  // Hotspot ids can only be range-checked once the mesh shape is known;
  // an out-of-mesh id would otherwise throw from coord bookkeeping deep
  // inside a simulation run instead of at setup.
  for (const NodeId h : cfg_.hotspots)
    require(h >= 0 && h < dims.nodes(),
            "SyntheticTraffic: hotspot node id outside the mesh");
}

NodeId SyntheticTraffic::destination(NodeId node, Rng& rng) const {
  const int n = dims_.nodes();
  const Coord c = dims_.coord_of(node);
  switch (cfg_.pattern) {
    case Pattern::UniformRandom: {
      NodeId d = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(n - 1)));
      if (d >= node) ++d;  // skip self
      return d;
    }
    case Pattern::Transpose:
      // On rectangular meshes (x != y) the literal transpose (y, x) can fall
      // outside the mesh; folding each axis modulo its extent keeps every
      // destination valid and degrades to the classic transpose on squares.
      return dims_.node_of({c.y % dims_.x, c.x % dims_.y});
    case Pattern::BitComplement:
      return static_cast<NodeId>((n - 1) - node);
    case Pattern::Tornado:
      return dims_.node_of({(c.x + dims_.x / 2) % dims_.x,
                            (c.y + dims_.y / 2) % dims_.y});
    case Pattern::Neighbor:
      return dims_.node_of({(c.x + 1) % dims_.x, c.y});
    case Pattern::Hotspot: {
      if (rng.next_bool(cfg_.hotspot_fraction)) {
        const NodeId h = cfg_.hotspots[static_cast<std::size_t>(
            rng.next_below(cfg_.hotspots.size()))];
        if (h != node) return h;
      }
      NodeId d = static_cast<NodeId>(rng.next_below(
          static_cast<std::uint64_t>(n - 1)));
      if (d >= node) ++d;
      return d;
    }
  }
  unreachable("SyntheticTraffic::destination: unhandled Pattern");
}

void SyntheticTraffic::generate(Cycle, NodeId node, Rng& rng,
                                std::vector<noc::PacketDesc>& out) {
  // Bernoulli arrival: injection_rate flits/cycle => rate/size packets/cycle.
  const double packet_rate =
      cfg_.injection_rate / static_cast<double>(cfg_.packet_size);
  if (!rng.next_bool(packet_rate)) return;
  NodeId dst = destination(node, rng);
  if (dst == node) return;  // degenerate patterns (e.g. transpose diagonal)
  noc::PacketDesc p;
  p.src = node;
  p.dst = dst;
  p.size_flits = cfg_.packet_size;
  out.push_back(p);
}

Cycle SyntheticTraffic::next_injection(Cycle from, Cycle horizon, NodeId node,
                                       Rng& rng,
                                       std::vector<noc::PacketDesc>& out) {
  // Draw-for-draw replay of per-cycle generate() calls: one Bernoulli draw
  // per quiet cycle, destination draws on a hit, self-addressed hits
  // swallowed with their draws consumed — the node's RNG stream is
  // bit-identical to the cycle sweep's.
  const double packet_rate =
      cfg_.injection_rate / static_cast<double>(cfg_.packet_size);
  for (Cycle c = from; c < horizon; ++c) {
    if (!rng.next_bool(packet_rate)) continue;
    const NodeId dst = destination(node, rng);
    if (dst == node) continue;  // degenerate patterns (e.g. transpose diagonal)
    noc::PacketDesc p;
    p.src = node;
    p.dst = dst;
    p.size_flits = cfg_.packet_size;
    out.push_back(p);
    return c;
  }
  return kNeverCycle;
}

}  // namespace rnoc::traffic
