#include "traffic/coherence.hpp"

#include "common/types.hpp"

namespace rnoc::traffic {

CoherenceTraffic::CoherenceTraffic(const CoherenceConfig& cfg) : cfg_(cfg) {
  require(cfg.request_rate >= 0.0 && cfg.request_rate <= 1.0,
          "CoherenceTraffic: request rate must lie in [0,1]");
  require(cfg.forward_prob >= 0.0 && cfg.forward_prob <= 1.0 &&
              cfg.invalidate_prob >= 0.0 && cfg.invalidate_prob <= 1.0,
          "CoherenceTraffic: probabilities must lie in [0,1]");
  require(cfg.sharers >= 0 && cfg.data_flits >= 1,
          "CoherenceTraffic: bad sharers/data_flits");
}

NodeId CoherenceTraffic::random_other_node(NodeId self, Rng& rng) const {
  NodeId d = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(dims_.nodes() - 1)));
  if (d >= self) ++d;
  return d;
}

void CoherenceTraffic::generate(Cycle, NodeId node, Rng& rng,
                                std::vector<noc::PacketDesc>& out) {
  if (!rng.next_bool(cfg_.request_rate)) return;
  // Address-interleaved home: uniform over the other nodes.
  noc::PacketDesc p;
  p.src = node;
  p.dst = random_other_node(node, rng);
  p.size_flits = 1;
  p.traffic_class = static_cast<std::uint8_t>(CoherenceClass::Request);
  p.payload = static_cast<std::uint64_t>(node);  // original requester
  out.push_back(p);
}

void CoherenceTraffic::on_delivered(const noc::Flit& tail, NodeId at,
                                    Cycle now, Rng& rng,
                                    std::vector<Response>& responses) {
  const auto cls = static_cast<CoherenceClass>(tail.traffic_class);
  const auto requester = static_cast<NodeId>(tail.payload);
  switch (cls) {
    case CoherenceClass::Request: {
      if (rng.next_bool(cfg_.forward_prob)) {
        // Line owned remotely: home forwards the request to the owner.
        NodeId owner = random_other_node(at, rng);
        if (owner == requester) {
          // Owner == requester is a silent upgrade; answer directly instead.
          owner = at;
        }
        if (owner != at) {
          Response r;
          r.node = at;
          r.desc.dst = owner;
          r.desc.size_flits = 1;
          r.desc.traffic_class =
              static_cast<std::uint8_t>(CoherenceClass::Forward);
          r.desc.payload = static_cast<std::uint64_t>(requester);
          r.ready = now + cfg_.service_delay;
          responses.push_back(r);
          break;
        }
      }
      // Home has the line: send the data response.
      if (requester != at) {
        Response r;
        r.node = at;
        r.desc.dst = requester;
        r.desc.size_flits = cfg_.data_flits;
        r.desc.traffic_class = static_cast<std::uint8_t>(CoherenceClass::Data);
        r.desc.payload = static_cast<std::uint64_t>(requester);
        r.ready = now + cfg_.service_delay;
        responses.push_back(r);
      }
      if (rng.next_bool(cfg_.invalidate_prob)) {
        for (int s = 0; s < cfg_.sharers; ++s) {
          const NodeId sharer = random_other_node(at, rng);
          if (sharer == requester) continue;
          Response r;
          r.node = at;
          r.desc.dst = sharer;
          r.desc.size_flits = 1;
          r.desc.traffic_class =
              static_cast<std::uint8_t>(CoherenceClass::Invalidate);
          r.desc.payload = static_cast<std::uint64_t>(requester);
          r.ready = now + cfg_.service_delay;
          responses.push_back(r);
        }
      }
      break;
    }
    case CoherenceClass::Forward: {
      // Remote owner supplies the line to the original requester.
      if (requester != at) {
        Response r;
        r.node = at;
        r.desc.dst = requester;
        r.desc.size_flits = cfg_.data_flits;
        r.desc.traffic_class = static_cast<std::uint8_t>(CoherenceClass::Data);
        r.desc.payload = static_cast<std::uint64_t>(requester);
        r.ready = now + cfg_.forward_delay;
        responses.push_back(r);
      }
      break;
    }
    case CoherenceClass::Invalidate: {
      // Sharer acknowledges to the requester.
      if (requester != at) {
        Response r;
        r.node = at;
        r.desc.dst = requester;
        r.desc.size_flits = 1;
        r.desc.traffic_class = static_cast<std::uint8_t>(CoherenceClass::Ack);
        r.desc.payload = static_cast<std::uint64_t>(requester);
        r.ready = now + 1;
        responses.push_back(r);
      }
      break;
    }
    case CoherenceClass::Data:
    case CoherenceClass::Ack:
      break;  // Terminal messages.
  }
}

}  // namespace rnoc::traffic
