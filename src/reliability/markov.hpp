// Continuous-time Markov chain (CTMC) mean-time-to-absorption solver, and
// the two-component redundancy models built on it.
//
// The paper's Eq. 5 cites Gaver (1963), "Time to failure and availability of
// paralleled systems with repair". This module provides the exact machinery:
// a small dense CTMC solver for mean absorption times, plus the standard
// two-component models (parallel, cold standby, parallel with repair) so the
// paper's formula can be situated precisely among them (see EXPERIMENTS.md).
#pragma once

#include <vector>

namespace rnoc::rel {

/// A CTMC over states 0..n-1 given as a generator matrix Q (row-major):
/// q[i][j] is the transition rate i -> j (i != j); diagonal entries are
/// ignored and recomputed as -sum of the row. States with no outgoing rate
/// are absorbing.
class Ctmc {
 public:
  explicit Ctmc(std::vector<std::vector<double>> rates);

  int states() const { return static_cast<int>(rates_.size()); }
  bool is_absorbing(int state) const;

  /// Mean time from `start` until *any* absorbing state is hit. Solves the
  /// linear system (-Q_T) t = 1 over the transient states by Gaussian
  /// elimination with partial pivoting. Throws if `start` cannot reach an
  /// absorbing state.
  double mean_time_to_absorption(int start) const;

  /// Stationary distribution pi (pi Q = 0, sum pi = 1) for an irreducible
  /// chain with NO absorbing states. Throws if any state is absorbing.
  std::vector<double> steady_state() const;

 private:
  std::vector<std::vector<double>> rates_;
};

/// Long-run availability of a repairable active-parallel pair: fraction of
/// time at least one component is up, with each failed component repaired
/// independently at rate mu (the availability counterpart of Gaver's MTTF).
double parallel_repair_availability(double lambda1, double lambda2, double mu);

/// Mean lifetime of two active-parallel components (rates per hour), system
/// up while either is: E[max] = 1/l1 + 1/l2 - 1/(l1+l2).
double ctmc_parallel_mttf(double lambda1, double lambda2);

/// Cold standby: component 1 runs; on its failure component 2 takes over
/// (perfect switching): E = 1/l1 + 1/l2.
double ctmc_standby_mttf(double lambda1, double lambda2);

/// Active parallel with exponential repair at rate mu of the single failed
/// component (Gaver's repairable paralleled system). mu = 0 degenerates to
/// the plain parallel lifetime.
double ctmc_parallel_repair_mttf(double lambda1, double lambda2, double mu);

}  // namespace rnoc::rel
