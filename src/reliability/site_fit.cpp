#include "reliability/site_fit.hpp"

#include "core/protection.hpp"

namespace rnoc::rel {

double site_fit(const fault::FaultSite& site, const RouterGeometry& g,
                const TddbParams& p, const OperatingPoint& op) {
  using fault::SiteType;
  const double f = fit_per_fet(p, 1.0, op.vdd_volts, op.temp_kelvin);
  const int P = g.ports;
  const int V = g.vcs;
  switch (site.type) {
    case SiteType::RcPrimary:
    case SiteType::RcSpare:
      // One RC unit: X and Y destination comparators.
      return f * 2.0 * fets::comparator(g.comparator_bits());
    case SiteType::Va1ArbiterSet:
      // The po v:1 arbiters owned by one input VC (the paper treats the set
      // as a unit, §V-B1).
      return f * static_cast<double>(P) * fets::arbiter(V);
    case SiteType::Va2Arbiter:
      return f * fets::arbiter(P * V);
    case SiteType::Sa1Arbiter:
      // The port's v:1 arbiter plus its P VC-select datapath muxes
      // (Table I attributes P*P v:1 muxes to the SA stage).
      return f * (fets::arbiter(V) +
                  static_cast<double>(P) * fets::mux(V, 1));
    case SiteType::Sa1Bypass:
      // Bypass 2:1 mux + default-winner register.
      return f * (fets::mux(2, 1) + fets::dff(2));
    case SiteType::Sa2Arbiter:
      return f * fets::arbiter(P);
    case SiteType::XbMux:
      return f * fets::mux(P, g.flit_bits);
    case SiteType::XbDemux:
      // The demux hanging off mux `a`: the doubly-shared mux carries the
      // single 1:n+1 demux (1:3 at P=5), the rest are 1:2.
      return f * fets::demux(
                     core::secondary_fanout_of_mux(site.a, P) + 1,
                     g.flit_bits);
    case SiteType::XbPSelect:
      return f * fets::mux(2, g.flit_bits);
  }
  require(false, "site_fit: unknown site type");
  return 0.0;
}

std::vector<WeightedSite> weighted_sites(const RouterGeometry& g,
                                         const TddbParams& p,
                                         bool include_correction,
                                         const OperatingPoint& op) {
  const fault::FaultGeometry fg{g.ports, g.vcs};
  std::vector<WeightedSite> out;
  for (const auto& site :
       fault::RouterFaultState::enumerate_sites(fg, include_correction))
    out.push_back({site, site_fit(site, g, p, op)});
  return out;
}

double total_site_fit(const std::vector<WeightedSite>& sites) {
  double sum = 0.0;
  for (const auto& s : sites) sum += s.fit;
  return sum;
}

}  // namespace rnoc::rel
