#include "reliability/mttf.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace rnoc::rel {

double mttf_from_fit(double fit) {
  require(fit > 0.0, "mttf_from_fit: FIT must be positive");
  return kBillionHours / fit;
}

double gaver_pair_mttf(double fit1, double fit2) {
  require(fit1 > 0.0 && fit2 > 0.0, "gaver_pair_mttf: FITs must be positive");
  return kBillionHours / fit1 + kBillionHours / fit2 +
         kBillionHours / (fit1 + fit2);
}

double parallel_pair_mttf(double fit1, double fit2) {
  require(fit1 > 0.0 && fit2 > 0.0,
          "parallel_pair_mttf: FITs must be positive");
  return kBillionHours / fit1 + kBillionHours / fit2 -
         kBillionHours / (fit1 + fit2);
}

double monte_carlo_parallel_mttf(double fit1, double fit2,
                                 std::uint64_t trials, Rng& rng) {
  require(trials > 0, "monte_carlo_parallel_mttf: need at least one trial");
  // Rates per hour.
  const double l1 = fit1 / kBillionHours;
  const double l2 = fit2 / kBillionHours;
  double sum = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const double x1 = rng.next_exponential(l1);
    const double x2 = rng.next_exponential(l2);
    sum += std::max(x1, x2);
  }
  return sum / static_cast<double>(trials);
}

MttfReport mttf_report(const RouterGeometry& g, const TddbParams& p,
                       bool as_printed, const OperatingPoint& op) {
  StageFits base = baseline_stage_fits(g, p, op);
  StageFits corr = correction_stage_fits(g, p, op);
  if (as_printed) {
    base = base.rounded();
    corr = corr.rounded();
  }
  MttfReport r;
  r.fit_baseline = base.total();
  r.fit_correction = corr.total();
  r.mttf_baseline_h = mttf_from_fit(r.fit_baseline);
  r.mttf_protected_h = gaver_pair_mttf(r.fit_baseline, r.fit_correction);
  r.improvement = r.mttf_protected_h / r.mttf_baseline_h;
  return r;
}

}  // namespace rnoc::rel
