#include "reliability/forc.hpp"

#include <cmath>

#include "common/types.hpp"

namespace rnoc::rel {
namespace {

// RAMP (Srinivasan et al., ISCA'04) TDDB fitting parameters.
constexpr double kA = 78.0;
constexpr double kB = -0.081;        // 1/K
constexpr double kX = 0.759;         // eV
constexpr double kY = -66.8;         // eV*K
constexpr double kZ = -8.37e-4;      // eV/K

double forc_shape(double vdd, double t) {
  const double volt_exp = kA - kB * t;
  const double numerator = kX + kY / t + kZ * t;
  return std::pow(vdd, volt_exp) * std::exp(-numerator / (kBoltzmannEv * t));
}

}  // namespace

TddbParams paper_calibrated_params() {
  // Solve FIT_per_FET(duty=1, 1 V, 300 K) == kPaperFitPerFet for A_TDDB.
  const double shape = forc_shape(1.0, 300.0);
  TddbParams p;
  p.a = kA;
  p.b = kB;
  p.x_ev = kX;
  p.y_evk = kY;
  p.z_ev_per_k = kZ;
  p.a_tddb = 1e9 * shape / kPaperFitPerFet;
  return p;
}

double forc_tddb(const TddbParams& p, double vdd, double temp_kelvin) {
  require(vdd > 0.0, "forc_tddb: Vdd must be positive");
  require(temp_kelvin > 0.0, "forc_tddb: temperature must be positive kelvin");
  const double volt_exp = p.a - p.b * temp_kelvin;
  const double numerator = p.x_ev + p.y_evk / temp_kelvin + p.z_ev_per_k * temp_kelvin;
  return (1e9 / p.a_tddb) * std::pow(vdd, volt_exp) *
         std::exp(-numerator / (kBoltzmannEv * temp_kelvin));
}

double fit_per_fet(const TddbParams& p, double duty_cycle, double vdd,
                   double temp_kelvin) {
  require(duty_cycle >= 0.0 && duty_cycle <= 1.0,
          "fit_per_fet: duty cycle must lie in [0,1]");
  return duty_cycle * forc_tddb(p, vdd, temp_kelvin);
}

}  // namespace rnoc::rel
