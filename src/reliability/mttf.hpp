// Mean Time To Failure models (paper §VII, Eqs. 1 and 4-7).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "reliability/fit.hpp"

namespace rnoc::rel {

/// Eq. (1): MTTF in hours from a FIT rate (failures per 1e9 hours).
double mttf_from_fit(double fit);

/// Eq. (5), as printed in the paper (after Gaver 1963): MTTF in hours of a
/// two-component system that keeps working while either component works,
/// with aggregate FIT rates fit1 and fit2:
///   MTTF = 1e9/fit1 + 1e9/fit2 + 1e9/(fit1 + fit2).
double gaver_pair_mttf(double fit1, double fit2);

/// Textbook expected lifetime of a parallel pair of exponential components,
/// E[max(X1, X2)] = 1/l1 + 1/l2 - 1/(l1+l2). Provided as a cross-check; the
/// paper's Eq. (5) uses '+' for the last term (see EXPERIMENTS.md note).
double parallel_pair_mttf(double fit1, double fit2);

/// Monte-Carlo estimate of E[max(X1, X2)] with exponential lifetimes; should
/// converge to parallel_pair_mttf. Hours.
double monte_carlo_parallel_mttf(double fit1, double fit2,
                                 std::uint64_t trials, Rng& rng);

/// End-to-end reproduction of paper §VII-D.
struct MttfReport {
  double fit_baseline = 0.0;    ///< λ1: SOFR FIT of baseline pipeline.
  double fit_correction = 0.0;  ///< λ2: SOFR FIT of correction circuitry.
  double mttf_baseline_h = 0.0;   ///< Eq. (4); paper: ~354,358 h.
  double mttf_protected_h = 0.0;  ///< Eq. (6); paper: ~2,190,696 h.
  double improvement = 0.0;       ///< Eq. (7); paper: ~6x.
};

/// Computes the paper's MTTF analysis for a geometry. When `as_printed` is
/// true, stage FITs are rounded to integers before summing — the paper's
/// arithmetic — which reproduces its printed totals exactly.
MttfReport mttf_report(const RouterGeometry& g, const TddbParams& p,
                       bool as_printed = true, const OperatingPoint& op = {});

}  // namespace rnoc::rel
