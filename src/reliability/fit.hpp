// Sum-of-Failure-Rates (SOFR) roll-ups of the itemized FIT tables into
// per-stage and per-router failure rates (paper §VII-B, Tables I & II).
#pragma once

#include <string>
#include <vector>

#include "reliability/component_library.hpp"

namespace rnoc::rel {

/// FIT of the four router pipeline stages (failures per 1e9 hours).
struct StageFits {
  double rc = 0.0;
  double va = 0.0;
  double sa = 0.0;
  double xb = 0.0;

  double total() const { return rc + va + sa + xb; }
  /// Stage FITs rounded to integers before summing, which is how the paper
  /// arrives at its printed totals (e.g. 2822 for the baseline pipeline).
  StageFits rounded() const;
};

/// SOFR over an itemized table, bucketed by stage name.
StageFits stage_fits(const std::vector<FitLine>& table);

/// Table I roll-up for a geometry (defaults: RC 117, VA 1478, SA 203.5, XB 1024).
StageFits baseline_stage_fits(const RouterGeometry& g, const TddbParams& p,
                              const OperatingPoint& op = {});

/// Table II roll-up (defaults: RC 117, VA 60, SA 53, XB 416).
StageFits correction_stage_fits(const RouterGeometry& g, const TddbParams& p,
                                const OperatingPoint& op = {});

/// Renders an itemized table in the paper's Table I/II layout.
std::string format_fit_table(const std::vector<FitLine>& table,
                             const std::string& title);

}  // namespace rnoc::rel
