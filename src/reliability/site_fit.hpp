// Maps behavioral fault sites (fault/fault_model.hpp) to their FIT rates,
// bridging the component FIT library (Tables I/II) and the structural
// router model. Used by FIT-weighted fault injection and the structural
// MTTF Monte Carlo.
//
// Coverage note: the state-field flip-flops of the correction circuitry
// (R2/VF/ID, SP/FSP, default-winner registers — 100 of Table II's 646 FIT)
// are not behavioral fault sites, so site FITs sum to slightly less than the
// SOFR stage totals on the protected router; the baseline sites cover
// Table I exactly.
#pragma once

#include <vector>

#include "fault/fault_model.hpp"
#include "reliability/component_library.hpp"

namespace rnoc::rel {

/// FIT of one behavioral fault site at an operating point.
double site_fit(const fault::FaultSite& site, const RouterGeometry& g,
                const TddbParams& p, const OperatingPoint& op = {});

/// All sites of a router with their FITs (order matches
/// RouterFaultState::enumerate_sites for the same arguments).
struct WeightedSite {
  fault::FaultSite site;
  double fit = 0.0;
};
std::vector<WeightedSite> weighted_sites(const RouterGeometry& g,
                                         const TddbParams& p,
                                         bool include_correction,
                                         const OperatingPoint& op = {});

/// Sum of the site FITs (for baseline sites this reproduces Table I's SOFR
/// total).
double total_site_fit(const std::vector<WeightedSite>& sites);

}  // namespace rnoc::rel
