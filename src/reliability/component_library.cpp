#include "reliability/component_library.hpp"

#include <cmath>

#include "common/types.hpp"

namespace rnoc::rel {
namespace fets {
namespace {

/// FET-equivalents per unit of paper FIT at the calibration point.
constexpr double kFetsPerFit = 1.0 / kPaperFitPerFet;  // == 3.75

}  // namespace

double comparator(int bits) {
  require(bits > 0, "fets::comparator: bits must be positive");
  // 6-bit comparator == 11.7 FIT; scales linearly with width.
  return (11.7 * kFetsPerFit / 6.0) * static_cast<double>(bits);
}

double arbiter(int inputs) {
  require(inputs >= 2, "fets::arbiter: need at least 2 request inputs");
  switch (inputs) {
    case 4:  return 7.4 * kFetsPerFit;
    case 5:  return 9.3 * kFetsPerFit;
    case 20: return 36.9 * kFetsPerFit;
    default: {
      // Linear through the paper's (5, 9.3) and (20, 36.9) points.
      const double fit = 0.1 + 1.84 * static_cast<double>(inputs);
      return fit * kFetsPerFit;
    }
  }
}

double mux(int inputs, int bits) {
  require(inputs >= 2 && bits > 0, "fets::mux: invalid shape");
  // Per-bit FIT of an n:1 mux: 1.6 * (n-1)  (a tree of n-1 2:1 muxes).
  return 1.6 * static_cast<double>(inputs - 1) * static_cast<double>(bits) *
         kFetsPerFit;
}

double demux(int outputs, int bits) {
  require(outputs >= 2 && bits > 0, "fets::demux: invalid shape");
  // Per-bit FIT 1.2 for 1:2, +0.2 per extra output (Table II calibration).
  const double per_bit = 1.0 + 0.2 * static_cast<double>(outputs - 1);
  return per_bit * static_cast<double>(bits) * kFetsPerFit;
}

double dff(int bits) {
  require(bits > 0, "fets::dff: bits must be positive");
  return 0.5 * static_cast<double>(bits) * kFetsPerFit;
}

}  // namespace fets

int RouterGeometry::comparator_bits() const {
  const int nodes = mesh_x * mesh_y;
  int bits = 1;
  while ((1 << bits) < nodes) ++bits;
  return bits;
}

namespace {

/// ceil(log2(n)) for n >= 2, used to size identifier state fields.
int id_bits(int n) {
  int bits = 1;
  while ((1 << bits) < n) ++bits;
  return bits;
}

std::string bitsuffix(int n, const char* what) {
  return std::to_string(n) + "-bit " + what;
}

}  // namespace

std::vector<FitLine> baseline_fit_table(const RouterGeometry& g,
                                        const TddbParams& p,
                                        const OperatingPoint& op) {
  require(g.ports >= 2 && g.vcs >= 1, "baseline_fit_table: invalid geometry");
  const double f = fit_per_fet(p, 1.0, op.vdd_volts, op.temp_kelvin);
  const int cb = g.comparator_bits();
  const int pv = g.input_vcs();

  std::vector<FitLine> t;
  // RC: two comparators (X and Y dimension) per input port.
  t.push_back({"RC", bitsuffix(cb, "comparator"), f * fets::comparator(cb),
               2 * g.ports});
  // VA stage 1: every input VC owns `ports` v:1 arbiters.
  t.push_back({"VA", std::to_string(g.vcs) + ":1 arbiter (stage 1)",
               f * fets::arbiter(g.vcs), pv * g.ports});
  // VA stage 2: one (P*V):1 arbiter per downstream VC slot.
  t.push_back({"VA", std::to_string(pv) + ":1 arbiter (stage 2)",
               f * fets::arbiter(pv), pv});
  // SA datapath muxes: per-port VC-select muxes feeding the allocator.
  t.push_back({"SA", std::to_string(g.vcs) + ":1 mux",
               f * fets::mux(g.vcs, 1), g.ports * g.ports});
  // SA stage 1: one v:1 arbiter per input port.
  t.push_back({"SA", std::to_string(g.vcs) + ":1 arbiter (stage 1)",
               f * fets::arbiter(g.vcs), g.ports});
  // SA stage 2: one pi:1 arbiter per output port.
  t.push_back({"SA", std::to_string(g.ports) + ":1 arbiter (stage 2)",
               f * fets::arbiter(g.ports), g.ports});
  // XB: one flit-wide P:1 mux per output port.
  t.push_back({"XB",
               std::to_string(g.flit_bits) + "-bit " +
                   std::to_string(g.ports) + ":1 mux",
               f * fets::mux(g.ports, g.flit_bits), g.ports});
  return t;
}

std::vector<FitLine> correction_fit_table(const RouterGeometry& g,
                                          const TddbParams& p,
                                          const OperatingPoint& op) {
  require(g.ports >= 3 && g.vcs >= 2, "correction_fit_table: geometry too small");
  const double f = fit_per_fet(p, 1.0, op.vdd_volts, op.temp_kelvin);
  const int cb = g.comparator_bits();
  const int pv = g.input_vcs();
  const int port_bits = id_bits(g.ports);  // width of 'R2' and 'SP'
  const int vc_bits = id_bits(g.vcs);      // width of 'ID' and winner register

  std::vector<FitLine> t;
  // RC: full duplicate RC unit per input port.
  t.push_back({"RC", bitsuffix(cb, "comparator (duplicate RC)"),
               f * fets::comparator(cb), 2 * g.ports});
  // VA: arbiter-sharing state fields, one set per input VC.
  t.push_back({"VA", bitsuffix(port_bits, "DFF ('R2')"),
               f * fets::dff(port_bits), pv});
  t.push_back({"VA", "1-bit DFF ('VF')", f * fets::dff(1), pv});
  t.push_back({"VA", bitsuffix(vc_bits, "DFF ('ID')"), f * fets::dff(vc_bits),
               pv});
  // SA: bypass mux + default-winner register per port, SP/FSP per VC.
  t.push_back({"SA", "2:1 mux (bypass)", f * fets::mux(2, 1), g.ports});
  t.push_back({"SA", bitsuffix(vc_bits, "DFF (default-winner reg)"),
               f * fets::dff(vc_bits), g.ports});
  t.push_back({"SA", bitsuffix(port_bits, "DFF ('SP')"),
               f * fets::dff(port_bits), pv});
  t.push_back({"SA", "1-bit DFF ('FSP')", f * fets::dff(1), pv});
  // XB: secondary path — output-select muxes P1..P_P, demuxes D1..D_{P-1}
  // (one 1:3 on the doubly-shared mux, 1:2 on the rest; see DESIGN.md §3).
  t.push_back({"XB",
               std::to_string(g.flit_bits) + "-bit 2:1 mux (P-select)",
               f * fets::mux(2, g.flit_bits), g.ports});
  t.push_back({"XB", std::to_string(g.flit_bits) + "-bit 1:2 demux",
               f * fets::demux(2, g.flit_bits), g.ports - 2});
  t.push_back({"XB", std::to_string(g.flit_bits) + "-bit 1:3 demux",
               f * fets::demux(3, g.flit_bits), 1});
  return t;
}

}  // namespace rnoc::rel
