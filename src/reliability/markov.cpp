#include "reliability/markov.hpp"

#include <cmath>

#include "common/types.hpp"

namespace rnoc::rel {

Ctmc::Ctmc(std::vector<std::vector<double>> rates) : rates_(std::move(rates)) {
  require(!rates_.empty(), "Ctmc: empty chain");
  for (const auto& row : rates_) {
    require(row.size() == rates_.size(), "Ctmc: generator must be square");
    for (double r : row) require(std::isfinite(r), "Ctmc: non-finite rate");
  }
  for (std::size_t i = 0; i < rates_.size(); ++i)
    for (std::size_t j = 0; j < rates_.size(); ++j)
      require(i == j || rates_[i][j] >= 0.0, "Ctmc: negative off-diagonal rate");
}

bool Ctmc::is_absorbing(int state) const {
  require(state >= 0 && state < states(), "Ctmc: state out of range");
  const auto& row = rates_[static_cast<std::size_t>(state)];
  for (std::size_t j = 0; j < row.size(); ++j)
    if (static_cast<int>(j) != state && row[j] > 0.0) return false;
  return true;
}

double Ctmc::mean_time_to_absorption(int start) const {
  require(start >= 0 && start < states(), "Ctmc: start out of range");
  if (is_absorbing(start)) return 0.0;

  // Index the transient states.
  std::vector<int> transient;
  std::vector<int> index_of(static_cast<std::size_t>(states()), -1);
  for (int s = 0; s < states(); ++s) {
    if (!is_absorbing(s)) {
      index_of[static_cast<std::size_t>(s)] =
          static_cast<int>(transient.size());
      transient.push_back(s);
    }
  }
  const std::size_t n = transient.size();

  // Build (-Q_T) t = 1 over the transient block: for transient i,
  //   (sum_j q_ij) t_i - sum_{j transient} q_ij t_j = 1.
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const int si = transient[i];
    double total = 0.0;
    for (int j = 0; j < states(); ++j) {
      if (j == si) continue;
      total += rates_[static_cast<std::size_t>(si)][static_cast<std::size_t>(j)];
    }
    require(total > 0.0, "Ctmc: transient state with no outgoing rate");
    a[i][i] = total;
    for (int j = 0; j < states(); ++j) {
      if (j == si) continue;
      const int tj = index_of[static_cast<std::size_t>(j)];
      if (tj >= 0)
        a[i][static_cast<std::size_t>(tj)] -=
            rates_[static_cast<std::size_t>(si)][static_cast<std::size_t>(j)];
    }
    a[i][n] = 1.0;
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    require(std::fabs(a[pivot][col]) > 1e-300,
            "Ctmc: singular system (absorbing state unreachable?)");
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
    }
  }
  const int ti = index_of[static_cast<std::size_t>(start)];
  return a[static_cast<std::size_t>(ti)][n] /
         a[static_cast<std::size_t>(ti)][static_cast<std::size_t>(ti)];
}

std::vector<double> Ctmc::steady_state() const {
  const auto n = static_cast<std::size_t>(states());
  for (int s = 0; s < states(); ++s)
    require(!is_absorbing(s), "Ctmc::steady_state: chain has absorbing states");

  // Solve pi Q = 0 with the normalization sum(pi) = 1: build Q^T, replace
  // the last equation by the normalization row.
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    double out_rate = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      if (k != j) out_rate += rates_[j][k];
    for (std::size_t i = 0; i < n; ++i)
      a[i][j] = (i == j) ? -out_rate : rates_[j][i];
  }
  for (std::size_t j = 0; j < n; ++j) a[n - 1][j] = 1.0;
  a[n - 1][n] = 1.0;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    require(std::fabs(a[pivot][col]) > 1e-300,
            "Ctmc::steady_state: singular system (chain reducible?)");
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::vector<double> pi(n);
  for (std::size_t i = 0; i < n; ++i) pi[i] = a[i][n] / a[i][i];
  return pi;
}

namespace {

void check_rates(double l1, double l2) {
  require(l1 > 0.0 && l2 > 0.0, "ctmc model: rates must be positive");
}

}  // namespace

double parallel_repair_availability(double l1, double l2, double mu) {
  check_rates(l1, l2);
  require(mu > 0.0, "parallel_repair_availability: need a repair rate");
  // States: 0 both up, 1 only comp2 up, 2 only comp1 up, 3 both down
  // (repair continues from the down state, so the chain is irreducible).
  std::vector<std::vector<double>> q(4, std::vector<double>(4, 0.0));
  q[0][1] = l1;
  q[0][2] = l2;
  q[1][3] = l2;
  q[2][3] = l1;
  q[1][0] = mu;
  q[2][0] = mu;
  q[3][1] = mu;  // repair comp1 first, then comp2 (order is immaterial for
  q[3][2] = mu;  // availability; both exits modeled)
  const auto pi = Ctmc(std::move(q)).steady_state();
  return pi[0] + pi[1] + pi[2];
}

double ctmc_parallel_mttf(double l1, double l2) {
  check_rates(l1, l2);
  // States: 0 = both up, 1 = only comp2 up, 2 = only comp1 up, 3 = down.
  std::vector<std::vector<double>> q(4, std::vector<double>(4, 0.0));
  q[0][1] = l1;
  q[0][2] = l2;
  q[1][3] = l2;
  q[2][3] = l1;
  return Ctmc(std::move(q)).mean_time_to_absorption(0);
}

double ctmc_standby_mttf(double l1, double l2) {
  check_rates(l1, l2);
  // States: 0 = primary running, 1 = standby running, 2 = down.
  std::vector<std::vector<double>> q(3, std::vector<double>(3, 0.0));
  q[0][1] = l1;
  q[1][2] = l2;
  return Ctmc(std::move(q)).mean_time_to_absorption(0);
}

double ctmc_parallel_repair_mttf(double l1, double l2, double mu) {
  check_rates(l1, l2);
  require(mu >= 0.0, "ctmc_parallel_repair_mttf: negative repair rate");
  // Same chain as parallel, plus repair back to "both up".
  std::vector<std::vector<double>> q(4, std::vector<double>(4, 0.0));
  q[0][1] = l1;
  q[0][2] = l2;
  q[1][3] = l2;
  q[2][3] = l1;
  q[1][0] = mu;
  q[2][0] = mu;
  return Ctmc(std::move(q)).mean_time_to_absorption(0);
}

}  // namespace rnoc::rel
