#include "reliability/fit.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/types.hpp"

namespace rnoc::rel {

StageFits StageFits::rounded() const {
  // The paper truncates stage totals to integers (SA: 203.5 -> 203) before
  // summing to 2822; match that so Eq. (4)/(6) reproduce exactly.
  return {std::floor(rc), std::floor(va), std::floor(sa), std::floor(xb)};
}

StageFits stage_fits(const std::vector<FitLine>& table) {
  StageFits s;
  for (const auto& line : table) {
    if (line.stage == "RC") s.rc += line.total_fit();
    else if (line.stage == "VA") s.va += line.total_fit();
    else if (line.stage == "SA") s.sa += line.total_fit();
    else if (line.stage == "XB") s.xb += line.total_fit();
    else require(false, "stage_fits: unknown stage '" + line.stage + "'");
  }
  return s;
}

StageFits baseline_stage_fits(const RouterGeometry& g, const TddbParams& p,
                              const OperatingPoint& op) {
  return stage_fits(baseline_fit_table(g, p, op));
}

StageFits correction_stage_fits(const RouterGeometry& g, const TddbParams& p,
                                const OperatingPoint& op) {
  return stage_fits(correction_fit_table(g, p, op));
}

std::string format_fit_table(const std::vector<FitLine>& table,
                             const std::string& title) {
  std::ostringstream os;
  os << title << "\n";
  os << std::left << std::setw(6) << "Stage" << std::setw(38) << "Component"
     << std::right << std::setw(10) << "FIT/unit" << std::setw(8) << "#"
     << std::setw(12) << "FIT total" << "\n";
  const StageFits s = stage_fits(table);
  std::string last_stage;
  for (const auto& line : table) {
    os << std::left << std::setw(6) << line.stage << std::setw(38)
       << line.component << std::right << std::fixed << std::setprecision(1)
       << std::setw(10) << line.unit_fit << std::setw(8) << line.count
       << std::setw(12) << line.total_fit() << "\n";
  }
  os << std::left << std::setw(52) << "TOTAL (SOFR)" << std::right
     << std::fixed << std::setprecision(1) << std::setw(12) << s.total()
     << "\n";
  os << "  per stage: RC=" << s.rc << " VA=" << s.va << " SA=" << s.sa
     << " XB=" << s.xb << "\n";
  (void)last_stage;
  return os.str();
}

}  // namespace rnoc::rel
