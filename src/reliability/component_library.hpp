// FIT library for the fundamental components of the NoC router pipeline.
//
// Every fundamental component (comparator, arbiter, mux, demux, flip-flop bit)
// carries a duty-cycle-weighted *FET-equivalent* count. Its FIT is that count
// times the per-FET TDDB FIT (reliability/forc.hpp). The FET-equivalent
// counts are calibrated so that at the paper's operating point (1 V, 300 K)
// the unit FIT values reproduce Table I / Table II of Poluri & Louri exactly:
//
//   6-bit comparator   11.7      4:1 arbiter      7.4
//   5:1 arbiter         9.3      20:1 arbiter    36.9 (*)
//   1-bit 4:1 mux       4.8      32-bit 5:1 mux 204.8
//   DFF bit             0.5      1-bit 2:1 mux    1.6
//
// (*) The paper's Table I prints a unit FIT of 36.7 for the 20:1 arbiter but a
// VA-stage total of 1478 = 100*7.4 + 20*36.9, i.e. the printed unit value was
// rounded from the one actually used. We keep 36.9 so all stage totals and
// the downstream MTTF numbers match the paper.
#pragma once

#include <string>
#include <vector>

#include "reliability/forc.hpp"

namespace rnoc::rel {

/// Duty-cycle-weighted FET-equivalents per fundamental component. Multiply by
/// fit_per_fet(duty=1) to get the component FIT at a given (Vdd, T).
namespace fets {

/// n-bit magnitude comparator (XY routing building block).
double comparator(int bits);

/// Round-robin arbiter with n request inputs. Exact paper calibration at
/// n in {4, 5, 20}; linear interpolation elsewhere (for VC-count sweeps).
double arbiter(int inputs);

/// n:1 multiplexer, `bits` wide. Per paper: per-bit FIT 1.6*(n-1).
double mux(int inputs, int bits);

/// 1:n demultiplexer, `bits` wide. Calibrated so a 32-bit 1:2 demux has FIT
/// 38.4 and a 32-bit 1:3 demux 44.8 (Table II XB row sums to 416).
double demux(int outputs, int bits);

/// D flip-flop storage, per bit (state fields). Paper: 0.5 FIT per bit.
double dff(int bits);

}  // namespace fets

/// One line of an itemized FIT table (paper Table I / Table II).
struct FitLine {
  std::string stage;      ///< "RC", "VA", "SA" or "XB".
  std::string component;  ///< Human-readable component description.
  double unit_fit = 0.0;  ///< FIT of one instance.
  int count = 0;          ///< Number of instances in the stage.
  double total_fit() const { return unit_fit * static_cast<double>(count); }
};

/// Router/mesh geometry every FIT count is parameterized over.
/// Defaults reproduce the paper's 5x5 router, 4 VCs, 8x8 mesh, 32-bit flits.
struct RouterGeometry {
  int ports = 5;      ///< Radix (inputs == outputs).
  int vcs = 4;        ///< Virtual channels per input port.
  int flit_bits = 32; ///< Crossbar datapath width.
  int mesh_x = 8;     ///< Mesh columns (sets RC comparator width).
  int mesh_y = 8;     ///< Mesh rows.

  int input_vcs() const { return ports * vcs; }
  /// Destination-field comparator width: bits to address mesh_x*mesh_y nodes.
  int comparator_bits() const;
};

/// Environmental operating point for FIT evaluation.
struct OperatingPoint {
  double vdd_volts = 1.0;
  double temp_kelvin = 300.0;
};

/// Itemized Table I: FIT of the baseline pipeline stages.
std::vector<FitLine> baseline_fit_table(const RouterGeometry& g,
                                        const TddbParams& p,
                                        const OperatingPoint& op = {});

/// Itemized Table II: FIT of the proposed correction circuitry.
std::vector<FitLine> correction_fit_table(const RouterGeometry& g,
                                          const TddbParams& p,
                                          const OperatingPoint& op = {});

}  // namespace rnoc::rel
