#include "reliability/structural_mttf.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/failure_predicate.hpp"

namespace rnoc::rel {
namespace {

/// Samples one site lifetime with the configured hazard shape, keeping the
/// FIT-implied mean (Weibull mean = scale * Gamma(1 + 1/shape)).
double sample_lifetime(Rng& rng, double fit, double shape) {
  const double mean_hours = kBillionHours / fit;
  if (shape == 1.0) return rng.next_exponential(1.0 / mean_hours);
  const double scale = mean_hours / std::tgamma(1.0 + 1.0 / shape);
  return rng.next_weibull(shape, scale);
}

}  // namespace

StructuralMttfResult structural_mttf(const StructuralMttfConfig& cfg) {
  require(cfg.trials > 0, "structural_mttf: need at least one trial");
  require(cfg.weibull_shape > 0.0, "structural_mttf: shape must be positive");
  const auto params = paper_calibrated_params();
  const auto sites = weighted_sites(
      cfg.geometry, params,
      cfg.mode == core::RouterMode::Protected, cfg.op);
  const fault::FaultGeometry fg{cfg.geometry.ports, cfg.geometry.vcs};

  ThreadPool& pool = global_pool();
  const std::size_t shards = pool.size();
  struct Shard {
    RunningStats lifetimes;
    std::uint64_t single_point = 0;
    std::uint64_t total = 0;
  };
  std::vector<Shard> shard_out(shards);

  Rng master(cfg.seed);
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shard_rngs.push_back(master.split());

  const std::uint64_t per_shard = (cfg.trials + shards - 1) / shards;
  pool.parallel_for(shards, [&](std::size_t shard, std::size_t) {
    Rng rng = shard_rngs[shard];
    Shard& out = shard_out[shard];
    const std::uint64_t begin = shard * per_shard;
    const std::uint64_t end = std::min(cfg.trials, begin + per_shard);

    struct Event {
      double time_h;
      std::size_t site_index;
    };
    std::vector<Event> events(sites.size());
    for (std::uint64_t t = begin; t < end; ++t) {
      for (std::size_t i = 0; i < sites.size(); ++i)
        events[i] = {sample_lifetime(rng, sites[i].fit, cfg.weibull_shape), i};
      std::sort(events.begin(), events.end(),
                [](const Event& a, const Event& b) { return a.time_h < b.time_h; });
      fault::RouterFaultState state(fg);
      for (const Event& e : events) {
        state.inject(sites[e.site_index].site);
        if (core::router_failed(state, cfg.mode)) {
          out.lifetimes.add(e.time_h);
          if (sites[e.site_index].site.type == fault::SiteType::XbPSelect)
            ++out.single_point;
          ++out.total;
          break;
        }
      }
    }
  });

  StructuralMttfResult result;
  result.total_site_fit = total_site_fit(sites);
  std::uint64_t single = 0, total = 0;
  for (const auto& s : shard_out) {
    result.lifetime_hours.merge(s.lifetimes);
    single += s.single_point;
    total += s.total;
  }
  result.single_point_fraction =
      total ? static_cast<double>(single) / static_cast<double>(total) : 0.0;
  return result;
}

StructuralMttfResult network_structural_mttf(const StructuralMttfConfig& cfg,
                                             int routers) {
  require(routers >= 1, "network_structural_mttf: need at least one router");
  // One network trial = `routers` independent router-lifetime draws; the
  // network dies with its first router.
  Rng rng(cfg.seed ^ 0x9e77);
  const auto params = paper_calibrated_params();
  const auto sites = weighted_sites(
      cfg.geometry, params, cfg.mode == core::RouterMode::Protected, cfg.op);
  const fault::FaultGeometry fg{cfg.geometry.ports, cfg.geometry.vcs};

  StructuralMttfResult result;
  result.total_site_fit = total_site_fit(sites);

  struct Event {
    double time_h;
    std::size_t site_index;
  };
  std::vector<Event> events(sites.size());
  std::uint64_t single = 0;
  for (std::uint64_t t = 0; t < cfg.trials; ++t) {
    double network_min = 0.0;
    bool min_was_single_point = false;
    bool first = true;
    for (int r = 0; r < routers; ++r) {
      for (std::size_t i = 0; i < sites.size(); ++i)
        events[i] = {sample_lifetime(rng, sites[i].fit, cfg.weibull_shape), i};
      std::sort(events.begin(), events.end(),
                [](const Event& a, const Event& b) { return a.time_h < b.time_h; });
      fault::RouterFaultState state(fg);
      for (const Event& e : events) {
        state.inject(sites[e.site_index].site);
        if (core::router_failed(state, cfg.mode)) {
          if (first || e.time_h < network_min) {
            network_min = e.time_h;
            min_was_single_point = sites[e.site_index].site.type ==
                                   fault::SiteType::XbPSelect;
          }
          first = false;
          break;
        }
      }
    }
    result.lifetime_hours.add(network_min);
    if (min_was_single_point) ++single;
  }
  result.single_point_fraction =
      cfg.trials ? static_cast<double>(single) / static_cast<double>(cfg.trials)
                 : 0.0;
  return result;
}

}  // namespace rnoc::rel
