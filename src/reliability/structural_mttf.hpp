// Structural MTTF Monte Carlo — an extension cross-validating the paper's
// §VII analysis.
//
// The paper abstracts the protected router as TWO aggregate blocks (baseline
// pipeline, correction circuitry) that fail as wholes (Eq. 5). Here we
// instead sample an exponential TDDB lifetime for every individual fault
// site (weighted by its Table I/II FIT), replay the failures in time order,
// and record when the router-level failure predicate actually trips — i.e.
// the real lifetime of the protection mechanisms, including single points
// of failure (the P-select muxes) and cross-stage fault interactions the
// two-block model cannot see.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/protection.hpp"
#include "reliability/site_fit.hpp"

namespace rnoc::rel {

struct StructuralMttfConfig {
  RouterGeometry geometry{};
  core::RouterMode mode = core::RouterMode::Protected;
  std::uint64_t trials = 20000;
  std::uint64_t seed = 1;
  OperatingPoint op{};
  /// Weibull shape of per-site lifetimes. 1.0 = exponential (constant
  /// hazard, the SOFR assumption); >1 models wear-out (TDDB hazards rise
  /// with age). Scales are chosen so each site keeps its FIT-implied mean,
  /// so the baseline MTTF is shape-invariant while redundant-pair lifetimes
  /// shrink (both halves age together).
  double weibull_shape = 1.0;
};

struct StructuralMttfResult {
  RunningStats lifetime_hours;  ///< Per-trial time to router failure.
  double total_site_fit = 0.0;  ///< SOFR over the site population.
  /// Fraction of trials whose terminal fault was an uncovered single point
  /// of failure (a P-select mux) rather than an exhausted redundancy pair.
  double single_point_fraction = 0.0;
};

/// Runs the site-level lifetime simulation (parallel, deterministic).
StructuralMttfResult structural_mttf(const StructuralMttfConfig& cfg);

/// Network-level MTTF: time until the FIRST of `routers` independent routers
/// fails (the paper's motivation — "a single fault in the NoC may paralyze
/// the working of the entire chip"). For i.i.d. router lifetimes this is
/// E[min of n draws]; estimated from the same site-level simulation.
StructuralMttfResult network_structural_mttf(const StructuralMttfConfig& cfg,
                                             int routers);

}  // namespace rnoc::rel
