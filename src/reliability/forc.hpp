// FORC: Failure-in-time Of a Reference Circuit, for the TDDB (time-dependent
// dielectric breakdown) wear-out mechanism.
//
// Implements Eq. (2) and Eq. (3) of Poluri & Louri (IPDPS 2014), which follow
// the architecture-level lifetime-reliability framework of Shin et al. (DSN'07)
// with the TDDB voltage/temperature model of Wu et al. (IBM JRD 2002) and the
// fitting-parameter set popularised by Srinivasan et al. (ISCA'04, RAMP).
//
//   FORC_TDDB = (1e9 / A_TDDB) * Vdd^(a - b*T) * exp(-(X + Y/T + Z*T) / (k*T))
//   FIT_per_FET = duty_cycle * FORC_TDDB
//
// The paper does not print A_TDDB; we calibrate it (see
// `paper_calibrated_params`) so that FIT-per-FET at the paper's operating
// point (Vdd = 1 V, T = 300 K, 100% duty) equals kPaperFitPerFet, which makes
// the component library reproduce the paper's Table I exactly.
#pragma once

namespace rnoc::rel {

/// Boltzmann constant in eV/K, as used by the TDDB exponent.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// FIT per FET implied by the paper's Table I at (1 V, 300 K, 100% duty).
/// Derived from the 32-bit 5:1 crossbar mux: 204.8 FIT / 768 FET-equivalents.
inline constexpr double kPaperFitPerFet = 4.0 / 15.0;

/// TDDB model fitting parameters (Wu et al. / Srinivasan et al.).
struct TddbParams {
  double a_tddb;  ///< Proportionality constant (calibrated, dimensionless).
  double a;       ///< Voltage exponent base term.
  double b;       ///< Voltage exponent temperature slope (1/K).
  double x_ev;    ///< Exponent numerator constant (eV).
  double y_evk;   ///< Exponent numerator 1/T coefficient (eV*K).
  double z_ev_per_k;  ///< Exponent numerator T coefficient (eV/K).
};

/// RAMP TDDB fitting parameters with A_TDDB calibrated to the paper's
/// operating point (see file comment).
TddbParams paper_calibrated_params();

/// Eq. (2): failures per 1e9 hours of the TDDB reference circuit.
double forc_tddb(const TddbParams& p, double vdd_volts, double temp_kelvin);

/// Eq. (3): FIT contributed by a single (continuously stressed) FET.
double fit_per_fet(const TddbParams& p, double duty_cycle, double vdd_volts,
                   double temp_kelvin);

}  // namespace rnoc::rel
