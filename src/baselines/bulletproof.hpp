// BulletProof (Constantinides et al., HPCA'06): a defect-tolerant CMP switch
// built on N-modular redundancy — every protected unit has spare copies, and
// the switch fails as soon as some unit runs out of working copies.
//
// The paper compares against the BulletProof configuration whose area
// overhead matches its own (~52%); that design duplicates the router's six
// macro units (input block, routing logic, two allocator blocks, crossbar,
// output block). `published()` carries Table III's row; `model()` is our
// structural reconstruction whose Monte-Carlo faults-to-failure lands near
// the published 3.15.
#pragma once

#include "baselines/group_model.hpp"

namespace rnoc::baselines {

/// One row of the paper's Table III.
struct PublishedRow {
  const char* name;
  double area_overhead;        ///< Fractional; NaN when not published.
  double faults_to_failure;
  double spf;
};

PublishedRow bulletproof_published();

/// DMR over six macro units: any unit losing both copies kills the switch.
GroupModel bulletproof_model();

/// Monte-Carlo SPF of the structural model at the published area overhead.
double bulletproof_model_spf(std::uint64_t trials = 20000,
                             std::uint64_t seed = 1);

}  // namespace rnoc::baselines
