// RoCo (Kim et al., ISCA'06): the row-column decoupled router. The router
// splits into independent row and column modules (decoupled arbiters,
// smaller crossbars); a fault in one module leaves the other running in a
// degraded mode, so total failure requires exhausting both modules.
// RC-stage faults are masked by look-ahead routing and SA-stage faults by
// borrowing VA arbiters; VA and crossbar faults are not covered.
#pragma once

#include "baselines/group_model.hpp"

namespace rnoc::baselines {

GroupModel roco_model();
double roco_model_spf(std::uint64_t trials = 20000, std::uint64_t seed = 1);

/// Table III row: area not published (the paper uses "N/A"), faults to
/// failure deduced as 5.5, SPF bounded above by 5.5.
double roco_published_ftf();
double roco_published_spf_upper_bound();

}  // namespace rnoc::baselines
