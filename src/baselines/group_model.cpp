#include "baselines/group_model.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rnoc::baselines {

int min_faults_to_failure(const GroupModel& m) {
  require(!m.groups.empty(), "min_faults_to_failure: no groups");
  if (m.rule == FailureRule::AnyGroup) {
    int best = m.groups.front().threshold;
    for (const auto& g : m.groups) best = std::min(best, g.threshold);
    return best;
  }
  int sum = 0;
  for (const auto& g : m.groups) sum += g.threshold;
  return sum;
}

int max_faults_tolerated(const GroupModel& m) {
  require(!m.groups.empty(), "max_faults_tolerated: no groups");
  if (m.rule == FailureRule::AnyGroup) {
    // Fill every group up to threshold-1.
    int sum = 0;
    for (const auto& g : m.groups)
      sum += std::min(g.threshold - 1, g.size);
    return sum;
  }
  // All-groups rule: keep a single group alive at threshold-1, saturate the
  // rest completely.
  int total = 0;
  int best_slack = 0;
  for (const auto& g : m.groups) {
    total += g.size;
    best_slack = std::max(best_slack, g.size - (g.threshold - 1));
  }
  return total - best_slack;
}

RunningStats mc_faults_to_failure(const GroupModel& m, std::uint64_t trials,
                                  std::uint64_t seed) {
  require(trials > 0, "mc_faults_to_failure: need at least one trial");
  // Flatten groups into a site list: site -> group index.
  std::vector<int> site_group;
  for (std::size_t gi = 0; gi < m.groups.size(); ++gi) {
    require(m.groups[gi].size >= 1 &&
                m.groups[gi].threshold >= 1 &&
                m.groups[gi].threshold <= m.groups[gi].size,
            "mc_faults_to_failure: bad group shape");
    for (int s = 0; s < m.groups[gi].size; ++s)
      site_group.push_back(static_cast<int>(gi));
  }

  Rng rng(seed);
  RunningStats stats;
  std::vector<int> order(site_group.size());
  std::vector<int> hits(m.groups.size());
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<int>(i);
    rng.shuffle(order);
    std::fill(hits.begin(), hits.end(), 0);
    int dead_groups = 0;
    int injected = 0;
    for (int site : order) {
      ++injected;
      const int g = site_group[static_cast<std::size_t>(site)];
      if (++hits[static_cast<std::size_t>(g)] ==
          m.groups[static_cast<std::size_t>(g)].threshold) {
        ++dead_groups;
        if (m.rule == FailureRule::AnyGroup ||
            dead_groups == static_cast<int>(m.groups.size()))
          break;
      }
    }
    stats.add(static_cast<double>(injected));
  }
  return stats;
}

}  // namespace rnoc::baselines
