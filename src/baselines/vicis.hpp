// Vicis (Fick et al., DAC'09): network- and router-level fault tolerance via
// input-port swapping, a crossbar bypass bus and ECC on the datapath.
//
// Vicis degrades gracefully: each port's resources can absorb a couple of
// faults (swap to a spare mapping, ECC-correct the datapath, fall back to
// the bypass bus) before the port — and with it the router — is lost.
#pragma once

#include "baselines/group_model.hpp"

namespace rnoc::baselines {

struct PublishedRow;  // defined in bulletproof.hpp

/// Table III row: 42% area overhead, 9.3 faults to failure, SPF 6.55.
GroupModel vicis_model();
double vicis_model_spf(std::uint64_t trials = 20000, std::uint64_t seed = 1);

double vicis_published_area();
double vicis_published_ftf();
double vicis_published_spf();

}  // namespace rnoc::baselines
