#include "baselines/vicis.hpp"

namespace rnoc::baselines {

double vicis_published_area() { return 0.42; }
double vicis_published_ftf() { return 9.3; }
double vicis_published_spf() { return 6.55; }

GroupModel vicis_model() {
  // Five per-port resource pools (port-swap candidates + ECC-protected
  // datapath + bypass-bus slot). The four mesh ports can absorb three faults
  // each (swap partner available); the local/ejection port has no swap
  // partner and dies one fault earlier. Random injection across the 30
  // sites yields a mean faults-to-failure near Vicis's experimentally
  // reported 9.3.
  GroupModel m;
  m.groups.assign(4, Group{6, 4});
  m.groups.push_back(Group{6, 3});
  m.rule = FailureRule::AnyGroup;
  return m;
}

double vicis_model_spf(std::uint64_t trials, std::uint64_t seed) {
  const auto stats = mc_faults_to_failure(vicis_model(), trials, seed);
  return stats.mean() / (1.0 + vicis_published_area());
}

}  // namespace rnoc::baselines
