#include "baselines/bulletproof.hpp"

namespace rnoc::baselines {

PublishedRow bulletproof_published() { return {"BulletProof", 0.52, 3.15, 2.07}; }

GroupModel bulletproof_model() {
  // Three dual-modular-redundant macro units (input block, control/allocator
  // block, crossbar/output block). Min faults to failure = 2 (both copies of
  // one unit); the expected value under random placement is the
  // birthday-style collision point, ~3.2 for three bins of two — matching
  // BulletProof's experimentally reported 3.15.
  GroupModel m;
  m.groups.assign(3, Group{2, 2});
  m.rule = FailureRule::AnyGroup;
  return m;
}

double bulletproof_model_spf(std::uint64_t trials, std::uint64_t seed) {
  const auto stats = mc_faults_to_failure(bulletproof_model(), trials, seed);
  return stats.mean() / (1.0 + bulletproof_published().area_overhead);
}

}  // namespace rnoc::baselines
