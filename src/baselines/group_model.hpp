// Generic structural fault-to-failure model used for the competitor routers
// (BulletProof, Vicis, RoCo) in the SPF comparison (paper §VIII, Table III).
//
// A router is abstracted as a set of protection *groups*, each containing
// `size` interchangeable fault sites and dying once `threshold` of them are
// faulty. Depending on the architecture, the router fails when ANY group
// dies (no graceful degradation left) or only when ALL groups die
// (independent decomposed halves, as in RoCo).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace rnoc::baselines {

struct Group {
  int size = 1;       ///< Fault sites in the group.
  int threshold = 1;  ///< Faults that kill the group.
};

enum class FailureRule {
  AnyGroup,  ///< Router fails when any one group dies.
  AllGroups, ///< Router fails only when every group has died.
};

struct GroupModel {
  std::vector<Group> groups;
  FailureRule rule = FailureRule::AnyGroup;
};

/// Exact smallest number of faults that can cause failure.
int min_faults_to_failure(const GroupModel& m);

/// Exact largest number of faults the model can tolerate.
int max_faults_tolerated(const GroupModel& m);

/// Monte-Carlo mean faults-to-failure: inject faults into uniformly random
/// distinct sites until the failure rule trips (the experimental methodology
/// of the BulletProof and Vicis papers). Deterministic for a given seed.
RunningStats mc_faults_to_failure(const GroupModel& m, std::uint64_t trials,
                                  std::uint64_t seed);

}  // namespace rnoc::baselines
