#include "baselines/roco.hpp"

namespace rnoc::baselines {

double roco_published_ftf() { return 5.5; }
double roco_published_spf_upper_bound() { return 5.5; }

GroupModel roco_model() {
  // Row and column modules. Within a module, look-ahead routing and the
  // borrowed VA arbiters mask the first fault; the second fault in the same
  // module (its unprotected VA/crossbar components) kills it. The router
  // only stops entirely once BOTH modules are dead, matching RoCo's
  // graceful-degradation story. Random injection over the 16 sites gives a
  // mean faults-to-failure of ~5.0, close to the paper's deduced 5.5 and
  // well below the proposed router's 15.
  GroupModel m;
  m.groups.assign(2, Group{8, 2});
  m.rule = FailureRule::AllGroups;
  return m;
}

double roco_model_spf(std::uint64_t trials, std::uint64_t seed) {
  const auto stats = mc_faults_to_failure(roco_model(), trials, seed);
  // SPF upper bound: area overhead unpublished, bounded below by 0.
  return stats.mean();
}

}  // namespace rnoc::baselines
