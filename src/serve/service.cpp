#include "serve/service.hpp"

#include <condition_variable>
#include <exception>
#include <utility>
#include <vector>

#include "campaign/registry.hpp"
#include "common/types.hpp"

namespace rnoc::serve {

/// One in-flight (or just-finished) campaign execution. Shared by the
/// scheduler tasks, every coalesced sink, and wait() tickets.
struct CampaignService::Job {
  const campaign::CampaignSpec* spec = nullptr;
  bool smoke = false;
  std::string key;
  std::string config_hash;
  std::string git_sha;
  std::vector<campaign::PointUnit> units;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<campaign::PointResult> points;  ///< Indexed like units.
  std::vector<char> have;                     ///< Per-point completion.
  std::size_t completed_tasks = 0;
  std::string error;  ///< First failure; non-empty poisons the job.
  bool done = false;

  /// Per-sink delivery state. A sink attached by coalescing sees every
  /// point as cached: the computation was already owned by another
  /// submission, so from its perspective everything is served, not run.
  struct SinkState {
    Sink sink;
    bool coalesced = false;
    std::size_t delivered = 0;
    std::size_t hits = 0;
    std::size_t executed = 0;
  };
  std::vector<SinkState> sinks;
};

CampaignService::CampaignService(Config cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.cache_root.empty())
    cache_ = std::make_unique<ResultCache>(ResultCache::Config{
        cfg_.cache_root, cfg_.cache_max_bytes, cfg_.git_sha});
  scheduler_ = std::make_unique<PointScheduler>(cfg_.workers);
}

CampaignService::~CampaignService() { stop(); }

campaign::PointResult CampaignService::execute_point(
    const campaign::CampaignSpec& spec, const campaign::PointUnit& unit,
    bool smoke, const std::string& config_hash, bool& cached) {
  campaign::PointResult p;
  if (cache_ && cache_->lookup(config_hash, unit.id, p) && p.id == unit.id) {
    cached = true;
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.points_cached;
    return p;
  }
  cached = false;
  p = campaign::run_point_unit(spec, unit, smoke);
  if (cache_) cache_->store(config_hash, p);
  std::uint64_t computed = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.points_computed;
    computed = ++computed_total_;
  }
  if (cfg_.on_point_computed) cfg_.on_point_computed(computed);
  return p;
}

void CampaignService::run_unit_task(const std::shared_ptr<Job>& job,
                                    std::size_t i) {
  bool skip = false;
  {
    const std::lock_guard<std::mutex> lock(job->mu);
    skip = !job->error.empty();
  }
  bool cached = false;
  campaign::PointResult p;
  std::string err;
  if (!skip) {
    try {
      p = execute_point(*job->spec, job->units[i], job->smoke,
                        job->config_hash, cached);
    } catch (const std::exception& e) {
      err = e.what();
    }
  }

  const std::lock_guard<std::mutex> lock(job->mu);
  ++job->completed_tasks;
  if (!err.empty() && job->error.empty())
    job->error = "point '" + job->units[i].id + "': " + err;
  if (err.empty() && !skip) {
    job->points[i] = std::move(p);
    job->have[i] = 1;
    for (Job::SinkState& s : job->sinks) {
      const bool as_cached = s.coalesced || cached;
      ++(as_cached ? s.hits : s.executed);
      if (s.sink.on_point)
        s.sink.on_point(
            {++s.delivered, job->units.size(), job->units[i].id, as_cached});
    }
  }
  if (job->completed_tasks == job->units.size()) finalize_locked(*job);
}

void CampaignService::finalize_locked(Job& job) {
  if (job.done) return;
  JobResult base;
  base.campaign = job.spec->name;
  base.config_hash = job.config_hash;
  base.points = job.units.size();
  base.error = job.error;
  if (job.error.empty()) {
    campaign::CampaignResult r;
    r.campaign = job.spec->name;
    r.artifact = job.spec->artifact;
    r.config_hash = job.config_hash;
    r.git_sha = job.git_sha;
    r.smoke = job.smoke;
    r.seed = job.spec->seed;
    r.points.reserve(job.points.size());
    for (campaign::PointResult& p : job.points) r.points.push_back(std::move(p));
    base.result_text = campaign::to_json(r);
  }
  for (Job::SinkState& s : job.sinks) {
    JobResult jr = base;
    jr.cache_hits = s.hits;
    jr.executed = s.executed;
    if (s.sink.on_done) s.sink.on_done(jr);
  }
  job.done = true;
  job.cv.notify_all();
}

std::uint64_t CampaignService::submit(const Request& req, Sink sink) {
  const campaign::CampaignSpec* spec = campaign::find_campaign(req.campaign);
  require(spec != nullptr,
          "serve: unknown campaign '" + req.campaign + "' (see list)");
  const std::string git_sha =
      req.git_sha.empty() ? cfg_.git_sha : req.git_sha;
  const std::string key = req.campaign + "|" +
                          (req.smoke ? "smoke" : "full") + "|" + git_sha;

  const std::lock_guard<std::mutex> lock(mu_);
  require(!stopped_, "serve: service is stopped");

  // Bounded bookkeeping: drop tickets whose job has finished so a
  // long-running daemon does not grow one entry per historical job.
  if (tickets_.size() > 1024) {
    for (auto it = tickets_.begin(); it != tickets_.end();) {
      const std::lock_guard<std::mutex> jlock(it->second->mu);
      it = it->second->done ? tickets_.erase(it) : std::next(it);
    }
  }

  const auto active_it = active_.find(key);
  if (active_it != active_.end()) {
    const std::shared_ptr<Job> job = active_it->second;
    const std::lock_guard<std::mutex> jlock(job->mu);
    if (!job->done) {
      ++stats_.jobs_coalesced;
      Job::SinkState ss;
      ss.sink = std::move(sink);
      ss.coalesced = true;
      // Replay the points that finished before this sink attached, in
      // index order, so the late client still streams a full campaign.
      for (std::size_t i = 0; i < job->units.size(); ++i) {
        if (!job->have[i]) continue;
        ++ss.hits;
        if (ss.sink.on_point)
          ss.sink.on_point(
              {++ss.delivered, job->units.size(), job->units[i].id, true});
      }
      job->sinks.push_back(std::move(ss));
      const std::uint64_t ticket = next_ticket_++;
      tickets_[ticket] = job;
      return ticket;
    }
    active_.erase(active_it);
  }

  auto job = std::make_shared<Job>();
  job->spec = spec;
  job->smoke = req.smoke;
  job->key = key;
  job->git_sha = git_sha;
  job->units = campaign::expand_point_units(*spec, req.smoke);
  std::vector<std::string> ids;
  ids.reserve(job->units.size());
  for (const campaign::PointUnit& u : job->units) ids.push_back(u.id);
  job->config_hash = campaign::spec_config_hash(*spec, req.smoke, ids);
  job->points.resize(job->units.size());
  job->have.assign(job->units.size(), 0);
  Job::SinkState ss;
  ss.sink = std::move(sink);
  job->sinks.push_back(std::move(ss));
  ++stats_.jobs_submitted;
  active_[key] = job;
  const std::uint64_t ticket = next_ticket_++;
  tickets_[ticket] = job;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(job->units.size());
  for (std::size_t i = 0; i < job->units.size(); ++i)
    tasks.push_back([this, job, i] { run_unit_task(job, i); });
  const std::uint64_t sched_id =
      scheduler_->submit(req.lane, std::move(tasks));
  if (sched_id == 0) {
    const std::lock_guard<std::mutex> jlock(job->mu);
    if (job->units.empty()) {
      finalize_locked(*job);  // Degenerate empty grid: trivially complete.
    } else {
      job->error = "serve: scheduler rejected the job (stopping?)";
      finalize_locked(*job);
    }
  }
  return ticket;
}

void CampaignService::wait(std::uint64_t ticket) {
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) return;
    job = it->second;
  }
  {
    std::unique_lock<std::mutex> jlock(job->mu);
    job->cv.wait(jlock, [&] { return job->done; });
  }
  const std::lock_guard<std::mutex> lock(mu_);
  tickets_.erase(ticket);
}

void CampaignService::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  // Must not hold mu_ here: in-flight tasks take it via execute_point and
  // stop() joins them.
  scheduler_->stop();
  std::vector<std::shared_ptr<Job>> jobs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(active_.size());
    for (const auto& [key, job] : active_) jobs.push_back(job);
    active_.clear();
  }
  for (const std::shared_ptr<Job>& job : jobs) {
    const std::lock_guard<std::mutex> jlock(job->mu);
    if (!job->done) {
      if (job->error.empty())
        job->error = "serve: service stopped before the campaign completed";
      finalize_locked(*job);
    }
  }
  if (cache_) {
    try {
      cache_->flush();
    } catch (const std::exception&) {
      // stop() runs on shutdown paths (including server threads); a lost
      // index only degrades LRU order and must not take the daemon down.
    }
  }
}

CampaignService::Stats CampaignService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PointScheduler::Stats CampaignService::scheduler_stats() const {
  return scheduler_->stats();
}

ResultCache::Stats CampaignService::cache_stats() const {
  return cache_ ? cache_->stats() : ResultCache::Stats{};
}

}  // namespace rnoc::serve
