#include "serve/service.hpp"

#include <condition_variable>
#include <exception>
#include <utility>
#include <vector>

#include "campaign/registry.hpp"
#include "common/types.hpp"
#include "serve/telemetry.hpp"

namespace rnoc::serve {

namespace {

using campaign::JsonValue;

JsonValue jnum(std::uint64_t n) {
  return JsonValue::make_number(static_cast<double>(n));
}

}  // namespace

/// One in-flight (or just-finished) campaign execution. Shared by the
/// scheduler tasks, every coalesced sink, and wait() tickets.
struct CampaignService::Job {
  const campaign::CampaignSpec* spec = nullptr;
  bool smoke = false;
  std::string key;
  std::string config_hash;
  std::string git_sha;
  std::vector<campaign::PointUnit> units;
  std::uint64_t id = 0;  ///< Telemetry job id (groups spans/events).
  Lane lane = Lane::Bulk;
  std::uint64_t accept_us = 0;  ///< Telemetry clock at submit(); 0 = none.

  std::mutex mu;
  std::condition_variable cv;
  std::vector<campaign::PointResult> points;  ///< Indexed like units.
  std::vector<char> have;                     ///< Per-point completion.
  std::size_t completed_tasks = 0;
  std::string error;  ///< First failure; non-empty poisons the job.
  bool done = false;

  /// Per-sink delivery state. A sink attached by coalescing sees every
  /// point as cached: the computation was already owned by another
  /// submission, so from its perspective everything is served, not run.
  struct SinkState {
    Sink sink;
    bool coalesced = false;
    std::size_t delivered = 0;
    std::size_t hits = 0;
    std::size_t executed = 0;
  };
  std::vector<SinkState> sinks;
};

CampaignService::CampaignService(Config cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.cache_root.empty())
    cache_ = std::make_unique<ResultCache>(ResultCache::Config{
        cfg_.cache_root, cfg_.cache_max_bytes, cfg_.git_sha});
  scheduler_ = std::make_unique<PointScheduler>(cfg_.workers, cfg_.telemetry);
  if (cfg_.telemetry) {
    // Seed the push-model gauges so a scrape before any work still
    // exposes the full family set, then serve pull-model metrics.
    cfg_.telemetry->gauge_set("points_in_flight", 0.0);
    cfg_.telemetry->gauge_set("coalesced_waiters", 0.0);
    cfg_.telemetry->set_scrape_provider(
        [this](TelemetryHub& hub) { publish_metrics(hub); });
  }
}

CampaignService::~CampaignService() { stop(); }

campaign::PointResult CampaignService::execute_point(
    const campaign::CampaignSpec& spec, const campaign::PointUnit& unit,
    bool smoke, const std::string& config_hash, bool& cached) {
  campaign::PointResult p;
  if (cache_ && cache_->lookup(config_hash, unit.id, p) && p.id == unit.id) {
    cached = true;
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.points_cached;
    return p;
  }
  cached = false;
  p = campaign::run_point_unit(spec, unit, smoke);
  if (cache_) cache_->store(config_hash, p);
  std::uint64_t computed = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.points_computed;
    computed = ++computed_total_;
  }
  if (cfg_.on_point_computed) cfg_.on_point_computed(computed);
  return p;
}

void CampaignService::run_unit_task(const std::shared_ptr<Job>& job,
                                    std::size_t i) {
  bool skip = false;
  {
    const std::lock_guard<std::mutex> lock(job->mu);
    skip = !job->error.empty();
  }
  bool cached = false;
  campaign::PointResult p;
  std::string err;
  // Timing wraps execute_point from the outside: the execute path itself
  // is a determinism root (no clock reads inside it, analyzer-enforced),
  // and the result bytes in `p` never depend on these timestamps.
  TelemetryHub* const hub = cfg_.telemetry;
  const std::uint64_t t0 = hub ? hub->now_us() : 0;
  if (hub) hub->gauge_add("points_in_flight", 1.0);
  if (!skip) {
    try {
      p = execute_point(*job->spec, job->units[i], job->smoke,
                        job->config_hash, cached);
    } catch (const std::exception& e) {
      err = e.what();
    }
  }
  if (hub) {
    const std::uint64_t t1 = hub->now_us();
    hub->gauge_add("points_in_flight", -1.0);
    if (!skip && err.empty()) {
      SpanRecord span;
      span.kind = cached ? SpanKind::CacheHit : SpanKind::Execute;
      span.start_us = t0;
      span.end_us = t1;
      span.job = job->id;
      span.worker = PointScheduler::current_worker();
      span.lane = static_cast<int>(job->lane);
      span.id = job->units[i].id;
      hub->record_span(std::move(span));
      hub->observe_us(cached ? "point_cache_hit_us" : "point_execute_us",
                      static_cast<double>(t1 - t0));
      JsonValue fields = JsonValue::make_object();
      fields.set("job", jnum(job->id));
      fields.set("id", JsonValue::make_string(job->units[i].id));
      fields.set("cached", JsonValue::make_bool(cached));
      fields.set("worker", JsonValue::make_number(
                               PointScheduler::current_worker()));
      fields.set("dur_us", jnum(t1 - t0));
      hub->event("point", std::move(fields));
    }
  }

  const std::lock_guard<std::mutex> lock(job->mu);
  ++job->completed_tasks;
  if (!err.empty() && job->error.empty())
    job->error = "point '" + job->units[i].id + "': " + err;
  if (err.empty() && !skip) {
    job->points[i] = std::move(p);
    job->have[i] = 1;
    for (Job::SinkState& s : job->sinks) {
      const bool as_cached = s.coalesced || cached;
      ++(as_cached ? s.hits : s.executed);
      if (s.sink.on_point)
        s.sink.on_point(
            {++s.delivered, job->units.size(), job->units[i].id, as_cached});
    }
  }
  if (job->completed_tasks == job->units.size()) finalize_locked(*job);
}

void CampaignService::finalize_locked(Job& job) {
  if (job.done) return;
  JobResult base;
  base.campaign = job.spec->name;
  base.config_hash = job.config_hash;
  base.points = job.units.size();
  base.error = job.error;
  if (job.error.empty()) {
    campaign::CampaignResult r;
    r.campaign = job.spec->name;
    r.artifact = job.spec->artifact;
    r.config_hash = job.config_hash;
    r.git_sha = job.git_sha;
    r.smoke = job.smoke;
    r.seed = job.spec->seed;
    r.points.reserve(job.points.size());
    for (campaign::PointResult& p : job.points) r.points.push_back(std::move(p));
    base.result_text = campaign::to_json(r);
  }
  for (Job::SinkState& s : job.sinks) {
    JobResult jr = base;
    jr.cache_hits = s.hits;
    jr.executed = s.executed;
    if (s.sink.on_done) s.sink.on_done(jr);
  }
  job.done = true;
  job.cv.notify_all();

  if (TelemetryHub* const hub = cfg_.telemetry; hub && job.accept_us != 0) {
    SpanRecord span;
    span.kind = SpanKind::Request;
    span.start_us = job.accept_us;
    span.end_us = hub->now_us();
    span.job = job.id;
    span.lane = static_cast<int>(job.lane);
    span.id = job.spec->name;
    span.aux = job.units.size();
    span.ok = job.error.empty();
    hub->observe_us("request_us",
                    static_cast<double>(span.end_us - span.start_us));
    hub->record_span(std::move(span));
    std::size_t coalesced = 0;
    for (const Job::SinkState& s : job.sinks) coalesced += s.coalesced ? 1 : 0;
    if (coalesced > 0)
      hub->gauge_add("coalesced_waiters",
                     -static_cast<double>(coalesced));
    JsonValue fields = JsonValue::make_object();
    fields.set("job", jnum(job.id));
    fields.set("campaign", JsonValue::make_string(job.spec->name));
    fields.set("points", jnum(job.units.size()));
    fields.set("sinks", jnum(job.sinks.size()));
    if (!job.error.empty())
      fields.set("error", JsonValue::make_string(job.error));
    hub->event(job.error.empty() ? "done" : "failed", std::move(fields));
  }
}

std::uint64_t CampaignService::submit(const Request& req, Sink sink) {
  const campaign::CampaignSpec* spec = campaign::find_campaign(req.campaign);
  require(spec != nullptr,
          "serve: unknown campaign '" + req.campaign + "' (see list)");
  const std::string git_sha =
      req.git_sha.empty() ? cfg_.git_sha : req.git_sha;
  const std::string key = req.campaign + "|" +
                          (req.smoke ? "smoke" : "full") + "|" + git_sha;

  const std::lock_guard<std::mutex> lock(mu_);
  require(!stopped_, "serve: service is stopped");

  // Bounded bookkeeping: drop tickets whose job has finished so a
  // long-running daemon does not grow one entry per historical job.
  if (tickets_.size() > 1024) {
    for (auto it = tickets_.begin(); it != tickets_.end();) {
      const std::lock_guard<std::mutex> jlock(it->second->mu);
      it = it->second->done ? tickets_.erase(it) : std::next(it);
    }
  }

  const auto active_it = active_.find(key);
  if (active_it != active_.end()) {
    const std::shared_ptr<Job> job = active_it->second;
    const std::lock_guard<std::mutex> jlock(job->mu);
    if (!job->done) {
      ++stats_.jobs_coalesced;
      Job::SinkState ss;
      ss.sink = std::move(sink);
      ss.coalesced = true;
      // Replay the points that finished before this sink attached, in
      // index order, so the late client still streams a full campaign.
      for (std::size_t i = 0; i < job->units.size(); ++i) {
        if (!job->have[i]) continue;
        ++ss.hits;
        if (ss.sink.on_point)
          ss.sink.on_point(
              {++ss.delivered, job->units.size(), job->units[i].id, true});
      }
      const std::uint64_t ss_replayed = ss.delivered;
      job->sinks.push_back(std::move(ss));
      const std::uint64_t ticket = next_ticket_++;
      tickets_[ticket] = job;
      if (TelemetryHub* const hub = cfg_.telemetry) {
        hub->gauge_add("coalesced_waiters", 1.0);
        JsonValue fields = JsonValue::make_object();
        fields.set("job", jnum(job->id));
        fields.set("campaign", JsonValue::make_string(req.campaign));
        fields.set("replayed", jnum(ss_replayed));
        hub->event("coalesce", std::move(fields));
      }
      return ticket;
    }
    active_.erase(active_it);
  }

  auto job = std::make_shared<Job>();
  job->spec = spec;
  job->smoke = req.smoke;
  job->key = key;
  job->git_sha = git_sha;
  job->lane = req.lane;
  TelemetryHub* const hub = cfg_.telemetry;
  job->accept_us = hub ? hub->now_us() : 0;
  job->id = next_job_id_++;
  job->units = campaign::expand_point_units(*spec, req.smoke);
  std::vector<std::string> ids;
  ids.reserve(job->units.size());
  for (const campaign::PointUnit& u : job->units) ids.push_back(u.id);
  job->config_hash = campaign::spec_config_hash(*spec, req.smoke, ids);
  if (hub && job->accept_us != 0) {
    SpanRecord span;
    span.kind = SpanKind::Expand;
    span.start_us = job->accept_us;
    span.end_us = hub->now_us();
    span.job = job->id;
    span.lane = static_cast<int>(job->lane);
    span.id = spec->name;
    span.aux = job->units.size();
    hub->record_span(std::move(span));
  }
  job->points.resize(job->units.size());
  job->have.assign(job->units.size(), 0);
  Job::SinkState ss;
  ss.sink = std::move(sink);
  job->sinks.push_back(std::move(ss));
  ++stats_.jobs_submitted;
  active_[key] = job;
  const std::uint64_t ticket = next_ticket_++;
  tickets_[ticket] = job;
  if (hub) {
    JsonValue fields = JsonValue::make_object();
    fields.set("job", jnum(job->id));
    fields.set("campaign", JsonValue::make_string(spec->name));
    fields.set("smoke", JsonValue::make_bool(req.smoke));
    fields.set("lane", JsonValue::make_string(lane_name(req.lane)));
    fields.set("points", jnum(job->units.size()));
    fields.set("config_hash", JsonValue::make_string(job->config_hash));
    hub->event("submit", std::move(fields));
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(job->units.size());
  for (std::size_t i = 0; i < job->units.size(); ++i)
    tasks.push_back([this, job, i] { run_unit_task(job, i); });
  const std::uint64_t sched_id =
      scheduler_->submit(req.lane, std::move(tasks));
  if (sched_id == 0) {
    const std::lock_guard<std::mutex> jlock(job->mu);
    if (job->units.empty()) {
      finalize_locked(*job);  // Degenerate empty grid: trivially complete.
    } else {
      job->error = "serve: scheduler rejected the job (stopping?)";
      finalize_locked(*job);
    }
  }
  return ticket;
}

void CampaignService::wait(std::uint64_t ticket) {
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) return;
    job = it->second;
  }
  {
    std::unique_lock<std::mutex> jlock(job->mu);
    job->cv.wait(jlock, [&] { return job->done; });
  }
  const std::lock_guard<std::mutex> lock(mu_);
  tickets_.erase(ticket);
}

void CampaignService::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  // The provider captures `this`; a scrape racing stop() is safe (it only
  // reads stats), but nothing may call back in once destruction begins.
  if (cfg_.telemetry) cfg_.telemetry->set_scrape_provider(nullptr);
  // Must not hold mu_ here: in-flight tasks take it via execute_point and
  // stop() joins them.
  scheduler_->stop();
  std::vector<std::shared_ptr<Job>> jobs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(active_.size());
    for (const auto& [key, job] : active_) jobs.push_back(job);
    active_.clear();
  }
  for (const std::shared_ptr<Job>& job : jobs) {
    const std::lock_guard<std::mutex> jlock(job->mu);
    if (!job->done) {
      if (job->error.empty())
        job->error = "serve: service stopped before the campaign completed";
      finalize_locked(*job);
    }
  }
  if (cache_) {
    try {
      cache_->flush();
    } catch (const std::exception&) {
      // stop() runs on shutdown paths (including server threads); a lost
      // index only degrades LRU order and must not take the daemon down.
    }
  }
}

CampaignService::Stats CampaignService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PointScheduler::Stats CampaignService::scheduler_stats() const {
  return scheduler_->stats();
}

ResultCache::Stats CampaignService::cache_stats() const {
  return cache_ ? cache_->stats() : ResultCache::Stats{};
}

void CampaignService::publish_metrics(TelemetryHub& hub) const {
  const Stats s = stats();
  hub.counter_set("jobs_submitted", s.jobs_submitted);
  hub.counter_set("jobs_coalesced", s.jobs_coalesced);
  hub.counter_set("points_computed", s.points_computed);
  hub.counter_set("points_cached", s.points_cached);
  const PointScheduler::Stats sch = scheduler_->stats();
  hub.counter_set("sched_executed", sch.executed);
  hub.counter_set("sched_steals", sch.steals);
  hub.counter_set("sched_steal_attempts", sch.steal_attempts);
  hub.counter_set("sched_preemptions", sch.preemptions);
  hub.counter_set("sched_dropped", sch.dropped);
  hub.gauge_set("workers", static_cast<double>(scheduler_->workers()));
  hub.gauge_set("queue_depth{lane=\"interactive\"}",
                static_cast<double>(scheduler_->queue_depth(
                    Lane::Interactive)));
  hub.gauge_set("queue_depth{lane=\"bulk\"}",
                static_cast<double>(scheduler_->queue_depth(Lane::Bulk)));
  const ResultCache::Stats c = cache_stats();
  hub.counter_set("cache_hits", c.hits);
  hub.counter_set("cache_misses", c.misses);
  hub.counter_set("cache_stores", c.stores);
  hub.counter_set("cache_evictions", c.evictions);
  hub.counter_set("cache_quarantined", c.quarantined);
  hub.gauge_set("cache_entries", static_cast<double>(c.entries));
  hub.gauge_set("cache_bytes", static_cast<double>(c.bytes));
}

}  // namespace rnoc::serve
