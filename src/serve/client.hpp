// Client side of the campaign results service: what `rnoc_campaign
// --connect` is built on.
//
// run_campaign_via_daemon submits one campaign and streams it to
// completion; the returned result_text is the daemon's exact
// to_json(CampaignResult) bytes, which the caller writes verbatim — that
// is the whole byte-identity story of client mode (no re-serialization on
// the client side, nothing to drift).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/json.hpp"
#include "serve/scheduler.hpp"

namespace rnoc::serve {

struct ClientOutcome {
  bool ok = false;
  std::string error;  ///< Set when !ok (refused, failed, or daemon died).
  std::string campaign;
  std::string config_hash;
  std::size_t points = 0;
  std::size_t cache_hits = 0;  ///< Points served without fresh computation.
  std::size_t executed = 0;    ///< Points computed for this submission.
  std::string result_text;     ///< Exact result JSON bytes; "" when !ok.
};

/// Per-point progress as streamed by the daemon.
using ClientProgress = std::function<void(
    std::size_t done, std::size_t total, const std::string& id, bool cached)>;

/// Submits `name` and blocks until the daemon's terminal event. Never
/// throws: connection failures and daemon-side errors come back in
/// .error (a daemon killed mid-campaign reads as a lost connection; the
/// next attempt resumes from the daemon's persistent cache).
ClientOutcome run_campaign_via_daemon(const std::string& socket_path,
                                      const std::string& name, bool smoke,
                                      Lane lane, const std::string& git_sha,
                                      const ClientProgress& progress = {});

/// Round-trips a ping. False with `error` set when the daemon is absent.
bool ping_daemon(const std::string& socket_path, std::string& error);

/// Daemon stats with an explicit status: an empty daemon and an absent
/// daemon are different answers, and the versioned reply fields let
/// clients detect a mismatched daemon (different build or result schema)
/// before trusting anything it says.
struct DaemonStats {
  bool ok = false;
  std::string error;  ///< Set when !ok.
  std::string line;   ///< Raw single-line stats JSON; "" when !ok.
  std::int64_t schema_version = 0;
  std::string git_sha;
  double uptime_seconds = 0.0;
};
DaemonStats daemon_stats(const std::string& socket_path);

/// One `metrics` scrape. `body` is the exposition text (Prometheus) or
/// the compact metrics JSON, exactly as the daemon produced it.
struct MetricsReply {
  bool ok = false;
  std::string error;  ///< Set when !ok.
  std::string body;
};
MetricsReply daemon_metrics(const std::string& socket_path,
                            const std::string& format);

/// Called once per streamed telemetry event; return false to stop
/// watching (a clean, client-initiated end).
using WatchHandler = std::function<bool(const campaign::JsonValue& event)>;

struct WatchOutcome {
  bool ok = false;    ///< True only when the handler ended the watch.
  std::string error;  ///< Refusal, or the stream dying under the watcher.
  std::uint64_t events = 0;
};

/// Subscribes to the daemon's telemetry event stream and pumps events
/// into `handler` until it returns false (ok) or the connection dies
/// (!ok, with a daemon-died explanation in .error). Never throws.
WatchOutcome watch_daemon(const std::string& socket_path,
                          const WatchHandler& handler);

/// Asks the daemon to shut down cleanly. False with `error` set on failure.
bool shutdown_daemon(const std::string& socket_path, std::string& error);

}  // namespace rnoc::serve
