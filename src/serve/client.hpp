// Client side of the campaign results service: what `rnoc_campaign
// --connect` is built on.
//
// run_campaign_via_daemon submits one campaign and streams it to
// completion; the returned result_text is the daemon's exact
// to_json(CampaignResult) bytes, which the caller writes verbatim — that
// is the whole byte-identity story of client mode (no re-serialization on
// the client side, nothing to drift).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/scheduler.hpp"

namespace rnoc::serve {

struct ClientOutcome {
  bool ok = false;
  std::string error;  ///< Set when !ok (refused, failed, or daemon died).
  std::string campaign;
  std::string config_hash;
  std::size_t points = 0;
  std::size_t cache_hits = 0;  ///< Points served without fresh computation.
  std::size_t executed = 0;    ///< Points computed for this submission.
  std::string result_text;     ///< Exact result JSON bytes; "" when !ok.
};

/// Per-point progress as streamed by the daemon.
using ClientProgress = std::function<void(
    std::size_t done, std::size_t total, const std::string& id, bool cached)>;

/// Submits `name` and blocks until the daemon's terminal event. Never
/// throws: connection failures and daemon-side errors come back in
/// .error (a daemon killed mid-campaign reads as a lost connection; the
/// next attempt resumes from the daemon's persistent cache).
ClientOutcome run_campaign_via_daemon(const std::string& socket_path,
                                      const std::string& name, bool smoke,
                                      Lane lane, const std::string& git_sha,
                                      const ClientProgress& progress = {});

/// Round-trips a ping. False with `error` set when the daemon is absent.
bool ping_daemon(const std::string& socket_path, std::string& error);

/// Fetches the daemon's stats line (raw single-line JSON; "" on failure
/// with `error` set). Tools pretty-print or grep it as they see fit.
std::string daemon_stats_line(const std::string& socket_path,
                              std::string& error);

/// Asks the daemon to shut down cleanly. False with `error` set on failure.
bool shutdown_daemon(const std::string& socket_path, std::string& error);

}  // namespace rnoc::serve
