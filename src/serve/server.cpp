#include "serve/server.hpp"

#include <unistd.h>

#include <exception>
#include <utility>

#include "campaign/registry.hpp"
#include "serve/telemetry.hpp"
#include "serve/wire.hpp"

namespace rnoc::serve {

using campaign::JsonValue;

namespace {

std::string get_string(const JsonValue& v, const std::string& key,
                       const std::string& fallback) {
  const JsonValue* m = v.find(key);
  return m ? m->as_string() : fallback;
}

bool get_bool(const JsonValue& v, const std::string& key, bool fallback) {
  const JsonValue* m = v.find(key);
  return m ? m->as_bool() : fallback;
}

JsonValue num(std::uint64_t n) {
  return JsonValue::make_number(static_cast<double>(n));
}

}  // namespace

Server::Server(Config cfg, CampaignService& service)
    : cfg_(std::move(cfg)), service_(service) {
  listener_ = listen_unix(cfg_.socket_path);
}

Server::~Server() {
  // run() owns the shutdown sequence; if it never ran, just release the
  // socket file.
  listener_.reset();
  ::unlink(cfg_.socket_path.c_str());
}

void Server::log(const std::string& msg) {
  if (cfg_.log) cfg_.log(msg);
}

void Server::request_stop() {
  stop_.store(true);
  listener_.shutdown_both();
}

void Server::send_to(const std::shared_ptr<Conn>& conn,
                     const std::string& line) {
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->alive.load()) return;
  if (!send_line(conn->fd.get(), line)) conn->alive.store(false);
}

void Server::run() {
  log("serve: listening on " + cfg_.socket_path);
  while (!stop_.load()) {
    Fd client = accept_unix(listener_);
    if (!client.valid()) {
      if (stop_.load()) break;
      break;  // Listener is broken; wind down rather than spin.
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = std::move(client);
    {
      const std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap finished connections so a long-lived daemon does not hold one
      // thread object per historical client.
      for (std::size_t i = 0; i < conns_.size();) {
        if (!conns_[i]->alive.load()) {
          if (threads_[i].joinable()) threads_[i].join();
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
          threads_.erase(threads_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      conns_.push_back(conn);
      threads_.emplace_back([this, conn] { handle_connection(conn); });
    }
  }

  // Shutdown contract: fail in-flight jobs first (their waiters are the
  // connection threads), then unblock any thread parked in recv, then join.
  log("serve: shutting down");
  service_.stop();
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (const std::shared_ptr<Conn>& conn : conns_) conn->fd.shutdown_both();
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
    conns_.clear();
    threads_.clear();
  }
  listener_.reset();
  ::unlink(cfg_.socket_path.c_str());
  log("serve: stopped");
}

void Server::handle_connection(const std::shared_ptr<Conn>& conn) {
  LineReader reader(conn->fd.get());
  std::string line;
  while (!stop_.load() && reader.read_line(line)) {
    if (line.empty()) continue;
    handle_request(conn, line);
  }
  conn->alive.store(false);
  if (const std::uint64_t watch = conn->watch_id.exchange(0);
      watch != 0 && cfg_.telemetry)
    cfg_.telemetry->unsubscribe(watch);
}

void Server::handle_request(const std::shared_ptr<Conn>& conn,
                            const std::string& line) {
  JsonValue req;
  std::string op;
  try {
    req = campaign::parse_json(line);
    op = req.at("op").as_string();
  } catch (const std::exception& e) {
    send_to(conn, wire_error_line(std::string("bad request: ") + e.what()));
    return;
  }
  try {
    if (op == "ping") {
      JsonValue o = JsonValue::make_object();
      o.set("ok", JsonValue::make_bool(true));
      o.set("op", JsonValue::make_string("ping"));
      send_to(conn, to_wire_line(o));
    } else if (op == "list") {
      JsonValue arr = JsonValue::make_array();
      for (const campaign::CampaignSpec& spec :
           campaign::campaign_registry()) {
        JsonValue c = JsonValue::make_object();
        c.set("name", JsonValue::make_string(spec.name));
        c.set("artifact", JsonValue::make_string(spec.artifact));
        c.set("points", num(spec.point_ids(false).size()));
        c.set("smoke_points", num(spec.point_ids(true).size()));
        c.set("description", JsonValue::make_string(spec.description));
        arr.push_back(std::move(c));
      }
      JsonValue o = JsonValue::make_object();
      o.set("ok", JsonValue::make_bool(true));
      o.set("campaigns", std::move(arr));
      send_to(conn, to_wire_line(o));
    } else if (op == "stats") {
      const CampaignService::Stats s = service_.stats();
      const PointScheduler::Stats sch = service_.scheduler_stats();
      const ResultCache::Stats c = service_.cache_stats();
      JsonValue o = JsonValue::make_object();
      o.set("ok", JsonValue::make_bool(true));
      // Versioned so clients can detect a mismatched daemon (different
      // build, different result schema) before trusting its cache.
      o.set("schema_version", num(campaign::kSchemaVersion));
      o.set("git_sha", JsonValue::make_string(service_.git_sha()));
      o.set("uptime_seconds",
            JsonValue::make_number(cfg_.telemetry
                                       ? cfg_.telemetry->uptime_seconds()
                                       : 0.0));
      JsonValue sv = JsonValue::make_object();
      sv.set("jobs_submitted", num(s.jobs_submitted));
      sv.set("jobs_coalesced", num(s.jobs_coalesced));
      sv.set("points_computed", num(s.points_computed));
      sv.set("points_cached", num(s.points_cached));
      o.set("service", std::move(sv));
      JsonValue sc = JsonValue::make_object();
      sc.set("executed", num(sch.executed));
      sc.set("steals", num(sch.steals));
      sc.set("steal_attempts", num(sch.steal_attempts));
      sc.set("preemptions", num(sch.preemptions));
      sc.set("dropped", num(sch.dropped));
      o.set("scheduler", std::move(sc));
      JsonValue cc = JsonValue::make_object();
      cc.set("hits", num(c.hits));
      cc.set("misses", num(c.misses));
      cc.set("stores", num(c.stores));
      cc.set("evictions", num(c.evictions));
      cc.set("quarantined", num(c.quarantined));
      cc.set("entries", num(c.entries));
      cc.set("bytes", num(c.bytes));
      o.set("cache", std::move(cc));
      send_to(conn, to_wire_line(o));
    } else if (op == "metrics") {
      if (!cfg_.telemetry) {
        send_to(conn, wire_error_line("telemetry is disabled"));
        return;
      }
      const std::string format = get_string(req, "format", "prometheus");
      std::string body;
      if (format == "prometheus") {
        body = cfg_.telemetry->prometheus_text();
      } else if (format == "json") {
        body = cfg_.telemetry->metrics_json();
      } else {
        send_to(conn, wire_error_line("unknown metrics format '" + format +
                                      "' (prometheus|json)"));
        return;
      }
      JsonValue o = JsonValue::make_object();
      o.set("ok", JsonValue::make_bool(true));
      o.set("op", JsonValue::make_string("metrics"));
      o.set("format", JsonValue::make_string(format));
      o.set("body", JsonValue::make_string(body));
      send_to(conn, to_wire_line(o));
    } else if (op == "watch") {
      if (!cfg_.telemetry) {
        send_to(conn, wire_error_line("telemetry is disabled"));
        return;
      }
      if (conn->watch_id.load() != 0) {
        send_to(conn, wire_error_line("connection is already watching"));
        return;
      }
      // Ack first: the subscription fans out from other threads the
      // moment it registers, and the ack must precede every event line.
      JsonValue o = JsonValue::make_object();
      o.set("ok", JsonValue::make_bool(true));
      o.set("op", JsonValue::make_string("watch"));
      send_to(conn, to_wire_line(o));
      conn->watch_id.store(cfg_.telemetry->subscribe(
          [this, conn](const std::string& event_line) {
            send_to(conn, event_line);
            return conn->alive.load();
          }));
      log("serve: watch subscribed");
    } else if (op == "submit") {
      handle_submit(conn, req);
    } else if (op == "shutdown") {
      JsonValue o = JsonValue::make_object();
      o.set("ok", JsonValue::make_bool(true));
      o.set("op", JsonValue::make_string("shutdown"));
      send_to(conn, to_wire_line(o));
      log("serve: shutdown requested by client");
      request_stop();
    } else {
      send_to(conn, wire_error_line("unknown op '" + op + "'"));
    }
  } catch (const std::exception& e) {
    send_to(conn, wire_error_line(e.what()));
  }
}

void Server::handle_submit(const std::shared_ptr<Conn>& conn,
                           const JsonValue& req) {
  CampaignService::Request r;
  r.campaign = req.at("campaign").as_string();
  r.smoke = get_bool(req, "smoke", false);
  r.lane = lane_from_name(get_string(req, "lane", "bulk"));
  r.git_sha = get_string(req, "git_sha", "");

  // The accepted line must precede every point event, including the replay
  // a coalescing submit delivers from inside submit() itself — so describe
  // the job (pure, cheap) before handing the sink over.
  const campaign::CampaignSpec* spec = campaign::find_campaign(r.campaign);
  if (!spec) {
    send_to(conn, wire_error_line("unknown campaign '" + r.campaign +
                                  "' (use op list)"));
    return;
  }
  const std::vector<campaign::PointUnit> units =
      campaign::expand_point_units(*spec, r.smoke);
  std::vector<std::string> ids;
  ids.reserve(units.size());
  for (const campaign::PointUnit& u : units) ids.push_back(u.id);
  const std::string config_hash =
      campaign::spec_config_hash(*spec, r.smoke, ids);

  JsonValue acc = JsonValue::make_object();
  acc.set("event", JsonValue::make_string("accepted"));
  acc.set("campaign", JsonValue::make_string(r.campaign));
  acc.set("smoke", JsonValue::make_bool(r.smoke));
  acc.set("lane", JsonValue::make_string(lane_name(r.lane)));
  acc.set("points", num(units.size()));
  acc.set("config_hash", JsonValue::make_string(config_hash));
  send_to(conn, to_wire_line(acc));
  log("serve: submit " + r.campaign + (r.smoke ? " (smoke, " : " (full, ") +
      lane_name(r.lane) + ", " + std::to_string(units.size()) + " points)");

  CampaignService::Sink sink;
  sink.on_point = [this, conn](const CampaignService::PointEvent& ev) {
    JsonValue o = JsonValue::make_object();
    o.set("event", JsonValue::make_string("point"));
    o.set("done", num(ev.done));
    o.set("total", num(ev.total));
    o.set("id", JsonValue::make_string(ev.id));
    o.set("cached", JsonValue::make_bool(ev.cached));
    send_to(conn, to_wire_line(o));
  };
  sink.on_done = [this, conn](const CampaignService::JobResult& jr) {
    JsonValue o = JsonValue::make_object();
    if (jr.error.empty()) {
      o.set("event", JsonValue::make_string("done"));
      o.set("campaign", JsonValue::make_string(jr.campaign));
      o.set("config_hash", JsonValue::make_string(jr.config_hash));
      o.set("points", num(jr.points));
      o.set("cache_hits", num(jr.cache_hits));
      o.set("executed", num(jr.executed));
      o.set("result", JsonValue::make_string(jr.result_text));
    } else {
      o.set("event", JsonValue::make_string("failed"));
      o.set("campaign", JsonValue::make_string(jr.campaign));
      o.set("error", JsonValue::make_string(jr.error));
    }
    send_to(conn, to_wire_line(o));
  };

  const std::uint64_t ticket = service_.submit(r, std::move(sink));
  service_.wait(ticket);
  log("serve: finished " + r.campaign);
}

}  // namespace rnoc::serve
