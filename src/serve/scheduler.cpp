#include "serve/scheduler.hpp"

#include <utility>

#include "common/types.hpp"
#include "serve/telemetry.hpp"

namespace rnoc::serve {

namespace {
/// Worker index of the calling thread; -1 on non-pool threads. Lets the
/// service attribute execute spans to the worker that ran them without
/// threading an index through every task closure.
thread_local int tl_current_worker = -1;
}  // namespace

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::Interactive: return "interactive";
    case Lane::Bulk: return "bulk";
  }
  return "bulk";  // Unreachable; silences -Wreturn-type.
}

Lane lane_from_name(const std::string& name) {
  if (name == "interactive") return Lane::Interactive;
  require(name == "bulk", "serve: unknown lane '" + name +
                              "' (expected interactive|bulk)");
  return Lane::Bulk;
}

PointScheduler::PointScheduler(int workers, TelemetryHub* telemetry)
    : telemetry_(telemetry) {
  std::size_t n = workers > 0 ? static_cast<std::size_t>(workers)
                              : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<WorkerQueues>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

PointScheduler::~PointScheduler() { stop(); }

std::uint64_t PointScheduler::submit(
    Lane lane, std::vector<std::function<void()>> tasks) {
  if (tasks.empty() || stop_.load()) return 0;
  std::uint64_t id = 0;
  std::size_t start = 0;
  {
    const std::lock_guard<std::mutex> lock(jobs_mu_);
    // Completed entries are only bookkeeping for wait()/finished();
    // prune them once the map is clearly historical so a long-running
    // daemon does not accumulate one node per job forever.
    if (jobs_.size() > 1024) {
      for (auto it = jobs_.begin(); it != jobs_.end();) {
        if (it->second.done)
          it = jobs_.erase(it);
        else
          ++it;
      }
    }
    id = next_job_++;
    jobs_[id].remaining = tasks.size();
    start = next_worker_;
    next_worker_ = (next_worker_ + tasks.size()) % queues_.size();
  }
  const auto li = static_cast<std::size_t>(lane);
  // One clock read per submission, shared by every task's queue-wait span.
  const std::uint64_t enqueue_us = telemetry_ ? telemetry_->now_us() : 0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    WorkerQueues& q = *queues_[(start + t) % queues_.size()];
    const std::lock_guard<std::mutex> lock(q.mu);
    q.lane[li].push_back({std::move(tasks[t]), id, enqueue_us});
  }
  pending_[li].fetch_add(tasks.size());
  cv_work_.notify_all();
  return id;
}

bool PointScheduler::try_claim(std::size_t self, Lane lane, Task& out) {
  const auto li = static_cast<std::size_t>(lane);
  {
    WorkerQueues& own = *queues_[self];
    const std::lock_guard<std::mutex> lock(own.mu);
    if (!own.lane[li].empty()) {
      out = std::move(own.lane[li].front());
      own.lane[li].pop_front();
      pending_[li].fetch_sub(1);
      return true;
    }
  }
  if (queues_.size() > 1) steal_attempts_.fetch_add(1);
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueues& victim = *queues_[(self + k) % queues_.size()];
    const std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.lane[li].empty()) {
      out = std::move(victim.lane[li].back());
      victim.lane[li].pop_back();
      pending_[li].fetch_sub(1);
      steals_.fetch_add(1);
      return true;
    }
  }
  return false;
}

void PointScheduler::complete_job_tasks(std::uint64_t job, std::size_t count,
                                        bool dropped) {
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  it->second.remaining -= count;
  if (dropped) it->second.dropped += count;
  if (it->second.remaining == 0) {
    it->second.done = true;
    cv_done_.notify_all();
  }
}

void PointScheduler::finish_task(const Task& t) {
  executed_.fetch_add(1);
  complete_job_tasks(t.job, 1, /*dropped=*/false);
}

void PointScheduler::worker_loop(std::size_t self) {
  tl_current_worker = static_cast<int>(self);
  for (;;) {
    Task t;
    // Interactive first, everywhere: only when no interactive task is
    // queued on any deque may this worker pick up bulk work.
    Lane lane = Lane::Interactive;
    bool got = try_claim(self, Lane::Interactive, t);
    if (got) {
      // Bulk work was queued but an interactive task ran first: that is
      // the priority lane actually deferring something.
      if (pending_[1].load() > 0) preemptions_.fetch_add(1);
    } else if (pending_[0].load() == 0) {
      got = try_claim(self, Lane::Bulk, t);
      lane = Lane::Bulk;
    }
    if (got) {
      if (telemetry_ && t.enqueue_us != 0) {
        SpanRecord span;
        span.kind = SpanKind::QueueWait;
        span.start_us = t.enqueue_us;
        span.end_us = telemetry_->now_us();
        span.job = t.job;  // Scheduler job id (not the service's).
        span.worker = static_cast<int>(self);
        span.lane = static_cast<int>(lane);
        telemetry_->observe_us(lane == Lane::Interactive
                                   ? "queue_wait_interactive_us"
                                   : "queue_wait_bulk_us",
                               static_cast<double>(span.end_us -
                                                   span.start_us));
        telemetry_->record_span(std::move(span));
      }
      t.fn();
      finish_task(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    cv_work_.wait(lock, [this] {
      return stop_.load() || pending_[0].load() > 0 || pending_[1].load() > 0;
    });
    if (stop_.load() && pending_[0].load() == 0 && pending_[1].load() == 0)
      return;
  }
}

void PointScheduler::stop() {
  if (stop_.exchange(true)) {
    // Already stopped; workers may still be draining — join idempotently.
  } else {
    // Drain the queues: dropped tasks still count toward job completion so
    // no waiter hangs across shutdown.
    std::map<std::uint64_t, std::size_t> dropped;
    for (const auto& qp : queues_) {
      const std::lock_guard<std::mutex> lock(qp->mu);
      for (std::size_t li = 0; li < kLanes; ++li) {
        std::deque<Task>& lane = qp->lane[li];
        for (const Task& t : lane) ++dropped[t.job];
        pending_[li].fetch_sub(lane.size());
        lane.clear();
      }
    }
    for (const auto& [job, count] : dropped) {
      dropped_.fetch_add(count);
      complete_job_tasks(job, count, /*dropped=*/true);
    }
  }
  cv_work_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void PointScheduler::wait(std::uint64_t job) {
  std::unique_lock<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  cv_done_.wait(lock, [&] { return it->second.done; });
}

bool PointScheduler::finished(std::uint64_t job) const {
  const std::lock_guard<std::mutex> lock(jobs_mu_);
  const auto it = jobs_.find(job);
  return it == jobs_.end() || it->second.done;
}

PointScheduler::Stats PointScheduler::stats() const {
  return {executed_.load(), steals_.load(), dropped_.load(),
          steal_attempts_.load(), preemptions_.load()};
}

std::size_t PointScheduler::queue_depth(Lane lane) const {
  return pending_[static_cast<std::size_t>(lane)].load();
}

int PointScheduler::current_worker() { return tl_current_worker; }

}  // namespace rnoc::serve
