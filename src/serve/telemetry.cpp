#include "serve/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <utility>

#include "campaign/engine.hpp"
#include "serve/wire.hpp"

namespace rnoc::serve {

using campaign::JsonValue;

namespace {

/// The telemetry wire/file schema: bump when the exposition shape, the
/// journal line shape, or the span-trace args change incompatibly.
constexpr int kTelemetrySchema = 1;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Latencies are stored as log2(1 + us): one histogram shape covers
/// sub-microsecond cache probes and minute-long points with relative
/// (not absolute) resolution. Inverse of the transform in observe_us.
double from_log2_domain(double v) { return std::exp2(v) - 1.0; }

/// HELP text for the metric families the daemon emits; anything not
/// listed falls back to a generic line so ad-hoc counters still expose
/// cleanly.
const char* family_help(const std::string& base) {
  static const std::map<std::string, const char*> kHelp = {
      {"jobs_submitted", "Campaign submissions that scheduled fresh work."},
      {"jobs_coalesced", "Submissions attached to an identical in-flight job."},
      {"points_computed", "Points executed by the engine (cache misses)."},
      {"points_cached", "Points served from the persistent result cache."},
      {"sched_executed", "Scheduler tasks run to completion."},
      {"sched_steals", "Tasks taken from another worker's deque."},
      {"sched_steal_attempts", "Claims that probed peer deques (own empty)."},
      {"sched_preemptions",
       "Interactive tasks claimed while bulk work was queued."},
      {"sched_dropped", "Tasks discarded by scheduler stop()."},
      {"cache_hits", "Result-cache lookups served from disk."},
      {"cache_misses", "Result-cache lookups that missed."},
      {"cache_stores", "Fresh results written to the cache."},
      {"cache_evictions", "Entries evicted by the LRU byte cap."},
      {"cache_quarantined", "Corrupt entries moved aside, never served."},
      {"telemetry_events", "Structured events journaled/streamed by the hub."},
      {"cache_entries", "Result-cache entries currently on disk."},
      {"cache_bytes", "Result-cache bytes currently on disk."},
      {"queue_depth", "Tasks queued per scheduler lane right now."},
      {"points_in_flight", "Points executing on workers right now."},
      {"coalesced_waiters", "Attached sinks waiting on another job's work."},
      {"watch_subscribers", "Live `watch` event subscriptions."},
      {"workers", "Scheduler worker threads."},
      {"uptime_seconds", "Seconds since the telemetry hub was created."},
      {"build_info", "Constant 1; identity is in the labels."},
      {"point_execute_us", "Latency of freshly computed points."},
      {"point_cache_hit_us", "Latency of cache-served points."},
      {"request_us", "Submit-to-terminal latency per campaign job."},
      {"queue_wait_us", "Task enqueue-to-claim wait per scheduler lane."},
  };
  const auto it = kHelp.find(base);
  return it != kHelp.end() ? it->second : "rnoc serve telemetry metric.";
}

/// "queue_depth{lane=\"bulk\"}" -> "queue_depth".
std::string family_of(const std::string& sample) {
  const std::size_t brace = sample.find('{');
  return brace == std::string::npos ? sample : sample.substr(0, brace);
}

/// Rebuilds a labeled sample name under a prefixed family name:
/// ("rnoc_queue_depth", "queue_depth{lane=\"bulk\"}") ->
/// "rnoc_queue_depth{lane=\"bulk\"}".
std::string prefixed_sample(const std::string& family,
                            const std::string& sample) {
  const std::size_t brace = sample.find('{');
  return brace == std::string::npos ? family
                                    : family + sample.substr(brace);
}

std::string fmt_value(double v) {
  return std::isfinite(v) ? campaign::json_double(v) : "NaN";
}

}  // namespace

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::Request: return "request";
    case SpanKind::Expand: return "expand";
    case SpanKind::QueueWait: return "queue-wait";
    case SpanKind::Execute: return "execute";
    case SpanKind::CacheHit: return "cache-hit";
  }
  return "execute";  // Unreachable; silences -Wreturn-type.
}

TelemetryHub::TelemetryHub(Config cfg) : cfg_(std::move(cfg)) {
  epoch_ns_ = steady_ns();
  if (!cfg_.journal_path.empty()) {
    // Append across daemon restarts: the journal is an operational log,
    // not a per-run artifact; rotation bounds it either way.
    journal_.open(cfg_.journal_path,
                  std::ios::out | std::ios::app | std::ios::ate);
    const std::streampos pos = journal_.tellp();
    journal_bytes_ = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
  }
  if (cfg_.span_capacity > 0) spans_.reserve(cfg_.span_capacity);
  if (cfg_.tick_interval_ms > 0)
    ticker_ = std::thread([this] { ticker_loop(); });
}

TelemetryHub::~TelemetryHub() {
  {
    const std::lock_guard<std::mutex> lock(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  if (journal_.is_open()) journal_.flush();
}

std::uint64_t TelemetryHub::now_us() const {
  // Strictly positive: callers use 0 as "no telemetry timestamp", and a
  // submit in the hub's first microsecond must still get spans.
  return (steady_ns() - epoch_ns_) / 1000 + 1;
}

void TelemetryHub::record_span(SpanRecord span) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (cfg_.span_capacity == 0) return;
  ++spans_recorded_;
  if (spans_.size() < cfg_.span_capacity) {
    spans_.push_back(std::move(span));
  } else {
    spans_[span_head_] = std::move(span);  // Overwrite the oldest.
    span_head_ = (span_head_ + 1) % cfg_.span_capacity;
  }
}

void TelemetryHub::counter_add(const std::string& name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void TelemetryHub::counter_set(const std::string& name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

void TelemetryHub::gauge_set(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void TelemetryHub::gauge_add(const std::string& name, double delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] += delta;
}

void TelemetryHub::observe_us(const std::string& name, double us) {
  const std::lock_guard<std::mutex> lock(mu_);
  LatencySummary& s = histograms_[name];
  s.log2_hist.add(std::log2(1.0 + (us < 0 ? 0.0 : us)));
  s.sum_us += us < 0 ? 0.0 : us;
}

void TelemetryHub::event(const std::string& type, JsonValue fields) {
  JsonValue o = JsonValue::make_object();
  o.set("event", JsonValue::make_string("telemetry"));
  o.set("type", JsonValue::make_string(type));
  o.set("t_us", JsonValue::make_number(static_cast<double>(now_us())));
  if (fields.is(JsonValue::Type::Object))
    for (const auto& [key, value] : fields.members()) o.set(key, value);
  const std::string line = to_wire_line(o);

  // Journal under the lock (ordered, size-accounted); fan out to
  // subscribers outside it so one stalled watcher cannot wedge every
  // thread that reports telemetry.
  std::vector<std::pair<std::uint64_t, EventSink>> sinks;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++events_;
    journal_append_locked(line);
    sinks.reserve(sinks_.size());
    for (const auto& [id, sink] : sinks_) sinks.emplace_back(id, sink);
  }
  for (const auto& [id, sink] : sinks)
    if (!sink(line)) unsubscribe(id);
}

void TelemetryHub::journal_append_locked(const std::string& line) {
  if (!journal_.is_open()) return;
  const std::uint64_t incoming = line.size() + 1;
  if (journal_bytes_ > 0 &&
      journal_bytes_ + incoming > cfg_.journal_max_bytes) {
    journal_.close();
    std::error_code ec;  // Rotation is best-effort; rename(2) is atomic.
    std::filesystem::rename(cfg_.journal_path, cfg_.journal_path + ".1", ec);
    journal_.open(cfg_.journal_path, std::ios::out | std::ios::trunc);
    journal_bytes_ = 0;
    ++journal_rotations_;
  }
  journal_ << line << '\n';
  journal_.flush();
  journal_bytes_ += incoming;
}

std::uint64_t TelemetryHub::subscribe(EventSink sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_sink_++;
  sinks_[id] = std::move(sink);
  return id;
}

void TelemetryHub::unsubscribe(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(id);
}

std::size_t TelemetryHub::subscribers() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sinks_.size();
}

void TelemetryHub::set_scrape_provider(ScrapeProvider provider) {
  const std::lock_guard<std::mutex> lock(mu_);
  provider_ = std::move(provider);
}

void TelemetryHub::run_scrape_provider() {
  ScrapeProvider provider;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    provider = provider_;
  }
  // Unlocked: the provider calls back into service/scheduler/cache locks
  // and then into this hub's setters.
  if (provider) provider(*this);
}

JsonValue TelemetryHub::snapshot_locked() const {
  JsonValue snap = JsonValue::make_object();
  JsonValue cs = JsonValue::make_object();
  for (const auto& [name, value] : counters_)
    cs.set(name, JsonValue::make_number(static_cast<double>(value)));
  cs.set("telemetry_events",
         JsonValue::make_number(static_cast<double>(events_)));
  snap.set("counters", std::move(cs));
  JsonValue gs = JsonValue::make_object();
  for (const auto& [name, value] : gauges_)
    gs.set(name, JsonValue::make_number(value));
  snap.set("gauges", std::move(gs));
  JsonValue hs = JsonValue::make_object();
  for (const auto& [name, summary] : histograms_) {
    JsonValue h = JsonValue::make_object();
    h.set("count", JsonValue::make_number(
                       static_cast<double>(summary.log2_hist.total())));
    h.set("sum_us", JsonValue::make_number(summary.sum_us));
    h.set("p50", JsonValue::make_number(
                     from_log2_domain(summary.log2_hist.quantile(0.5))));
    h.set("p90", JsonValue::make_number(
                     from_log2_domain(summary.log2_hist.quantile(0.9))));
    h.set("p99", JsonValue::make_number(
                     from_log2_domain(summary.log2_hist.quantile(0.99))));
    hs.set(name, std::move(h));
  }
  snap.set("histograms", std::move(hs));
  return snap;
}

std::string TelemetryHub::prometheus_text() {
  run_scrape_provider();
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  const auto emit_header = [&out](const std::string& family,
                                  const std::string& base,
                                  const char* type) {
    out += "# HELP " + family + " " + family_help(base) + "\n";
    out += "# TYPE " + family + " " + std::string(type) + "\n";
  };

  emit_header("rnoc_build_info", "build_info", "gauge");
  out += "rnoc_build_info{git_sha=\"" + cfg_.git_sha +
         "\",schema_version=\"" + std::to_string(campaign::kSchemaVersion) +
         "\",telemetry_schema=\"" + std::to_string(kTelemetrySchema) +
         "\"} 1\n";
  emit_header("rnoc_uptime_seconds", "uptime_seconds", "gauge");
  out += "rnoc_uptime_seconds " +
         fmt_value(static_cast<double>(now_us()) / 1e6) + "\n";

  std::map<std::string, std::uint64_t> counters = counters_;
  counters["telemetry_events"] = events_;
  counters["telemetry_spans_recorded"] = spans_recorded_;
  for (const auto& [name, value] : counters) {
    const std::string family = "rnoc_" + name + "_total";
    emit_header(family, name, "counter");
    out += family + " " + std::to_string(value) + "\n";
  }

  std::string last_family;
  for (const auto& [name, value] : gauges_) {
    const std::string base = family_of(name);
    const std::string family = "rnoc_" + base;
    if (family != last_family) {
      emit_header(family, base, "gauge");
      last_family = family;
    }
    out += prefixed_sample(family, name) + " " + fmt_value(value) + "\n";
  }

  for (const auto& [name, summary] : histograms_) {
    const std::string family = "rnoc_" + name;
    emit_header(family, name, "summary");
    for (const double q : {0.5, 0.9, 0.99}) {
      out += family + "{quantile=\"" + fmt_value(q) + "\"} " +
             fmt_value(from_log2_domain(summary.log2_hist.quantile(q))) +
             "\n";
    }
    out += family + "_sum " + fmt_value(summary.sum_us) + "\n";
    out += family + "_count " + std::to_string(summary.log2_hist.total()) +
           "\n";
  }
  return out;
}

std::string TelemetryHub::metrics_json() {
  run_scrape_provider();
  const std::lock_guard<std::mutex> lock(mu_);
  JsonValue o = JsonValue::make_object();
  o.set("telemetry_schema", JsonValue::make_number(kTelemetrySchema));
  o.set("schema_version", JsonValue::make_number(campaign::kSchemaVersion));
  o.set("git_sha", JsonValue::make_string(cfg_.git_sha));
  o.set("uptime_seconds",
        JsonValue::make_number(static_cast<double>(now_us()) / 1e6));
  const JsonValue snap = snapshot_locked();
  for (const auto& [key, value] : snap.members()) o.set(key, value);
  JsonValue spans = JsonValue::make_object();
  spans.set("recorded",
            JsonValue::make_number(static_cast<double>(spans_recorded_)));
  spans.set("dropped", JsonValue::make_number(static_cast<double>(
                           spans_recorded_ - spans_.size())));
  spans.set("capacity", JsonValue::make_number(
                            static_cast<double>(cfg_.span_capacity)));
  o.set("spans", std::move(spans));
  JsonValue journal = JsonValue::make_object();
  journal.set("bytes",
              JsonValue::make_number(static_cast<double>(journal_bytes_)));
  journal.set("rotations", JsonValue::make_number(
                               static_cast<double>(journal_rotations_)));
  o.set("journal", std::move(journal));
  return to_wire_line(o);
}

std::string TelemetryHub::span_trace_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Ring order: oldest first so Perfetto sees time flowing forward.
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans_.size());
  for (std::size_t i = 0; i < spans_.size(); ++i)
    ordered.push_back(&spans_[(span_head_ + i) % spans_.size()]);

  // One B and one E per span; within a (pid, tid) track, sorting by
  // timestamp with B before E at ties keeps every prefix balanced even
  // for overlapping intervals (every E's span began at or before it).
  struct Ev {
    std::uint64_t ts;
    int phase;  ///< 0 = B, 1 = E (tie-break order).
    const SpanRecord* span;
  };
  std::vector<Ev> evs;
  evs.reserve(ordered.size() * 2);
  for (const SpanRecord* s : ordered) {
    evs.push_back({s->start_us, 0, s});
    evs.push_back({s->end_us < s->start_us ? s->start_us : s->end_us, 1, s});
  }
  std::stable_sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.phase < b.phase;
  });

  const auto track_of = [](const SpanRecord& s) {
    // pid 0 = service (request/expand on the job's own tid); pid w+1 =
    // worker w with tid = lane for execution, kLanes+lane for queue-wait.
    std::pair<std::uint64_t, std::uint64_t> t{0, s.job};
    if (s.kind == SpanKind::QueueWait)
      t = {static_cast<std::uint64_t>(s.worker + 1),
           2 + static_cast<std::uint64_t>(s.lane)};
    else if (s.kind == SpanKind::Execute || s.kind == SpanKind::CacheHit)
      t = {static_cast<std::uint64_t>(s.worker + 1),
           static_cast<std::uint64_t>(s.lane)};
    return t;
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto append = [&out, &first](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += ev;
  };

  // Metadata: name the processes and threads that actually appear.
  std::map<std::uint64_t, std::string> procs;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> tracks;
  const char* kLaneNames[] = {"interactive", "bulk", "queue-wait interactive",
                              "queue-wait bulk"};
  for (const SpanRecord* s : ordered) {
    const auto [pid, tid] = track_of(*s);
    procs.emplace(pid, pid == 0 ? "service"
                                : "worker " + std::to_string(pid - 1));
    tracks.emplace(std::make_pair(pid, tid),
                   pid == 0 ? "job " + std::to_string(tid)
                            : std::string(kLaneNames[tid < 4 ? tid : 3]));
  }
  for (const auto& [pid, name] : procs)
    append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
           campaign::json_quote(name) + "}}");
  for (const auto& [track, name] : tracks)
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(track.first) + ",\"tid\":" +
           std::to_string(track.second) + ",\"args\":{\"name\":" +
           campaign::json_quote(name) + "}}");

  for (const Ev& ev : evs) {
    const SpanRecord& s = *ev.span;
    const auto [pid, tid] = track_of(s);
    std::string e = "{\"name\":";
    e += campaign::json_quote(span_kind_name(s.kind));
    e += ",\"ph\":\"";
    e += ev.phase == 0 ? 'B' : 'E';
    e += "\",\"ts\":" + std::to_string(ev.ts);
    e += ",\"pid\":" + std::to_string(pid);
    e += ",\"tid\":" + std::to_string(tid);
    if (ev.phase == 0) {
      e += ",\"args\":{\"job\":" + std::to_string(s.job);
      switch (s.kind) {
        case SpanKind::Request:
          e += ",\"campaign\":" + campaign::json_quote(s.id);
          e += ",\"points\":" + std::to_string(s.aux);
          e += std::string(",\"ok\":") + (s.ok ? "true" : "false");
          break;
        case SpanKind::Expand:
          e += ",\"campaign\":" + campaign::json_quote(s.id);
          e += ",\"points\":" + std::to_string(s.aux);
          break;
        case SpanKind::QueueWait:
        case SpanKind::Execute:
        case SpanKind::CacheHit:
          e += ",\"id\":" + campaign::json_quote(s.id);
          break;
      }
      e += "}";
    }
    e += "}";
    append(e);
  }

  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"git_sha\":" +
         campaign::json_quote(cfg_.git_sha) +
         ",\"telemetry_schema\":" + std::to_string(kTelemetrySchema) +
         ",\"spans_recorded\":" + std::to_string(spans_recorded_) +
         ",\"spans_dropped\":" +
         std::to_string(spans_recorded_ - spans_.size()) + "}}";
  return out;
}

void TelemetryHub::write_span_trace(const std::string& path) const {
  campaign::write_text_atomic(path, span_trace_json());
}

void TelemetryHub::emit_metrics_event() {
  run_scrape_provider();
  JsonValue fields;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fields = snapshot_locked();
  }
  event("metrics", std::move(fields));
}

void TelemetryHub::ticker_loop() {
  std::unique_lock<std::mutex> lock(tick_mu_);
  while (!tick_stop_) {
    tick_cv_.wait_for(lock,
                      std::chrono::milliseconds(cfg_.tick_interval_ms),
                      [this] { return tick_stop_; });
    if (tick_stop_) break;
    if (subscribers() == 0) continue;  // Nobody is watching; stay quiet.
    lock.unlock();
    emit_metrics_event();
    lock.lock();
  }
}

TelemetryHub::Stats TelemetryHub::hub_stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.spans_recorded = spans_recorded_;
  s.spans_dropped = spans_recorded_ - spans_.size();
  s.events = events_;
  s.journal_rotations = journal_rotations_;
  s.journal_bytes = journal_bytes_;
  return s;
}

}  // namespace rnoc::serve
