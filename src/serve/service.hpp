// CampaignService: the spec -> schedule -> execute -> store core of the
// campaign results daemon.
//
// A submission names a registered campaign; the service expands it into
// engine point units (campaign::expand_point_units), deals the units to the
// two-lane work-stealing PointScheduler, executes each through one choke
// point — execute_point, which consults the persistent ResultCache before
// running the unit and stores every fresh result — and assembles the points
// back into a CampaignResult in point-index order. The serialized result is
// therefore byte-identical to what a local `rnoc_campaign` run of the same
// spec produces: worker count, steal order, lane, cache hits and daemon
// restarts are all invisible in the output (test-enforced).
//
// Identical in-flight submissions coalesce: a submit whose
// (campaign, smoke, git_sha) matches a running job attaches as an extra
// sink instead of scheduling duplicate work, and every point it receives is
// reported as served-from-cache — the work was already paid for. Combined
// with the disk cache this makes "a second overlapping client sees hits for
// every point" a deterministic invariant, not a race outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "campaign/engine.hpp"
#include "serve/cache.hpp"
#include "serve/scheduler.hpp"

namespace rnoc::serve {

class TelemetryHub;

class CampaignService {
 public:
  struct Config {
    int workers = 0;  ///< Scheduler threads; 0 = hardware concurrency.
    std::string cache_root;  ///< Empty disables the persistent cache.
    std::uint64_t cache_max_bytes = 0;  ///< 0 = unlimited.
    std::string git_sha = "unknown";    ///< Stamps results, keys the cache.
    /// Optional telemetry hub (must outlive the service). Receives span
    /// records, lifecycle events and latency samples, and is installed as
    /// its own scrape provider so `metrics` scrapes see live stats.
    /// Telemetry never touches result bytes: campaign output is
    /// byte-identical with or without it (test-enforced).
    TelemetryHub* telemetry = nullptr;
    /// Test hook: called after every freshly computed (non-cached) point
    /// with the process-wide count so far. The daemon's --exit-after-points
    /// flag uses it to simulate a mid-campaign kill deterministically.
    std::function<void(std::uint64_t computed_so_far)> on_point_computed;
  };

  /// One submission.
  struct Request {
    std::string campaign;
    bool smoke = false;
    Lane lane = Lane::Bulk;
    /// Stamped into the result header; empty = the service's git_sha. Does
    /// not affect cache keying (the daemon is one build; its own SHA keys
    /// the cache).
    std::string git_sha;
  };

  /// Per-point progress, in completion order for the sink.
  struct PointEvent {
    std::size_t done = 0;  ///< Points delivered to this sink so far.
    std::size_t total = 0;
    std::string id;
    bool cached = false;  ///< Served from cache or a coalesced job.
  };

  /// Terminal event, delivered exactly once per submission.
  struct JobResult {
    std::string campaign;
    std::string config_hash;
    std::size_t points = 0;
    std::size_t cache_hits = 0;  ///< As seen by this sink (see coalescing).
    std::size_t executed = 0;    ///< Freshly computed for this sink.
    std::string result_text;     ///< Exact to_json(CampaignResult) bytes.
    std::string error;           ///< Empty on success.
  };

  struct Sink {
    std::function<void(const PointEvent&)> on_point;  ///< May be null.
    std::function<void(const JobResult&)> on_done;    ///< May be null.
  };

  struct Stats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_coalesced = 0;
    std::uint64_t points_computed = 0;
    std::uint64_t points_cached = 0;
  };

  explicit CampaignService(Config cfg);
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Schedules `req` (or attaches to a matching in-flight job) and returns
  /// a ticket for wait(). Sink callbacks fire from worker threads,
  /// serialized per job. Throws std::invalid_argument on unknown campaigns.
  std::uint64_t submit(const Request& req, Sink sink);

  /// Blocks until the submission's terminal event has been delivered.
  void wait(std::uint64_t ticket);

  /// Stops the scheduler, fails every incomplete job's sinks with a
  /// shutdown error, and flushes the cache index. Idempotent.
  void stop();

  Stats stats() const;
  PointScheduler::Stats scheduler_stats() const;
  /// Zeroed when no cache is configured.
  ResultCache::Stats cache_stats() const;
  const std::string& git_sha() const { return cfg_.git_sha; }

  /// Pushes the pull-model metrics (service/scheduler/cache counters,
  /// queue depths, cache size gauges) into `hub`. Installed as the hub's
  /// scrape provider by the constructor; callable directly in tests.
  void publish_metrics(TelemetryHub& hub) const;

  /// The execute path: cache lookup, else run the unit and store it. This
  /// is the determinism root the static analyzer audits — everything
  /// reachable from here must be free of wall-clock, RNG and environment
  /// sinks, because these results are the bytes campaigns are made of.
  campaign::PointResult execute_point(const campaign::CampaignSpec& spec,
                                      const campaign::PointUnit& unit,
                                      bool smoke,
                                      const std::string& config_hash,
                                      bool& cached);

 private:
  struct Job;

  void finalize_locked(Job& job);
  void run_unit_task(const std::shared_ptr<Job>& job, std::size_t i);

  Config cfg_;
  std::unique_ptr<ResultCache> cache_;  ///< Null when no cache_root.
  std::unique_ptr<PointScheduler> scheduler_;

  mutable std::mutex mu_;
  /// (campaign|smoke|git_sha) -> in-flight job, for coalescing.
  std::map<std::string, std::shared_ptr<Job>> active_;
  /// Ticket -> job, for wait(); finished entries pruned lazily.
  std::map<std::uint64_t, std::shared_ptr<Job>> tickets_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t next_job_id_ = 1;  ///< Telemetry job ids (spans/events).
  std::uint64_t computed_total_ = 0;
  Stats stats_;
  bool stopped_ = false;
};

}  // namespace rnoc::serve
