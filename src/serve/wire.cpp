#include "serve/wire.hpp"

namespace rnoc::serve {

namespace {

void write_compact(const campaign::JsonValue& v, std::string& out) {
  using Type = campaign::JsonValue::Type;
  switch (v.type()) {
    case Type::Null:
      out += "null";
      return;
    case Type::Bool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Type::Number:
      out += campaign::json_double(v.as_number());
      return;
    case Type::String:
      out += campaign::json_quote(v.as_string());
      return;
    case Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const campaign::JsonValue& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        write_compact(item, out);
      }
      out.push_back(']');
      return;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        out += campaign::json_quote(key);
        out.push_back(':');
        write_compact(value, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string to_wire_line(const campaign::JsonValue& v) {
  std::string out;
  write_compact(v, out);
  return out;
}

std::string wire_error_line(const std::string& msg) {
  campaign::JsonValue o = campaign::JsonValue::make_object();
  o.set("ok", campaign::JsonValue::make_bool(false));
  o.set("error", campaign::JsonValue::make_string(msg));
  return to_wire_line(o);
}

}  // namespace rnoc::serve
