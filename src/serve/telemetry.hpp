// TelemetryHub: the observability spine of the campaign results daemon.
//
// The scheduler, service and server report into one hub; everything the
// hub stores is derived data about *when* things happened, never *what*
// the results are — campaign result bytes are produced entirely outside
// this TU and are byte-identical with the hub attached or absent
// (test-enforced against the committed goldens). That split is also the
// determinism story: this TU is the only place in src/serve that reads a
// clock, and the static analyzer's wall-clock rule prunes exactly
// `rnoc::serve::TelemetryHub::` on that basis (see
// tools/analyze/rnoc_analyze.py).
//
// What the hub holds:
//   - a capacity-capped ring of span records (request lifecycle: submit ->
//     expand -> queue-wait per lane -> execute / cache-hit), exported in
//     the same Chrome/Perfetto trace-event JSON dialect as src/obs/trace
//     (pid = worker, tid = lane) but emitted locally — plain serve TUs
//     must not reference rnoc::obs:: symbols (the zero-cost-off rule);
//   - latency histograms with quantiles, built on the shared
//     rnoc::Histogram over log2(1+us) so microsecond cache hits and
//     minute-long points share one resolution-proportional scale;
//   - monotone counters and instantaneous gauges the cumulative Stats
//     structs cannot express (queue depth per lane, in-flight points,
//     cache bytes/entries, coalesced waiters);
//   - a size-capped structured JSONL event journal with atomic rotation
//     (rename to "<path>.1", then a fresh file);
//   - line-JSON event subscribers (the wire `watch` op) fed by the same
//     event calls that feed the journal, plus an optional ticker thread
//     that emits a periodic "metrics" snapshot event while anyone is
//     subscribed.
//
// Locking: one mutex guards all hub state; every recording call is a
// short critical section (append/increment), and the expensive paths
// (exposition, trace export) run at scrape time. Subscriber sinks are
// invoked *outside* the hub mutex so a slow watcher can only delay the
// thread that produced the event, never every thread that touches the
// hub. The scrape provider (pull-model counters/gauges, see
// set_scrape_provider) is likewise invoked unlocked because it calls back
// into service/scheduler/cache locks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.hpp"
#include "common/stats.hpp"

namespace rnoc::serve {

/// Phases of the request/point lifecycle a span can describe.
enum class SpanKind {
  Request,    ///< submit() accepted -> terminal done/failed, per job.
  Expand,     ///< Point-unit expansion + config hashing inside submit().
  QueueWait,  ///< Task enqueue -> claimed by a worker, per point.
  Execute,    ///< Freshly computed point (cache miss).
  CacheHit,   ///< Point served from the persistent cache.
};

const char* span_kind_name(SpanKind kind);

/// One recorded interval. `worker` is -1 for service/connection-thread
/// spans (Request/Expand); `lane` is the scheduler lane index.
struct SpanRecord {
  SpanKind kind = SpanKind::Execute;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t job = 0;  ///< Service job id (groups points to requests).
  int worker = -1;
  int lane = 1;        ///< static_cast<int>(Lane): 0 interactive, 1 bulk.
  std::string id;      ///< Point id; campaign name for Request/Expand.
  std::uint64_t aux = 0;  ///< Request/Expand: the job's point count.
  bool ok = true;      ///< Request: false when the job failed/was dropped.
};

class TelemetryHub {
 public:
  struct Config {
    /// JSONL event journal path; empty disables journaling (events still
    /// reach subscribers).
    std::string journal_path;
    /// Rotate the journal (atomic rename to "<path>.1") before a write
    /// would push it past this size.
    std::uint64_t journal_max_bytes = 4ull << 20;
    /// Span ring capacity; 0 disables span recording entirely.
    std::size_t span_capacity = 1 << 16;
    /// Period of the background "metrics" snapshot event while watchers
    /// are subscribed; 0 disables the ticker thread.
    std::uint64_t tick_interval_ms = 0;
    std::string git_sha = "unknown";
  };

  /// Written by subscribers; false = the sink is dead, drop it.
  using EventSink = std::function<bool(const std::string& line)>;
  /// Called (unlocked) before every metrics snapshot; pushes current
  /// pull-model counter/gauge values into the hub.
  using ScrapeProvider = std::function<void(TelemetryHub&)>;

  explicit TelemetryHub(Config cfg);
  ~TelemetryHub();  ///< Stops the ticker and closes the journal.

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Monotonic microseconds since hub construction — the one clock every
  /// span/event timestamp is expressed in, and the only wall-clock read
  /// in the serve layer.
  std::uint64_t now_us() const;
  double uptime_seconds() const { return static_cast<double>(now_us()) / 1e6; }

  // --- recording (cheap, called from hot service/scheduler paths) -------
  void record_span(SpanRecord span);
  void counter_add(const std::string& name, std::uint64_t delta = 1);
  /// Pull-model mirror: overwrites a monotone counter with its source of
  /// truth (service/scheduler/cache Stats) at scrape time.
  void counter_set(const std::string& name, std::uint64_t value);
  void gauge_set(const std::string& name, double value);
  void gauge_add(const std::string& name, double delta);
  /// Records a latency sample into the named quantile histogram.
  void observe_us(const std::string& name, double us);

  /// Journals one structured event ({"event":"telemetry","type":type,
  /// "t_us":now,...fields}) and fans it out to subscribers. `fields`
  /// must be an object (or null for none).
  void event(const std::string& type, campaign::JsonValue fields);

  // --- subscriptions (the wire `watch` op) ------------------------------
  /// Registers `sink` and returns its id. The sink is called outside the
  /// hub mutex with complete wire lines; returning false unsubscribes it.
  std::uint64_t subscribe(EventSink sink);
  void unsubscribe(std::uint64_t id);
  std::size_t subscribers() const;

  /// Installs (or clears, with nullptr) the pull-metrics provider invoked
  /// before every exposition/snapshot. The provider must outlive its
  /// registration — clear it before destroying what it captures.
  void set_scrape_provider(ScrapeProvider provider);

  // --- exposition -------------------------------------------------------
  /// Prometheus text exposition (families sorted, HELP/TYPE lines,
  /// summaries with p50/p90/p99 quantiles). Invokes the scrape provider.
  std::string prometheus_text();
  /// Versioned JSON snapshot of the same data:
  /// {"telemetry_schema":1,"schema_version":...,"git_sha":...,...}.
  /// Invokes the scrape provider.
  std::string metrics_json();
  /// Chrome trace-event JSON of the span ring (pid 0 = service, pid w+1 =
  /// worker w; tid = lane for execute spans, kLanes+lane for queue-wait).
  std::string span_trace_json() const;
  /// Atomically writes span_trace_json() to `path`.
  void write_span_trace(const std::string& path) const;

  struct Stats {
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;  ///< Overwritten ring slots.
    std::uint64_t events = 0;
    std::uint64_t journal_rotations = 0;
    std::uint64_t journal_bytes = 0;  ///< Current journal file size.
  };
  Stats hub_stats() const;

 private:
  struct LatencySummary {
    Histogram log2_hist{0.0, 64.0, 256};  ///< Samples stored as log2(1+us).
    double sum_us = 0.0;
  };

  void journal_append_locked(const std::string& line);
  void run_scrape_provider();
  void emit_metrics_event();
  void ticker_loop();
  /// Sorted snapshot of counters/gauges/histograms as JSON objects.
  campaign::JsonValue snapshot_locked() const;

  Config cfg_;
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction.

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  ///< Ring buffer, capacity cfg_.
  std::size_t span_head_ = 0;
  std::uint64_t spans_recorded_ = 0;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LatencySummary> histograms_;
  std::map<std::uint64_t, EventSink> sinks_;
  std::uint64_t next_sink_ = 1;
  std::uint64_t events_ = 0;
  ScrapeProvider provider_;

  std::ofstream journal_;
  std::uint64_t journal_bytes_ = 0;
  std::uint64_t journal_rotations_ = 0;

  std::thread ticker_;
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
  bool tick_stop_ = false;
};

}  // namespace rnoc::serve
