// The daemon front end: accepts unix-socket connections and speaks the
// line-delimited JSON wire protocol on each, one thread per connection.
//
// A connection is a sequence of requests; `submit` streams accepted/point
// events and blocks the connection (not the daemon — other connections
// keep their own threads) until the job's terminal done/failed line.
// Worker threads deliver point events through the connection's write
// mutex, so event lines never interleave mid-line.
//
// Shutdown contract (the serve-smoke CI job asserts it): request_stop()
// is async-signal-safe (atomic flag + shutdown(2) of the listener);
// run() then stops the CampaignService — failing incomplete jobs with
// terminal error lines, flushing the cache index — unblocks and joins
// every connection thread, and unlinks the socket file. Nothing is left
// behind but the cache directory.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace rnoc::serve {

class Server {
 public:
  struct Config {
    std::string socket_path;
    /// Connection/job log sink (the daemon prints these); may be null.
    std::function<void(const std::string&)> log;
    /// Enables the `metrics` and `watch` wire ops when set (normally the
    /// same hub the service reports into); must outlive the server.
    TelemetryHub* telemetry = nullptr;
  };

  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// `service` must outlive the server.
  Server(Config cfg, CampaignService& service);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until request_stop(); performs the full shutdown contract
  /// before returning.
  void run();

  /// Signals run() to wind down. Safe from signal handlers and other
  /// threads; idempotent.
  void request_stop();

 private:
  struct Conn {
    Fd fd;
    std::mutex write_mu;
    std::atomic<bool> alive{true};
    /// Nonzero while subscribed to telemetry events (the `watch` op);
    /// unsubscribed when the connection winds down.
    std::atomic<std::uint64_t> watch_id{0};
  };

  void handle_connection(const std::shared_ptr<Conn>& conn);
  void handle_request(const std::shared_ptr<Conn>& conn,
                      const std::string& line);
  void handle_submit(const std::shared_ptr<Conn>& conn,
                     const campaign::JsonValue& req);
  /// Sends under the connection's write mutex; marks the connection dead
  /// on failure so later events become no-ops instead of errors.
  void send_to(const std::shared_ptr<Conn>& conn, const std::string& line);
  void log(const std::string& msg);

  Config cfg_;
  CampaignService& service_;
  Fd listener_;
  std::atomic<bool> stop_{false};
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> threads_;
};

}  // namespace rnoc::serve
