#include "serve/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "campaign/json.hpp"
#include "common/types.hpp"

namespace fs = std::filesystem;

namespace rnoc::serve {

namespace {

/// Filesystem-safe rendering of a point id: readable prefix plus the
/// FNV-1a hash of the full id, so exotic ids cannot collide or escape the
/// entry directory.
std::string point_file_name(const std::string& point_id) {
  std::string safe;
  for (const char c : point_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    safe.push_back(ok ? c : '_');
    if (safe.size() >= 40) break;
  }
  return safe + "-" + campaign::fnv1a_hex(point_id) + ".json";
}

std::string index_name() { return "index.json"; }

}  // namespace

ResultCache::ResultCache(Config cfg) : cfg_(std::move(cfg)) {
  require(!cfg_.root.empty(), "serve: cache root must not be empty");
  fs::create_directories(cfg_.root);
  scavenge_and_reconcile();
}

ResultCache::~ResultCache() {
  try {
    flush();
  } catch (const std::exception&) {
    // Destructor must not throw; a stale index only degrades LRU order.
  }
}

std::string ResultCache::entry_path(const std::string& config_hash,
                                    const std::string& point_id) const {
  std::string schema_dir = "v";
  schema_dir += std::to_string(campaign::kSchemaVersion);
  return (fs::path(cfg_.root) / schema_dir / cfg_.git_sha / config_hash /
          point_file_name(point_id))
      .string();
}

std::string ResultCache::quarantine_dir() const {
  return (fs::path(cfg_.root) / "quarantine").string();
}

void ResultCache::scavenge_and_reconcile() {
  const std::lock_guard<std::mutex> lock(mu_);
  // Load the persisted index first (best-effort: a corrupt index is
  // discarded and rebuilt from the directory scan below).
  std::map<std::string, Entry> loaded;
  std::uint64_t loaded_next_seq = 1;
  const std::string index_path =
      (fs::path(cfg_.root) / index_name()).string();
  std::error_code ec;
  if (fs::exists(index_path, ec)) {
    try {
      const campaign::JsonValue v =
          campaign::parse_json(campaign::read_text(index_path));
      loaded_next_seq =
          static_cast<std::uint64_t>(v.at("next_seq").as_int());
      for (const auto& e : v.at("entries").items()) {
        Entry ent;
        ent.bytes = static_cast<std::uint64_t>(e.at("bytes").as_int());
        ent.seq = static_cast<std::uint64_t>(e.at("seq").as_int());
        loaded[e.at("path").as_string()] = ent;
      }
    } catch (const std::exception&) {
      loaded.clear();
      loaded_next_seq = 1;
    }
  }

  // Scan the tree: scavenge temp files from killed writers, collect the
  // entry files that actually exist.
  const fs::path root(cfg_.root);
  const fs::path qdir(quarantine_dir());
  std::vector<std::string> present;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) break;
    const fs::path& p = it->path();
    if (it->is_directory(ec)) {
      if (p == qdir) it.disable_recursion_pending();
      continue;
    }
    const std::string name = p.filename().string();
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(p, ec);  // Torn write that never reached its rename.
      continue;
    }
    if (p.parent_path() == root) continue;  // index.json lives at the root.
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0)
      present.push_back(fs::relative(p, root, ec).generic_string());
  }

  // Reconcile: keep index rows whose file survives; adopt files the index
  // never saw (sorted path order, so rebuilt sequence numbers are
  // deterministic); drop rows whose file is gone.
  std::sort(present.begin(), present.end());
  entries_.clear();
  total_bytes_ = 0;
  next_seq_ = loaded_next_seq;
  for (const std::string& relpath : present) {
    Entry ent;
    const auto it = loaded.find(relpath);
    const std::uint64_t size =
        fs::file_size(fs::path(cfg_.root) / relpath, ec);
    ent.bytes = ec ? 0 : size;
    ent.seq = it != loaded.end() ? it->second.seq : next_seq_++;
    entries_[relpath] = ent;
    total_bytes_ += ent.bytes;
  }
  for (const auto& [relpath, ent] : entries_)
    if (ent.seq >= next_seq_) next_seq_ = ent.seq + 1;
  stats_.entries = entries_.size();
  stats_.bytes = total_bytes_;
  index_dirty_ = true;
}

void ResultCache::touch_locked(const std::string& relpath) {
  const auto it = entries_.find(relpath);
  if (it != entries_.end()) {
    it->second.seq = next_seq_++;
    index_dirty_ = true;
  }
}

void ResultCache::drop_locked(const std::string& relpath) {
  const auto it = entries_.find(relpath);
  if (it != entries_.end()) {
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
    stats_.entries = entries_.size();
    stats_.bytes = total_bytes_;
    index_dirty_ = true;
  }
}

void ResultCache::quarantine(const std::string& path) {
  std::error_code ec;
  fs::create_directories(quarantine_dir(), ec);
  const std::string dest =
      (fs::path(quarantine_dir()) /
       (fs::path(path).filename().string() + ".q" +
        std::to_string(quarantine_counter_++)))
          .string();
  fs::rename(path, dest, ec);
  if (ec) fs::remove(path, ec);  // Cross-device fallback: drop it.
  ++stats_.quarantined;
  drop_locked(fs::relative(path, cfg_.root, ec).generic_string());
}

bool ResultCache::lookup(const std::string& config_hash,
                         const std::string& point_id,
                         campaign::PointResult& out) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string path = entry_path(config_hash, point_id);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    ++stats_.misses;
    return false;
  }
  try {
    const campaign::JsonValue v =
        campaign::parse_json(campaign::read_text(path));
    // The path encodes the key, but the entry restates it; any
    // disagreement (tampering, renamed files, a schema bump racing an old
    // writer) is a miss, never an error.
    const bool key_ok =
        v.at("schema_version").as_int() == campaign::kSchemaVersion &&
        v.at("config_hash").as_string() == config_hash &&
        v.at("git_sha").as_string() == cfg_.git_sha;
    if (!key_ok) {
      quarantine(path);
      ++stats_.misses;
      return false;
    }
    const std::string point_text =
        campaign::to_json_text(v.at("point"));
    if (campaign::fnv1a_hex(point_text) != v.at("check").as_string()) {
      quarantine(path);
      ++stats_.misses;
      return false;
    }
    campaign::PointResult p = campaign::point_from_json_text(point_text);
    if (p.id != point_id) {
      quarantine(path);
      ++stats_.misses;
      return false;
    }
    out = std::move(p);
  } catch (const std::exception&) {
    quarantine(path);
    ++stats_.misses;
    return false;
  }
  touch_locked(fs::relative(path, cfg_.root, ec).generic_string());
  ++stats_.hits;
  return true;
}

void ResultCache::store(const std::string& config_hash,
                        const campaign::PointResult& p) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string path = entry_path(config_hash, p.id);
  fs::create_directories(fs::path(path).parent_path());

  const std::string point_text = campaign::point_to_json_text(p);
  campaign::JsonValue entry = campaign::JsonValue::make_object();
  entry.set("schema_version",
            campaign::JsonValue::make_number(campaign::kSchemaVersion));
  entry.set("config_hash", campaign::JsonValue::make_string(config_hash));
  entry.set("git_sha", campaign::JsonValue::make_string(cfg_.git_sha));
  entry.set("check", campaign::JsonValue::make_string(
                         campaign::fnv1a_hex(point_text)));
  entry.set("point", campaign::parse_json(point_text));
  const std::string text = campaign::to_json_text(entry);
  campaign::write_text_atomic(path, text);

  std::error_code ec;
  const std::string relpath =
      fs::relative(path, cfg_.root, ec).generic_string();
  const auto it = entries_.find(relpath);
  if (it != entries_.end()) total_bytes_ -= it->second.bytes;
  entries_[relpath] = {text.size(), next_seq_++};
  total_bytes_ += text.size();
  ++stats_.stores;
  stats_.entries = entries_.size();
  stats_.bytes = total_bytes_;
  index_dirty_ = true;
  evict_lru();
  flush_index_locked();
}

void ResultCache::evict_lru() {
  if (cfg_.max_bytes == 0) return;
  while (total_bytes_ > cfg_.max_bytes && entries_.size() > 1) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->second.seq < victim->second.seq) victim = it;
    std::error_code ec;
    fs::remove(fs::path(cfg_.root) / victim->first, ec);
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
  stats_.bytes = total_bytes_;
}

void ResultCache::flush_index_locked() {
  if (!index_dirty_) return;
  campaign::JsonValue o = campaign::JsonValue::make_object();
  o.set("next_seq", campaign::JsonValue::make_number(
                        static_cast<double>(next_seq_)));
  campaign::JsonValue arr = campaign::JsonValue::make_array();
  for (const auto& [relpath, ent] : entries_) {
    campaign::JsonValue e = campaign::JsonValue::make_object();
    e.set("path", campaign::JsonValue::make_string(relpath));
    e.set("bytes", campaign::JsonValue::make_number(
                       static_cast<double>(ent.bytes)));
    e.set("seq",
          campaign::JsonValue::make_number(static_cast<double>(ent.seq)));
    arr.push_back(std::move(e));
  }
  o.set("entries", std::move(arr));
  campaign::write_text_atomic(
      (fs::path(cfg_.root) / index_name()).string(),
      campaign::to_json_text(o));
  index_dirty_ = false;
}

void ResultCache::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  flush_index_locked();
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rnoc::serve
