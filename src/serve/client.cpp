#include "serve/client.hpp"

#include <exception>
#include <stdexcept>

#include "campaign/json.hpp"
#include "serve/socket.hpp"
#include "serve/wire.hpp"

namespace rnoc::serve {

using campaign::JsonValue;

namespace {

/// Sends one request line and reads one response line; throws
/// std::runtime_error on connection failures.
JsonValue round_trip(const std::string& socket_path,
                     const std::string& line) {
  const Fd fd = connect_unix(socket_path);
  if (!send_line(fd.get(), line))
    throw std::runtime_error("serve: daemon closed the connection");
  LineReader reader(fd.get());
  std::string reply;
  if (!reader.read_line(reply))
    throw std::runtime_error("serve: daemon closed the connection");
  return campaign::parse_json(reply);
}

std::string reply_error(const JsonValue& v) {
  const JsonValue* err = v.find("error");
  return err ? err->as_string() : "daemon refused the request";
}

}  // namespace

ClientOutcome run_campaign_via_daemon(const std::string& socket_path,
                                      const std::string& name, bool smoke,
                                      Lane lane, const std::string& git_sha,
                                      const ClientProgress& progress) {
  ClientOutcome out;
  out.campaign = name;
  try {
    const Fd fd = connect_unix(socket_path);
    JsonValue req = JsonValue::make_object();
    req.set("op", JsonValue::make_string("submit"));
    req.set("campaign", JsonValue::make_string(name));
    req.set("smoke", JsonValue::make_bool(smoke));
    req.set("lane", JsonValue::make_string(lane_name(lane)));
    if (!git_sha.empty())
      req.set("git_sha", JsonValue::make_string(git_sha));
    if (!send_line(fd.get(), to_wire_line(req)))
      throw std::runtime_error("serve: daemon closed the connection");

    LineReader reader(fd.get());
    std::string line;
    while (reader.read_line(line)) {
      const JsonValue ev = campaign::parse_json(line);
      if (const JsonValue* ok = ev.find("ok");
          ok && !ok->as_bool()) {  // Refused before acceptance.
        out.error = reply_error(ev);
        return out;
      }
      const std::string kind = ev.at("event").as_string();
      if (kind == "accepted") {
        out.config_hash = ev.at("config_hash").as_string();
        out.points = static_cast<std::size_t>(ev.at("points").as_int());
      } else if (kind == "point") {
        if (progress)
          progress(static_cast<std::size_t>(ev.at("done").as_int()),
                   static_cast<std::size_t>(ev.at("total").as_int()),
                   ev.at("id").as_string(), ev.at("cached").as_bool());
      } else if (kind == "done") {
        out.config_hash = ev.at("config_hash").as_string();
        out.points = static_cast<std::size_t>(ev.at("points").as_int());
        out.cache_hits =
            static_cast<std::size_t>(ev.at("cache_hits").as_int());
        out.executed = static_cast<std::size_t>(ev.at("executed").as_int());
        out.result_text = ev.at("result").as_string();
        out.ok = true;
        return out;
      } else if (kind == "failed") {
        out.error = ev.at("error").as_string();
        return out;
      } else {
        out.error = "serve: unexpected event '" + kind + "'";
        return out;
      }
    }
    out.error =
        "serve: connection lost before the campaign finished (daemon "
        "killed? — rerun to resume from its cache)";
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

bool ping_daemon(const std::string& socket_path, std::string& error) {
  try {
    JsonValue req = JsonValue::make_object();
    req.set("op", JsonValue::make_string("ping"));
    const JsonValue reply = round_trip(socket_path, to_wire_line(req));
    if (reply.at("ok").as_bool()) return true;
    error = reply_error(reply);
  } catch (const std::exception& e) {
    error = e.what();
  }
  return false;
}

DaemonStats daemon_stats(const std::string& socket_path) {
  DaemonStats out;
  try {
    JsonValue req = JsonValue::make_object();
    req.set("op", JsonValue::make_string("stats"));
    const JsonValue reply = round_trip(socket_path, to_wire_line(req));
    if (!reply.at("ok").as_bool()) {
      out.error = reply_error(reply);
      return out;
    }
    out.line = to_wire_line(reply);
    // Version fields are absent from pre-telemetry daemons; report them
    // as zero/empty rather than failing the whole stats call.
    if (const JsonValue* v = reply.find("schema_version"))
      out.schema_version = v->as_int();
    if (const JsonValue* v = reply.find("git_sha")) out.git_sha = v->as_string();
    if (const JsonValue* v = reply.find("uptime_seconds"))
      out.uptime_seconds = v->as_number();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

MetricsReply daemon_metrics(const std::string& socket_path,
                            const std::string& format) {
  MetricsReply out;
  try {
    JsonValue req = JsonValue::make_object();
    req.set("op", JsonValue::make_string("metrics"));
    req.set("format", JsonValue::make_string(format));
    const JsonValue reply = round_trip(socket_path, to_wire_line(req));
    if (!reply.at("ok").as_bool()) {
      out.error = reply_error(reply);
      return out;
    }
    out.body = reply.at("body").as_string();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

WatchOutcome watch_daemon(const std::string& socket_path,
                          const WatchHandler& handler) {
  WatchOutcome out;
  try {
    const Fd fd = connect_unix(socket_path);
    JsonValue req = JsonValue::make_object();
    req.set("op", JsonValue::make_string("watch"));
    if (!send_line(fd.get(), to_wire_line(req)))
      throw std::runtime_error("serve: daemon closed the connection");
    LineReader reader(fd.get());
    std::string line;
    if (!reader.read_line(line))
      throw std::runtime_error("serve: daemon closed the connection");
    const JsonValue ack = campaign::parse_json(line);
    if (!ack.at("ok").as_bool()) {
      out.error = reply_error(ack);
      return out;
    }
    while (reader.read_line(line)) {
      const JsonValue ev = campaign::parse_json(line);
      ++out.events;
      if (handler && !handler(ev)) {
        out.ok = true;  // Client-initiated end of the watch.
        return out;
      }
    }
    out.error =
        "serve: watch stream ended unexpectedly (daemon stopped or was "
        "killed)";
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

bool shutdown_daemon(const std::string& socket_path, std::string& error) {
  try {
    JsonValue req = JsonValue::make_object();
    req.set("op", JsonValue::make_string("shutdown"));
    const JsonValue reply = round_trip(socket_path, to_wire_line(req));
    if (reply.at("ok").as_bool()) return true;
    error = reply_error(reply);
  } catch (const std::exception& e) {
    error = e.what();
  }
  return false;
}

}  // namespace rnoc::serve
