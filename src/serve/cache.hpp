// Persistent on-disk point-result cache: the store layer of the campaign
// results service.
//
// One file per campaign point, keyed by the triple the engine already
// stamps into every result — schema version, FNV-1a config hash of the
// expanded spec, and git SHA — so a repeated or overlapping sweep (same
// spec, same code) is served from disk instead of resimulated, while any
// change to the spec, the schema, or the commit is automatically a miss.
//
// Robustness discipline:
//  * writes are atomic (same-directory temp file + rename), so a kill -9
//    mid-store never corrupts the entry at its final path;
//  * every entry carries an FNV-1a checksum over its payload; an entry
//    that fails to parse, fails its checksum, or disagrees with the key
//    that addressed it is quarantined (moved aside, never deleted in
//    place, never served) and reported as a miss — cache damage degrades
//    to recomputation, not to errors or wrong results;
//  * total size is capped (optionally) with LRU eviction ordered by a
//    persisted access sequence number, not wall-clock mtimes, so the
//    cache layer stays inside the determinism analyzer's no-clock
//    discipline for the execute path.
//
// Thread-safe; all operations serialize on one internal mutex (point
// simulation dominates cache I/O by orders of magnitude).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "campaign/engine.hpp"

namespace rnoc::serve {

class ResultCache {
 public:
  struct Config {
    std::string root;             ///< Cache directory (created if absent).
    std::uint64_t max_bytes = 0;  ///< LRU size cap; 0 = unlimited.
    std::string git_sha = "unknown";  ///< Third component of the entry key.
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t entries = 0;  ///< Currently resident.
    std::uint64_t bytes = 0;    ///< Currently resident payload bytes.
  };

  /// Opens (or creates) the cache at cfg.root: scavenges temp files left
  /// by killed writers, reconciles the LRU index with the files actually
  /// on disk, and loads the access-sequence state.
  explicit ResultCache(Config cfg);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Fetches the entry for (schema, config_hash, git_sha, point_id).
  /// True and fills `out` on a valid hit; false on absence, key mismatch,
  /// or a corrupt/truncated entry (which is quarantined as a side effect).
  bool lookup(const std::string& config_hash, const std::string& point_id,
              campaign::PointResult& out);

  /// Inserts or overwrites the entry for (schema, config_hash, git_sha,
  /// p.id) atomically, then enforces the size cap by evicting the least
  /// recently used entries.
  void store(const std::string& config_hash, const campaign::PointResult& p);

  /// Persists the LRU index now (also done by the destructor). The index
  /// is advisory: if it is lost, order degrades gracefully to a scan.
  void flush();

  Stats stats() const;

  /// Entry file path for a key (exposed so tests can corrupt entries the
  /// way a crashed writer would).
  std::string entry_path(const std::string& config_hash,
                         const std::string& point_id) const;
  std::string quarantine_dir() const;

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;  ///< Access order; higher = more recent.
  };

  void scavenge_and_reconcile();
  void quarantine(const std::string& path);
  void evict_lru();
  void flush_index_locked();
  void touch_locked(const std::string& relpath);
  void drop_locked(const std::string& relpath);

  Config cfg_;
  mutable std::mutex mu_;
  /// Relative entry path -> LRU state. std::map (ordered) so the rebuild
  /// and the persisted index are deterministic.
  std::map<std::string, Entry> entries_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t quarantine_counter_ = 0;
  Stats stats_;
  bool index_dirty_ = false;
};

}  // namespace rnoc::serve
