// Thin AF_UNIX stream-socket layer for the campaign results service:
// RAII file descriptors, listen/accept/connect, and newline framing for
// the line-delimited JSON wire protocol. POSIX-only, like the rest of the
// daemon (the simulator library itself stays portable).
#pragma once

#include <string>

namespace rnoc::serve {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor (if any).
  void reset();
  /// shutdown(2) both directions — unblocks a peer thread stuck in
  /// accept/recv without closing the fd out from under it.
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix-domain socket at `path` (which must fit in
/// sockaddr_un; keep it short). Removes a stale socket file at that path
/// first. Throws std::runtime_error on failure.
Fd listen_unix(const std::string& path, int backlog = 16);

/// Accepts one connection; invalid Fd on error (including shutdown of the
/// listener, the server's stop signal).
Fd accept_unix(const Fd& listener);

/// Connects to the daemon socket; throws std::runtime_error on failure.
Fd connect_unix(const std::string& path);

/// Writes `line` plus '\n', retrying partial writes. False once the peer
/// is gone (EPIPE/ECONNRESET); SIGPIPE is suppressed per call.
bool send_line(int fd, const std::string& line);

/// Buffers a socket and yields one '\n'-terminated line at a time.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}
  /// True with the next line (newline stripped); false on EOF or error.
  bool read_line(std::string& out);

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace rnoc::serve
