#include "serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/types.hpp"

namespace rnoc::serve {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "serve: socket path too long for AF_UNIX: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Fd listen_unix(const std::string& path, int backlog) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid())
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  ::unlink(path.c_str());  // Stale socket from a previous daemon.
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw std::runtime_error("serve: bind(" + path + ") failed: " +
                             std::string(std::strerror(errno)));
  if (::listen(fd.get(), backlog) != 0)
    throw std::runtime_error("serve: listen(" + path + ") failed: " +
                             std::string(std::strerror(errno)));
  return fd;
}

Fd accept_unix(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    return Fd();
  }
}

Fd connect_unix(const std::string& path) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid())
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    throw std::runtime_error("serve: connect(" + path + ") failed: " +
                             std::string(std::strerror(errno)) +
                             " (is rnoc_served running?)");
  return fd;
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::read_line(std::string& out) {
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      out.assign(buf_, 0, pos);
      buf_.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF; a partial trailing line is dropped.
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace rnoc::serve
