// Two-lane work-stealing scheduler: the execution layer of the campaign
// results service.
//
// Each worker owns a pair of deques (one per priority lane). Submission
// deals a job's tasks round-robin across the workers' deques; a worker
// pops its own deque from the front and, when empty, steals from the back
// of a peer's — so a job whose points land unevenly (or whose points have
// wildly different costs) still finishes at the speed of the whole worker
// set, not of its slowest shard. The Interactive lane preempts Bulk at
// task granularity: no worker starts a Bulk task while any Interactive
// task is queued anywhere.
//
// The scheduler is deliberately result-agnostic: tasks are opaque
// closures. Determinism of campaign results is owned by the layer above
// (CampaignService runs engine point units, whose values depend only on
// (spec, point index) — never on which worker ran them or in what order).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rnoc::serve {

class TelemetryHub;

/// Priority lanes. Interactive (smoke sweeps, humans waiting) preempts
/// Bulk (deep campaigns) at task granularity.
enum class Lane { Interactive = 0, Bulk = 1 };

inline constexpr std::size_t kLanes = 2;

const char* lane_name(Lane lane);
/// Parses "interactive"/"bulk"; throws std::invalid_argument otherwise.
Lane lane_from_name(const std::string& name);

class PointScheduler {
 public:
  /// Creates `workers` worker threads (0 = hardware_concurrency, at
  /// least 1). `telemetry`, when set, receives queue-wait spans and
  /// latency samples; it must outlive the scheduler.
  explicit PointScheduler(int workers = 0, TelemetryHub* telemetry = nullptr);
  ~PointScheduler();

  PointScheduler(const PointScheduler&) = delete;
  PointScheduler& operator=(const PointScheduler&) = delete;

  std::size_t workers() const { return workers_.size(); }

  /// Enqueues `tasks` as one job on `lane` and returns its id. Tasks may
  /// run on any worker in any order; they must not throw (wrap and record
  /// errors in the closure). Returns 0 and drops the tasks if the
  /// scheduler is stopped.
  std::uint64_t submit(Lane lane, std::vector<std::function<void()>> tasks);

  /// Blocks until every task of `job` has finished or been dropped by
  /// stop(). Unknown ids (including 0) return immediately.
  void wait(std::uint64_t job);

  /// True once every task of `job` has finished or been dropped.
  bool finished(std::uint64_t job) const;

  /// Drops all queued tasks, lets in-flight tasks finish, and joins the
  /// workers. Jobs with dropped tasks still complete for wait()/finished()
  /// so shutdown never strands a waiter; their `dropped` count is nonzero.
  void stop();

  struct Stats {
    std::uint64_t executed = 0;  ///< Tasks run to completion.
    std::uint64_t steals = 0;    ///< Tasks taken from another worker's deque.
    std::uint64_t dropped = 0;   ///< Tasks discarded by stop().
    /// Claims that found the worker's own deque empty and probed its
    /// peers (successfully or not) — the numerator's denominator for
    /// `steals`, and the contention signal the telemetry layer exposes.
    std::uint64_t steal_attempts = 0;
    /// Interactive tasks claimed while bulk work was queued somewhere:
    /// each one is a bulk task actually deferred by the priority lane.
    std::uint64_t preemptions = 0;
  };
  Stats stats() const;

  /// Tasks currently queued (not yet claimed) on `lane`.
  std::size_t queue_depth(Lane lane) const;

  /// Index of the worker running the calling thread, -1 off the pool.
  static int current_worker();

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t job = 0;
    std::uint64_t enqueue_us = 0;  ///< Telemetry clock at submit(); 0 = none.
  };

  /// One worker's deques, individually locked so stealing contends with
  /// one victim, not the whole scheduler.
  struct WorkerQueues {
    std::mutex mu;
    std::deque<Task> lane[kLanes];
  };

  struct JobState {
    std::size_t remaining = 0;
    std::uint64_t dropped = 0;
    bool done = false;
  };

  void worker_loop(std::size_t self);
  bool try_claim(std::size_t self, Lane lane, Task& out);
  void finish_task(const Task& t);
  void complete_job_tasks(std::uint64_t job, std::size_t count, bool dropped);

  std::vector<std::unique_ptr<WorkerQueues>> queues_;
  std::vector<std::thread> workers_;

  /// Queued-task counts per lane: the workers' sleep predicate. Claiming
  /// decrements under the owning deque's lock before the task runs.
  std::atomic<std::uint64_t> pending_[kLanes] = {};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> preemptions_{0};
  std::atomic<bool> stop_{false};
  TelemetryHub* telemetry_ = nullptr;

  std::mutex sleep_mu_;
  std::condition_variable cv_work_;

  mutable std::mutex jobs_mu_;
  std::condition_variable cv_done_;
  std::map<std::uint64_t, JobState> jobs_;
  std::uint64_t next_job_ = 1;
  std::size_t next_worker_ = 0;  ///< Round-robin deal cursor (jobs_mu_).
};

}  // namespace rnoc::serve
