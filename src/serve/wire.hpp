// Wire format of the campaign results service: line-delimited JSON over a
// byte stream.
//
// Every request and every response/event is one JSON object on one line,
// terminated by '\n'. The serializer here is the compact single-line
// counterpart of campaign::to_json_text (same escaping, same exact
// round-trip doubles via json_double, same member order preservation) so
// both ends parse with campaign::parse_json and large payloads — a full
// CampaignResult text travels as one escaped string member — survive the
// trip byte-exactly.
//
// Requests:   {"op":"ping"} | {"op":"list"} | {"op":"stats"} |
//             {"op":"shutdown"} |
//             {"op":"metrics","format":"prometheus"|"json"} |
//             {"op":"watch"} |
//             {"op":"submit","campaign":N,"smoke":B,"lane":L,"git_sha":S}
// Responses:  {"ok":true,...} or {"ok":false,"error":...}; a submit streams
//             {"event":"accepted"|"point"|"done"|"failed",...} lines and
//             "done"/"failed" is always the last line of the job. A watch
//             acks {"ok":true,"op":"watch"} and then streams
//             {"event":"telemetry","type":...,"t_us":...,...} lines until
//             the client disconnects or the daemon stops.
#pragma once

#include <string>

#include "campaign/json.hpp"

namespace rnoc::serve {

/// Serializes compactly onto one line (no spaces, no newline). The inverse
/// of campaign::parse_json; strings that round-trip through to_json_text
/// round-trip here too.
std::string to_wire_line(const campaign::JsonValue& v);

/// {"ok":false,"error":msg} — the uniform failure line.
std::string wire_error_line(const std::string& msg);

}  // namespace rnoc::serve
