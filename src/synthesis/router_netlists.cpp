#include "synthesis/router_netlists.hpp"

#include "common/types.hpp"

namespace rnoc::synth {
namespace {

int id_bits(int n) {
  int bits = 1;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

Netlist RouterNetlists::total() const {
  Netlist t("router_pipeline");
  t.add(rc);
  t.add(va);
  t.add(sa);
  t.add(xb);
  return t;
}

RouterNetlists baseline_router_netlists(const rel::RouterGeometry& g) {
  require(g.ports >= 2 && g.vcs >= 1, "baseline_router_netlists: bad geometry");
  const int P = g.ports;
  const int V = g.vcs;
  const int cb = g.comparator_bits();

  RouterNetlists r;

  // RC: per input port, X and Y destination comparators plus the quadrant
  // decision glue that turns compare results into an output-port one-hot.
  r.rc.set_name("rc_baseline");
  r.rc.add(blocks::comparator(cb), 2 * P);
  for (int p = 0; p < P; ++p) {
    r.rc.add(CellKind::And2, 4);
    r.rc.add(CellKind::Inv, 2);
  }

  // VA: separable two-stage allocator. Stage 1: every input VC owns one v:1
  // arbiter per output port. Stage 2: one (P*V):1 arbiter per downstream VC.
  r.va.set_name("va_baseline");
  r.va.add(blocks::rr_arbiter(V), P * V * P);
  r.va.add(blocks::rr_arbiter(P * V), P * V);

  // SA: stage 1 one v:1 arbiter per input port; stage 2 one P:1 arbiter per
  // output port; per-port VC-select muxes and the winner registers that
  // drive the crossbar selects in the following cycle.
  r.sa.set_name("sa_baseline");
  r.sa.add(blocks::rr_arbiter(V), P);
  r.sa.add(blocks::rr_arbiter(P), P);
  r.sa.add(blocks::mux(V, 1), P * P);
  r.sa.add(blocks::dff_bank(id_bits(V)), P);  // stage-1 winner registers

  // XB: one flit-wide P:1 mux per output port, select decode, and output
  // drive buffers.
  r.xb.set_name("xb_baseline");
  r.xb.add(blocks::mux(P, g.flit_bits), P);
  r.xb.add(CellKind::And2, P * P);               // select decode
  r.xb.add(CellKind::Buf, P * g.flit_bits / 4);  // output drive
  return r;
}

RouterNetlists correction_netlists(const rel::RouterGeometry& g) {
  require(g.ports >= 3 && g.vcs >= 2, "correction_netlists: geometry too small");
  const int P = g.ports;
  const int V = g.vcs;
  const int cb = g.comparator_bits();
  const int port_bits = id_bits(P);
  const int vc_bits = id_bits(V);

  RouterNetlists r;

  // RC: a full duplicate RC unit per port plus the unit-select mux.
  r.rc.set_name("rc_correction");
  r.rc.add(blocks::comparator(cb), 2 * P);
  for (int p = 0; p < P; ++p) {
    r.rc.add(CellKind::And2, 4);
    r.rc.add(CellKind::Inv, 2);
  }
  r.rc.add(blocks::mux(2, port_bits), P);

  // VA: per-VC R2/VF/ID state fields plus the lender-scan logic that walks
  // the G fields of the sibling VCs of a port.
  r.va.set_name("va_correction");
  r.va.add(blocks::dff_bank(port_bits + 1 + vc_bits), P * V);
  for (int p = 0; p < P; ++p) {
    r.va.add(CellKind::And2, 2 * V);  // G-field decode per sibling VC
    r.va.add(CellKind::Or2, V);       // first-available priority
  }

  // SA: per-port bypass mux + default-winner register, per-VC SP/FSP fields,
  // and the VC-to-VC transfer control.
  r.sa.set_name("sa_correction");
  r.sa.add(blocks::mux(2, vc_bits), P);
  r.sa.add(blocks::dff_bank(vc_bits), P);
  r.sa.add(blocks::dff_bank(port_bits + 1), P * V);  // SP + FSP
  for (int p = 0; p < P; ++p) {
    r.sa.add(CellKind::And2, 6);  // transfer handshake
    r.sa.add(CellKind::Or2, 2);
  }

  // XB: secondary path — P flit-wide 2:1 output-select muxes, one 1:3 demux
  // on the doubly-shared mux and 1:2 demuxes on the others (DESIGN.md §3).
  r.xb.set_name("xb_correction");
  r.xb.add(blocks::mux(2, g.flit_bits), P);
  r.xb.add(blocks::demux(2, g.flit_bits), P - 2);
  r.xb.add(blocks::demux(3, g.flit_bits), 1);
  return r;
}

SynthesisReport synthesize(const rel::RouterGeometry& g, const CellLibrary& lib,
                           double activity, double freq_mhz) {
  const Netlist base = baseline_router_netlists(g).total();
  const Netlist corr = correction_netlists(g).total();

  SynthesisReport rep;
  rep.base_area_um2 = base.area_um2(lib);
  rep.corr_area_um2 = corr.area_um2(lib);
  rep.base_power_uw = base.power_uw(lib, activity, freq_mhz);
  rep.corr_power_uw = corr.power_uw(lib, activity, freq_mhz);
  rep.area_overhead = rep.corr_area_um2 / rep.base_area_um2;
  rep.power_overhead = rep.corr_power_uw / rep.base_power_uw;
  rep.area_overhead_with_detection = rep.area_overhead + kDetectionAreaPoints;
  rep.power_overhead_with_detection = rep.power_overhead + kDetectionPowerPoints;
  return rep;
}

}  // namespace rnoc::synth
