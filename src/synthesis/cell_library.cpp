#include "synthesis/cell_library.hpp"

namespace rnoc::synth {

const CellLibrary& CellLibrary::generic45() {
  // Areas: typical 45 nm standard-cell footprints (um^2).
  // Leakage/dynamic figures scaled to the same technology point; delays are
  // FO4-loaded propagation delays.
  static const CellLibrary lib(std::array<Cell, kCellKinds>{{
      {"INV_X1", 0.532, 0.020, 0.0006, 22.0},
      {"NAND2_X1", 0.798, 0.028, 0.0008, 30.0},
      {"NOR2_X1", 0.798, 0.028, 0.0008, 32.0},
      {"AND2_X1", 1.064, 0.036, 0.0010, 42.0},
      {"OR2_X1", 1.064, 0.036, 0.0010, 44.0},
      {"XOR2_X1", 1.596, 0.052, 0.0016, 52.0},
      {"XNOR2_X1", 1.596, 0.052, 0.0016, 52.0},
      {"MUX2_X1", 1.862, 0.058, 0.0015, 48.0},
      {"DFF_X1", 4.522, 0.120, 0.0040, 90.0},
      {"BUF_X1", 0.798, 0.026, 0.0009, 28.0},
  }});
  return lib;
}

}  // namespace rnoc::synth
