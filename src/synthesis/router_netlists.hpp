// Structural netlists of the baseline router pipeline stages and of the
// paper's correction circuitry, plus the area/power overhead analysis of
// paper §VI-A.
#pragma once

#include "reliability/component_library.hpp"
#include "synthesis/netlist.hpp"

namespace rnoc::synth {

/// Netlists of the four pipeline-stage blocks. The paper synthesized the
/// pipeline stages (not the input buffers), so these are the synthesis scope.
struct RouterNetlists {
  Netlist rc;
  Netlist va;
  Netlist sa;
  Netlist xb;

  Netlist total() const;
};

/// Baseline 4-stage router pipeline for a geometry (paper Fig. 1-3).
RouterNetlists baseline_router_netlists(const rel::RouterGeometry& g);

/// Correction circuitry of the proposed protected router (paper §V):
/// duplicate RC units, VA sharing state, SA bypass, XB secondary path.
RouterNetlists correction_netlists(const rel::RouterGeometry& g);

/// Extra overhead of the assumed fault-detection mechanism (NoCAlert-class),
/// expressed in percentage points added to the correction-only overheads:
/// the paper's 28% -> 31% area and 29% -> 30% power step.
inline constexpr double kDetectionAreaPoints = 0.03;
inline constexpr double kDetectionPowerPoints = 0.01;

/// Paper §VI-A reproduction.
struct SynthesisReport {
  double base_area_um2 = 0.0;
  double corr_area_um2 = 0.0;
  double base_power_uw = 0.0;
  double corr_power_uw = 0.0;
  double area_overhead = 0.0;   ///< correction / baseline (paper: 0.28).
  double power_overhead = 0.0;  ///< (paper: 0.29).
  double area_overhead_with_detection = 0.0;   ///< (paper: 0.31).
  double power_overhead_with_detection = 0.0;  ///< (paper: 0.30).
};

/// Rolls up areas and powers of baseline vs correction netlists.
/// `activity` is the average switching activity, `freq_mhz` the clock.
SynthesisReport synthesize(const rel::RouterGeometry& g,
                           const CellLibrary& lib = CellLibrary::generic45(),
                           double activity = 0.3, double freq_mhz = 1000.0);

}  // namespace rnoc::synth
