#include "synthesis/netlist.hpp"

#include <sstream>

#include "common/types.hpp"

namespace rnoc::synth {

void Netlist::add(CellKind kind, std::int64_t count) {
  require(count >= 0, "Netlist::add: negative count");
  counts_[static_cast<std::size_t>(kind)] += count;
}

void Netlist::add(const Netlist& sub, std::int64_t count) {
  require(count >= 0, "Netlist::add: negative count");
  for (std::size_t i = 0; i < kCellKinds; ++i)
    counts_[i] += sub.counts_[i] * count;
}

std::int64_t Netlist::total_cells() const {
  std::int64_t n = 0;
  for (auto c : counts_) n += c;
  return n;
}

double Netlist::area_um2(const CellLibrary& lib) const {
  double a = 0.0;
  for (std::size_t i = 0; i < kCellKinds; ++i)
    a += static_cast<double>(counts_[i]) *
         lib.cell(static_cast<CellKind>(i)).area_um2;
  return a;
}

double Netlist::power_uw(const CellLibrary& lib, double activity,
                         double freq_mhz) const {
  require(activity >= 0.0 && activity <= 1.0,
          "Netlist::power_uw: activity must lie in [0,1]");
  double p = 0.0;
  for (std::size_t i = 0; i < kCellKinds; ++i) {
    const Cell& c = lib.cell(static_cast<CellKind>(i));
    p += static_cast<double>(counts_[i]) *
         (c.leak_uw + activity * c.dyn_uw_mhz * freq_mhz);
  }
  return p;
}

std::string Netlist::summary(const CellLibrary& lib) const {
  std::ostringstream os;
  os << name_ << ": " << total_cells() << " cells, " << area_um2(lib)
     << " um^2";
  return os.str();
}

namespace blocks {

Netlist comparator(int bits) {
  require(bits > 0, "blocks::comparator: bits must be positive");
  Netlist n("comparator" + std::to_string(bits));
  n.add(CellKind::Xnor2, bits);       // per-bit equality
  n.add(CellKind::And2, bits - 1);    // reduction tree
  n.add(CellKind::Inv, 1);            // greater/less polarity
  return n;
}

Netlist rr_arbiter(int inputs) {
  require(inputs >= 2, "blocks::rr_arbiter: need >= 2 inputs");
  // Rotating-pointer round-robin arbiter: ceil(log2 n)-bit pointer register,
  // per-input request gating and a carry (priority) chain, grant decode.
  int ptr_bits = 1;
  while ((1 << ptr_bits) < inputs) ++ptr_bits;
  Netlist n("rr_arbiter" + std::to_string(inputs));
  n.add(CellKind::Dff, ptr_bits);
  n.add(CellKind::And2, 2 * inputs);  // request masking + grant gating
  n.add(CellKind::Or2, inputs);       // carry chain
  n.add(CellKind::Inv, inputs / 2 + 1);
  return n;
}

Netlist mux(int inputs, int bits) {
  require(inputs >= 2 && bits > 0, "blocks::mux: invalid shape");
  Netlist n("mux" + std::to_string(inputs) + "x" + std::to_string(bits));
  n.add(CellKind::Mux2, static_cast<std::int64_t>(inputs - 1) * bits);
  return n;
}

Netlist demux(int outputs, int bits) {
  require(outputs >= 2 && bits > 0, "blocks::demux: invalid shape");
  Netlist n("demux" + std::to_string(outputs) + "x" + std::to_string(bits));
  n.add(CellKind::And2, static_cast<std::int64_t>(outputs - 1) * bits);
  n.add(CellKind::Inv, outputs);  // select decode
  return n;
}

Netlist dff_bank(int bits) {
  require(bits > 0, "blocks::dff_bank: bits must be positive");
  Netlist n("dff" + std::to_string(bits));
  n.add(CellKind::Dff, bits);
  return n;
}

}  // namespace blocks

}  // namespace rnoc::synth
