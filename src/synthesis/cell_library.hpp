// A 45 nm standard-cell library model.
//
// Stands in for the commercial 45 nm library the paper used with Cadence
// Encounter RTL Compiler. Cell areas follow typical open 45 nm libraries
// (NanGate-class); power is split into leakage and per-MHz dynamic energy;
// delay is a single fanout-of-4-style figure per cell used by the
// logical-depth critical-path model in synthesis/timing.hpp.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace rnoc::synth {

enum class CellKind : std::size_t {
  Inv,
  Nand2,
  Nor2,
  And2,
  Or2,
  Xor2,
  Xnor2,
  Mux2,
  Dff,
  Buf,
  kCount,
};

inline constexpr std::size_t kCellKinds =
    static_cast<std::size_t>(CellKind::kCount);

struct Cell {
  std::string_view name;
  double area_um2;      ///< Placed cell area.
  double leak_uw;       ///< Static (leakage) power.
  double dyn_uw_mhz;    ///< Dynamic power per MHz at activity factor 1.0.
  double delay_ps;      ///< Propagation delay at nominal load.
};

/// Immutable table of cells, indexed by CellKind.
class CellLibrary {
 public:
  /// The default 45 nm library used throughout the reproduction.
  static const CellLibrary& generic45();

  const Cell& cell(CellKind k) const {
    return cells_[static_cast<std::size_t>(k)];
  }

  explicit CellLibrary(std::array<Cell, kCellKinds> cells) : cells_(cells) {}

 private:
  std::array<Cell, kCellKinds> cells_;
};

}  // namespace rnoc::synth
