// Critical-path model (paper §VI-B).
//
// Each pipeline stage's critical path is represented as an ordered list of
// cells; the path delay is the sum of cell propagation delays. The paper
// determined per-stage critical paths by synthesizing each stage at varying
// clock periods and finding the zero-slack period; `zero_slack_period`
// reproduces that procedure (a sweep over candidate periods) and converges
// to the path delay.
#pragma once

#include <vector>

#include "reliability/component_library.hpp"
#include "synthesis/cell_library.hpp"

namespace rnoc::synth {

enum class Stage { RC, VA, SA, XB };

/// Ordered cell chain forming a stage's longest register-to-register path.
using TimingPath = std::vector<CellKind>;

/// Longest path of a baseline pipeline stage.
TimingPath baseline_critical_path(Stage s, const rel::RouterGeometry& g);

/// Longest path of the same stage with the correction circuitry inserted.
TimingPath protected_critical_path(Stage s, const rel::RouterGeometry& g);

/// Sum of cell delays along a path, in ps.
double path_delay_ps(const TimingPath& path, const CellLibrary& lib);

/// The clock period at which slack (period - path delay) reaches zero,
/// found by bisection over [lo_ps, hi_ps] as in the paper's methodology.
double zero_slack_period(const TimingPath& path, const CellLibrary& lib,
                         double lo_ps = 1.0, double hi_ps = 10000.0);

/// Paper §VI-B: baseline vs protected critical path per stage.
/// Paper result: RC ~0%, VA +20%, SA +10%, XB +25%.
struct StageTiming {
  double baseline_ps = 0.0;
  double protected_ps = 0.0;
  double overhead() const { return protected_ps / baseline_ps - 1.0; }
};

struct TimingReport {
  StageTiming rc, va, sa, xb;
};

TimingReport critical_path_report(
    const rel::RouterGeometry& g,
    const CellLibrary& lib = CellLibrary::generic45());

}  // namespace rnoc::synth
