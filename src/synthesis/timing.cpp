#include "synthesis/timing.hpp"

#include <cmath>

#include "common/types.hpp"

namespace rnoc::synth {
namespace {

/// Depth of the AND-reduction tree of an n-bit comparator.
int tree_depth(int n) {
  int d = 0;
  while ((1 << d) < n) ++d;
  return d;
}

/// Carry-chain depth of a round-robin arbiter with n inputs: request mask,
/// log-depth priority propagation, grant gating.
void append_arbiter_path(TimingPath& p, int inputs) {
  p.push_back(CellKind::And2);  // pointer mask
  for (int d = 0; d < tree_depth(inputs); ++d) p.push_back(CellKind::Or2);
  p.push_back(CellKind::And2);  // grant gate
}

}  // namespace

TimingPath baseline_critical_path(Stage s, const rel::RouterGeometry& g) {
  TimingPath p;
  switch (s) {
    case Stage::RC: {
      // Destination comparator: per-bit XNOR then AND reduction, then the
      // quadrant decision OR.
      p.push_back(CellKind::Xnor2);
      for (int d = 0; d < tree_depth(g.comparator_bits()); ++d)
        p.push_back(CellKind::And2);
      p.push_back(CellKind::Or2);
      break;
    }
    case Stage::VA:
      // Stage-1 v:1 arbiter feeding the stage-2 (P*V):1 arbiter.
      append_arbiter_path(p, g.vcs);
      append_arbiter_path(p, g.ports * g.vcs);
      break;
    case Stage::SA:
      // Stage-1 v:1 arbiter, stage-2 P:1 arbiter, grant drive into the
      // winner register (setup time included as the DFF cell).
      append_arbiter_path(p, g.vcs);
      append_arbiter_path(p, g.ports);
      p.push_back(CellKind::Buf);
      p.push_back(CellKind::Dff);
      break;
    case Stage::XB: {
      // Select decode, mux tree, and the wire-dominated output drive chain
      // (crossbar spans the router datapath; modeled as buffer stages).
      p.push_back(CellKind::And2);
      for (int d = 0; d < tree_depth(g.ports); ++d) p.push_back(CellKind::Mux2);
      for (int i = 0; i < 6; ++i) p.push_back(CellKind::Buf);
      break;
    }
  }
  return p;
}

TimingPath protected_critical_path(Stage s, const rel::RouterGeometry& g) {
  TimingPath p = baseline_critical_path(s, g);
  switch (s) {
    case Stage::RC:
      // Spare-unit select is a static configuration mux outside the
      // comparator loop: negligible impact (paper §VI-B).
      break;
    case Stage::VA:
      // Borrow mux in front of the arbiter set plus the VF qualification.
      p.insert(p.begin(), CellKind::Mux2);
      p.insert(p.begin(), CellKind::And2);
      break;
    case Stage::SA:
      // Bypass 2:1 mux after the stage-1 arbiter.
      p.push_back(CellKind::Mux2);
      break;
    case Stage::XB:
      // Demux into the neighbouring column plus the P output-select mux.
      p.push_back(CellKind::And2);
      p.push_back(CellKind::Mux2);
      break;
  }
  return p;
}

double path_delay_ps(const TimingPath& path, const CellLibrary& lib) {
  double d = 0.0;
  for (CellKind k : path) d += lib.cell(k).delay_ps;
  return d;
}

double zero_slack_period(const TimingPath& path, const CellLibrary& lib,
                         double lo_ps, double hi_ps) {
  require(lo_ps > 0.0 && hi_ps > lo_ps, "zero_slack_period: bad bracket");
  const double delay = path_delay_ps(path, lib);
  require(delay <= hi_ps, "zero_slack_period: path exceeds sweep range");
  // Bisection on slack(period) = period - delay.
  double lo = lo_ps, hi = hi_ps;
  while (hi - lo > 1e-6) {
    const double mid = 0.5 * (lo + hi);
    if (mid - delay >= 0.0)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

TimingReport critical_path_report(const rel::RouterGeometry& g,
                                  const CellLibrary& lib) {
  TimingReport r;
  auto fill = [&](Stage s, StageTiming& t) {
    t.baseline_ps = path_delay_ps(baseline_critical_path(s, g), lib);
    t.protected_ps = path_delay_ps(protected_critical_path(s, g), lib);
  };
  fill(Stage::RC, r.rc);
  fill(Stage::VA, r.va);
  fill(Stage::SA, r.sa);
  fill(Stage::XB, r.xb);
  return r;
}

}  // namespace rnoc::synth
