// Structural netlists: bags of standard cells with area/power roll-ups.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "synthesis/cell_library.hpp"

namespace rnoc::synth {

/// A synthesized block modeled as a multiset of standard cells.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Adds `count` instances of a cell.
  void add(CellKind kind, std::int64_t count);

  /// Adds `count` copies of another netlist's cells.
  void add(const Netlist& sub, std::int64_t count = 1);

  std::int64_t count(CellKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  std::int64_t total_cells() const;

  double area_um2(const CellLibrary& lib) const;

  /// Average power in uW: leakage + activity * dynamic(freq).
  /// `activity` is the average switching-activity factor of the block.
  double power_uw(const CellLibrary& lib, double activity,
                  double freq_mhz) const;

  std::string summary(const CellLibrary& lib) const;

 private:
  std::string name_;
  std::array<std::int64_t, kCellKinds> counts_{};
};

/// Netlist builders for the router's fundamental components. Gate-level
/// decompositions are documented inline; they feed both the area/power
/// overhead analysis (paper §VI-A) and sanity cross-checks against the FIT
/// component library.
namespace blocks {

/// n-bit equality/magnitude comparator: XNOR per bit + AND reduction tree.
Netlist comparator(int bits);

/// Round-robin arbiter, n requesters: pointer register + priority chain.
Netlist rr_arbiter(int inputs);

/// n:1 multiplexer tree, `bits` wide: (n-1) MUX2 per bit.
Netlist mux(int inputs, int bits);

/// 1:n demultiplexer, `bits` wide: (n-1) AND2 + shared select inverters.
Netlist demux(int outputs, int bits);

/// Register bank of `bits` DFFs.
Netlist dff_bank(int bits);

}  // namespace blocks

}  // namespace rnoc::synth
