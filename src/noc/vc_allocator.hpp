// Two-stage separable virtual-channel allocator (paper §II-B2, Fig. 3a) with
// the paper's fault-tolerance extensions (§V-B): stage-1 arbiter-set sharing
// between VCs of an input port, and stage-2 reallocation retry.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protection.hpp"
#include "fault/fault_model.hpp"
#include "noc/arbiter.hpp"
#include "noc/input_port.hpp"
#include "noc/router_state.hpp"
#include "noc/vnet.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

class VcAllocator {
 public:
  VcAllocator(int ports, int vcs, core::RouterMode mode, int vnets = 1);

  /// Runs one VA cycle: input VCs in VcAlloc state try to obtain an empty
  /// downstream VC at their routed output port. Winners move to Active and
  /// get `out_vc` set; `out_vcs[port][vc].allocated` is updated. `now` only
  /// timestamps observability records; allocation itself is time-free.
  void step(Cycle now, std::vector<InputPort>& inputs,
            std::vector<std::vector<OutVcState>>& out_vcs,
            const fault::RouterFaultState& faults, RouterStats& stats);

  /// Fault-free mirror of step() for the event core: bit-identical
  /// allocations, stats and trace events when the router carries no fault,
  /// but stage 1 visits only the VCs set in the router's VcAlloc state masks,
  /// arbitration runs on bitmasks, and stage 2 visits only proposed
  /// (out_port, out_vc) pairs. The caller must fall back to step() whenever
  /// the router's fault count is non-zero or !mask_capable().
  void step_event(Cycle now, std::vector<InputPort>& inputs,
                  std::vector<std::vector<OutVcState>>& out_vcs,
                  RouterStats& stats, const RouterVcMasks& masks);

  /// Whether the geometry fits the masks step_event uses (32-bit VC-state
  /// masks; stage 2 arbitrates over ports * vcs inputs in a 64-bit mask).
  bool mask_capable() const { return vcs_ <= 32 && ports_ * vcs_ <= 64; }

  /// Resets arbiter pointers (Mesh::reset_for_run).
  void reset_for_run();

  /// Self-heal escape-VC discipline: once set (>= 0), downstream VC `evc` is
  /// granted only to VCs whose route is an escape route, and escape routes
  /// are granted only `evc` — the escape class stays a self-contained
  /// west-first network. -1 (default) disables the partition entirely.
  void set_escape_vc(int evc) { escape_vc_ = evc; }

  /// Stage-1 arbiter of input VC (port, vc); exposed for tests.
  RoundRobinArbiter& stage1(int port, int vc);
  /// Stage-2 arbiter of downstream VC (out_port, vc); exposed for tests.
  RoundRobinArbiter& stage2(int out_port, int vc);

#ifdef RNOC_TRACE
  /// Observability sink for VA stall attribution (set by the owning Router).
  void set_observer(obs::Observer* o, NodeId router) {
    obs_ = o;
    router_ = router;
  }
#endif

 private:
  struct Proposal {
    int in_port = -1;
    int in_vc = -1;    ///< Physical input VC.
    int out_port = -1;
    int out_vc = -1;   ///< Proposed downstream VC (logical).
  };

  /// Chooses the arbiter set (own or borrowed) for input VC (p, v); returns
  /// the owning VC index or -1 when the VC must wait this cycle.
  int select_arbiter_set(InputPort& port, int p, int v,
                         const fault::RouterFaultState& faults,
                         std::vector<bool>& set_used, RouterStats& stats);

  int ports_;
  int vcs_;
  core::RouterMode mode_;
  int vnets_;
  int escape_vc_ = -1;  ///< Reserved downstream VC for escape routes.
  std::vector<RoundRobinArbiter> stage1_;  ///< [port * vcs + vc]
  std::vector<RoundRobinArbiter> stage2_;  ///< [out_port * vcs + vc]

  // Scratch reused across step() calls to keep the per-cycle hot path
  // allocation-free.
  std::vector<Proposal> proposals_;
  std::vector<bool> set_used_;    ///< per-VC arbiter sets taken, one port at a time
  std::vector<bool> candidates_;  ///< per-downstream-VC stage-1 candidates
  std::vector<bool> requests_;    ///< per-input-VC stage-2 requests
  std::vector<bool> pair_has_;    ///< [out_port * vcs + vc]: proposals exist
  std::vector<int> keys_;         ///< step_event: sorted distinct (r,u) keys
#ifdef RNOC_TRACE
  obs::Observer* obs_ = nullptr;
  NodeId router_ = kInvalidNode;
  /// Parallel to proposals_: 1 when the proposal's stall was already
  /// attributed (stage-2 fault), so the lost-arbitration post-pass skips it.
  std::vector<std::uint8_t> obs_blocked_;
#endif
};

}  // namespace rnoc::noc
