// End-to-end simulation driver: mesh + NIs + traffic + fault injection,
// with warmup / measurement / drain phases and a no-progress watchdog.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fault/fault_injector.hpp"
#include "noc/degraded.hpp"
#include "noc/energy.hpp"
#include "noc/event_queue.hpp"
#include "noc/mesh.hpp"
#include "noc/telemetry.hpp"
#include "traffic/patterns.hpp"

namespace rnoc::noc {

struct SimConfig {
  MeshConfig mesh{};
  Cycle warmup = 5000;        ///< Cycles before measurement starts.
  Cycle measure = 30000;      ///< Measurement window length.
  Cycle drain_limit = 30000;  ///< Max extra cycles to let traffic drain.
  std::uint64_t seed = 1;
  /// If no flit is ejected anywhere for this many cycles while traffic is
  /// in flight, the run is flagged as deadlocked and stopped.
  Cycle progress_timeout = 20000;
  /// Per-event energy model used for the report's energy section.
  EnergyModel energy{};
  /// Buffer-occupancy sampling interval in cycles (0 = telemetry off).
  Cycle telemetry_interval = 0;
  /// Degraded-mode subsystem (router death -> online reroute -> end-to-end
  /// retry). Disabled by default: the fault-free fast path is untouched and
  /// bit-identical to pre-degraded builds.
  DegradedConfig degraded{};
};

struct SimReport {
  RunningStats total_latency;    ///< creation -> delivery, measured packets.
  RunningStats network_latency;  ///< injection -> delivery.
  Histogram latency_hist{0.0, NiStats::kLatencyHistMax,
                         NiStats::kLatencyHistBins};
  std::uint64_t packets_sent = 0;      ///< Injected during measurement phase.
  std::uint64_t packets_received = 0;  ///< All deliveries over the whole run.
  std::uint64_t flits_received = 0;
  double throughput_flits_node_cycle = 0.0;
  bool deadlock_suspected = false;
  std::uint64_t undelivered_flits = 0;  ///< Left in network at the end.
  Cycle cycles_run = 0;
  RouterStats router_events;
  EnergyReport energy;
  int faults_injected = 0;
  /// Degraded-mode accounting (all zeros when the subsystem is disabled).
  DegradedStats degraded;

  double avg_total_latency() const { return total_latency.mean(); }
  double avg_network_latency() const { return network_latency.mean(); }
  double latency_percentile(double q) const { return latency_hist.quantile(q); }
};

class Simulator {
 public:
  Simulator(const SimConfig& cfg,
            std::shared_ptr<traffic::TrafficModel> traffic);

  /// Runs on an externally owned mesh (e.g. a SweepRunner's cached mesh,
  /// restored via Mesh::reset_for_run). `mesh.config()` must equal
  /// `cfg.mesh`; the mesh must be in its just-constructed state.
  Simulator(const SimConfig& cfg,
            std::shared_ptr<traffic::TrafficModel> traffic, Mesh& mesh);

  /// Schedules permanent faults (must be called before run()).
  void set_fault_plan(fault::FaultPlan plan);

  /// Runs warmup + measurement + drain and returns the report. One-shot.
  /// Dispatches on SimConfig::mesh.core: the EventDriven core additionally
  /// fast-forwards the clock across provably idle stretches; all cores
  /// return bit-identical reports (test-enforced).
  SimReport run();

  Mesh& mesh() { return mesh_; }
  const SimConfig& config() const { return cfg_; }

  /// Degraded-mode controller (nullptr unless SimConfig::degraded.enabled).
  const DegradedModeController* degraded_controller() const {
    return degraded_.get();
  }

  /// Occupancy telemetry gathered during run(); empty (0 samples) unless
  /// SimConfig::telemetry_interval was set.
  const OccupancySampler& occupancy() const { return occupancy_; }

  /// A response waiting for its ready cycle. `seq` is a monotonic enqueue
  /// counter used as tie-break: std::priority_queue is not stable, so
  /// equal-`ready` responses would otherwise pop in an implementation-
  /// defined order and runs would not reproduce across standard libraries.
  /// (The simulator itself now queues responses on the seq-stable
  /// EventQueue; this struct remains as the documented ordering contract,
  /// exercised directly by the determinism tests.)
  struct PendingResponse {
    Cycle ready;
    std::uint64_t seq;
    traffic::Response response;
    bool operator>(const PendingResponse& o) const {
      if (ready != o.ready) return ready > o.ready;
      return seq > o.seq;
    }
  };

 private:
  Simulator(const SimConfig& cfg,
            std::shared_ptr<traffic::TrafficModel> traffic,
            std::unique_ptr<Mesh> owned, Mesh* external);

  SimReport run_sweep();
  SimReport run_event();
  void finish_report(SimReport& rep, Cycle end);
  void release_responses(Cycle now);
  /// Event core: scans `node`'s source from `from` (exclusive horizon
  /// `source_end`) and queues its next injection cycle, packets parked in
  /// pending_inj_ until the clock reaches it.
  void schedule_injection(NodeId node, Cycle from, Cycle source_end);

  SimConfig cfg_;
  std::shared_ptr<traffic::TrafficModel> traffic_;
  std::unique_ptr<Mesh> owned_mesh_;  ///< Null when running on an external mesh.
  Mesh& mesh_;
  fault::FaultInjector injector_;
  std::vector<Rng> node_rngs_;
  Rng resp_rng_;
  EventQueue<traffic::Response> pending_responses_;
  /// Event core: per-node next-injection events, tie-broken by node id so
  /// same-cycle injections enqueue in the sweep's ascending-node order.
  EventQueue<NodeId> traffic_events_;
  std::vector<std::vector<PacketDesc>> pending_inj_;
  PacketId next_packet_id_ = 1;
  OccupancySampler occupancy_;
  std::unique_ptr<DegradedModeController> degraded_;
  bool ran_ = false;
};

}  // namespace rnoc::noc
