#include "noc/arbiter.hpp"

#include "common/types.hpp"

namespace rnoc::noc {

RoundRobinArbiter::RoundRobinArbiter(int inputs) : inputs_(inputs) {
  require(inputs >= 1, "RoundRobinArbiter: need at least one input");
}

void RoundRobinArbiter::set_pointer(int p) {
  require(p >= 0 && p < inputs_, "RoundRobinArbiter::set_pointer: out of range");
  pointer_ = p;
}

}  // namespace rnoc::noc
