#include "noc/arbiter.hpp"

#include "common/types.hpp"

namespace rnoc::noc {

RoundRobinArbiter::RoundRobinArbiter(int inputs) : inputs_(inputs) {
  require(inputs >= 1, "RoundRobinArbiter: need at least one input");
}

int RoundRobinArbiter::arbitrate(const std::vector<bool>& requests) {
  require(static_cast<int>(requests.size()) == inputs_,
          "RoundRobinArbiter::arbitrate: request vector size mismatch");
  for (int i = 0; i < inputs_; ++i) {
    const int idx = (pointer_ + i) % inputs_;
    if (requests[idx]) {
      pointer_ = (idx + 1) % inputs_;
      return idx;
    }
  }
  return -1;
}

void RoundRobinArbiter::set_pointer(int p) {
  require(p >= 0 && p < inputs_, "RoundRobinArbiter::set_pointer: out of range");
  pointer_ = p;
}

}  // namespace rnoc::noc
