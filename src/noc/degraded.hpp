// Degraded-mode subsystem: graceful degradation after router death.
//
// When an injected fault set trips core::router_failed for a router, that
// router is declared dead and the network transitions through three phases:
//
//   1. Death. The router becomes a credit-neutral black hole
//      (Router::decommission): buffered flits are purged with upstream
//      credit refunds and arriving flits are swallowed with an immediate
//      credit return, so neighbour flow control stays conserved and the
//      network keeps moving instead of backpressuring into a deadlock.
//   2. Drain barrier. New injection is frozen (NetworkInterface inject
//      gates) while in-flight traffic runs out — delivered, or swallowed by
//      the dead router. The barrier is reached when the network provably
//      holds nothing: no buffered flits, idle links, no NI mid-packet.
//      Because every packet in the network routed under ONE routing
//      function and the barrier separates epochs, no packet ever mixes
//      routing epochs and each epoch's deadlock-freedom argument (XY, or
//      west-first fault-aware tables) holds unconditionally.
//   3. Epoch switch. Flow-control state is hard-reset to power-on values
//      (Mesh::reset_flow_control), west-first FaultAwareTables are rebuilt
//      online around the dead routers and installed mesh-wide, queued
//      packets whose destination became unreachable are dropped (and
//      counted), and injection thaws.
//
// Losses are repaired end-to-end: every packet is tracked from tail
// injection until an (oracle) acknowledgement `ack_delay` cycles after
// tail ejection. A packet whose delivery timeout expires is retransmitted
// from the source NI under capped exponential backoff, up to `max_retries`
// attempts; the per-source retransmit buffer is bounded by `retx_window`
// outstanding packets (the inject gate holds the queue when full).
// Duplicates (original and retransmit both delivered) are suppressed
// before they reach the traffic model, receiver-side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "core/failure_predicate.hpp"
#include "noc/flit.hpp"
#include "noc/mesh.hpp"
#include "noc/table_routing.hpp"

namespace rnoc::noc {

/// How the network recovers from a router death.
enum class DegradedStrategy : std::uint8_t {
  /// PR 5 behaviour: freeze injection, drain the network to empty, then
  /// switch the whole mesh onto fresh west-first tables (epoch barrier).
  DrainReroute,
  /// Self-healing adaptive routing: no barrier. Per-router fault vectors
  /// flood hop-by-hop, the RC stage filters known-dead ports out of the
  /// odd-even candidate set, and packets left with no minimal direction
  /// divert onto a reserved west-first escape VC. Injection never freezes;
  /// in-flight packets reroute live. Requires RoutingAlgo::OddEven,
  /// vnets == 1 and vcs >= 2 (one VC is reserved as the escape class once
  /// the first death arms the machinery).
  SelfHeal,
};

const char* degraded_strategy_name(DegradedStrategy s);

struct DegradedConfig {
  bool enabled = false;
  DegradedStrategy strategy = DegradedStrategy::DrainReroute;
  /// Cycles between tail ejection and the source learning of the delivery
  /// (oracle acknowledgement; stands in for an ack packet's return trip).
  Cycle ack_delay = 32;
  /// Initial delivery timeout, armed when the tail flit enters the network.
  Cycle retx_timeout = 512;
  /// Timeout multiplier applied per retransmission (capped below).
  double backoff = 2.0;
  Cycle retx_timeout_cap = 4096;
  /// Retransmissions per packet before the source gives up.
  int max_retries = 8;
  /// Per-source bound on packets sent but not yet acknowledged (the
  /// retransmit buffer); the inject gate holds the queue when reached.
  int retx_window = 64;
};

/// Rejects nonsensical retransmit knobs (backoff < 1.0 shrinks timeouts
/// toward zero; retx_timeout = 0 fires before the tail leaves the wire; a
/// cap below the initial timeout inverts the backoff clamp) at config time,
/// before a Mesh or Simulator exists. The DegradedModeController constructor
/// calls this too, so programmatic construction stays covered.
void validate_degraded_config(const DegradedConfig& cfg);

struct DegradedStats {
  std::uint64_t router_deaths = 0;
  std::uint64_t reroute_epochs = 0;
  std::uint64_t packets_tracked = 0;  ///< First sends of tracked packets.
  std::uint64_t packets_acked = 0;    ///< Confirmed delivered end-to-end.
  std::uint64_t retransmits = 0;
  std::uint64_t gave_up = 0;  ///< Dropped after max_retries timeouts.
  /// Tracked packets (sent at least once) dropped because a death
  /// partitioned them away from their destination. Always <=
  /// packets_tracked, so delivery_ratio()'s denominator stays consistent.
  std::uint64_t dropped_unreachable = 0;
  /// Packets refused before ever entering the network — at generation
  /// time, or swept from a source queue at an epoch switch; never tracked.
  std::uint64_t dropped_at_source = 0;
  /// Flits sunk by dead routers (mirror of RouterStats::flits_swallowed).
  std::uint64_t flits_blackholed = 0;
  /// Cycles the injection gates were frozen (drain barrier). The self-heal
  /// strategy never freezes, so this is its availability headline: 0.
  std::uint64_t frozen_cycles = 0;

  /// Delivered fraction of tracked packets whose destination stayed
  /// reachable: acked / (tracked - dropped_unreachable). Packets that
  /// exhausted max_retries (gave_up) count against the ratio.
  double delivery_ratio() const {
    const std::uint64_t eligible =
        packets_tracked > dropped_unreachable
            ? packets_tracked - dropped_unreachable
            : 0;
    return eligible == 0
               ? 1.0
               : static_cast<double>(packets_acked) /
                     static_cast<double>(eligible);
  }

  void merge(const DegradedStats& o) {
    router_deaths += o.router_deaths;
    reroute_epochs += o.reroute_epochs;
    packets_tracked += o.packets_tracked;
    packets_acked += o.packets_acked;
    retransmits += o.retransmits;
    gave_up += o.gave_up;
    dropped_unreachable += o.dropped_unreachable;
    dropped_at_source += o.dropped_at_source;
    flits_blackholed += o.flits_blackholed;
    frozen_cycles += o.frozen_cycles;
  }
};

/// Owns the death / drain / reroute state machine and the end-to-end
/// reliability layer for one Simulator run. Construction wires inject
/// gates and sent hooks into every NI of the mesh.
class DegradedModeController {
 public:
  DegradedModeController(Mesh& mesh, const DegradedConfig& cfg);

  /// Called after FaultInjector::apply_due reported fresh faults: sweeps
  /// routers for lethal fault sets (core::router_failed under the mesh's
  /// router mode), kills them and begins a drain.
  void on_faults_injected(Cycle now);

  /// Per-cycle work, called after Mesh::step: barrier detection + epoch
  /// switch while draining; due acknowledgements and delivery timeouts
  /// (retransmissions) otherwise.
  void step(Cycle now);

  /// Admission filter for freshly generated packets and released
  /// responses. False (and counted) when the source or destination is
  /// dead, or the current tables cannot connect the pair.
  bool admit(const PacketDesc& p);

  /// Delivery notification from the simulator's NI hook. Returns true
  /// when the delivery is fresh and should be visible to the traffic
  /// model; false for a duplicate created by retransmission.
  bool on_delivered(const Flit& tail, Cycle now);

  bool draining() const { return draining_; }
  int epoch() const { return epoch_; }
  bool node_dead(NodeId n) const {
    return dead_[static_cast<std::size_t>(n)] != 0;
  }
  /// True when the reliability layer has nothing outstanding: not
  /// draining (or reconverging, for the self-heal strategy), and every
  /// tracked packet was acknowledged or dropped.
  bool quiescent() const {
    return !draining_ && !converging_ && !pending_install_ &&
           entries_.empty();
  }

  /// Earliest cycle at which step() can do anything, for the event core's
  /// idle fast-forward. While draining (or, under the self-heal strategy,
  /// while the fault-vector flood converges or a table install awaits the
  /// escape class running empty), step() has per-cycle work, so this
  /// returns 0. Otherwise the next ack/timeout heap head — compacted
  /// first: the heaps are lazily invalidated, and a stale head (entry
  /// erased, delivered, or re-armed) would under-report the true due cycle
  /// and shrink the event core's idle jump for nothing.
  Cycle next_due_cycle();

  const DegradedStats& stats() const { return stats_; }
  /// Routing tables of the current epoch (nullptr before the first death).
  const FaultAwareTables* tables() const { return tables_.get(); }

 private:
  struct Entry {
    PacketDesc desc;
    Cycle deadline = kNeverCycle;  ///< Armed at tail injection only.
    Cycle timeout;                 ///< Next timeout span (backoff state).
    int retries = 0;
    bool in_flight = false;  ///< Tail injected, delivery not yet confirmed.
    bool delivered = false;  ///< Ejected; acknowledgement under way.
  };

  void begin_drain(Cycle now);
  void switch_epoch(Cycle now);
  /// One hop of the self-heal knowledge flood; at fixpoint builds the next
  /// escape-table generation and freezes the escape class for its install.
  void self_heal_converge(Cycle now);
  /// Installs the pending escape tables once the escape class is empty.
  void try_install_escape_tables(Cycle now);
  /// Rebuilds serveable_ against the freshly installed table generation.
  void compute_serveable();
  /// Memoised walk of one pair's adaptive DAG (see compute_serveable).
  bool serveable_dfs(NodeId src, NodeId dst, NodeId at,
                     std::vector<std::uint8_t>& memo) const;
  /// Shared by switch_epoch and the self-heal table build: every link
  /// touching a dead router, from both endpoints.
  std::vector<DeadLink> collect_dead_links() const;
  void on_sent(NodeId src, const PacketDesc& p, Cycle now);
  bool allow_inject(NodeId src, const PacketDesc& p) const;
  void drop_entry(std::map<PacketId, Entry>::iterator it);
  bool pair_connected(NodeId src, NodeId dst) const;

  Mesh& mesh_;
  DegradedConfig cfg_;
  core::RouterMode mode_;
  DegradedStats stats_;

  std::vector<std::uint8_t> dead_;
  bool draining_ = false;
  int epoch_ = 0;  ///< 0 = fault-free (XY); bumped per table install.
  std::unique_ptr<FaultAwareTables> tables_;

  // --- Self-heal strategy state ---
  bool converging_ = false;       ///< Fault-vector flood still spreading.
  bool pending_install_ = false;  ///< Tables built, awaiting class-empty.
  std::unique_ptr<FaultAwareTables> pending_tables_;
  std::vector<NodeId> updated_scratch_;  ///< propagate() out-param reuse.
  /// Pair admissibility under the installed generation, one bit per
  /// (src * nodes + dst). Minimal-adaptive RC may steer a packet along ANY
  /// live turn-legal candidate, so "escape-reachable from the source" is
  /// the wrong predicate — the walk can be forced into a node whose whole
  /// candidate set is dead and whose escape detour is turn-illegal from
  /// there. Recomputed at each install; empty until the first one.
  std::vector<std::uint64_t> serveable_;

  /// Tracked packets by id. std::map: iteration order must be
  /// deterministic (epoch-switch sweeps walk it).
  std::map<PacketId, Entry> entries_;
  std::vector<int> outstanding_;  ///< Unacked tracked packets per source.
  /// Min-heaps of (cycle, packet), lazily invalidated: a popped timeout is
  /// honoured only if it still matches the entry's armed deadline.
  using CycleEvent = std::pair<Cycle, PacketId>;
  std::priority_queue<CycleEvent, std::vector<CycleEvent>,
                      std::greater<CycleEvent>>
      ack_due_, timeout_due_;
  /// Ids delivered at least once (duplicate suppression survives the
  /// entry's erasure, so a late duplicate never reaches the traffic
  /// model twice).
  std::set<PacketId> delivered_ids_;
};

}  // namespace rnoc::noc
