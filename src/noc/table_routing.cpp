#include "noc/table_routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace rnoc::noc {
namespace {

constexpr int kUnreachable = -1;

/// Neighbour of `n` through `out_port`, or kInvalidNode at the mesh edge.
NodeId neighbor_of(const MeshDims& dims, NodeId n, int out_port) {
  Coord c = dims.coord_of(n);
  switch (direction_of(out_port)) {
    case Direction::North: --c.y; break;
    case Direction::South: ++c.y; break;
    case Direction::East: ++c.x; break;
    case Direction::West: --c.x; break;
    case Direction::Local: return n;
  }
  return dims.contains(c) ? dims.node_of(c) : kInvalidNode;
}

}  // namespace

FaultAwareTables FaultAwareTables::build(
    const MeshDims& dims, const std::vector<DeadLink>& dead_links) {
  const int n = dims.nodes();
  auto link_ok = [&](NodeId from, int port) {
    return std::find(dead_links.begin(), dead_links.end(),
                     DeadLink{from, port}) == dead_links.end();
  };

  std::vector<int> table(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n),
                         kUnreachable);

  const int non_west_ports[] = {port_of(Direction::North),
                                port_of(Direction::East),
                                port_of(Direction::South)};

  for (NodeId dst = 0; dst < n; ++dst) {
    // Phase 1: backward BFS from dst over healthy non-West links, recording
    // each reached node's distance and its first non-West hop toward dst.
    std::vector<int> dist(static_cast<std::size_t>(n),
                          std::numeric_limits<int>::max());
    std::vector<int> hop(static_cast<std::size_t>(n), kUnreachable);
    std::deque<NodeId> queue;
    dist[static_cast<std::size_t>(dst)] = 0;
    queue.push_back(dst);
    while (!queue.empty()) {
      const NodeId cur = queue.front();
      queue.pop_front();
      // Predecessors: nodes whose non-West move lands on `cur`.
      for (const int port : non_west_ports) {
        const int back = opposite_port(port);
        const NodeId pred = neighbor_of(dims, cur, back);
        if (pred == kInvalidNode || pred == cur) continue;
        if (!link_ok(pred, port)) continue;
        if (dist[static_cast<std::size_t>(pred)] !=
            std::numeric_limits<int>::max())
          continue;
        dist[static_cast<std::size_t>(pred)] =
            dist[static_cast<std::size_t>(cur)] + 1;
        hop[static_cast<std::size_t>(pred)] = port;
        queue.push_back(pred);
      }
    }

    // Phase 2: fill the table. Nodes inside the non-West region use their
    // BFS hop; everyone else goes West (if that link lives) — x decreases
    // monotonically, so this terminates or hits the mesh edge unreachable.
    for (NodeId cur = 0; cur < n; ++cur) {
      auto& entry = table[static_cast<std::size_t>(cur) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(dst)];
      if (cur == dst) {
        entry = port_of(Direction::Local);
        continue;
      }
      if (hop[static_cast<std::size_t>(cur)] != kUnreachable) {
        entry = hop[static_cast<std::size_t>(cur)];
        continue;
      }
      const int west = port_of(Direction::West);
      if (neighbor_of(dims, cur, west) != kInvalidNode && link_ok(cur, west))
        entry = west;
      // else: unreachable under west-first with these dead links.
    }

    // Phase 2b: a node routed West may reach the mesh edge without ever
    // entering the non-West region; mark such chains unreachable so callers
    // see the partition instead of flits piling up at column 0.
    for (NodeId cur = 0; cur < n; ++cur) {
      NodeId walk = cur;
      int guard = 0;
      while (walk != kInvalidNode && walk != dst && ++guard <= dims.x) {
        const int port = table[static_cast<std::size_t>(walk) *
                                   static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(dst)];
        if (port == kUnreachable) {
          table[static_cast<std::size_t>(cur) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst)] = kUnreachable;
          break;
        }
        if (port != port_of(Direction::West)) break;  // entered BFS region
        walk = neighbor_of(dims, walk, port);
      }
    }
  }
  return FaultAwareTables(dims, std::move(table));
}

int FaultAwareTables::next_port(NodeId current, NodeId dst) const {
  require(current >= 0 && current < dims_.nodes() && dst >= 0 &&
              dst < dims_.nodes(),
          "FaultAwareTables::next_port: node out of range");
  return table_[index(current, dst)];
}

bool FaultAwareTables::fully_connected() const {
  for (NodeId a = 0; a < dims_.nodes(); ++a)
    for (NodeId b = 0; b < dims_.nodes(); ++b)
      if (!reachable(a, b)) return false;
  return true;
}

}  // namespace rnoc::noc
