// Runtime NoC invariant checker (NocChecker), compiled in under the CMake
// option RNOC_INVARIANTS and wired by the Mesh into every router, NI and
// link it owns. When the option is off the hooks compile to nothing — the
// checker exists so that perf/scale changes to the simulator core (active
// scheduling, incremental accounting, allocator fast paths) can be proven
// not to have broken the microarchitecture, whose failure mode is silent:
// a dropped credit or an illegal VC state produces plausible-but-wrong
// latencies, not crashes.
//
// Checked invariants, each at the end of every simulated cycle:
//   * Credit conservation — for every channel (router->router and NI<->
//     router) and every logical VC: upstream credits + pending SA grants +
//     flits in flight + downstream buffer occupancy + credits in flight
//     == VC depth.
//   * Flit conservation — the Mesh's incremental NetCounters must equal an
//     O(network) recount of every buffer and link.
//   * VC state legality — per-cycle transitions of each VC's G field must
//     follow the pipeline: Idle -> Routing -> VcAlloc -> Active -> Idle
//     (a head flit may legally reach VcAlloc the cycle it arrives, since
//     buffer-write and RC execute in the same mesh step), and a VC in
//     Routing/VcAlloc state must hold a head flit at its buffer front.
//   * Switch-allocator post-conditions — the pending switch-traversal
//     grants contain at most one grant per input port, per output port and
//     per crossbar mux; every granted VC is Active, non-empty, and the
//     grant matches the VC's R/O fields and an allocated downstream VC.
//   * Per-VC in-order delivery — flits eject head-first, in seq order, one
//     packet per VC, tail-complete (hooked from NetworkInterface::eject).
//   * Starvation watchdog — a non-empty VC whose buffer front and state
//     have not changed for more than Config::stall_limit cycles trips a
//     deadlock/starvation violation.
//
// A violation is reported through the handler: the default prints the full
// cycle/router/port/VC context to stderr and aborts; tests install a
// throwing handler to assert that seeded corruptions are caught.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/flit.hpp"

namespace rnoc::noc {

class Link;
class Mesh;
class NetworkInterface;
class Router;

/// Everything known about one invariant violation. `port`/`vc` are -1 when
/// the invariant is not localised to a port or VC.
struct InvariantViolation {
  std::string kind;     ///< e.g. "credit-conservation", "vc-state".
  std::string message;  ///< Full human-readable context.
  Cycle cycle = 0;
  NodeId router = kInvalidNode;
  int port = -1;
  int vc = -1;
};

/// Exception form of a violation, for tests that install a throwing handler.
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(InvariantViolation v)
      : std::runtime_error(v.message), violation(std::move(v)) {}

  InvariantViolation violation;
};

class NocChecker {
 public:
  struct Config {
    /// Cycles a non-empty VC may sit with an unchanged buffer front and
    /// state before the starvation watchdog fires. Large by default so that
    /// legitimately blocked VCs (untolerated faults, saturated drains)
    /// never trip it in ordinary runs; directed tests lower it.
    Cycle stall_limit = 1u << 20;
    /// Cycle-end check cadence (1 = every cycle). The watchdog and state
    /// checks observe at this granularity.
    Cycle check_interval = 1;
  };

  /// One unidirectional flit channel and its reverse credit path. Exactly
  /// one of (up_router, up_ni) and one of (down_router, down_ni) is set.
  struct Channel {
    const Link* link = nullptr;
    const Router* up_router = nullptr;  ///< Credit-counter holder.
    int up_port = -1;
    const NetworkInterface* up_ni = nullptr;
    const Router* down_router = nullptr;  ///< Buffer holder.
    int down_port = -1;
    const NetworkInterface* down_ni = nullptr;
  };

  using Handler = std::function<void(const InvariantViolation&)>;

  NocChecker();  ///< Default Config.
  explicit NocChecker(Config cfg);

  Config& config() { return cfg_; }
  const Config& config() const { return cfg_; }

  /// Installs a violation handler (tests: throw InvariantViolationError).
  /// An empty handler restores the default print-and-abort behaviour. The
  /// handler must not return normally if simulation state is to be trusted
  /// afterwards; a violated invariant does not self-heal.
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// A ready-made handler that throws InvariantViolationError.
  static Handler throwing_handler();

  // --- Registration (performed by the Mesh while wiring itself) ---
  void add_router(const Router* r);
  void add_ni(const NetworkInterface* ni);
  void add_channel(const Channel& ch);
  void set_mesh(const Mesh* mesh) { mesh_ = mesh; }

  // --- Hooks ---
  /// Runs the full check suite; called by Mesh::step after all stages.
  void on_cycle_end(Cycle now);
  /// Validates one ejected flit against the per-VC in-order invariant;
  /// called by NetworkInterface::eject before its own protocol checks.
  void on_ejected(NodeId node, const Flit& f, Cycle now);
  /// Final sweep regardless of check_interval; called by Simulator::run.
  void on_run_end(Cycle now);

  /// Degraded-mode hook: forget per-cycle history after the Mesh mutates
  /// flow-control state out-of-band (router death, drain-barrier reset).
  /// The VC-state shadow re-primes on the next sweep and the starvation
  /// watchdog restarts its clocks. `clear_delivery_tracks` additionally
  /// abandons the per-VC ejection expectations — only safe at a drain
  /// barrier, when the network provably holds no flits; at a router death
  /// they must survive so in-flight deliveries keep being validated.
  void reset_history(bool clear_delivery_tracks);

  /// Self-heal reclamation hook: abandons the ejection expectation of one
  /// NI's VC after the sweep aborted a truncated reassembly there, so the
  /// eventual retransmission (same packet id, fresh head) validates from
  /// seq 0. Targeted — every other track keeps validating mid-flight.
  void clear_delivery_track(NodeId node, int vc);

  /// Full check sweeps executed so far (tests assert the checker ran).
  std::uint64_t sweeps_run() const { return sweeps_run_; }

 private:
  struct VcShadow {
    std::uint8_t state = 0;  ///< VcState of the previous observation.
  };
  struct WatchSlot {
    PacketId front_packet = 0;
    std::uint32_t front_seq = 0;
    std::size_t occupancy = 0;
    std::uint8_t state = 0;
    Cycle last_change = 0;
  };
  struct RouterEntry {
    const Router* router = nullptr;
    std::vector<VcShadow> shadow;  ///< [port * vcs + logical vc]
    std::vector<WatchSlot> watch;  ///< [port * vcs + physical vc]
  };
  struct SeqTrack {
    bool active = false;
    PacketId packet = 0;
    std::uint32_t next_seq = 0;
  };
  struct NiEntry {
    const NetworkInterface* ni = nullptr;
    std::vector<SeqTrack> tracks;  ///< [vc]
  };

  [[noreturn]] void unreachable_after_handler(const InvariantViolation& v);
  void fail(const char* kind, Cycle cycle, NodeId router, int port, int vc,
            const std::string& detail);

  void check_channels(Cycle now);
  void check_router_states(Cycle now);
  void check_grants(Cycle now);
  void check_counters(Cycle now);
  void run_sweep(Cycle now);

  Config cfg_;
  Handler handler_;
  const Mesh* mesh_ = nullptr;
  std::vector<RouterEntry> routers_;
  std::vector<Channel> channels_;
  std::vector<NiEntry> nis_;
  std::uint64_t sweeps_run_ = 0;
  bool shadow_primed_ = false;
};

}  // namespace rnoc::noc
