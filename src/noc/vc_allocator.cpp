#include "noc/vc_allocator.hpp"

#include <algorithm>
#include <bit>

namespace rnoc::noc {

VcAllocator::VcAllocator(int ports, int vcs, core::RouterMode mode, int vnets)
    : ports_(ports), vcs_(vcs), mode_(mode), vnets_(vnets) {
  require(ports >= 1 && vcs >= 1, "VcAllocator: bad geometry");
  require(vnets >= 1 && vcs % vnets == 0,
          "VcAllocator: vcs must divide evenly into vnets");
  stage1_.reserve(static_cast<std::size_t>(ports * vcs));
  stage2_.reserve(static_cast<std::size_t>(ports * vcs));
  for (int i = 0; i < ports * vcs; ++i) {
    stage1_.emplace_back(vcs);          // choose among downstream VCs
    stage2_.emplace_back(ports * vcs);  // choose among requesting input VCs
  }
  proposals_.reserve(static_cast<std::size_t>(ports * vcs));
  // step_event scratch: reserved to their geometric maxima here so the
  // per-cycle push_backs never grow (hotpath-alloc rule: the growth
  // branch must stay dynamically dead).
  keys_.reserve(static_cast<std::size_t>(ports * vcs));
#ifdef RNOC_TRACE
  obs_blocked_.reserve(static_cast<std::size_t>(ports * vcs));
#endif
  set_used_.resize(static_cast<std::size_t>(vcs), false);
  candidates_.resize(static_cast<std::size_t>(vcs), false);
  requests_.resize(static_cast<std::size_t>(ports * vcs), false);
  pair_has_.resize(static_cast<std::size_t>(ports * vcs), false);
}

RoundRobinArbiter& VcAllocator::stage1(int port, int vc) {
  return stage1_[static_cast<std::size_t>(port * vcs_ + vc)];
}

RoundRobinArbiter& VcAllocator::stage2(int out_port, int vc) {
  return stage2_[static_cast<std::size_t>(out_port * vcs_ + vc)];
}

int VcAllocator::select_arbiter_set(InputPort& port, int p, int v,
                                    const fault::RouterFaultState& faults,
                                    std::vector<bool>& set_used,
                                    RouterStats& stats) {
  if (faults.count() == 0 ||
      !faults.has(fault::SiteType::Va1ArbiterSet, p, v)) {
    set_used[static_cast<std::size_t>(v)] = true;
    return v;
  }
  if (mode_ == core::RouterMode::Baseline) {
    // No sharing circuitry: the head flit is blocked at this VC.
    ++stats.blocked_vc_cycles;
    return -1;
  }
  // Paper §V-B1: scan the G fields of the sibling VCs and borrow the arbiter
  // set of the first one that is Idle or in switch-allocation (Active) state.
  // A sibling that is itself in the VA stage this cycle (Scenario 2), or a
  // set already lent out, makes the borrower wait one cycle.
  VirtualChannel& borrower = port.vc(v);
  for (int offset = 1; offset < vcs_; ++offset) {
    const int w = (v + offset) % vcs_;
    if (faults.has(fault::SiteType::Va1ArbiterSet, p, w)) continue;
    if (set_used[static_cast<std::size_t>(w)]) continue;
    const VcState ws = port.vc(w).state;
    if (ws != VcState::Idle && ws != VcState::Active) continue;
    // Post the borrow request into the lender's R2/VF/ID fields.
    VirtualChannel& lender = port.vc(w);
    lender.r2 = borrower.route;
    lender.vf = true;
    lender.id = v;
    set_used[static_cast<std::size_t>(w)] = true;
    ++stats.va1_borrows;
    return w;
  }
  ++stats.va1_borrow_waits;
  ++stats.blocked_vc_cycles;
  return -1;
}

void VcAllocator::step(Cycle now, std::vector<InputPort>& inputs,
                       std::vector<std::vector<OutVcState>>& out_vcs,
                       const fault::RouterFaultState& faults,
                       RouterStats& stats) {
  (void)now;
  // --- Stage 1: each VcAlloc-state VC proposes one empty downstream VC. ---
  proposals_.clear();
#ifdef RNOC_TRACE
  obs_blocked_.clear();
#endif
  const std::uint64_t borrows_before = stats.va1_borrows;
  const bool no_faults = faults.count() == 0;
  for (int p = 0; p < ports_; ++p) {
    InputPort& port = inputs[static_cast<std::size_t>(p)];
    // VcAlloc state implies a buffered head flit, so an empty port has no
    // work in this stage; a quick state scan filters the rest. Skipping is
    // exact: no proposals, no borrows, no arbiter movement for such a port.
    if (port.buffered_flits() == 0) continue;
    bool any_vcalloc = false;
    for (int v = 0; v < vcs_; ++v) {
      if (port.vc(v).state == VcState::VcAlloc) {
        any_vcalloc = true;
        break;
      }
    }
    if (!any_vcalloc) continue;

    std::fill(set_used_.begin(), set_used_.end(), false);
    // VCs in VcAlloc with healthy sets implicitly occupy their own set.
    for (int v = 0; v < vcs_; ++v) {
      if (port.vc(v).state == VcState::VcAlloc &&
          (no_faults || !faults.has(fault::SiteType::Va1ArbiterSet, p, v)))
        set_used_[static_cast<std::size_t>(v)] = true;
    }
    for (int v = 0; v < vcs_; ++v) {
      VirtualChannel& vc = port.vc(v);
      if (vc.state != VcState::VcAlloc) continue;
#ifdef RNOC_TRACE
      if (obs_) obs_->metrics().add_request(router_, obs::Stage::Va);
#endif
      const int set_owner =
          select_arbiter_set(port, p, v, faults, set_used_, stats);
      if (set_owner < 0) {
#ifdef RNOC_TRACE
        // Baseline arbiter-set fault or borrow wait: the fault (not
        // congestion or arbitration) cost this VC the cycle.
        if (obs_) {
          obs_->metrics().add_stall(router_, obs::Stage::Va,
                                    obs::StallCause::FaultBlocked);
          obs_->on_event(obs::EventKind::FaultBlock, now,
                         vc.buffer.front().packet, router_, p, v);
        }
#endif
        continue;
      }

      const int r = vc.route;
      require(!vc.buffer.empty() && vc.buffer.front().is_head(),
              "VcAllocator: VcAlloc state without a head flit");
      const std::uint8_t cls = vc.buffer.front().traffic_class;
      std::fill(candidates_.begin(), candidates_.end(), false);
      bool any = false;
      for (int u = 0; u < vcs_; ++u) {
        if (out_vcs[static_cast<std::size_t>(r)][static_cast<std::size_t>(u)]
                .allocated)
          continue;
        if (u == vc.excluded_out_vc) continue;
        // Escape-VC partition: the reserved VC only for escape routes,
        // escape routes only onto the reserved VC.
        if (escape_vc_ >= 0 && (u == escape_vc_) != vc.escape_route) continue;
        if (!vc_allowed_for_class(u, cls, vcs_, vnets_)) continue;
        candidates_[static_cast<std::size_t>(u)] = true;
        any = true;
      }
      if (!any) {
        // The exclusion memory must never starve the VC outright: when the
        // excluded downstream VC is the only remaining candidate (e.g. one
        // VC per vnet), forget the exclusion and retry it — pointless while
        // the stage-2 arbiter fault persists, but self-healing the moment a
        // transient fault expires.
        const int ex = vc.excluded_out_vc;
        if (ex >= 0 &&
            !out_vcs[static_cast<std::size_t>(r)][static_cast<std::size_t>(ex)]
                 .allocated &&
            (escape_vc_ < 0 || (ex == escape_vc_) == vc.escape_route) &&
            vc_allowed_for_class(ex, cls, vcs_, vnets_)) {
          vc.excluded_out_vc = -1;
          candidates_[static_cast<std::size_t>(ex)] = true;
          any = true;
        }
      }
      if (!any) {
#ifdef RNOC_TRACE
        // No empty downstream VC: ordinary congestion.
        if (obs_)
          obs_->metrics().add_stall(router_, obs::Stage::Va,
                                    obs::StallCause::NoCredit);
#endif
        continue;
      }
      const int u = stage1(p, set_owner).arbitrate(candidates_);
      proposals_.push_back({p, v, r, u});
#ifdef RNOC_TRACE
      obs_blocked_.push_back(0);
#endif
    }
  }

  // --- Stage 2: one arbiter per downstream VC resolves the proposals. ---
  if (!proposals_.empty()) {
    std::fill(pair_has_.begin(), pair_has_.end(), false);
    for (const Proposal& pr : proposals_)
      pair_has_[static_cast<std::size_t>(pr.out_port * vcs_ + pr.out_vc)] = true;
    for (int r = 0; r < ports_; ++r) {
      for (int u = 0; u < vcs_; ++u) {
        if (!pair_has_[static_cast<std::size_t>(r * vcs_ + u)]) continue;
        if (!no_faults && faults.has(fault::SiteType::Va2Arbiter, r, u)) {
          // Paper §V-B3: the allocation fails; requesters recompute next
          // cycle against a different downstream VC (+1 cycle, no extra
          // circuitry).
          for (std::size_t pi = 0; pi < proposals_.size(); ++pi) {
            const Proposal& pr = proposals_[pi];
            if (pr.out_port != r || pr.out_vc != u) continue;
            inputs[static_cast<std::size_t>(pr.in_port)].vc(pr.in_vc)
                .excluded_out_vc = u;
            ++stats.va2_retries;
#ifdef RNOC_TRACE
            obs_blocked_[pi] = 1;
            if (obs_) {
              obs_->metrics().add_stall(router_, obs::Stage::Va,
                                        obs::StallCause::FaultBlocked);
              obs_->on_event(
                  obs::EventKind::FaultBlock, now,
                  inputs[static_cast<std::size_t>(pr.in_port)]
                      .vc(pr.in_vc).buffer.front().packet,
                  router_, pr.in_port, pr.in_vc);
            }
#endif
          }
          continue;
        }
        std::fill(requests_.begin(), requests_.end(), false);
        for (const Proposal& pr : proposals_) {
          if (pr.out_port == r && pr.out_vc == u)
            requests_[static_cast<std::size_t>(pr.in_port * vcs_ + pr.in_vc)] =
                true;
        }
        const int winner = stage2(r, u).arbitrate(requests_);
        if (winner < 0) continue;
        const int wp = winner / vcs_;
        const int wv = winner % vcs_;
        VirtualChannel& vc = inputs[static_cast<std::size_t>(wp)].vc(wv);
        vc.out_vc = u;
        vc.state = VcState::Active;
        vc.excluded_out_vc = -1;
        inputs[static_cast<std::size_t>(wp)].refresh_vc(wv);
        out_vcs[static_cast<std::size_t>(r)][static_cast<std::size_t>(u)]
            .allocated = true;
        ++stats.va_allocations;
#ifdef RNOC_TRACE
        if (obs_) {
          obs_->metrics().add_grant(router_, obs::Stage::Va);
          obs_->on_event(obs::EventKind::Va, now, vc.buffer.front().packet,
                         router_, wp, wv);
        }
#endif
      }
    }

#ifdef RNOC_TRACE
    // Proposals that were not fault-blocked and did not end Active lost a
    // stage-1 or stage-2 arbitration to another VC.
    if (obs_) {
      for (std::size_t pi = 0; pi < proposals_.size(); ++pi) {
        if (obs_blocked_[pi]) continue;
        const Proposal& pr = proposals_[pi];
        if (inputs[static_cast<std::size_t>(pr.in_port)].vc(pr.in_vc).state !=
            VcState::Active)
          obs_->metrics().add_stall(router_, obs::Stage::Va,
                                    obs::StallCause::LostVa);
      }
    }
#endif
  }

  // Borrow-request fields are per-cycle markers: the VA unit resets them
  // after the allocation attempt completes (paper §V-B2). They are only
  // ever posted by a successful borrow, so the sweep runs only then.
  if (stats.va1_borrows != borrows_before) {
    for (int p = 0; p < ports_; ++p)
      for (int v = 0; v < vcs_; ++v)
        inputs[static_cast<std::size_t>(p)].vc(v).clear_borrow_fields();
  }
}

void VcAllocator::step_event(Cycle now, std::vector<InputPort>& inputs,
                             std::vector<std::vector<OutVcState>>& out_vcs,
                             RouterStats& stats,
                             const RouterVcMasks& masks) {
  (void)now;
  // Fault-free mirror of step(): every VC owns its own healthy arbiter set
  // (no borrows, so no borrow-field sweep either), stage-2 arbiters never
  // fault. The excluded_out_vc handling is kept verbatim — a stale exclusion
  // posted under a transient fault can outlive it and must keep shaping
  // candidate masks and the retry path until the VC wins an allocation.
  if (masks.vcalloc_ports == 0) return;
  proposals_.clear();
#ifdef RNOC_TRACE
  obs_blocked_.clear();
#endif

  // --- Stage 1: each VcAlloc-state VC proposes one empty downstream VC.
  // The state masks are exact (bit v of vcalloc[p] <=> VC v of port p is in
  // VcAlloc), so iterating their set bits ascending visits exactly the VCs
  // the scanning loop serves, in the same order. ---
  for (std::uint32_t pm = masks.vcalloc_ports; pm != 0; pm &= pm - 1) {
    const int p = std::countr_zero(pm);
    InputPort& port = inputs[static_cast<std::size_t>(p)];
    for (std::uint32_t vm = masks.vcalloc[p]; vm != 0; vm &= vm - 1) {
      const int v = std::countr_zero(vm);
      VirtualChannel& vc = port.vc(v);
#ifdef RNOC_TRACE
      if (obs_) obs_->metrics().add_request(router_, obs::Stage::Va);
#endif
      const int r = vc.route;
      require(!vc.buffer.empty() && vc.buffer.front().is_head(),
              "VcAllocator: VcAlloc state without a head flit");
      const std::uint8_t cls = vc.buffer.front().traffic_class;
      std::uint64_t cand = 0;
      for (int u = 0; u < vcs_; ++u) {
        if (out_vcs[static_cast<std::size_t>(r)][static_cast<std::size_t>(u)]
                .allocated)
          continue;
        if (u == vc.excluded_out_vc) continue;
        if (escape_vc_ >= 0 && (u == escape_vc_) != vc.escape_route) continue;
        if (!vc_allowed_for_class(u, cls, vcs_, vnets_)) continue;
        cand |= std::uint64_t{1} << static_cast<unsigned>(u);
      }
      if (cand == 0) {
        const int ex = vc.excluded_out_vc;
        if (ex >= 0 &&
            !out_vcs[static_cast<std::size_t>(r)][static_cast<std::size_t>(ex)]
                 .allocated &&
            (escape_vc_ < 0 || (ex == escape_vc_) == vc.escape_route) &&
            vc_allowed_for_class(ex, cls, vcs_, vnets_)) {
          vc.excluded_out_vc = -1;
          cand |= std::uint64_t{1} << static_cast<unsigned>(ex);
        }
      }
      if (cand == 0) {
#ifdef RNOC_TRACE
        if (obs_)
          obs_->metrics().add_stall(router_, obs::Stage::Va,
                                    obs::StallCause::NoCredit);
#endif
        continue;
      }
      const int u = stage1(p, v).arbitrate_mask(cand);
      proposals_.push_back({p, v, r, u});
#ifdef RNOC_TRACE
      obs_blocked_.push_back(0);
#endif
    }
  }
  if (proposals_.empty()) return;

  // --- Stage 2: one arbiter per proposed downstream VC, (r, u) ascending. ---
  keys_.clear();
  for (const Proposal& pr : proposals_)
    keys_.push_back(pr.out_port * vcs_ + pr.out_vc);
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  for (const int key : keys_) {
    std::uint64_t req = 0;
    for (const Proposal& pr : proposals_) {
      if (pr.out_port * vcs_ + pr.out_vc == key)
        req |= std::uint64_t{1}
               << static_cast<unsigned>(pr.in_port * vcs_ + pr.in_vc);
    }
    const int winner = stage2_[static_cast<std::size_t>(key)]
                           .arbitrate_mask(req);
    const int wp = winner / vcs_;
    const int wv = winner % vcs_;
    const int r = key / vcs_;
    const int u = key % vcs_;
    VirtualChannel& vc = inputs[static_cast<std::size_t>(wp)].vc(wv);
    vc.out_vc = u;
    vc.state = VcState::Active;
    vc.excluded_out_vc = -1;
    inputs[static_cast<std::size_t>(wp)].refresh_vc(wv);
    out_vcs[static_cast<std::size_t>(r)][static_cast<std::size_t>(u)]
        .allocated = true;
    ++stats.va_allocations;
#ifdef RNOC_TRACE
    if (obs_) {
      obs_->metrics().add_grant(router_, obs::Stage::Va);
      obs_->on_event(obs::EventKind::Va, now, vc.buffer.front().packet,
                     router_, wp, wv);
    }
#endif
  }

#ifdef RNOC_TRACE
  if (obs_) {
    for (std::size_t pi = 0; pi < proposals_.size(); ++pi) {
      if (obs_blocked_[pi]) continue;
      const Proposal& pr = proposals_[pi];
      if (inputs[static_cast<std::size_t>(pr.in_port)].vc(pr.in_vc).state !=
          VcState::Active)
        obs_->metrics().add_stall(router_, obs::Stage::Va,
                                  obs::StallCause::LostVa);
    }
  }
#endif
}

void VcAllocator::reset_for_run() {
  for (auto& a : stage1_) a.set_pointer(0);
  for (auto& a : stage2_) a.set_pointer(0);
  escape_vc_ = -1;  // Self-heal re-arms lazily at the next run's first death.
}

}  // namespace rnoc::noc
