#include "noc/energy.hpp"

#include "common/types.hpp"

namespace rnoc::noc {

EnergyReport account_energy(const EnergyModel& m, const RouterStats& ev,
                            std::uint64_t router_cycles, bool protected_mode) {
  require(m.clock_ghz > 0.0, "account_energy: clock must be positive");
  EnergyReport r;

  const auto n = [](std::uint64_t v) { return static_cast<double>(v); };

  // Base pipeline events. Every traversal implies a buffer read, a stage-1+2
  // switch arbitration and a link hop; every head flit one RC computation
  // and one VA arbitration round per allocation.
  r.dynamic_pj += n(ev.buffer_writes) * m.buffer_write_pj;
  r.dynamic_pj += n(ev.flits_traversed) *
                  (m.buffer_read_pj + m.sa_arbitration_pj +
                   m.crossbar_traversal_pj + m.link_hop_pj);
  r.dynamic_pj += n(ev.rc_computations) * m.rc_compute_pj;
  r.dynamic_pj += n(ev.va_allocations) * m.va_arbitration_pj;

  // Correction-circuitry events.
  r.protection_pj += n(ev.rc_spare_uses) * m.rc_spare_extra_pj;
  r.protection_pj += n(ev.va1_borrows) * m.va_borrow_extra_pj;
  r.protection_pj += n(ev.va2_retries) * m.va_arbitration_pj;  // re-arbitration
  r.protection_pj += n(ev.sa1_bypass_grants) * m.sa_bypass_extra_pj;
  r.protection_pj += n(ev.sa1_transfers) * m.vc_transfer_pj;
  r.protection_pj += n(ev.xb_secondary_traversals) * m.xb_secondary_extra_pj;
  r.dynamic_pj += r.protection_pj;

  // Leakage: mW -> pJ/cycle at the model clock.
  const double leak_mw =
      m.router_leakage_mw * (protected_mode ? m.protected_leakage_factor : 1.0);
  const double pj_per_cycle = leak_mw / m.clock_ghz;  // 1 mW @ 1 GHz = 1 pJ/cy
  r.leakage_pj = n(router_cycles) * pj_per_cycle;
  return r;
}

}  // namespace rnoc::noc
