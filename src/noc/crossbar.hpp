// Crossbar stage (paper §II-B4 / §V-D): validates switch-traversal grants
// against the current fault state at traversal time.
//
// The switch allocator checks the path when it grants; the crossbar
// re-validates at traversal because a permanent fault can strike in the one
// cycle between SA and ST. A grant whose path broke in that window is
// rejected and the flit stays buffered (it re-arbitrates, now aware of the
// fault).
#pragma once

#include "core/protection.hpp"
#include "fault/fault_model.hpp"
#include "noc/router_state.hpp"

namespace rnoc::noc {

class Crossbar {
 public:
  Crossbar(int ports, core::RouterMode mode);

  /// True when grant `g`'s path (mux, demux if secondary, output select)
  /// is fault-free right now.
  bool can_traverse(const StGrant& g,
                    const fault::RouterFaultState& faults) const;

 private:
  int ports_;
  core::RouterMode mode_;
};

}  // namespace rnoc::noc
