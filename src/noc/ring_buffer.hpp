// Fixed-capacity FIFO ring buffer for the simulator's hot paths (VC flit
// buffers, link flit/credit queues). Capacities are known up front (vc_depth,
// link_latency + 1), so after construction the steady state performs no
// allocation at all — unlike std::deque, whose chunked storage costs both
// allocations and cache misses on the per-cycle push/pop pattern.
//
// Growth is still supported (doubling) so unusual configurations degrade to
// correct-but-slower instead of failing; the drop-in std::deque subset
// (front / push_back / pop_front / size / empty / clear) keeps call sites and
// tests unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "common/types.hpp"

namespace rnoc::noc {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(std::size_t capacity) { reserve(capacity); }

  // Moves leave the source empty (but valid) so call sites may keep using it.
  RingBuffer(RingBuffer&& o) noexcept
      : buf_(std::move(o.buf_)),
        cap_(std::exchange(o.cap_, 0)),
        mask_(std::exchange(o.mask_, 0)),
        head_(std::exchange(o.head_, 0)),
        count_(std::exchange(o.count_, 0)) {}
  RingBuffer& operator=(RingBuffer&& o) noexcept {
    if (this != &o) {
      buf_ = std::move(o.buf_);
      cap_ = std::exchange(o.cap_, 0);
      mask_ = std::exchange(o.mask_, 0);
      head_ = std::exchange(o.head_, 0);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }

  RingBuffer(const RingBuffer& o) { *this = o; }
  RingBuffer& operator=(const RingBuffer& o) {
    if (this == &o) return *this;
    clear();
    reserve(o.cap_);
    for (std::size_t i = 0; i < o.count_; ++i) push_back(o.at(i));
    return *this;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return cap_; }

  /// Ensures room for at least `capacity` elements (rounded up to a power of
  /// two for mask indexing). Never shrinks; preserves contents.
  void reserve(std::size_t capacity) {
    if (capacity <= cap_) return;
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    auto grown = std::make_unique<T[]>(cap);
    for (std::size_t i = 0; i < count_; ++i) grown[i] = std::move(at(i));
    buf_ = std::move(grown);
    cap_ = cap;
    mask_ = cap - 1;
    head_ = 0;
  }

  T& front() {
    require(count_ > 0, "RingBuffer::front: empty");
    return buf_[head_];
  }
  const T& front() const {
    require(count_ > 0, "RingBuffer::front: empty");
    return buf_[head_];
  }

  void push_back(const T& v) {
    if (count_ == cap_) reserve(cap_ == 0 ? 4 : cap_ * 2);
    buf_[(head_ + count_) & mask_] = v;
    ++count_;
  }

  void pop_front() {
    require(count_ > 0, "RingBuffer::pop_front: empty");
    buf_[head_] = T{};  // Drop payload references eagerly.
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

  /// Element `i` positions behind the front (0 == front). Read-only access
  /// for introspection (invariant checking); FIFO mutation stays
  /// push_back/pop_front only.
  const T& at(std::size_t i) const {
    require(i < count_, "RingBuffer::at: index out of range");
    return buf_[(head_ + i) & mask_];
  }

 private:
  T& at(std::size_t i) { return buf_[(head_ + i) & mask_]; }

  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace rnoc::noc
