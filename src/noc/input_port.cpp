#include "noc/input_port.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace rnoc::noc {

const char* vc_state_name(VcState s) {
  switch (s) {
    case VcState::Idle: return "Idle";
    case VcState::Routing: return "Routing";
    case VcState::VcAlloc: return "VcAlloc";
    case VcState::Active: return "Active";
  }
  unreachable("vc_state_name: unhandled VcState");
}

void VirtualChannel::reset_to_idle() {
  state = VcState::Idle;
  route = -1;
  out_vc = -1;
  sp = -1;
  fsp = false;
  excluded_out_vc = -1;
  escape_route = false;
  unroutable = false;
  packet = 0;
  dst = kInvalidNode;
  clear_borrow_fields();
}

void VirtualChannel::clear_borrow_fields() {
  r2 = -1;
  vf = false;
  id = -1;
}

InputPort::InputPort(int vcs, int depth) : depth_(depth) {
  require(vcs >= 1, "InputPort: need at least one VC");
  require(depth >= 1, "InputPort: VC depth must be positive");
  vcs_.resize(static_cast<std::size_t>(vcs));
  for (auto& v : vcs_) v.buffer.reserve(static_cast<std::size_t>(depth));
  l2p_.resize(static_cast<std::size_t>(vcs));
  for (int i = 0; i < vcs; ++i) l2p_[static_cast<std::size_t>(i)] = i;
  drop_until_tail_.assign(static_cast<std::size_t>(vcs), 0);
  poison_.assign(static_cast<std::size_t>(vcs), PoisonSlot{});
}

void InputPort::set_mask_sink(RouterVcMasks* m, int port) {
  if (m != nullptr) {
    require(vcs() <= 32, "InputPort::set_mask_sink: masks need vcs <= 32");
    require(port >= 0 && port < RouterVcMasks::kMaxPorts,
            "InputPort::set_mask_sink: port index out of range");
  }
  masks_ = m;
  port_ = port;
  port_bit_ = m == nullptr ? 0 : 1u << static_cast<unsigned>(port);
  if (m != nullptr)
    for (int v = 0; v < vcs(); ++v) refresh_vc(v);
}

int InputPort::logical_of(int phys) const {
  check(phys);
  for (int l = 0; l < vcs(); ++l)
    if (l2p_[static_cast<std::size_t>(l)] == phys) return l;
  require(false, "InputPort::logical_of: map is not a permutation");
  return -1;
}

bool InputPort::can_accept(const Flit& f) const {
  const VirtualChannel& v = vcs_[static_cast<std::size_t>(physical_of(f.vc))];
  return static_cast<int>(v.buffer.size()) < depth_;
}

void InputPort::write(const Flit& f) {
  const int phys = physical_of(f.vc);
  VirtualChannel& v = vcs_[static_cast<std::size_t>(phys)];
  require(static_cast<int>(v.buffer.size()) < depth_,
          "InputPort::write: buffer overflow (credit protocol violated)");
  if (f.is_head()) {
    require(v.state == VcState::Idle && v.buffer.empty(),
            "InputPort::write: head flit into a busy VC");
    v.state = VcState::Routing;
    v.packet = f.packet;
    v.dst = f.dst;
  } else {
    require(v.state != VcState::Idle,
            "InputPort::write: body/tail flit into an Idle VC");
  }
  v.buffer.push_back(f);
  ++buffered_;
  if (counters_) ++counters_->router_flits;
  refresh_vc(phys);
}

Flit InputPort::pop_front(int phys) {
  VirtualChannel& v = vcs_[static_cast<std::size_t>(check(phys))];
  require(!v.buffer.empty(), "InputPort::pop_front: empty VC");
  Flit f = v.buffer.front();
  v.buffer.pop_front();
  --buffered_;
  if (counters_) --counters_->router_flits;
  refresh_vc(phys);
  return f;
}

void InputPort::transfer(int from, int to) {
  VirtualChannel& src = vcs_[static_cast<std::size_t>(check(from))];
  VirtualChannel& dst = vcs_[static_cast<std::size_t>(check(to))];
  require(from != to, "InputPort::transfer: source == destination");
  require(dst.state == VcState::Idle && dst.buffer.empty(),
          "InputPort::transfer: destination VC not idle/empty");
  require(!src.buffer.empty(), "InputPort::transfer: source VC empty");

  dst.state = src.state;
  dst.route = src.route;
  dst.out_vc = src.out_vc;
  dst.sp = src.sp;
  dst.fsp = src.fsp;
  dst.excluded_out_vc = src.excluded_out_vc;
  dst.escape_route = src.escape_route;
  dst.unroutable = src.unroutable;
  dst.packet = src.packet;
  dst.dst = src.dst;
#ifdef RNOC_TRACE
  dst.obs_arrived = src.obs_arrived;
#endif
  // Swap (not move) so both VCs keep their preallocated ring storage.
  std::swap(dst.buffer, src.buffer);
  src.reset_to_idle();

  // Swap the logical ids of the two physical VCs so that in-flight flits of
  // the moved packet (addressed to its original logical id) land in `to`,
  // and a new packet the upstream allocates to the freed id lands in `from`.
  const int l_from = logical_of(from);
  const int l_to = logical_of(to);
  std::swap(l2p_[static_cast<std::size_t>(l_from)],
            l2p_[static_cast<std::size_t>(l_to)]);
  refresh_vc(from);
  refresh_vc(to);
}

void InputPort::reset_for_run() {
  for (auto& v : vcs_) {
    v.buffer.clear();
    v.reset_to_idle();
#ifdef RNOC_TRACE
    v.obs_arrived = 0;
#endif
  }
  for (int i = 0; i < static_cast<int>(l2p_.size()); ++i)
    l2p_[static_cast<std::size_t>(i)] = i;
  drop_until_tail_.assign(drop_until_tail_.size(), 0);
  poison_.assign(poison_.size(), PoisonSlot{});
  buffered_ = 0;
  if (masks_ != nullptr)
    for (int v = 0; v < vcs(); ++v) refresh_vc(v);
}

}  // namespace rnoc::noc
