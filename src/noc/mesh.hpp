// 2D-mesh network: routers, NIs and the links wiring them together.
#pragma once

#include <memory>
#include <vector>

#include "noc/ecc_link.hpp"
#include "noc/link.hpp"
#include "noc/network_interface.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"

namespace rnoc::noc {

struct MeshConfig {
  MeshDims dims{8, 8};
  RouterConfig router{};
  Cycle link_latency = 1;
  /// Nonzero bit-upset probabilities turn every link into a SECDED-protected
  /// EccLink (per-flit single/double upset rates; see noc/ecc_link.hpp).
  double link_single_ber = 0.0;
  double link_double_ber = 0.0;
  std::uint64_t ecc_seed = 0x5ecded;
};

class Mesh {
 public:
  explicit Mesh(const MeshConfig& cfg);

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  const MeshConfig& config() const { return cfg_; }
  const MeshDims& dims() const { return cfg_.dims; }
  int nodes() const { return cfg_.dims.nodes(); }

  Router& router(NodeId n);
  const Router& router(NodeId n) const;
  NetworkInterface& ni(NodeId n);
  const NetworkInterface& ni(NodeId n) const;

  /// Advances the whole network by one cycle.
  void step(Cycle now);

  /// Installs fault-aware routing tables on every router (nullptr -> XY).
  /// The tables must outlive the mesh or the next call.
  void set_routing_tables(const FaultAwareTables* tables);

  /// Flits currently buffered in routers or in flight on links.
  int flits_in_network() const;

  /// Sum of all routers' event counters.
  RouterStats aggregate_router_stats() const;

  /// Aggregate ECC-link statistics (all zeros when links are plain).
  EccLinkStats aggregate_ecc_stats() const;

 private:
  MeshConfig cfg_;
  std::vector<Router> routers_;
  std::vector<NetworkInterface> nis_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace rnoc::noc
