// 2D-mesh network: routers, NIs and the links wiring them together.
//
// The mesh offers three stepping cores (MeshConfig::core):
//
//  - FullSweep: the seed behaviour — every router, every stage, every
//    cycle. Kept as the bit-identity oracle for the determinism tests.
//  - ActiveList: active-router scheduling — only routers with work
//    (buffered flits, pending switch-traversal grants, or a link event due
//    this cycle) and NIs with injection work are stepped. Quiescent
//    components are re-woken exactly at the cycle a link event becomes
//    takeable, so the schedule is bit-identical to the full sweep.
//  - EventDriven (default): the ActiveList wake machinery plus per-stage
//    event gating (link ready peeks, mask-based allocator fast paths) and
//    stalled-router retirement; with Simulator's idle fast-forward it jumps
//    the clock across cycles in which no component can make progress.
//    Bit-identical to both other cores (test-enforced).
//
// Incremental accounting: a NetCounters instance shared with every link,
// input port and NI makes flits_in_network(), packets_delivered() and
// all_injection_idle() O(1) — the simulator's per-cycle watchdog and drain
// checks no longer sweep the network.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "noc/ecc_link.hpp"
#include "noc/link.hpp"
#include "noc/net_counters.hpp"
#include "noc/network_interface.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/self_heal.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

/// Simulation core selection (see the file comment). All three produce
/// bit-identical SimReports; they differ only in how much work they skip.
enum class SimCore : std::uint8_t {
  FullSweep,    ///< Seed reference: step everything every cycle.
  ActiveList,   ///< Skip quiescent routers/NIs (wake scheduling).
  EventDriven,  ///< ActiveList + stage gating + idle fast-forward.
};

const char* sim_core_name(SimCore core);

struct MeshConfig {
  MeshDims dims{8, 8};
  RouterConfig router{};
  Cycle link_latency = 1;
  /// Nonzero bit-upset probabilities turn every link into a SECDED-protected
  /// EccLink (per-flit single/double upset rates; see noc/ecc_link.hpp).
  double link_single_ber = 0.0;
  double link_double_ber = 0.0;
  std::uint64_t ecc_seed = 0x5ecded;
  /// Which stepping core runs this mesh. All cores are bit-identical;
  /// FullSweep / ActiveList exist as oracles and for benchmarking.
  SimCore core = SimCore::EventDriven;
  /// Observability layer settings; only consulted in builds configured
  /// with -DRNOC_TRACE=ON (a POD, so it is embedded unconditionally).
  obs::ObsConfig obs{};

  friend bool operator==(const MeshConfig&, const MeshConfig&) = default;
};

class NocChecker;

class Mesh {
 public:
  explicit Mesh(const MeshConfig& cfg);
  ~Mesh();

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  const MeshConfig& config() const { return cfg_; }
  const MeshDims& dims() const { return cfg_.dims; }
  int nodes() const { return cfg_.dims.nodes(); }

  Router& router(NodeId n);
  const Router& router(NodeId n) const;
  NetworkInterface& ni(NodeId n);
  const NetworkInterface& ni(NodeId n) const;

  /// Advances the whole network by one cycle.
  void step(Cycle now);

 private:
  /// The EventDriven body of step(): bitmask active sets, delivery-record
  /// dispatch, fused per-router stepping (stage-major in traced builds).
  void step_event_core(Cycle now);

 public:

  /// Earliest future cycle at which any network component can make
  /// progress, or kNeverCycle when the network is fully quiescent (no
  /// active component, no queued wake). Only meaningful for the
  /// EventDriven core, evaluated right after step(now): every cycle before
  /// the returned one is provably a network no-op, so the simulator's idle
  /// fast-forward may skip straight to it.
  Cycle next_event_cycle() const;

  /// Restores the whole network (routers, NIs, links, counters, wake
  /// scheduling, checker/observer state) to its just-constructed state so
  /// a fresh Simulator can run on it without reallocating anything.
  /// Validated bit-identical to fresh construction by the sweep tests.
  void reset_for_run();

  /// Installs fault-aware routing tables on every router (nullptr -> XY).
  /// The tables must outlive the mesh or the next call.
  void set_routing_tables(const FaultAwareTables* tables);

  /// Flits currently buffered in routers or in flight on links. O(1).
  int flits_in_network() const {
    return static_cast<int>(counters_.flits_in_network());
  }

  /// O(nodes + links) recount of flits_in_network(), for validating the
  /// incremental counters in tests.
  int recount_flits_in_network() const;

  /// Total packets delivered (tail ejections) across all NIs. O(1).
  std::uint64_t packets_delivered() const {
    return counters_.packets_delivered;
  }

  /// True when every NI's injection path is idle (no queued or partially
  /// sent packets). O(1).
  bool all_injection_idle() const { return counters_.active_injectors == 0; }

  /// Tells the scheduler a fault was injected into / removed from `router`
  /// so the router is re-evaluated even if currently quiescent.
  void notify_fault(NodeId router);

  // --- Degraded mode (router death + online reroute) ---

  /// Declares router `n` dead: purges its buffers with upstream credit
  /// refunds and turns it into a credit-neutral black hole (see
  /// Router::decommission). Returns false if it was already dead.
  bool kill_router(NodeId n, Cycle now);

  /// True when no link holds an in-flight flit or credit. O(links); only
  /// polled while waiting at a degraded-mode drain barrier.
  bool links_idle() const;

  /// True when some NI is mid-serialization of a packet.
  bool any_ni_sending() const;

  /// Hard reset of every router's and NI's flow-control state to power-on
  /// values (degraded-mode drain barrier). Requires an empty network:
  /// no buffered flits, idle links, no NI mid-packet.
  void reset_flow_control();

  // --- Self-healing adaptive routing (degraded SelfHeal strategy) ---

  /// Shared fault-knowledge network every router reads during RC. Inert
  /// until activate_self_heal(); the controller drives mark_dead/propagate
  /// and table installs through this reference.
  SelfHealNet& self_heal() { return self_heal_; }
  const SelfHealNet& self_heal() const { return self_heal_; }

  /// Arms the self-heal machinery (first router death): reserves logical VC
  /// `escape_vc` as the west-first escape class on every router's VC
  /// allocator and blocks every NI from injecting new packets onto it.
  void activate_self_heal(int escape_vc);

  /// True when the escape class is empty network-wide: no input VC holds or
  /// routes on logical VC `evc`, no downstream allocation, no pending
  /// crossbar grant, no in-flight link flit addressed to it, and no NI is
  /// serializing onto it. The install barrier for a new escape-table
  /// generation (routes from two generations must never mix in the class).
  bool escape_class_clear(int evc) const;

  /// Drops every packet the RC stage flagged unroutable this cycle
  /// (Router::purge_unroutable on each router) and re-primes the invariant
  /// checker's pipeline shadow. Returns the number of purged packets.
  int purge_unroutable(Cycle now);

  /// Fragment reclamation after router deaths (SelfHeal strategy, which has
  /// no drain barrier to clean truncated packets). Collects the streams the
  /// decommission purge cut mid-forward, purges their headless remainders
  /// from every live router, releases the downstream VC allocations those
  /// remainders held, arms poison filters (router input ports and the
  /// destination NIs) for remnants still in flight, and aborts any
  /// reassembly a fragment had opened. Wakes every touched router and
  /// re-primes the invariant checker. Returns the number of VCs purged.
  int reclaim_truncated(Cycle now);

  /// Routers stepped by the most recent step() call (== nodes() when
  /// active scheduling is off). Scheduling telemetry for benchmarks.
  int routers_stepped_last_cycle() const { return stepped_last_cycle_; }

  /// Sum of all routers' event counters.
  RouterStats aggregate_router_stats() const;

  /// Aggregate ECC-link statistics (all zeros when links are plain).
  EccLinkStats aggregate_ecc_stats() const;

#ifdef RNOC_INVARIANTS
  /// The runtime invariant checker wired across this mesh (checked builds
  /// only). Tests use it to tune the watchdog and install a throwing
  /// violation handler.
  NocChecker& invariant_checker() { return *checker_; }
#endif

#ifdef RNOC_TRACE
  /// The observability layer wired across this mesh (traced builds only):
  /// flit trace ring plus the stall-cause metrics registry.
  obs::Observer& observer() { return *observer_; }
  const obs::Observer& observer() const { return *observer_; }
#endif

  /// Total stall cycles charged to each router by the metrics registry
  /// (HeatmapMetric::StallCycles); all zeros in untraced builds.
  std::vector<std::uint64_t> stall_cycles_per_router() const;

 private:
  /// Registers one link's endpoints with the invariant checker; compiles to
  /// an empty inline call in unchecked builds. Upstream holds the credit
  /// counters, downstream the buffers; per endpoint exactly one of
  /// (router, ni) is non-null.
  void note_channel(Link* link, Router* up_router, int up_port,
                    NetworkInterface* up_ni, Router* down_router,
                    int down_port, NetworkInterface* down_ni);
  /// Wake queue index space: routers are [0, nodes()), NIs are
  /// [nodes(), 2 * nodes()).
  void schedule_wake(int idx, Cycle at);
  void mark_runnable(int idx);

  /// EventDriven counterpart of mark_runnable: sets the component's bit in
  /// the active bitmask words (idempotent, no dedup byte needed).
  void mark_active_event(int idx) {
    if (idx < nodes()) {
      active_router_words_[static_cast<std::size_t>(idx) >> 6] |=
          std::uint64_t{1} << (idx & 63);
    } else {
      const int i = idx - nodes();
      active_ni_words_[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1}
                                                            << (i & 63);
    }
  }

  /// Queues a link-delivery record (EventDriven core). A record encodes
  /// `router << 4 | port << 1 | kind` (kind 0 = flit due on the router's
  /// input port, 1 = credit due on its output port); records live in
  /// per-cycle bitmaps (bit `rec`), so draining a cycle's set bits in
  /// ascending order reproduces the full sweep's accept order — router
  /// ascending, port ascending, flit before credit — with dedup for free.
  /// Draining a delivery also marks its router active, so deliveries need no
  /// companion wake.
  void schedule_delivery(std::uint32_t rec, Cycle at);

  /// Link event-hook target (see Link::set_event_hook): one precomputed
  /// record per link direction. Router sinks become delivery records under
  /// the EventDriven core and plain wakes under ActiveList; a record with
  /// the NI marker (low nibble 0xE) wakes NI `rec >> 4` under either core.
  void link_event(std::uint32_t rec, Cycle at);
  static void link_event_hook(void* ctx, std::uint32_t rec, Cycle at) {
    static_cast<Mesh*>(ctx)->link_event(rec, at);
  }

  MeshConfig cfg_;
  std::vector<Router> routers_;
  std::vector<NetworkInterface> nis_;
  std::vector<std::unique_ptr<Link>> links_;
  NetCounters counters_;
  SelfHealNet self_heal_;  ///< Shared fault-vector net (inert until armed).

  // --- Active-router scheduling state ---
  std::vector<std::uint8_t> runnable_;  ///< [0,n): routers; [n,2n): NIs.
  std::vector<int> active_routers_;
  std::vector<int> active_nis_;
  /// EventDriven active sets as bitmask words (bit b of word w = component
  /// 64w + b): set-bit iteration visits components in ascending order with
  /// no sort, no dedup byte and no compaction, and retirement is a bit
  /// clear. The ActiveList core keeps the sorted-vector machinery above as
  /// the benchmark baseline.
  std::vector<std::uint64_t> active_router_words_;
  std::vector<std::uint64_t> active_ni_words_;
  // Wake queue as a ring of per-cycle buckets instead of a priority queue:
  // every wake is at most link_latency cycles out, so bucket `at % size`
  // gives O(1) insert/drain with no heap churn on the per-cycle hot path.
  // Wakes at already-drained cycles (fault notifications, NI enqueues) go
  // to `overdue_wakes_`, drained first thing every step.
  std::vector<std::vector<int>> wake_buckets_;
  std::vector<int> overdue_wakes_;
  Cycle next_drain_ = 0;  ///< First cycle whose bucket has not been drained.
  /// Best-effort dedup: `at + 1` of the component's most recent queued wake
  /// (0 = none queued). A busy router is woken by every link event it is
  /// party to — up to ~10 identical (idx, cycle) wakes per cycle otherwise.
  std::vector<Cycle> last_wake_at_;
  /// Link-delivery queue (EventDriven core): same bucket-ring layout as the
  /// wake queue, but each bucket is a bitmap over record values (see
  /// schedule_delivery) — insertion is one OR, duplicates collapse, and
  /// set-bit iteration yields the sweep's accept order with no sorting.
  /// Replaces the per-active-router scan of all ten link peeks per cycle
  /// with a dispatch of exactly the deliveries that are due.
  std::vector<std::vector<std::uint64_t>> delivery_buckets_;
  std::vector<std::uint32_t> overdue_deliveries_;
  std::vector<std::uint64_t> due_delivery_words_;  ///< Per-step scratch.
  int stepped_last_cycle_ = 0;
#ifdef RNOC_INVARIANTS
  std::unique_ptr<NocChecker> checker_;
#endif
#ifdef RNOC_TRACE
  std::unique_ptr<obs::Observer> observer_;
#endif
};

}  // namespace rnoc::noc
