// Flits, packets and credits — the units of NoC flow control (paper §II-A).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rnoc::noc {

enum class FlitType : std::uint8_t {
  Head,      ///< Allocates router resources; carries routing info.
  Body,      ///< Payload.
  Tail,      ///< Frees router resources.
  HeadTail,  ///< Single-flit packet (head and tail at once).
};

/// Flow-control unit. `vc` is the virtual-channel id the flit occupies at its
/// *current* input port, i.e. the id the upstream node targeted; it is what
/// the credit returned upstream must name, and it is rewritten to the
/// downstream VC id at switch traversal.
struct Flit {
  FlitType type = FlitType::Head;
  PacketId packet = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t seq = 0;   ///< Flit index within the packet.
  std::uint16_t size = 1;  ///< Total flits in the packet.
  std::uint8_t traffic_class = 0;
  int vc = -1;
  Cycle created = 0;   ///< Cycle the packet was created at the source NI.
  Cycle injected = 0;  ///< Cycle the head flit entered the network.
  std::uint64_t payload = 0;  ///< Protocol payload (e.g. original requester).

  bool is_head() const {
    return type == FlitType::Head || type == FlitType::HeadTail;
  }
  bool is_tail() const {
    return type == FlitType::Tail || type == FlitType::HeadTail;
  }
};

/// A packet waiting at a network interface for injection.
struct PacketDesc {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int size_flits = 1;
  std::uint8_t traffic_class = 0;
  Cycle created = 0;
  std::uint64_t payload = 0;
};

/// Credit returned upstream when a flit leaves an input VC. `vc_free` rides
/// on the tail flit's credit and tells the upstream allocator the VC is Idle
/// again and may be re-allocated to a new packet.
struct Credit {
  int vc = -1;
  bool vc_free = false;
};

}  // namespace rnoc::noc
