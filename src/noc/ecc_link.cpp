#include "noc/ecc_link.hpp"

#include "codec/secded.hpp"
#include "common/types.hpp"

namespace rnoc::noc {

EccLink::EccLink(double single_ber, double double_ber, std::uint64_t seed,
                 Cycle latency)
    : Link(latency),
      single_ber_(single_ber),
      double_ber_(double_ber),
      seed_(seed),
      rng_(seed) {
  require(single_ber >= 0.0 && single_ber <= 1.0 && double_ber >= 0.0 &&
              double_ber <= 1.0 && single_ber + double_ber <= 1.0,
          "EccLink: error probabilities must form a distribution");
}

std::optional<Flit> EccLink::take_flit(Cycle now) {
  if (held_) {
    if (held_->ready > now) return std::nullopt;
    // Retransmission: the retried transfer is assumed clean (a second
    // independent double-error in the same flit is negligible).
    Flit f = held_->flit;
    held_.reset();
    set_held_ready(kNeverCycle);
    if (counters()) --counters()->link_flits;
    ++stats_.flits_delivered;
    return f;
  }
  auto f = Link::take_flit(now);
  if (!f) return std::nullopt;

  const double roll = rng_.next_double();
  if (roll < double_ber_) {
    // Uncorrectable: detected by SECDED, retransmit (1 cycle penalty). The
    // flit stays in flight (base take_flit already decremented) and the
    // consumer must be re-woken for the delayed delivery.
    ++stats_.retransmissions;
    held_ = Held{*f, now + 1};
    set_held_ready(now + 1);
    if (counters()) ++counters()->link_flits;
    notify_flit_ready(now + 1);
#ifdef RNOC_TRACE
    if (obs_) {
      obs_->on_event(obs::EventKind::EccRetx, now, f->packet, obs_node_, -1,
                     f->vc);
      obs_->metrics().counter_add("ecc_retransmissions");
    }
#endif
    return std::nullopt;
  }
  if (roll < double_ber_ + single_ber_) {
    // Run the low 32 payload bits through the real codec with a random
    // single-bit upset; the decode must restore them exactly.
    const auto data = static_cast<std::uint32_t>(f->payload);
    const std::uint64_t codeword = codec::secded_encode(data);
    const int bit = static_cast<int>(rng_.next_below(codec::kCodewordBits));
    const auto decoded = codec::secded_decode(codec::flip_bit(codeword, bit));
    require(decoded.status == codec::DecodeStatus::CorrectedSingle &&
                decoded.data == data,
            "EccLink: SECDED failed to correct a single-bit upset");
    f->payload = (f->payload & ~0xFFFFFFFFull) | decoded.data;
    ++stats_.corrected_singles;
  }
  ++stats_.flits_delivered;
  return f;
}

}  // namespace rnoc::noc
