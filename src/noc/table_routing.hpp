// Fault-aware table-based routing — the *network-level* tolerance strategy
// (Vicis-style rerouting around dead links/routers) as a counterpart to the
// paper's router-level protection. Lets the benches compare "protect the
// router" against "reroute around the router".
//
// Deadlock freedom comes from the west-first turn model: every route takes
// all of its West hops first. Tables are built per destination by
//   (1) finding the set of nodes that can reach the destination using only
//       non-West moves over healthy links (backward BFS), then
//   (2) sending every other node West until it enters that set.
// A route therefore looks like West* (non-West)*, which contains no
// forbidden turn, so the channel-dependency graph is acyclic.
#pragma once

#include <vector>

#include "noc/routing.hpp"

namespace rnoc::noc {

/// A directional inter-router link named by its source router and output
/// port (North/East/South/West; Local links cannot die at network level —
/// that is the router-internal fault model's job).
struct DeadLink {
  NodeId from = kInvalidNode;
  int out_port = -1;

  friend bool operator==(const DeadLink&, const DeadLink&) = default;
};

/// Immutable per-(node, destination) next-hop tables.
class FaultAwareTables {
 public:
  /// Builds west-first-compliant tables over the mesh minus `dead_links`.
  static FaultAwareTables build(const MeshDims& dims,
                                const std::vector<DeadLink>& dead_links);

  /// Output port at `current` toward `dst`; Local when current == dst;
  /// -1 when the destination is unreachable under the turn model.
  int next_port(NodeId current, NodeId dst) const;

  bool reachable(NodeId current, NodeId dst) const {
    return next_port(current, dst) >= 0;
  }

  /// True when every ordered pair of nodes can still reach each other.
  bool fully_connected() const;

  const MeshDims& dims() const { return dims_; }

 private:
  FaultAwareTables(const MeshDims& dims, std::vector<int> table)
      : dims_(dims), table_(std::move(table)) {}

  std::size_t index(NodeId current, NodeId dst) const {
    return static_cast<std::size_t>(current) *
               static_cast<std::size_t>(dims_.nodes()) +
           static_cast<std::size_t>(dst);
  }

  MeshDims dims_;
  std::vector<int> table_;  ///< next port per (current, dst); -1 unreachable.
};

}  // namespace rnoc::noc
