// Network telemetry: spatial views of where traffic flows, queues and
// blocks. Heatmaps render a mesh-shaped ASCII grid with a 0-9 intensity
// digit per router — the quickest way to see a hotspot, a faulted router
// shedding load onto its neighbours, or a detour concentrating traffic.
#pragma once

#include <string>
#include <vector>

#include "noc/mesh.hpp"

namespace rnoc::noc {

/// Per-router metric extracted for a heatmap.
enum class HeatmapMetric {
  Traversals,    ///< Cumulative crossbar traversals.
  BlockedCycles, ///< Cumulative fault-blocked VC cycles.
  Faults,        ///< Injected fault count.
  StallCycles,   ///< Stall-cause registry total (all zeros unless RNOC_TRACE).
};

/// Renders the metric across the mesh as rows of 0-9 digits (plus a legend
/// line with the min/max the scale maps to). Linear normalization.
std::string heatmap(const Mesh& mesh, HeatmapMetric metric);

/// Periodic sampler of per-router input-buffer occupancy. Call sample() on
/// any schedule; averages accumulate per router.
class OccupancySampler {
 public:
  explicit OccupancySampler(int nodes);

  void sample(const Mesh& mesh);

  std::uint64_t samples() const { return samples_; }
  /// Average buffered flits at `node` over all samples (0 if never sampled).
  double average(NodeId node) const;
  /// Network-wide average buffered flits per router.
  double network_average() const;
  /// ASCII heatmap of the per-router averages.
  std::string heatmap(const MeshDims& dims) const;
  /// Per-router averages as CSV (`node,x,y,avg_buffered_flits` header).
  std::string to_csv(const MeshDims& dims) const;

 private:
  std::vector<std::uint64_t> totals_;
  std::uint64_t samples_ = 0;
};

}  // namespace rnoc::noc
