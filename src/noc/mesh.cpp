#include "noc/mesh.hpp"

namespace rnoc::noc {

Mesh::Mesh(const MeshConfig& cfg) : cfg_(cfg) {
  require(cfg.dims.x >= 2 && cfg.dims.y >= 2, "Mesh: need at least 2x2");
  const int n = cfg.dims.nodes();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  const NiConfig ni_cfg{cfg.router.vcs, cfg.router.vc_depth,
                        cfg.router.vnets};
  for (NodeId i = 0; i < n; ++i) {
    routers_.emplace_back(i, cfg.dims, cfg.router);
    nis_.emplace_back(i, ni_cfg);
  }

  const bool ecc = cfg.link_single_ber > 0.0 || cfg.link_double_ber > 0.0;
  std::uint64_t link_seed = cfg.ecc_seed;
  auto make_link = [&]() -> Link* {
    if (ecc) {
      links_.push_back(std::make_unique<EccLink>(
          cfg.link_single_ber, cfg.link_double_ber, ++link_seed,
          cfg.link_latency));
    } else {
      links_.push_back(std::make_unique<Link>(cfg.link_latency));
    }
    return links_.back().get();
  };

  // NI <-> router local-port links.
  for (NodeId i = 0; i < n; ++i) {
    Link* inj = make_link();  // NI -> router (flits), router -> NI (credits)
    Link* ej = make_link();   // router -> NI (flits), NI -> router (credits)
    routers_[static_cast<std::size_t>(i)].attach_input(
        port_of(Direction::Local), inj);
    routers_[static_cast<std::size_t>(i)].attach_output(
        port_of(Direction::Local), ej);
    nis_[static_cast<std::size_t>(i)].attach(inj, ej);
  }

  // Inter-router links: for each node, wire East and South neighbours (the
  // reverse directions are wired from the neighbour's perspective).
  for (NodeId i = 0; i < n; ++i) {
    const Coord c = cfg.dims.coord_of(i);
    if (c.x + 1 < cfg.dims.x) {
      const NodeId e = cfg.dims.node_of({c.x + 1, c.y});
      Link* right = make_link();  // i -> e
      Link* left = make_link();   // e -> i
      routers_[static_cast<std::size_t>(i)].attach_output(
          port_of(Direction::East), right);
      routers_[static_cast<std::size_t>(e)].attach_input(
          port_of(Direction::West), right);
      routers_[static_cast<std::size_t>(e)].attach_output(
          port_of(Direction::West), left);
      routers_[static_cast<std::size_t>(i)].attach_input(
          port_of(Direction::East), left);
    }
    if (c.y + 1 < cfg.dims.y) {
      const NodeId s = cfg.dims.node_of({c.x, c.y + 1});
      Link* down = make_link();  // i -> s
      Link* up = make_link();    // s -> i
      routers_[static_cast<std::size_t>(i)].attach_output(
          port_of(Direction::South), down);
      routers_[static_cast<std::size_t>(s)].attach_input(
          port_of(Direction::North), down);
      routers_[static_cast<std::size_t>(s)].attach_output(
          port_of(Direction::North), up);
      routers_[static_cast<std::size_t>(i)].attach_input(
          port_of(Direction::South), up);
    }
  }
}

Router& Mesh::router(NodeId n) {
  require(n >= 0 && n < nodes(), "Mesh::router: node out of range");
  return routers_[static_cast<std::size_t>(n)];
}

const Router& Mesh::router(NodeId n) const {
  require(n >= 0 && n < nodes(), "Mesh::router: node out of range");
  return routers_[static_cast<std::size_t>(n)];
}

NetworkInterface& Mesh::ni(NodeId n) {
  require(n >= 0 && n < nodes(), "Mesh::ni: node out of range");
  return nis_[static_cast<std::size_t>(n)];
}

const NetworkInterface& Mesh::ni(NodeId n) const {
  require(n >= 0 && n < nodes(), "Mesh::ni: node out of range");
  return nis_[static_cast<std::size_t>(n)];
}

void Mesh::set_routing_tables(const FaultAwareTables* tables) {
  for (auto& r : routers_) r.set_routing_tables(tables);
}

void Mesh::step(Cycle now) {
  for (auto& r : routers_) r.step_accept(now);
  for (auto& r : routers_) r.step_st(now);
  for (auto& r : routers_) r.step_sa(now);
  for (auto& r : routers_) r.step_va(now);
  for (auto& r : routers_) r.step_rc(now);
  for (auto& ni : nis_) ni.step(now);
}

int Mesh::flits_in_network() const {
  int n = 0;
  for (const auto& r : routers_) n += r.buffered_flits();
  for (const auto& l : links_) n += l->flits_in_flight();
  return n;
}

RouterStats Mesh::aggregate_router_stats() const {
  RouterStats s;
  for (const auto& r : routers_) s.merge(r.stats());
  return s;
}

EccLinkStats Mesh::aggregate_ecc_stats() const {
  EccLinkStats s;
  for (const auto& l : links_) {
    if (const auto* e = dynamic_cast<const EccLink*>(l.get())) {
      s.flits_delivered += e->stats().flits_delivered;
      s.corrected_singles += e->stats().corrected_singles;
      s.retransmissions += e->stats().retransmissions;
    }
  }
  return s;
}

}  // namespace rnoc::noc
