#include "noc/mesh.hpp"

#include <algorithm>

#ifdef RNOC_INVARIANTS
#include "noc/invariants.hpp"
#endif

namespace rnoc::noc {

Mesh::~Mesh() = default;

void Mesh::note_channel(Link* link, Router* up_router, int up_port,
                        NetworkInterface* up_ni, Router* down_router,
                        int down_port, NetworkInterface* down_ni) {
#ifdef RNOC_INVARIANTS
  NocChecker::Channel ch;
  ch.link = link;
  ch.up_router = up_router;
  ch.up_port = up_port;
  ch.up_ni = up_ni;
  ch.down_router = down_router;
  ch.down_port = down_port;
  ch.down_ni = down_ni;
  checker_->add_channel(ch);
#else
  (void)link;
  (void)up_router;
  (void)up_port;
  (void)up_ni;
  (void)down_router;
  (void)down_port;
  (void)down_ni;
#endif
}

Mesh::Mesh(const MeshConfig& cfg) : cfg_(cfg) {
  require(cfg.dims.x >= 2 && cfg.dims.y >= 2, "Mesh: need at least 2x2");
  const int n = cfg.dims.nodes();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  const NiConfig ni_cfg{cfg.router.vcs, cfg.router.vc_depth,
                        cfg.router.vnets};
  for (NodeId i = 0; i < n; ++i) {
    routers_.emplace_back(i, cfg.dims, cfg.router);
    nis_.emplace_back(i, ni_cfg);
  }
  runnable_.assign(static_cast<std::size_t>(2 * n), 0);
  require(cfg.link_latency >= 1, "Mesh: link latency must be >= 1");
  wake_buckets_.resize(static_cast<std::size_t>(cfg.link_latency) + 2);
  last_wake_at_.assign(static_cast<std::size_t>(2 * n), 0);

#ifdef RNOC_INVARIANTS
  checker_ = std::make_unique<NocChecker>();
  checker_->set_mesh(this);
#endif
#ifdef RNOC_TRACE
  observer_ = std::make_unique<obs::Observer>(n, kMeshPorts, cfg.router.vcs,
                                              cfg.obs);
#endif

  for (NodeId i = 0; i < n; ++i) {
    routers_[static_cast<std::size_t>(i)].set_counters(&counters_);
    NetworkInterface& ni = nis_[static_cast<std::size_t>(i)];
    ni.set_counters(&counters_);
    ni.set_wake_hook([this, i, n] { schedule_wake(n + i, 0); });
#ifdef RNOC_INVARIANTS
    checker_->add_router(&routers_[static_cast<std::size_t>(i)]);
    checker_->add_ni(&ni);
    ni.set_invariant_checker(checker_.get());
#endif
#ifdef RNOC_TRACE
    routers_[static_cast<std::size_t>(i)].set_observer(observer_.get());
    ni.set_observer(observer_.get());
#endif
  }

  const bool ecc = cfg.link_single_ber > 0.0 || cfg.link_double_ber > 0.0;
  std::uint64_t link_seed = cfg.ecc_seed;
  // Each link wakes the consumer of its flits at the flit's arrival cycle
  // and the consumer of its credits at the credit's arrival cycle; those
  // are different components (flits flow downstream, credits upstream).
  auto make_link = [&](int flit_sink, int credit_sink) -> Link* {
    if (ecc) {
      links_.push_back(std::make_unique<EccLink>(
          cfg.link_single_ber, cfg.link_double_ber, ++link_seed,
          cfg.link_latency));
    } else {
      links_.push_back(std::make_unique<Link>(cfg.link_latency));
    }
    Link* l = links_.back().get();
    l->set_counters(&counters_);
#ifdef RNOC_TRACE
    if (ecc) {
      // Retransmit instants are charged to the flit consumer's node so they
      // show up on that router's timeline next to the stall they cause.
      const NodeId down = flit_sink < n ? flit_sink : flit_sink - n;
      static_cast<EccLink*>(l)->set_observer(observer_.get(), down);
    }
#endif
    l->set_flit_listener([this, flit_sink](Cycle at) {
      schedule_wake(flit_sink, at);
    });
    l->set_credit_listener([this, credit_sink](Cycle at) {
      schedule_wake(credit_sink, at);
    });
    return l;
  };

  // NI <-> router local-port links.
  for (NodeId i = 0; i < n; ++i) {
    Router& r = routers_[static_cast<std::size_t>(i)];
    NetworkInterface& ni = nis_[static_cast<std::size_t>(i)];
    // NI -> router (flits), router -> NI (credits).
    Link* inj = make_link(/*flit_sink=*/i, /*credit_sink=*/n + i);
    // router -> NI (flits), NI -> router (credits).
    Link* ej = make_link(/*flit_sink=*/n + i, /*credit_sink=*/i);
    r.attach_input(port_of(Direction::Local), inj);
    r.attach_output(port_of(Direction::Local), ej);
    ni.attach(inj, ej);
    note_channel(inj, nullptr, -1, &ni, &r, port_of(Direction::Local),
                 nullptr);
    note_channel(ej, &r, port_of(Direction::Local), nullptr, nullptr, -1,
                 &ni);
  }

  // Inter-router links: for each node, wire East and South neighbours (the
  // reverse directions are wired from the neighbour's perspective).
  for (NodeId i = 0; i < n; ++i) {
    const Coord c = cfg.dims.coord_of(i);
    if (c.x + 1 < cfg.dims.x) {
      const NodeId e = cfg.dims.node_of({c.x + 1, c.y});
      Router& ri = routers_[static_cast<std::size_t>(i)];
      Router& re = routers_[static_cast<std::size_t>(e)];
      Link* right = make_link(/*flit_sink=*/e, /*credit_sink=*/i);  // i -> e
      Link* left = make_link(/*flit_sink=*/i, /*credit_sink=*/e);   // e -> i
      ri.attach_output(port_of(Direction::East), right);
      re.attach_input(port_of(Direction::West), right);
      re.attach_output(port_of(Direction::West), left);
      ri.attach_input(port_of(Direction::East), left);
      note_channel(right, &ri, port_of(Direction::East), nullptr, &re,
                   port_of(Direction::West), nullptr);
      note_channel(left, &re, port_of(Direction::West), nullptr, &ri,
                   port_of(Direction::East), nullptr);
    }
    if (c.y + 1 < cfg.dims.y) {
      const NodeId s = cfg.dims.node_of({c.x, c.y + 1});
      Router& ri = routers_[static_cast<std::size_t>(i)];
      Router& rs = routers_[static_cast<std::size_t>(s)];
      Link* down = make_link(/*flit_sink=*/s, /*credit_sink=*/i);  // i -> s
      Link* up = make_link(/*flit_sink=*/i, /*credit_sink=*/s);    // s -> i
      ri.attach_output(port_of(Direction::South), down);
      rs.attach_input(port_of(Direction::North), down);
      rs.attach_output(port_of(Direction::North), up);
      ri.attach_input(port_of(Direction::South), up);
      note_channel(down, &ri, port_of(Direction::South), nullptr, &rs,
                   port_of(Direction::North), nullptr);
      note_channel(up, &rs, port_of(Direction::North), nullptr, &ri,
                   port_of(Direction::South), nullptr);
    }
  }
}

Router& Mesh::router(NodeId n) {
  require(n >= 0 && n < nodes(), "Mesh::router: node out of range");
  return routers_[static_cast<std::size_t>(n)];
}

const Router& Mesh::router(NodeId n) const {
  require(n >= 0 && n < nodes(), "Mesh::router: node out of range");
  return routers_[static_cast<std::size_t>(n)];
}

NetworkInterface& Mesh::ni(NodeId n) {
  require(n >= 0 && n < nodes(), "Mesh::ni: node out of range");
  return nis_[static_cast<std::size_t>(n)];
}

const NetworkInterface& Mesh::ni(NodeId n) const {
  require(n >= 0 && n < nodes(), "Mesh::ni: node out of range");
  return nis_[static_cast<std::size_t>(n)];
}

void Mesh::set_routing_tables(const FaultAwareTables* tables) {
  for (auto& r : routers_) r.set_routing_tables(tables);
}

void Mesh::schedule_wake(int idx, Cycle at) {
  if (!cfg_.active_scheduling) return;  // Full sweep steps everything anyway.
  Cycle& last = last_wake_at_[static_cast<std::size_t>(idx)];
  if (last == at + 1) return;  // This exact wake is already queued.
  last = at + 1;
  if (at < next_drain_) {
    overdue_wakes_.push_back(idx);
    return;
  }
  require(at - next_drain_ < static_cast<Cycle>(wake_buckets_.size()),
          "Mesh::schedule_wake: wake beyond the link-latency horizon");
  wake_buckets_[at % static_cast<Cycle>(wake_buckets_.size())].push_back(idx);
}

void Mesh::mark_runnable(int idx) {
  if (runnable_[static_cast<std::size_t>(idx)]) return;
  runnable_[static_cast<std::size_t>(idx)] = 1;
  if (idx < nodes())
    active_routers_.push_back(idx);
  else
    active_nis_.push_back(idx - nodes());
}

void Mesh::notify_fault(NodeId router) {
  require(router >= 0 && router < nodes(), "Mesh::notify_fault: bad node");
  schedule_wake(static_cast<int>(router), 0);
}

bool Mesh::kill_router(NodeId n, Cycle now) {
  require(n >= 0 && n < nodes(), "Mesh::kill_router: node out of range");
  Router& r = routers_[static_cast<std::size_t>(n)];
  if (r.dead()) return false;
  r.decommission(now);
#ifdef RNOC_INVARIANTS
  // The purge moved VCs to Idle outside the pipeline's legal transitions;
  // re-prime the checker's shadow. Delivery tracks stay: packets still in
  // flight past the dead router must keep validating in order.
  checker_->reset_history(/*clear_delivery_tracks=*/false);
#endif
  // The decommission refunds woke the upstream credit consumers via the
  // link listeners; wake the dead router itself so it swallows anything
  // already heading its way.
  notify_fault(n);
  return true;
}

bool Mesh::links_idle() const {
  for (const auto& l : links_)
    if (!l->idle()) return false;
  return true;
}

bool Mesh::any_ni_sending() const {
  for (const auto& ni : nis_)
    if (ni.sending()) return true;
  return false;
}

void Mesh::reset_flow_control() {
  require(counters_.flits_in_network() == 0 && links_idle() &&
              !any_ni_sending(),
          "Mesh::reset_flow_control: network not drained");
  for (auto& r : routers_) r.reset_flow_state();
  for (auto& ni : nis_) ni.reset_flow_state();
#ifdef RNOC_INVARIANTS
  // Truncated reassemblies left by mid-packet deaths are gone with the
  // reset; the checker's delivery expectations must go with them.
  checker_->reset_history(/*clear_delivery_tracks=*/true);
#endif
}

void Mesh::step(Cycle now) {
  if (!cfg_.active_scheduling) {
    for (auto& r : routers_) r.step_accept(now);
    for (auto& r : routers_) r.step_st(now);
    for (auto& r : routers_) r.step_sa(now);
    for (auto& r : routers_) r.step_va(now);
    for (auto& r : routers_) r.step_rc(now);
    for (auto& ni : nis_) ni.step(now);
    stepped_last_cycle_ = nodes();
#ifdef RNOC_INVARIANTS
    checker_->on_cycle_end(now);
#endif
    return;
  }

  // Pull wakes due this cycle into the runnable sets: everything overdue,
  // plus the buckets of all cycles up to `now` (one bucket when stepped on
  // consecutive cycles; the whole ring covers any larger gap).
  const std::size_t routers_before = active_routers_.size();
  const std::size_t nis_before = active_nis_.size();
  for (const int idx : overdue_wakes_) {
    last_wake_at_[static_cast<std::size_t>(idx)] = 0;
    mark_runnable(idx);
  }
  overdue_wakes_.clear();
  const Cycle nbuckets = static_cast<Cycle>(wake_buckets_.size());
  Cycle from = next_drain_;
  if (now >= nbuckets && from < now + 1 - nbuckets) from = now + 1 - nbuckets;
  for (Cycle c = from; c <= now; ++c) {
    auto& bucket = wake_buckets_[c % nbuckets];
    for (const int idx : bucket) {
      last_wake_at_[static_cast<std::size_t>(idx)] = 0;
      mark_runnable(idx);
    }
    bucket.clear();
  }
  next_drain_ = now + 1;

  // Step in ascending node order, mirroring the full sweep exactly; routers
  // untouched here would execute pure no-ops (verified by the determinism
  // tests against the full-sweep reference). The lists stay sorted across
  // cycles (retirement preserves order), so only cycles that woke someone
  // need the re-sort.
  if (active_routers_.size() != routers_before)
    std::sort(active_routers_.begin(), active_routers_.end());
  if (active_nis_.size() != nis_before)
    std::sort(active_nis_.begin(), active_nis_.end());
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_accept(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_st(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_sa(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_va(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_rc(now);
  for (const int i : active_nis_) nis_[static_cast<std::size_t>(i)].step(now);
  stepped_last_cycle_ = static_cast<int>(active_routers_.size());

  // Retire quiescent components; anything retired here is re-woken by the
  // wake queue when a link event, enqueue or fault next concerns it.
  std::size_t keep = 0;
  for (const int r : active_routers_) {
    if (routers_[static_cast<std::size_t>(r)].has_pending_work())
      active_routers_[keep++] = r;
    else
      runnable_[static_cast<std::size_t>(r)] = 0;
  }
  active_routers_.resize(keep);
  keep = 0;
  for (const int i : active_nis_) {
    if (!nis_[static_cast<std::size_t>(i)].injection_idle())
      active_nis_[keep++] = i;
    else
      runnable_[static_cast<std::size_t>(nodes() + i)] = 0;
  }
  active_nis_.resize(keep);
#ifdef RNOC_INVARIANTS
  checker_->on_cycle_end(now);
#endif
}

int Mesh::recount_flits_in_network() const {
  int n = 0;
  for (const auto& r : routers_) n += r.buffered_flits();
  for (const auto& l : links_) n += l->flits_in_flight();
  return n;
}

RouterStats Mesh::aggregate_router_stats() const {
  RouterStats s;
  for (const auto& r : routers_) s.merge(r.stats());
  return s;
}

std::vector<std::uint64_t> Mesh::stall_cycles_per_router() const {
#ifdef RNOC_TRACE
  return observer_->metrics().stall_cycles_per_router();
#else
  return std::vector<std::uint64_t>(static_cast<std::size_t>(nodes()), 0);
#endif
}

EccLinkStats Mesh::aggregate_ecc_stats() const {
  EccLinkStats s;
  for (const auto& l : links_) {
    if (const auto* e = dynamic_cast<const EccLink*>(l.get())) {
      s.flits_delivered += e->stats().flits_delivered;
      s.corrected_singles += e->stats().corrected_singles;
      s.retransmissions += e->stats().retransmissions;
    }
  }
  return s;
}

}  // namespace rnoc::noc
