#include "noc/mesh.hpp"

#include <algorithm>
#include <bit>

#ifdef RNOC_INVARIANTS
#include "noc/invariants.hpp"
#endif

namespace rnoc::noc {

const char* sim_core_name(SimCore core) {
  switch (core) {
    case SimCore::FullSweep: return "full_sweep";
    case SimCore::ActiveList: return "active_list";
    case SimCore::EventDriven: return "event";
  }
  unreachable("sim_core_name: unhandled SimCore");
}

Mesh::~Mesh() = default;

void Mesh::note_channel(Link* link, Router* up_router, int up_port,
                        NetworkInterface* up_ni, Router* down_router,
                        int down_port, NetworkInterface* down_ni) {
#ifdef RNOC_INVARIANTS
  NocChecker::Channel ch;
  ch.link = link;
  ch.up_router = up_router;
  ch.up_port = up_port;
  ch.up_ni = up_ni;
  ch.down_router = down_router;
  ch.down_port = down_port;
  ch.down_ni = down_ni;
  checker_->add_channel(ch);
#else
  (void)link;
  (void)up_router;
  (void)up_port;
  (void)up_ni;
  (void)down_router;
  (void)down_port;
  (void)down_ni;
#endif
}

Mesh::Mesh(const MeshConfig& cfg) : cfg_(cfg), self_heal_(cfg.dims) {
  require(cfg.dims.x >= 2 && cfg.dims.y >= 2, "Mesh: need at least 2x2");
  const int n = cfg.dims.nodes();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  const NiConfig ni_cfg{cfg.router.vcs, cfg.router.vc_depth,
                        cfg.router.vnets};
  for (NodeId i = 0; i < n; ++i) {
    routers_.emplace_back(i, cfg.dims, cfg.router);
    nis_.emplace_back(i, ni_cfg);
  }
  runnable_.assign(static_cast<std::size_t>(2 * n), 0);
  active_router_words_.assign(static_cast<std::size_t>(n + 63) / 64, 0);
  active_ni_words_.assign(static_cast<std::size_t>(n + 63) / 64, 0);
  require(cfg.link_latency >= 1, "Mesh: link latency must be >= 1");
  wake_buckets_.resize(static_cast<std::size_t>(cfg.link_latency) + 2);
  // Delivery bitmaps: one bit per possible record value (16 per router).
  const std::size_t dwords = (static_cast<std::size_t>(n) * 16 + 63) / 64;
  delivery_buckets_.assign(wake_buckets_.size(),
                           std::vector<std::uint64_t>(dwords, 0));
  due_delivery_words_.assign(dwords, 0);
  last_wake_at_.assign(static_cast<std::size_t>(2 * n), 0);

#ifdef RNOC_INVARIANTS
  checker_ = std::make_unique<NocChecker>();
  checker_->set_mesh(this);
#endif
#ifdef RNOC_TRACE
  observer_ = std::make_unique<obs::Observer>(n, kMeshPorts, cfg.router.vcs,
                                              cfg.obs);
#endif

  for (NodeId i = 0; i < n; ++i) {
    routers_[static_cast<std::size_t>(i)].set_counters(&counters_);
    routers_[static_cast<std::size_t>(i)].set_self_heal(&self_heal_);
    NetworkInterface& ni = nis_[static_cast<std::size_t>(i)];
    ni.set_counters(&counters_);
    ni.set_wake_hook([this, i, n] { schedule_wake(n + i, 0); });
#ifdef RNOC_INVARIANTS
    checker_->add_router(&routers_[static_cast<std::size_t>(i)]);
    checker_->add_ni(&ni);
    ni.set_invariant_checker(checker_.get());
#endif
#ifdef RNOC_TRACE
    routers_[static_cast<std::size_t>(i)].set_observer(observer_.get());
    ni.set_observer(observer_.get());
#endif
  }

  const bool ecc = cfg.link_single_ber > 0.0 || cfg.link_double_ber > 0.0;
  std::uint64_t link_seed = cfg.ecc_seed;
  // Each link notifies the consumer of its flits at the flit's arrival cycle
  // and the consumer of its credits at the credit's arrival cycle; those
  // are different components (flits flow downstream, credits upstream).
  // When the consumer is a router (port >= 0) the record is a delivery —
  // the event core dispatches those instead of scanning every active
  // router's links (ActiveList turns them into wakes); NIs gate their own
  // link peeks in step_event, so a wake alone suffices for them (marker
  // record, low nibble 0xE).
  auto make_link = [&](int flit_sink, int flit_port, int credit_sink,
                       int credit_port) -> Link* {
    if (ecc) {
      links_.push_back(std::make_unique<EccLink>(
          cfg.link_single_ber, cfg.link_double_ber, ++link_seed,
          cfg.link_latency));
    } else {
      links_.push_back(std::make_unique<Link>(cfg.link_latency));
    }
    Link* l = links_.back().get();
    l->set_counters(&counters_);
#ifdef RNOC_TRACE
    if (ecc) {
      // Retransmit instants are charged to the flit consumer's node so they
      // show up on that router's timeline next to the stall they cause.
      const NodeId down = flit_sink < n ? flit_sink : flit_sink - n;
      static_cast<EccLink*>(l)->set_observer(observer_.get(), down);
    }
#endif
    const std::uint32_t frec =
        flit_port >= 0
            ? static_cast<std::uint32_t>(flit_sink) << 4 |
                  static_cast<std::uint32_t>(flit_port) << 1
            : static_cast<std::uint32_t>(flit_sink - n) << 4 | 0xEu;
    const std::uint32_t crec =
        credit_port >= 0
            ? static_cast<std::uint32_t>(credit_sink) << 4 |
                  static_cast<std::uint32_t>(credit_port) << 1 | 1u
            : static_cast<std::uint32_t>(credit_sink - n) << 4 | 0xEu;
    l->set_event_hook(&Mesh::link_event_hook, this, frec, crec);
    return l;
  };

  // NI <-> router local-port links.
  for (NodeId i = 0; i < n; ++i) {
    Router& r = routers_[static_cast<std::size_t>(i)];
    NetworkInterface& ni = nis_[static_cast<std::size_t>(i)];
    // NI -> router (flits), router -> NI (credits).
    Link* inj = make_link(/*flit_sink=*/i, port_of(Direction::Local),
                          /*credit_sink=*/n + i, -1);
    // router -> NI (flits), NI -> router (credits).
    Link* ej = make_link(/*flit_sink=*/n + i, -1,
                         /*credit_sink=*/i, port_of(Direction::Local));
    r.attach_input(port_of(Direction::Local), inj);
    r.attach_output(port_of(Direction::Local), ej);
    ni.attach(inj, ej);
    note_channel(inj, nullptr, -1, &ni, &r, port_of(Direction::Local),
                 nullptr);
    note_channel(ej, &r, port_of(Direction::Local), nullptr, nullptr, -1,
                 &ni);
  }

  // Inter-router links: for each node, wire East and South neighbours (the
  // reverse directions are wired from the neighbour's perspective).
  for (NodeId i = 0; i < n; ++i) {
    const Coord c = cfg.dims.coord_of(i);
    if (c.x + 1 < cfg.dims.x) {
      const NodeId e = cfg.dims.node_of({c.x + 1, c.y});
      Router& ri = routers_[static_cast<std::size_t>(i)];
      Router& re = routers_[static_cast<std::size_t>(e)];
      // i -> e: flits land on e's West input; credits return to i's East
      // output. The reverse link mirrors both.
      Link* right = make_link(/*flit_sink=*/e, port_of(Direction::West),
                              /*credit_sink=*/i, port_of(Direction::East));
      Link* left = make_link(/*flit_sink=*/i, port_of(Direction::East),
                             /*credit_sink=*/e, port_of(Direction::West));
      ri.attach_output(port_of(Direction::East), right);
      re.attach_input(port_of(Direction::West), right);
      re.attach_output(port_of(Direction::West), left);
      ri.attach_input(port_of(Direction::East), left);
      note_channel(right, &ri, port_of(Direction::East), nullptr, &re,
                   port_of(Direction::West), nullptr);
      note_channel(left, &re, port_of(Direction::West), nullptr, &ri,
                   port_of(Direction::East), nullptr);
    }
    if (c.y + 1 < cfg.dims.y) {
      const NodeId s = cfg.dims.node_of({c.x, c.y + 1});
      Router& ri = routers_[static_cast<std::size_t>(i)];
      Router& rs = routers_[static_cast<std::size_t>(s)];
      // i -> s: flits land on s's North input; credits return to i's South
      // output. The reverse link mirrors both.
      Link* down = make_link(/*flit_sink=*/s, port_of(Direction::North),
                             /*credit_sink=*/i, port_of(Direction::South));
      Link* up = make_link(/*flit_sink=*/i, port_of(Direction::South),
                           /*credit_sink=*/s, port_of(Direction::North));
      ri.attach_output(port_of(Direction::South), down);
      rs.attach_input(port_of(Direction::North), down);
      rs.attach_output(port_of(Direction::North), up);
      ri.attach_input(port_of(Direction::South), up);
      note_channel(down, &ri, port_of(Direction::South), nullptr, &rs,
                   port_of(Direction::North), nullptr);
      note_channel(up, &rs, port_of(Direction::North), nullptr, &ri,
                   port_of(Direction::South), nullptr);
    }
  }
}

Router& Mesh::router(NodeId n) {
  require(n >= 0 && n < nodes(), "Mesh::router: node out of range");
  return routers_[static_cast<std::size_t>(n)];
}

const Router& Mesh::router(NodeId n) const {
  require(n >= 0 && n < nodes(), "Mesh::router: node out of range");
  return routers_[static_cast<std::size_t>(n)];
}

NetworkInterface& Mesh::ni(NodeId n) {
  require(n >= 0 && n < nodes(), "Mesh::ni: node out of range");
  return nis_[static_cast<std::size_t>(n)];
}

const NetworkInterface& Mesh::ni(NodeId n) const {
  require(n >= 0 && n < nodes(), "Mesh::ni: node out of range");
  return nis_[static_cast<std::size_t>(n)];
}

void Mesh::set_routing_tables(const FaultAwareTables* tables) {
  for (auto& r : routers_) r.set_routing_tables(tables);
}

void Mesh::schedule_wake(int idx, Cycle at) {
  if (cfg_.core == SimCore::FullSweep) return;  // Steps everything anyway.
  Cycle& last = last_wake_at_[static_cast<std::size_t>(idx)];
  if (last == at + 1) return;  // This exact wake is already queued.
  last = at + 1;
  if (at < next_drain_) {
    overdue_wakes_.push_back(idx);
    return;
  }
  require(at - next_drain_ < static_cast<Cycle>(wake_buckets_.size()),
          "Mesh::schedule_wake: wake beyond the link-latency horizon");
  wake_buckets_[at % static_cast<Cycle>(wake_buckets_.size())].push_back(idx);
}

void Mesh::schedule_delivery(std::uint32_t rec, Cycle at) {
  if (at < next_drain_) {
    overdue_deliveries_.push_back(rec);
    return;
  }
  const Cycle nbuckets = static_cast<Cycle>(delivery_buckets_.size());
  require(at - next_drain_ < nbuckets,
          "Mesh::schedule_delivery: delivery beyond the link-latency horizon");
  delivery_buckets_[at % nbuckets][rec >> 6] |= std::uint64_t{1} << (rec & 63u);
}

void Mesh::link_event(std::uint32_t rec, Cycle at) {
  if ((rec & 0xEu) == 0xEu) {  // NI marker: wake NI `rec >> 4`.
    schedule_wake(nodes() + static_cast<int>(rec >> 4), at);
    return;
  }
  if (cfg_.core == SimCore::EventDriven)
    schedule_delivery(rec, at);
  else
    schedule_wake(static_cast<int>(rec >> 4), at);
}

void Mesh::mark_runnable(int idx) {
  if (runnable_[static_cast<std::size_t>(idx)]) return;
  runnable_[static_cast<std::size_t>(idx)] = 1;
  if (idx < nodes())
    active_routers_.push_back(idx);
  else
    active_nis_.push_back(idx - nodes());
}

void Mesh::notify_fault(NodeId router) {
  require(router >= 0 && router < nodes(), "Mesh::notify_fault: bad node");
  schedule_wake(static_cast<int>(router), 0);
}

bool Mesh::kill_router(NodeId n, Cycle now) {
  require(n >= 0 && n < nodes(), "Mesh::kill_router: node out of range");
  Router& r = routers_[static_cast<std::size_t>(n)];
  if (r.dead()) return false;
  r.decommission(now);
#ifdef RNOC_INVARIANTS
  // The purge moved VCs to Idle outside the pipeline's legal transitions;
  // re-prime the checker's shadow. Delivery tracks stay: packets still in
  // flight past the dead router must keep validating in order.
  checker_->reset_history(/*clear_delivery_tracks=*/false);
#endif
  // The decommission refunds woke the upstream credit consumers via the
  // link listeners; wake the dead router itself so it swallows anything
  // already heading its way.
  notify_fault(n);
  return true;
}

void Mesh::activate_self_heal(int escape_vc) {
  require(escape_vc >= 0 && escape_vc < cfg_.router.vcs,
          "Mesh::activate_self_heal: escape VC out of range");
  self_heal_.activate(escape_vc);
  for (auto& r : routers_) r.set_escape_vc(escape_vc);
  for (auto& ni : nis_) ni.set_reserved_vc(escape_vc);
}

bool Mesh::escape_class_clear(int evc) const {
  require(evc >= 0 && evc < cfg_.router.vcs,
          "Mesh::escape_class_clear: VC out of range");
  for (const auto& r : routers_) {
    // A dead router is inert corpse state: decommission drained its buffers
    // and it will never emit another flit, but its own downstream-allocation
    // bits stay stale forever (returned credits are not processed by a
    // corpse). It cannot contribute an old-generation escape route, so it
    // does not gate the install.
    if (r.dead()) continue;
    for (int p = 0; p < kMeshPorts; ++p) {
      const InputPort& ip = r.input_port(p);
      const VirtualChannel& vc = ip.vc(ip.physical_of(evc));
      if (vc.state != VcState::Idle || !vc.buffer.empty()) return false;
      if (r.out_vc(p, evc).allocated) return false;
    }
    for (const StGrant& g : r.pending_grants())
      if (g.out_vc == evc) return false;
  }
  bool clear = true;
  for (const auto& l : links_) {
    if (!clear) break;
    l->for_each_flit([&](const Flit& f) {
      if (f.vc == evc) clear = false;
    });
  }
  if (!clear) return false;
  for (const auto& ni : nis_)
    if (ni.current_vc() == evc) return false;
  return true;
}

int Mesh::purge_unroutable(Cycle now) {
  int purged = 0;
  for (auto& r : routers_) purged += r.purge_unroutable(now);
#ifdef RNOC_INVARIANTS
  // The purge moved Routing VCs back to Idle outside the pipeline's legal
  // transitions; re-prime the checker's shadow. Delivery tracks stay — the
  // purged packets are retransmitted end-to-end under fresh ids.
  if (purged > 0) checker_->reset_history(/*clear_delivery_tracks=*/false);
#endif
  return purged;
}

int Mesh::reclaim_truncated(Cycle now) {
  // Streams the just-decommissioned routers cut mid-forward: their headless
  // remainders wedge a VC at every router they touch (the tail that would
  // free each hop died in the purge), so without a drain barrier they must
  // be reclaimed explicitly.
  std::vector<PacketId> ids;
  std::vector<std::pair<NodeId, TruncatedStream>> arm;
  for (NodeId n = 0; n < nodes(); ++n) {
    Router& r = routers_[static_cast<std::size_t>(n)];
    if (!r.dead()) continue;
    for (const TruncatedStream& t : r.take_truncated()) {
      ids.push_back(t.packet);
      arm.push_back({n, t});
    }
  }
  if (ids.empty()) return 0;

  // Purge every live VC the fragments occupy. Each chain node whose head
  // had already moved on reports the link to its successor, so together
  // with the dead routers' own records the filters cover remnants in
  // flight anywhere along the chain — including a head that left its VC
  // but has not landed downstream yet.
  int purged = 0;
  std::vector<TruncatedStream> downstream;
  for (NodeId n = 0; n < nodes(); ++n) {
    Router& r = routers_[static_cast<std::size_t>(n)];
    if (r.dead()) continue;
    downstream.clear();
    const int k = r.purge_poisoned(ids, now, downstream);
    if (k == 0) continue;
    purged += k;
    notify_fault(n);  // State changed out-of-band: re-run the router.
    for (const TruncatedStream& t : downstream) arm.push_back({n, t});
  }

  // Successor-side filters, one per released downstream allocation.
  for (const auto& [from, t] : arm) {
    if (t.out_port == port_of(Direction::Local)) continue;  // NI: below.
    const Coord c = cfg_.dims.coord_of(from);
    Coord nc = c;
    switch (direction_of(t.out_port)) {
      case Direction::North: --nc.y; break;
      case Direction::East: ++nc.x; break;
      case Direction::South: ++nc.y; break;
      case Direction::West: --nc.x; break;
      case Direction::Local: break;  // Excluded above.
    }
    require(cfg_.dims.contains(nc),
            "Mesh::reclaim_truncated: truncated stream left the mesh");
    const NodeId nb = cfg_.dims.node_of(nc);
    Router& dr = routers_[static_cast<std::size_t>(nb)];
    if (dr.dead()) continue;  // The black hole swallows remnants anyway.
    dr.input_port(opposite_port(t.out_port))
        .arm_poison(t.out_vc, t.packet, now);
    notify_fault(nb);
  }

  // Destination-NI filters: a fragment's flits only ever eject at its
  // packet's destination. Abort any reassembly it already opened there and
  // drop the checker's matching in-order expectation with it (the eventual
  // retransmission re-delivers from seq 0).
  for (const auto& [from, t] : arm) {
    (void)from;
    const int aborted_vc =
        nis_[static_cast<std::size_t>(t.dst)].poison_packet(t.packet, now);
#ifdef RNOC_INVARIANTS
    if (aborted_vc >= 0) checker_->clear_delivery_track(t.dst, aborted_vc);
#else
    (void)aborted_vc;
#endif
  }

#ifdef RNOC_INVARIANTS
  // The purge moved VCs to Idle outside the pipeline's legal transitions;
  // re-prime the checker's shadow (delivery tracks were handled above).
  if (purged > 0) checker_->reset_history(/*clear_delivery_tracks=*/false);
#endif
  return purged;
}

bool Mesh::links_idle() const {
  for (const auto& l : links_)
    if (!l->idle()) return false;
  return true;
}

bool Mesh::any_ni_sending() const {
  for (const auto& ni : nis_)
    if (ni.sending()) return true;
  return false;
}

void Mesh::reset_flow_control() {
  require(counters_.flits_in_network() == 0 && links_idle() &&
              !any_ni_sending(),
          "Mesh::reset_flow_control: network not drained");
  for (auto& r : routers_) r.reset_flow_state();
  for (auto& ni : nis_) ni.reset_flow_state();
#ifdef RNOC_INVARIANTS
  // Truncated reassemblies left by mid-packet deaths are gone with the
  // reset; the checker's delivery expectations must go with them.
  checker_->reset_history(/*clear_delivery_tracks=*/true);
#endif
}

void Mesh::step(Cycle now) {
  if (cfg_.core == SimCore::FullSweep) {
    for (auto& r : routers_) r.step_accept(now);
    for (auto& r : routers_) r.step_st(now);
    for (auto& r : routers_) r.step_sa(now);
    for (auto& r : routers_) r.step_va(now);
    for (auto& r : routers_) r.step_rc(now);
    for (auto& ni : nis_) ni.step(now);
    stepped_last_cycle_ = nodes();
#ifdef RNOC_INVARIANTS
    checker_->on_cycle_end(now);
#endif
    return;
  }

  if (cfg_.core == SimCore::EventDriven) {
    step_event_core(now);
    return;
  }

  // Pull wakes due this cycle into the runnable sets: everything overdue,
  // plus the buckets of all cycles up to `now` (one bucket when stepped on
  // consecutive cycles; the whole ring covers any larger gap).
  const std::size_t routers_before = active_routers_.size();
  const std::size_t nis_before = active_nis_.size();
  for (const int idx : overdue_wakes_) {
    last_wake_at_[static_cast<std::size_t>(idx)] = 0;
    mark_runnable(idx);
  }
  overdue_wakes_.clear();
  const Cycle nbuckets = static_cast<Cycle>(wake_buckets_.size());
  Cycle from = next_drain_;
  if (now >= nbuckets && from < now + 1 - nbuckets) from = now + 1 - nbuckets;
  for (Cycle c = from; c <= now; ++c) {
    auto& bucket = wake_buckets_[c % nbuckets];
    for (const int idx : bucket) {
      last_wake_at_[static_cast<std::size_t>(idx)] = 0;
      mark_runnable(idx);
    }
    bucket.clear();
  }
  next_drain_ = now + 1;

  // Step in ascending node order, mirroring the full sweep exactly; routers
  // untouched here would execute pure no-ops (verified by the determinism
  // tests against the full-sweep reference). The lists stay sorted across
  // cycles (retirement preserves order), so only cycles that woke someone
  // need the re-sort.
  if (active_routers_.size() != routers_before)
    std::sort(active_routers_.begin(), active_routers_.end());
  if (active_nis_.size() != nis_before)
    std::sort(active_nis_.begin(), active_nis_.end());

  std::size_t keep = 0;
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_accept(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_st(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_sa(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_va(now);
  for (const int r : active_routers_)
    routers_[static_cast<std::size_t>(r)].step_rc(now);
  for (const int i : active_nis_)
    nis_[static_cast<std::size_t>(i)].step(now);
  stepped_last_cycle_ = static_cast<int>(active_routers_.size());

  // Retire quiescent components; anything retired here is re-woken by the
  // wake queue when a link event, enqueue or fault next concerns it.
  for (const int r : active_routers_) {
    if (routers_[static_cast<std::size_t>(r)].has_pending_work())
      active_routers_[keep++] = r;
    else
      runnable_[static_cast<std::size_t>(r)] = 0;
  }
  active_routers_.resize(keep);
  keep = 0;
  for (const int i : active_nis_) {
    if (!nis_[static_cast<std::size_t>(i)].injection_idle())
      active_nis_[keep++] = i;
    else
      runnable_[static_cast<std::size_t>(nodes() + i)] = 0;
  }
  active_nis_.resize(keep);
#ifdef RNOC_INVARIANTS
  checker_->on_cycle_end(now);
#endif
}

void Mesh::step_event_core(Cycle now) {
  // Drain wakes into the active bitmask words and merge the delivery
  // bitmaps due this step: everything overdue, plus the buckets of all
  // cycles up to `now` (one bucket when stepped on consecutive cycles; the
  // whole ring covers any larger gap). Delivery buckets of cycles skipped by
  // the idle fast-forward are provably empty: a pending delivery bounds
  // next_event_cycle(), which scans the delivery bitmaps alongside the wake
  // buckets.
  for (const int idx : overdue_wakes_) {
    last_wake_at_[static_cast<std::size_t>(idx)] = 0;
    mark_active_event(idx);
  }
  overdue_wakes_.clear();
  for (const std::uint32_t rec : overdue_deliveries_)
    due_delivery_words_[rec >> 6] |= std::uint64_t{1} << (rec & 63u);
  overdue_deliveries_.clear();
  const Cycle nbuckets = static_cast<Cycle>(wake_buckets_.size());
  Cycle from = next_drain_;
  if (now >= nbuckets && from < now + 1 - nbuckets) from = now + 1 - nbuckets;
  for (Cycle c = from; c <= now; ++c) {
    auto& bucket = wake_buckets_[c % nbuckets];
    for (const int idx : bucket) {
      last_wake_at_[static_cast<std::size_t>(idx)] = 0;
      mark_active_event(idx);
    }
    bucket.clear();
    auto& dbucket = delivery_buckets_[c % nbuckets];
    for (std::size_t w = 0; w < dbucket.size(); ++w) {
      due_delivery_words_[w] |= dbucket[w];
      dbucket[w] = 0;
    }
  }
  next_drain_ = now + 1;

  // Accept stage: dispatch exactly the due deliveries instead of scanning
  // every active router's links. Ascending set-bit iteration reproduces the
  // full sweep's order (router asc, port asc, flit before credit) and the
  // bitmap collapses duplicates (the sweep takes at most one flit per port
  // per cycle, while a record can be queued twice for the same cycle: the
  // original arrival notification plus a reschedule). Each dispatched record
  // marks its router active, so deliveries need no companion wake. When a
  // further flit is already takeable behind the one just taken — an ECC
  // retransmission colliding with the next in-flight flit — it is
  // re-delivered next cycle, again matching the one-per-cycle sweep.
  for (std::size_t w = 0; w < due_delivery_words_.size(); ++w) {
    std::uint64_t bits = due_delivery_words_[w];
    if (bits == 0) continue;
    due_delivery_words_[w] = 0;
    const std::uint32_t rbase = static_cast<std::uint32_t>(w) << 6;
    do {
      const std::uint32_t rec =
          rbase + static_cast<std::uint32_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::size_t r = rec >> 4;
      active_router_words_[r >> 6] |= std::uint64_t{1} << (r & 63u);
      Router& rt = routers_[r];
      const int p = static_cast<int>(rec >> 1 & 0x7u);
      if (rec & 1u) {
        rt.drain_credits_due(p, now);
      } else if (rt.accept_flit_due(p, now) <= now) {
        schedule_delivery(rec, now + 1);
      }
    } while (bits != 0);
  }

  int stepped = 0;
#ifndef RNOC_TRACE
  // Fused per-router pass: each active router runs its whole post-accept
  // cycle (ST -> SA -> VA -> RC) and its retirement check in one visit.
  // Legal because the stages only touch router-local state — link pushes
  // mature next cycle and were all dispatched above — so per-router order
  // equals the sweep's stage-major order. Retirement (Router::
  // step_cycle_event) drops *stalled* fault-free routers: buffered flits
  // but no pending ST grants and no digest progress. Every future change
  // to such a router arrives through a wake (flit/credit listener, fault
  // notification), and until one fires, stepping it would repeat the exact
  // same no-op.
  for (std::size_t w = 0; w < active_router_words_.size(); ++w) {
    std::uint64_t bits = active_router_words_[w];
    if (bits == 0) continue;
    std::uint64_t keep_bits = bits;
    const int base = static_cast<int>(w) << 6;
    do {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      ++stepped;
      if (!routers_[static_cast<std::size_t>(base + b)].step_cycle_event(now))
        keep_bits &= ~(std::uint64_t{1} << static_cast<unsigned>(b));
    } while (bits != 0);
    active_router_words_[w] = keep_bits;
  }
#else
  // Traced builds keep the stage-major order (cross-router trace-event
  // ordering within a cycle matches the sweep) and keep stepping stalled
  // routers: their per-cycle NoCredit / LostSa / LostVa stall metrics must
  // accrue every cycle, so retirement is has_pending_work() only.
  const auto for_each_active = [&](auto&& fn) {
    for (std::size_t w = 0; w < active_router_words_.size(); ++w) {
      std::uint64_t bits = active_router_words_[w];
      const int base = static_cast<int>(w) << 6;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(routers_[static_cast<std::size_t>(base + b)]);
      }
    }
  };
  for_each_active([&](Router& r) { r.step_st(now); });
  for_each_active([&](Router& r) { r.step_sa_event(now); });
  for_each_active([&](Router& r) { r.step_va_event(now); });
  for_each_active([&](Router& r) { r.step_rc_event(now); });
  for (std::size_t w = 0; w < active_router_words_.size(); ++w) {
    std::uint64_t bits = active_router_words_[w];
    if (bits == 0) continue;
    std::uint64_t keep_bits = bits;
    const int base = static_cast<int>(w) << 6;
    do {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      ++stepped;
      if (!routers_[static_cast<std::size_t>(base + b)].has_pending_work())
        keep_bits &= ~(std::uint64_t{1} << static_cast<unsigned>(b));
    } while (bits != 0);
    active_router_words_[w] = keep_bits;
  }
#endif
  stepped_last_cycle_ = stepped;

  for (std::size_t w = 0; w < active_ni_words_.size(); ++w) {
    std::uint64_t bits = active_ni_words_[w];
    if (bits == 0) continue;
    std::uint64_t keep_bits = bits;
    const int base = static_cast<int>(w) << 6;
    do {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      NetworkInterface& ni = nis_[static_cast<std::size_t>(base + b)];
      ni.step_event(now);
      if (ni.injection_idle())
        keep_bits &= ~(std::uint64_t{1} << static_cast<unsigned>(b));
    } while (bits != 0);
    active_ni_words_[w] = keep_bits;
  }
#ifdef RNOC_INVARIANTS
  checker_->on_cycle_end(now);
#endif
}

Cycle Mesh::next_event_cycle() const {
  if (cfg_.core == SimCore::EventDriven) {
    std::uint64_t any = 0;
    for (const std::uint64_t w : active_router_words_) any |= w;
    for (const std::uint64_t w : active_ni_words_) any |= w;
    if (any != 0 || !overdue_wakes_.empty() || !overdue_deliveries_.empty())
      return next_drain_;
  } else if (!active_routers_.empty() || !active_nis_.empty() ||
             !overdue_wakes_.empty()) {
    return next_drain_;
  }
  // No active component: the next possible change is the earliest queued
  // wake or delivery. Buckets cover exactly [next_drain_, next_drain_ +
  // nbuckets).
  const Cycle nbuckets = static_cast<Cycle>(wake_buckets_.size());
  for (Cycle c = next_drain_; c < next_drain_ + nbuckets; ++c) {
    if (!wake_buckets_[c % nbuckets].empty()) return c;
    if (cfg_.core == SimCore::EventDriven) {
      std::uint64_t any = 0;
      for (const std::uint64_t w : delivery_buckets_[c % nbuckets]) any |= w;
      if (any != 0) return c;
    }
  }
  return kNeverCycle;
}

void Mesh::reset_for_run() {
  for (auto& r : routers_) r.reset_for_run();
  for (auto& ni : nis_) ni.reset_for_run();
  for (auto& l : links_) l->reset_for_run();
  self_heal_.reset();
  counters_ = NetCounters{};
  std::fill(runnable_.begin(), runnable_.end(), 0);
  active_routers_.clear();
  active_nis_.clear();
  std::fill(active_router_words_.begin(), active_router_words_.end(), 0);
  std::fill(active_ni_words_.begin(), active_ni_words_.end(), 0);
  for (auto& b : wake_buckets_) b.clear();
  overdue_wakes_.clear();
  for (auto& b : delivery_buckets_) std::fill(b.begin(), b.end(), 0);
  overdue_deliveries_.clear();
  std::fill(due_delivery_words_.begin(), due_delivery_words_.end(), 0);
  next_drain_ = 0;
  std::fill(last_wake_at_.begin(), last_wake_at_.end(), 0);
  stepped_last_cycle_ = 0;
#ifdef RNOC_INVARIANTS
  checker_->reset_history(/*clear_delivery_tracks=*/true);
#endif
#ifdef RNOC_TRACE
  // The observer accumulates a whole run's trace and metrics; a fresh run
  // needs a fresh one, re-wired everywhere the constructor wired it.
  observer_ = std::make_unique<obs::Observer>(nodes(), kMeshPorts,
                                              cfg_.router.vcs, cfg_.obs);
  for (NodeId i = 0; i < nodes(); ++i) {
    routers_[static_cast<std::size_t>(i)].set_observer(observer_.get());
    nis_[static_cast<std::size_t>(i)].set_observer(observer_.get());
  }
  for (auto& l : links_)
    if (auto* e = dynamic_cast<EccLink*>(l.get()))
      e->set_observer(observer_.get(), e->obs_node());
#endif
}

int Mesh::recount_flits_in_network() const {
  int n = 0;
  for (const auto& r : routers_) n += r.buffered_flits();
  for (const auto& l : links_) n += l->flits_in_flight();
  return n;
}

RouterStats Mesh::aggregate_router_stats() const {
  RouterStats s;
  for (const auto& r : routers_) s.merge(r.stats());
  return s;
}

std::vector<std::uint64_t> Mesh::stall_cycles_per_router() const {
#ifdef RNOC_TRACE
  return observer_->metrics().stall_cycles_per_router();
#else
  return std::vector<std::uint64_t>(static_cast<std::size_t>(nodes()), 0);
#endif
}

EccLinkStats Mesh::aggregate_ecc_stats() const {
  EccLinkStats s;
  for (const auto& l : links_) {
    if (const auto* e = dynamic_cast<const EccLink*>(l.get())) {
      s.flits_delivered += e->stats().flits_delivered;
      s.corrected_singles += e->stats().corrected_singles;
      s.retransmissions += e->stats().retransmissions;
    }
  }
  return s;
}

}  // namespace rnoc::noc
