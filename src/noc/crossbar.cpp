#include "noc/crossbar.hpp"

namespace rnoc::noc {

Crossbar::Crossbar(int ports, core::RouterMode mode)
    : ports_(ports), mode_(mode) {
  require(ports >= 1, "Crossbar: need at least one port");
}

bool Crossbar::can_traverse(const StGrant& g,
                            const fault::RouterFaultState& faults) const {
  using fault::SiteType;
  require(g.mux >= 0 && g.mux < ports_ && g.out_port >= 0 &&
              g.out_port < ports_,
          "Crossbar::can_traverse: grant out of range");
  if (faults.count() == 0) {
    // Fault-free fast path: the primary path always works; a secondary-path
    // grant (stale FSP from an expired transient) is valid iff it names the
    // designated neighbour mux, same as the full check below.
    if (g.mux == g.out_port) return true;
    return mode_ != core::RouterMode::Baseline &&
           core::secondary_mux_for_output(g.out_port, ports_) == g.mux;
  }
  if (faults.has(SiteType::XbMux, g.mux)) return false;
  if (mode_ == core::RouterMode::Baseline) {
    // The generic crossbar has no demuxes or output-select muxes.
    return g.mux == g.out_port;
  }
  if (faults.has(SiteType::XbPSelect, g.out_port)) return false;
  if (g.mux != g.out_port) {
    // Secondary path: through the demux hanging off the borrowed mux.
    if (core::secondary_mux_for_output(g.out_port, ports_) != g.mux)
      return false;
    if (faults.has(SiteType::XbDemux, g.mux)) return false;
  }
  return true;
}

}  // namespace rnoc::noc
