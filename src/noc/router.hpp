// The NoC router: a 4-stage (RC -> VA -> SA -> XB) virtual-channel router
// (paper §II) that can run as the unprotected baseline or as the paper's
// fault-tolerant protected router (§V), selected by RouterConfig::mode.
//
// Per simulation cycle the owning Mesh calls, in order:
//   step_accept  - buffer-write: drain arriving flits and credits
//   step_st      - switch traversal of the previous cycle's SA winners
//   step_sa      - switch allocation (with bypass / secondary-path logic)
//   step_va      - virtual-channel allocation (with arbiter sharing)
//   step_rc      - route computation (with the duplicate RC unit)
// A head flit therefore spends one cycle in each stage; with the 1-cycle
// link this gives the canonical 4-stage-pipeline hop latency.
#pragma once

#include <vector>

#include "core/protection.hpp"
#include "fault/fault_model.hpp"
#include "noc/crossbar.hpp"
#include "noc/input_port.hpp"
#include "noc/link.hpp"
#include "noc/router_state.hpp"
#include "noc/routing.hpp"
#include "noc/sw_allocator.hpp"
#include "noc/table_routing.hpp"
#include "noc/vc_allocator.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

/// Routing algorithm the RC stage runs (fault-aware tables, when installed,
/// override either).
enum class RoutingAlgo {
  XY,       ///< Deterministic dimension-order (the paper's setup).
  OddEven,  ///< Minimal adaptive under the odd-even turn model.
};

/// What the RC stage decided for one head flit.
enum class RcOutcome {
  Granted,     ///< Route committed; the VC advances to VcAlloc.
  Blocked,     ///< An untolerated fault blocks the VC this cycle (retry).
  Unreachable  ///< Fault-aware tables have no path to the destination.
};

struct RouterConfig {
  int vcs = 4;       ///< Virtual channels per input port.
  int vc_depth = 4;  ///< Flit slots per VC.
  core::RouterMode mode = core::RouterMode::Protected;
  RoutingAlgo routing = RoutingAlgo::XY;
  /// Cycles each VC spends as the SA bypass path's default winner.
  Cycle default_winner_epoch = 16;
  /// Virtual networks (protocol classes). Must divide vcs evenly. Packets
  /// of traffic class c are confined to the VCs of vnet (c mod vnets).
  int vnets = 1;
};

class Router {
 public:
  Router(NodeId id, const MeshDims& dims, const RouterConfig& cfg);

  NodeId id() const { return id_; }
  int ports() const { return kMeshPorts; }
  int vcs() const { return cfg_.vcs; }
  const RouterConfig& config() const { return cfg_; }

  /// Wiring (done once by the Mesh). Input links deliver flits to port
  /// `port` and carry our credits upstream; output links take our flits and
  /// bring the downstream node's credits back.
  void attach_input(int port, Link* link);
  void attach_output(int port, Link* link);

  void step_accept(Cycle now);
  void step_st(Cycle now);
  void step_sa(Cycle now);
  void step_va(Cycle now);
  void step_rc(Cycle now);

  fault::RouterFaultState& faults() { return faults_; }
  const fault::RouterFaultState& faults() const { return faults_; }

  /// Switches the RC stage from XY routing to fault-aware tables (network-
  /// level rerouting). Pass nullptr to return to XY. The tables must outlive
  /// the router.
  void set_routing_tables(const FaultAwareTables* tables);

  /// True once decommission() ran: the router is a dead black hole.
  bool dead() const { return dead_; }

  /// Declares the router dead (degraded mode). Cancels pending switch
  /// traversals with credit refunds, purges every buffered flit while
  /// returning its credit upstream (so neighbours' flow control stays
  /// conserved), and from then on step_accept swallows arriving flits with
  /// an immediate credit return; the pipeline stages become no-ops.
  void decommission(Cycle now);

  /// Returns all flow-control state (input VCs, output-VC credit counters,
  /// pending grants) to power-on values. Only legal at a degraded-mode
  /// drain barrier, when the network provably holds no flits and no
  /// credits are in flight.
  void reset_flow_state();

  const RouterStats& stats() const { return stats_; }
  InputPort& input_port(int p);
  const InputPort& input_port(int p) const;
  const OutVcState& out_vc(int port, int vc) const;

  /// Switch-traversal grants issued by this cycle's SA stage, consumed by
  /// the next cycle's ST stage (invariant checking / diagnostics).
  const std::vector<StGrant>& pending_grants() const { return st_pending_; }

#ifdef RNOC_INVARIANTS
  /// Test-only corruption hook (invariant-checked builds): skews an output
  /// VC's credit counter by `delta`, so directed tests can break credit
  /// conservation and assert the NocChecker catches it.
  void test_corrupt_credit(int port, int vc, int delta) {
    out_vcs_[static_cast<std::size_t>(port)][static_cast<std::size_t>(vc)]
        .credits += delta;
  }
#endif

#ifdef RNOC_TRACE
  /// Wires the observability layer (set once by the Mesh; traced builds
  /// only). Forwarded to both allocators for stall attribution.
  void set_observer(obs::Observer* o) {
    obs_ = o;
    va_.set_observer(o, id_);
    sa_.set_observer(o, id_);
  }
#endif

  /// Flits buffered across all input ports (drain/deadlock detection).
  /// O(ports): each port keeps an exact running count.
  int buffered_flits() const;

  /// True when this router must be stepped next cycle even absent new link
  /// events: it holds buffered flits (retries, blocked VCs, SA competition)
  /// or switch-traversal grants issued by the previous SA stage.
  bool has_pending_work() const {
    return buffered_flits() > 0 || !st_pending_.empty();
  }

  /// Shared accounting sink for this router's input buffers (set by the
  /// Mesh); nullptr = standalone use.
  void set_counters(NetCounters* c) {
    for (auto& ip : inputs_) ip.set_counters(c);
  }

 private:
  friend class RouterTestPeer;

  /// Route computation for one head flit, including the SP/FSP secondary
  /// path determination (paper §V-A, §V-D). Blocked = an untolerated fault
  /// stalls the VC; Unreachable = the fault-aware tables have no path.
  RcOutcome compute_route(VirtualChannel& vc, const Flit& head, int in_port);

  /// Commits output `out` into the VC's R/SP/FSP fields if the crossbar can
  /// still reach it under the current faults and mode.
  bool try_output(VirtualChannel& vc, int out);

  /// Free downstream buffer slots at `out` (the adaptive selection metric).
  int free_credits(int out) const;

  NodeId id_;
  MeshDims dims_;
  RouterConfig cfg_;
  std::vector<InputPort> inputs_;
  std::vector<std::vector<OutVcState>> out_vcs_;  ///< [port][logical vc]
  std::vector<Link*> in_links_;
  std::vector<Link*> out_links_;
  fault::RouterFaultState faults_;
  const FaultAwareTables* route_tables_ = nullptr;
  VcAllocator va_;
  SwitchAllocator sa_;
  Crossbar xb_;
  std::vector<int> rc_rr_;  ///< Per-port RC round-robin pointer over VCs.
  std::vector<StGrant> st_pending_;
  RouterStats stats_;
  bool dead_ = false;
#ifdef RNOC_TRACE
  obs::Observer* obs_ = nullptr;
#endif
};

}  // namespace rnoc::noc
