// The NoC router: a 4-stage (RC -> VA -> SA -> XB) virtual-channel router
// (paper §II) that can run as the unprotected baseline or as the paper's
// fault-tolerant protected router (§V), selected by RouterConfig::mode.
//
// Per simulation cycle the owning Mesh calls, in order:
//   step_accept  - buffer-write: drain arriving flits and credits
//   step_st      - switch traversal of the previous cycle's SA winners
//   step_sa      - switch allocation (with bypass / secondary-path logic)
//   step_va      - virtual-channel allocation (with arbiter sharing)
//   step_rc      - route computation (with the duplicate RC unit)
// A head flit therefore spends one cycle in each stage; with the 1-cycle
// link this gives the canonical 4-stage-pipeline hop latency.
#pragma once

#include <memory>
#include <vector>

#include "core/protection.hpp"
#include "fault/fault_model.hpp"
#include "noc/crossbar.hpp"
#include "noc/input_port.hpp"
#include "noc/link.hpp"
#include "noc/router_state.hpp"
#include "noc/routing.hpp"
#include "noc/self_heal.hpp"
#include "noc/sw_allocator.hpp"
#include "noc/table_routing.hpp"
#include "noc/vc_allocator.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

/// Routing algorithm the RC stage runs (fault-aware tables, when installed,
/// override either).
enum class RoutingAlgo {
  XY,       ///< Deterministic dimension-order (the paper's setup).
  OddEven,  ///< Minimal adaptive under the odd-even turn model.
};

/// What the RC stage decided for one head flit.
enum class RcOutcome {
  Granted,     ///< Route committed; the VC advances to VcAlloc.
  Blocked,     ///< An untolerated fault blocks the VC this cycle (retry).
  Unreachable  ///< Fault-aware tables have no path to the destination.
};

struct RouterConfig {
  int vcs = 4;       ///< Virtual channels per input port.
  int vc_depth = 4;  ///< Flit slots per VC.
  core::RouterMode mode = core::RouterMode::Protected;
  RoutingAlgo routing = RoutingAlgo::XY;
  /// Cycles each VC spends as the SA bypass path's default winner.
  Cycle default_winner_epoch = 16;
  /// Virtual networks (protocol classes). Must divide vcs evenly. Packets
  /// of traffic class c are confined to the VCs of vnet (c mod vnets).
  int vnets = 1;

  friend bool operator==(const RouterConfig&, const RouterConfig&) = default;
};

/// A packet the decommission purge cut after its head had already been
/// forwarded: a headless remainder of it lives (or is in flight) beyond
/// `out_port`. Consumed by Mesh::reclaim_truncated, the self-heal
/// controller's fragment-reclamation sweep; the drain-reroute strategy
/// ignores these (its barrier reset cleans fragments wholesale).
struct TruncatedStream {
  PacketId packet = 0;
  NodeId dst = kInvalidNode;  ///< Packet destination (NI filter arming).
  int out_port = -1;          ///< Output port the head left through.
  int out_vc = -1;            ///< Downstream VC it held (logical id).
};

class Router {
 public:
  Router(NodeId id, const MeshDims& dims, const RouterConfig& cfg);

  NodeId id() const { return id_; }
  int ports() const { return kMeshPorts; }
  int vcs() const { return cfg_.vcs; }
  const RouterConfig& config() const { return cfg_; }

  /// Wiring (done once by the Mesh). Input links deliver flits to port
  /// `port` and carry our credits upstream; output links take our flits and
  /// bring the downstream node's credits back.
  void attach_input(int port, Link* link);
  void attach_output(int port, Link* link);

  void step_accept(Cycle now);
  void step_st(Cycle now);
  void step_sa(Cycle now);
  void step_va(Cycle now);
  void step_rc(Cycle now);

  /// Event-core stage variants: bit-identical to the step_* counterparts.
  /// step_accept_event consults the links' next_flit_ready / next_credit_ready
  /// peeks so idle ports cost two compares; the SA/VA/RC variants consult the
  /// VC-state mask aggregate so only ports with eligible VCs are visited,
  /// falling back to the full fault-aware step whenever this router carries
  /// any fault (or has too many VCs for the masks).
  void step_accept_event(Cycle now);
  void step_sa_event(Cycle now);
  void step_va_event(Cycle now);
  void step_rc_event(Cycle now);

  /// Delivery-event entry points (event core): called by the Mesh when a
  /// link's scheduled delivery cycle arrives, instead of scanning every
  /// port's links. accept_flit_due takes at most one ready flit from input
  /// port `p` (exactly what one step_accept visit does) and returns the
  /// link's next ready cycle afterwards, so the Mesh can reschedule when a
  /// further flit is already waiting behind the one just taken (kNeverCycle
  /// when none). drain_credits_due drains every ready credit from output
  /// port `p`'s return link.
  Cycle accept_flit_due(int p, Cycle now);
  void drain_credits_due(int p, Cycle now);

  /// Fused event-core cycle: runs ST -> SA -> VA -> RC (the post-accept
  /// stages; deliveries were already dispatched by the Mesh) and evaluates
  /// the retirement condition in one pass. Returns true when the router must
  /// stay active next cycle: it holds pending work AND (grants are pending,
  /// a fault is present, or some stage made progress this cycle). A stalled
  /// fault-free router whose digest did not change is a provable no-op until
  /// the next wake. The stages only touch router-local state and push onto
  /// links whose deliveries mature next cycle, so fusing per router is
  /// order-equivalent to the sweep's stage-major order.
  bool step_cycle_event(Cycle now);

  /// Monotonic counter summarising every form of pipeline progress a
  /// fault-free router can make in a cycle (buffer writes, swallows,
  /// traversals, blocked-VC retries, VA allocations, RC computations, SA
  /// packet transfers). The event core retires a fault-free router whose
  /// digest did not change over a stepped cycle and whose ST queue is empty:
  /// every input that could un-stall it (flit, credit, fault) arrives
  /// through a wake.
  std::uint64_t progress_digest() const {
    return stats_.buffer_writes + stats_.flits_swallowed +
           stats_.flits_traversed + stats_.blocked_vc_cycles +
           stats_.va_allocations + stats_.rc_computations +
           stats_.sa1_transfers;
  }

  /// Restores the router to its just-constructed state (Mesh::reset_for_run):
  /// buffers, VC/flow-control state, arbiter pointers, stats, faults, death.
  void reset_for_run();

  fault::RouterFaultState& faults() { return faults_; }
  const fault::RouterFaultState& faults() const { return faults_; }

  /// Switches the RC stage from XY routing to fault-aware tables (network-
  /// level rerouting). Pass nullptr to return to XY. The tables must outlive
  /// the router.
  void set_routing_tables(const FaultAwareTables* tables);

  /// Wires the self-healing routing state (degraded SelfHeal strategy; set
  /// once by the Mesh). While the net is inactive the RC stage behaves
  /// exactly as without it; once activated, odd-even candidates are filtered
  /// by the local fault vector with the west-first escape VC as fallback.
  void set_self_heal(const SelfHealNet* sh) { sh_ = sh; }

  /// Arms the VA stage's escape-VC class: logical VC `evc` is granted only
  /// to packets RC flagged for the escape path, and those packets get
  /// nothing else (-1 disarms). Called at self-heal activation.
  void set_escape_vc(int evc) { va_.set_escape_vc(evc); }

  /// True when RC proved some buffered packet unroutable even via the
  /// escape tables; cleared by purge_unroutable.
  bool has_unroutable() const { return has_unroutable_; }

  /// Controller-executed drop of every unroutable packet flagged by RC:
  /// pops its buffered flits with upstream credit returns, arms the
  /// drop-until-tail filter for the in-flight remainder, and resets the VC.
  /// Returns the number of packets purged. Must run between mesh steps (the
  /// caller follows up with a checker history reset, as after a kill).
  int purge_unroutable(Cycle now);

  /// Streams the decommission purge truncated mid-forward (their heads
  /// already downstream), moved out — and thereby cleared — by the
  /// reclamation sweep. Stays empty for routers that never died.
  std::vector<TruncatedStream> take_truncated() {
    return std::move(truncated_);
  }

  /// Self-heal reclamation: purges every input VC occupied by one of the
  /// flagged packets — upstream credit refunds exactly like decommission —
  /// cancelling its pending switch grant, releasing the downstream VC it
  /// held, and arming this port's poison filter for the in-flight remnants.
  /// Each released allocation whose head already left is appended to
  /// `downstream` so the Mesh can arm the neighbour's filter too. Returns
  /// the number of VCs purged; the caller follows up with a checker history
  /// reset, as after a kill.
  int purge_poisoned(const std::vector<PacketId>& ids, Cycle now,
                     std::vector<TruncatedStream>& downstream);

  /// True once decommission() ran: the router is a dead black hole.
  bool dead() const { return dead_; }

  /// Declares the router dead (degraded mode). Cancels pending switch
  /// traversals with credit refunds, purges every buffered flit while
  /// returning its credit upstream (so neighbours' flow control stays
  /// conserved), and from then on step_accept swallows arriving flits with
  /// an immediate credit return; the pipeline stages become no-ops.
  void decommission(Cycle now);

  /// Returns all flow-control state (input VCs, output-VC credit counters,
  /// pending grants) to power-on values. Only legal at a degraded-mode
  /// drain barrier, when the network provably holds no flits and no
  /// credits are in flight.
  void reset_flow_state();

  const RouterStats& stats() const { return stats_; }
  InputPort& input_port(int p);
  const InputPort& input_port(int p) const;
  const OutVcState& out_vc(int port, int vc) const;

  /// Switch-traversal grants issued by this cycle's SA stage, consumed by
  /// the next cycle's ST stage (invariant checking / diagnostics).
  const std::vector<StGrant>& pending_grants() const { return st_pending_; }

#ifdef RNOC_INVARIANTS
  /// Test-only corruption hook (invariant-checked builds): skews an output
  /// VC's credit counter by `delta`, so directed tests can break credit
  /// conservation and assert the NocChecker catches it.
  void test_corrupt_credit(int port, int vc, int delta) {
    out_vcs_[static_cast<std::size_t>(port)][static_cast<std::size_t>(vc)]
        .credits += delta;
  }
#endif

#ifdef RNOC_TRACE
  /// Wires the observability layer (set once by the Mesh; traced builds
  /// only). Forwarded to both allocators for stall attribution.
  void set_observer(obs::Observer* o) {
    obs_ = o;
    va_.set_observer(o, id_);
    sa_.set_observer(o, id_);
  }
#endif

  /// Flits buffered across all input ports (drain/deadlock detection).
  /// O(ports): each port keeps an exact running count.
  int buffered_flits() const;

  /// True when this router must be stepped next cycle even absent new link
  /// events: it holds buffered flits (retries, blocked VCs, SA competition)
  /// or switch-traversal grants issued by the previous SA stage. With the
  /// VC-state masks wired, "some flit buffered" is equivalent to "some VC in
  /// Routing, VcAlloc, or non-empty Active" (a non-empty VC is never Idle:
  /// a head write leaves Idle and the tail pop returns to it), so the check
  /// is two loads instead of a walk over every input port.
  bool has_pending_work() const {
    if (!st_pending_.empty()) return true;
    if (vc_masks_ != nullptr)
      return (vc_masks_->routing_ports | vc_masks_->vcalloc_ports |
              vc_masks_->ready_ports) != 0;
    return buffered_flits() > 0;
  }

  /// Shared accounting sink for this router's input buffers (set by the
  /// Mesh); nullptr = standalone use.
  void set_counters(NetCounters* c) {
    for (auto& ip : inputs_) ip.set_counters(c);
  }

 private:
  friend class RouterTestPeer;

  /// Shared bodies of step_accept / step_accept_event: processing of one
  /// taken flit and one output link's credit drain.
  void accept_flit_from(Link& l, int p, Cycle now);
  void drain_credits_from(Link& l, int p, Cycle now);

  /// Route computation for one head flit, including the SP/FSP secondary
  /// path determination (paper §V-A, §V-D). Blocked = an untolerated fault
  /// stalls the VC; Unreachable = the fault-aware tables (or the self-heal
  /// escape tables) have no path. `in_phys` is the VC's physical index (the
  /// self-heal path derives its logical id for escape-class stickiness).
  RcOutcome compute_route(VirtualChannel& vc, const Flit& head, int in_port,
                          int in_phys, Cycle now);

  /// Commits output `out` into the VC's R/SP/FSP fields if the crossbar can
  /// still reach it under the current faults and mode.
  bool try_output(VirtualChannel& vc, int out);

  /// Free downstream buffer slots at `out` (the adaptive selection metric).
  int free_credits(int out) const;

  NodeId id_;
  MeshDims dims_;
  RouterConfig cfg_;
  /// VC pipeline-state masks for the event core's allocator fast paths.
  /// Heap-allocated so the input ports' sink pointers survive a Router move;
  /// null when cfg_.vcs > 32 (the event stages then use the scanning paths).
  std::unique_ptr<RouterVcMasks> vc_masks_;
  std::vector<InputPort> inputs_;
  std::vector<std::vector<OutVcState>> out_vcs_;  ///< [port][logical vc]
  std::vector<Link*> in_links_;
  std::vector<Link*> out_links_;
  fault::RouterFaultState faults_;
  const FaultAwareTables* route_tables_ = nullptr;
  const SelfHealNet* sh_ = nullptr;
  bool has_unroutable_ = false;
  VcAllocator va_;
  SwitchAllocator sa_;
  Crossbar xb_;
  std::vector<int> rc_rr_;  ///< Per-port RC round-robin pointer over VCs.
  std::vector<StGrant> st_pending_;
  std::vector<TruncatedStream> truncated_;  ///< See take_truncated().
  RouterStats stats_;
  bool dead_ = false;
#ifdef RNOC_TRACE
  obs::Observer* obs_ = nullptr;
#endif
};

}  // namespace rnoc::noc
