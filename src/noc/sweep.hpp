// Parallel sweep runner: executes batches of independent simulations on the
// shared thread pool.
//
// Every figure and ablation in bench/ is a sweep — dozens of Simulator runs
// that differ only in config, traffic, fault plan or seed, with no data
// dependencies between them. SweepRunner runs such a batch with one
// parallel_for, one worker per in-flight simulation, and returns the reports
// in job order. Determinism: each job carries its own SimConfig::seed, every
// Simulator derives its per-node and response RNG streams from that seed
// alone, and each job constructs a private traffic model via its factory —
// so the reports are bit-identical to running the jobs sequentially, in any
// worker interleaving.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/table_routing.hpp"
#include "traffic/patterns.hpp"

namespace rnoc::noc {

/// One simulation of a sweep. The traffic factory is invoked on the worker
/// thread so each job owns a private TrafficModel instance (models are
/// stateful; sharing one across concurrent simulations would race).
struct SweepJob {
  SimConfig cfg;
  std::function<std::shared_ptr<traffic::TrafficModel>()> make_traffic;
  fault::FaultPlan faults;  ///< Empty plan = fault-free run.
  /// Optional fault-aware routing tables; must outlive the run() call.
  const FaultAwareTables* tables = nullptr;
};

class SweepRunner {
 public:
  /// Runs on `pool`, or on global_pool() when null.
  explicit SweepRunner(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Runs every job and returns the reports in job order. Safe to call from
  /// a worker of the same pool (the batch then runs inline, sequentially).
  ///
  /// Each worker keeps one cached Mesh across consecutive jobs that share a
  /// MeshConfig (the common case — sweeps vary load, seed or traffic, not
  /// the mesh), restored with Mesh::reset_for_run instead of reconstructed.
  std::vector<SimReport> run(const std::vector<SweepJob>& jobs) const;

  /// Disables the mesh cache: every job constructs a fresh Mesh. Used by
  /// the tests that validate reset_for_run against fresh construction.
  void set_reuse_mesh(bool reuse) { reuse_mesh_ = reuse; }

  /// Pools the reports of a batch into one: latency statistics are merged,
  /// event counters and energies summed, deadlock flags OR-ed. Throughput
  /// is the mean of the per-run throughputs (runs may differ in length).
  static SimReport merge(const std::vector<SimReport>& reports);

 private:
  ThreadPool* pool_;
  bool reuse_mesh_ = true;
};

}  // namespace rnoc::noc
