// Network interface (NI): the traffic endpoint attached to each router's
// local port. Segments packets into flits, injects them under credit flow
// control, reassembles/ejects arriving packets and records latencies.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "noc/flit.hpp"
#include "noc/link.hpp"
#include "noc/net_counters.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

struct NiConfig {
  int vcs = 4;       ///< VCs of the router's local input port.
  int vc_depth = 4;  ///< Credits per VC.
  int vnets = 1;     ///< Virtual networks (must divide vcs; see noc/vnet.hpp).
};

struct NiStats {
  /// Bin range of the latency histogram; latencies above clamp to the top
  /// bin, which only matters for saturated runs.
  static constexpr double kLatencyHistMax = 4096.0;
  static constexpr std::size_t kLatencyHistBins = 512;

  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_injected = 0;  ///< Head flit entered the network.
  std::uint64_t packets_received = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_received = 0;
  /// Remnants of reclaimed fragments swallowed at ejection (self-heal).
  std::uint64_t flits_dropped = 0;
  std::uint64_t queue_peak = 0;
  RunningStats total_latency;    ///< creation -> tail ejection (measured pkts).
  RunningStats network_latency;  ///< injection -> tail ejection (measured pkts).
  Histogram latency_hist{0.0, kLatencyHistMax, kLatencyHistBins};
};

class NocChecker;

class NetworkInterface {
 public:
  NetworkInterface(NodeId node, const NiConfig& cfg);

  NodeId node() const { return node_; }
  const NiConfig& config() const { return cfg_; }

  /// Free buffer credits this NI holds for logical VC `v` of the router's
  /// local input port (invariant checking / diagnostics).
  int out_vc_credits(int v) const {
    require(v >= 0 && v < cfg_.vcs, "NetworkInterface: VC out of range");
    return out_vcs_[static_cast<std::size_t>(v)].credits;
  }

  /// `to_router` carries our flits in and the router's credits back;
  /// `from_router` delivers ejected flits and carries our credits back.
  void attach(Link* to_router, Link* from_router);

  /// Queues a packet for injection. `p.src` must equal this NI's node.
  void enqueue(PacketDesc p);

  /// Packets created in [begin, end) count toward the latency statistics
  /// (warmup/drain packets are excluded).
  void set_measure_window(Cycle begin, Cycle end);

  /// Called once per cycle by the simulator: ejects arrived flits (returning
  /// credits), then injects at most one flit of the packet in flight.
  void step(Cycle now);

  /// Event-core variant of step(): bit-identical, but consults the links'
  /// ready peeks so an idle ejection path / credit channel costs a compare
  /// instead of a virtual take call.
  void step_event(Cycle now);

  /// Restores the NI to its just-constructed state (Mesh::reset_for_run).
  /// Simulator-owned hooks (delivery, inject gate, sent) are cleared — the
  /// next Simulator re-wires them; mesh wiring (links, wake hook, counters,
  /// checker, observer) is kept.
  void reset_for_run();

  /// Callback invoked when a packet's tail flit is ejected (used by
  /// request/response traffic models to generate replies).
  using DeliveryHook = std::function<void(const Flit& tail, Cycle now)>;
  void set_delivery_hook(DeliveryHook hook) { hook_ = std::move(hook); }

  const NiStats& stats() const { return stats_; }
  std::size_t queued_packets() const { return queue_.size(); }
  bool injection_idle() const { return queue_.empty() && !sending_; }
  /// True while a packet is partially serialized into the network.
  bool sending() const { return sending_; }
  /// Logical VC the in-flight packet serializes on (-1 when not sending).
  int current_vc() const { return current_vc_; }

  /// Self-heal escape-VC reservation: once set (>= 0) the NI never
  /// allocates logical VC `v` for a new packet — the escape class only
  /// admits in-network reroutes, so freshly injected packets keep to the
  /// adaptive VCs. -1 (default) disables the reservation.
  void set_reserved_vc(int v) { reserved_vc_ = v; }

  /// Self-heal reclamation: flits of `p` injected at or before `armed_at`
  /// — the remnants of a fragment the sweep purged, possibly still in
  /// flight on the local link — are swallowed at ejection with their credit
  /// returned, skipping reassembly and the checker. A later retransmission
  /// of the same id (injected strictly after the sweep) disarms the entry
  /// and ejects normally. Any reassembly the fragment had already opened is
  /// aborted; returns its VC so the caller can clear the checker's matching
  /// delivery track, or -1 if none was open.
  int poison_packet(PacketId p, Cycle armed_at);

  /// Degraded-mode admission gate (optional): consulted before a queued
  /// packet starts serializing. Returning false holds the whole queue —
  /// packets already in flight are unaffected. Used to freeze injection
  /// during a reroute drain and to bound the end-to-end retransmit window.
  using InjectGate = std::function<bool(const PacketDesc&)>;
  void set_inject_gate(InjectGate gate) { inject_gate_ = std::move(gate); }

  /// Callback invoked when a packet's tail flit has been injected (the
  /// packet is now fully in the network). Degraded mode arms the
  /// end-to-end delivery timeout here, not at enqueue, so queued packets
  /// cannot time out before they ever hit a wire.
  using SentHook = std::function<void(const PacketDesc& p, Cycle now)>;
  void set_sent_hook(SentHook hook) { sent_hook_ = std::move(hook); }

  /// Removes queued (not yet serializing) packets matching `pred`,
  /// keeping the shared active-injector accounting exact. Returns the
  /// number dropped. Degraded mode uses it to discard packets whose
  /// destination became unreachable at an epoch switch.
  std::size_t drop_queued_if(const std::function<bool(const PacketDesc&)>& pred);

  /// Returns VC allocation, credit counters and reassembly state to
  /// power-on values. Only legal at a degraded-mode drain barrier (no
  /// packet partially serialized, network empty); truncated reassemblies
  /// left by a mid-packet router death are discarded here.
  void reset_flow_state();

  /// Shared accounting sink (set by the Mesh); nullptr = standalone use.
  /// Tracks delivered packets and whether this NI has injection work.
  void set_counters(NetCounters* c) { counters_ = c; }

  /// Scheduling hook (set by the Mesh): invoked when a packet is enqueued so
  /// the mesh can mark this NI runnable without polling all NIs.
  using WakeHook = std::function<void()>;
  void set_wake_hook(WakeHook hook) { wake_hook_ = std::move(hook); }

#ifdef RNOC_INVARIANTS
  /// Invariant checker (set by the Mesh in checked builds): every ejected
  /// flit is validated against the per-VC in-order delivery invariant
  /// before the NI's own protocol checks run.
  void set_invariant_checker(NocChecker* c) { checker_ = c; }
#endif

#ifdef RNOC_TRACE
  /// Observability sink (set by the Mesh in traced builds): records the
  /// inject/eject endpoints of each sampled packet's lifecycle.
  void set_observer(obs::Observer* o) { obs_ = o; }
#endif

 private:
  struct OutVc {
    bool busy = false;  ///< Allocated to an in-flight packet (until vc_free).
    int credits = 0;
  };

  void eject(Cycle now);
  void inject(Cycle now);
  void drain_router_credits(Cycle now);
  void inject_after_credits(Cycle now);

  /// True when `f` is a poisoned remnant eject() must swallow. Disarms the
  /// matching entry on a retransmission of the same id. See poison_packet().
  bool poison_swallow(const Flit& f);

  /// One reclamation entry; see poison_packet(). Kept as a small linear
  /// vector — entries exist only between a router death and the fragment's
  /// retransmission, a handful at a time.
  struct PoisonEntry {
    PacketId packet = 0;
    Cycle armed_at = 0;
  };
  std::vector<PoisonEntry> poisoned_;

  NodeId node_;
  NiConfig cfg_;
  Link* to_router_ = nullptr;
  Link* from_router_ = nullptr;
  std::vector<OutVc> out_vcs_;
  std::deque<PacketDesc> queue_;

  // Packet currently being serialized into flits.
  bool sending_ = false;
  PacketDesc current_{};
  int next_seq_ = 0;
  int current_vc_ = -1;
  int reserved_vc_ = -1;  ///< Self-heal escape VC, never allocated here.
  Cycle current_injected_ = 0;

  Cycle measure_begin_ = 0;
  Cycle measure_end_ = kNeverCycle;
  NiStats stats_;
  DeliveryHook hook_;
  NetCounters* counters_ = nullptr;
  WakeHook wake_hook_;
  InjectGate inject_gate_;
  SentHook sent_hook_;
#ifdef RNOC_INVARIANTS
  NocChecker* checker_ = nullptr;
#endif
#ifdef RNOC_TRACE
  obs::Observer* obs_ = nullptr;
#endif

  /// Per-VC reassembly state for the protocol-integrity check: flits of a
  /// packet must arrive on one VC, in seq order, head first, tail last.
  struct Reassembly {
    bool active = false;
    PacketId packet = 0;
    std::uint32_t next_seq = 0;
  };
  std::vector<Reassembly> reassembly_;
};

}  // namespace rnoc::noc
