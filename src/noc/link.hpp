// A unidirectional router-to-router channel: flits downstream, credits back
// upstream, each with a fixed latency (default 1 cycle).
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "noc/flit.hpp"
#include "noc/net_counters.hpp"
#include "noc/ring_buffer.hpp"

namespace rnoc::noc {

class Link {
 public:
  explicit Link(Cycle latency = 1);
  virtual ~Link() = default;

  Cycle latency() const { return latency_; }

  /// Pushes a flit at cycle `now`; it becomes visible at now + latency.
  /// At most one flit may be pushed per cycle (channel width = 1 flit).
  virtual void push_flit(const Flit& f, Cycle now);

  /// Takes the flit that has arrived by `now`, if any.
  virtual std::optional<Flit> take_flit(Cycle now);

  /// Credits ride the reverse wires with the same latency.
  virtual void push_credit(const Credit& c, Cycle now);
  virtual std::optional<Credit> take_credit(Cycle now);

  virtual bool idle() const { return flits_.empty() && credits_.empty(); }
  virtual int flits_in_flight() const {
    return static_cast<int>(flits_.size());
  }

  /// Invariant-checker introspection: visits every flit / credit currently
  /// in flight (including, for subclasses, any held retransmission slot).
  /// Not on the simulation hot path.
  virtual void for_each_flit(const std::function<void(const Flit&)>& fn) const {
    for (std::size_t i = 0; i < flits_.size(); ++i) fn(flits_.at(i).first);
  }
  void for_each_credit(const std::function<void(const Credit&)>& fn) const {
    for (std::size_t i = 0; i < credits_.size(); ++i) fn(credits_.at(i).first);
  }

  /// Scheduling hooks (set by the Mesh): invoked with the cycle at which a
  /// pushed flit / credit becomes takeable, so the consumer can be woken
  /// exactly then instead of polling every cycle.
  using Listener = std::function<void(Cycle ready)>;
  void set_flit_listener(Listener l) { flit_listener_ = std::move(l); }
  void set_credit_listener(Listener l) { credit_listener_ = std::move(l); }

  /// Shared accounting sink (set by the Mesh); nullptr = standalone use.
  void set_counters(NetCounters* c) { counters_ = c; }

 protected:
  NetCounters* counters() const { return counters_; }
  void notify_flit_ready(Cycle ready) {
    if (flit_listener_) flit_listener_(ready);
  }

 private:
  RingBuffer<std::pair<Flit, Cycle>> flits_;      ///< (flit, ready_cycle)
  RingBuffer<std::pair<Credit, Cycle>> credits_;  ///< (credit, ready_cycle)
  Cycle latency_;
  Cycle last_flit_push_ = kNeverCycle;
  Listener flit_listener_;
  Listener credit_listener_;
  NetCounters* counters_ = nullptr;
};

}  // namespace rnoc::noc
