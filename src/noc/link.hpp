// A unidirectional router-to-router channel: flits downstream, credits back
// upstream, each with a fixed latency (default 1 cycle).
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "noc/flit.hpp"

namespace rnoc::noc {

class Link {
 public:
  explicit Link(Cycle latency = 1);
  virtual ~Link() = default;

  Cycle latency() const { return latency_; }

  /// Pushes a flit at cycle `now`; it becomes visible at now + latency.
  /// At most one flit may be pushed per cycle (channel width = 1 flit).
  virtual void push_flit(const Flit& f, Cycle now);

  /// Takes the flit that has arrived by `now`, if any.
  virtual std::optional<Flit> take_flit(Cycle now);

  /// Credits ride the reverse wires with the same latency.
  virtual void push_credit(const Credit& c, Cycle now);
  virtual std::optional<Credit> take_credit(Cycle now);

  virtual bool idle() const { return flits_.empty() && credits_.empty(); }
  virtual int flits_in_flight() const {
    return static_cast<int>(flits_.size());
  }

 private:
  std::deque<std::pair<Flit, Cycle>> flits_;      ///< (flit, ready_cycle)
  std::deque<std::pair<Credit, Cycle>> credits_;  ///< (credit, ready_cycle)
  Cycle latency_;
  Cycle last_flit_push_ = kNeverCycle;
};

}  // namespace rnoc::noc
