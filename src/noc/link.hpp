// A unidirectional router-to-router channel: flits downstream, credits back
// upstream, each with a fixed latency (default 1 cycle).
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "noc/flit.hpp"
#include "noc/net_counters.hpp"
#include "noc/ring_buffer.hpp"

namespace rnoc::noc {

class Link {
 public:
  explicit Link(Cycle latency = 1);
  virtual ~Link() = default;

  Cycle latency() const { return latency_; }

  /// Pushes a flit at cycle `now`; it becomes visible at now + latency.
  /// At most one flit may be pushed per cycle (channel width = 1 flit).
  virtual void push_flit(const Flit& f, Cycle now);

  /// Takes the flit that has arrived by `now`, if any.
  virtual std::optional<Flit> take_flit(Cycle now);

  /// Credits ride the reverse wires with the same latency.
  virtual void push_credit(const Credit& c, Cycle now);
  virtual std::optional<Credit> take_credit(Cycle now);

  virtual bool idle() const { return flits_.empty() && credits_.empty(); }
  virtual int flits_in_flight() const {
    return static_cast<int>(flits_.size());
  }

  /// Cycle at which the next flit (resp. credit) becomes takeable, or
  /// kNeverCycle when none is in flight. The event core consults these to
  /// skip take_flit/take_credit calls that would return nullopt; a
  /// subclass holding a flit outside the ring (EccLink retransmission)
  /// publishes it via set_held_ready. Not virtual: this runs per port per
  /// active cycle.
  Cycle next_flit_ready() const {
    const Cycle ring = flits_.empty() ? kNeverCycle : flits_.front().second;
    return held_ready_ < ring ? held_ready_ : ring;
  }
  Cycle next_credit_ready() const {
    return credits_.empty() ? kNeverCycle : credits_.front().second;
  }

  /// Restores the link to its just-constructed state (Mesh::reset_for_run).
  virtual void reset_for_run() {
    flits_.clear();
    credits_.clear();
    last_flit_push_ = kNeverCycle;
    held_ready_ = kNeverCycle;
  }

  /// Invariant-checker introspection: visits every flit / credit currently
  /// in flight (including, for subclasses, any held retransmission slot).
  /// Not on the simulation hot path.
  virtual void for_each_flit(const std::function<void(const Flit&)>& fn) const {
    for (std::size_t i = 0; i < flits_.size(); ++i) fn(flits_.at(i).first);
  }
  void for_each_credit(const std::function<void(const Credit&)>& fn) const {
    for (std::size_t i = 0; i < credits_.size(); ++i) fn(credits_.at(i).first);
  }

  /// Scheduling hooks (standalone / test use): invoked with the cycle at
  /// which a pushed flit / credit becomes takeable, so the consumer can be
  /// woken exactly then instead of polling every cycle.
  using Listener = std::function<void(Cycle ready)>;
  void set_flit_listener(Listener l) { flit_listener_ = std::move(l); }
  void set_credit_listener(Listener l) { credit_listener_ = std::move(l); }

  /// Mesh fast-path hook: a plain function pointer plus two precomputed
  /// event records (one per direction), dispatched instead of the
  /// std::function listeners. The Mesh wires every link it owns through
  /// this — millions of flit/credit pushes per simulated second make the
  /// type-erased listener dispatch measurable.
  using EventHook = void (*)(void* ctx, std::uint32_t rec, Cycle ready);
  void set_event_hook(EventHook fn, void* ctx, std::uint32_t flit_rec,
                      std::uint32_t credit_rec) {
    hook_ = fn;
    hook_ctx_ = ctx;
    hook_flit_rec_ = flit_rec;
    hook_credit_rec_ = credit_rec;
  }

  /// Shared accounting sink (set by the Mesh); nullptr = standalone use.
  void set_counters(NetCounters* c) { counters_ = c; }

 protected:
  NetCounters* counters() const { return counters_; }
  void notify_flit_ready(Cycle ready) {
    if (hook_ != nullptr)
      hook_(hook_ctx_, hook_flit_rec_, ready);
    else if (flit_listener_)
      flit_listener_(ready);
  }
  void notify_credit_ready(Cycle ready) {
    if (hook_ != nullptr)
      hook_(hook_ctx_, hook_credit_rec_, ready);
    else if (credit_listener_)
      credit_listener_(ready);
  }
  /// Subclass hook backing next_flit_ready for flits held outside the ring.
  void set_held_ready(Cycle ready) { held_ready_ = ready; }

 private:
  RingBuffer<std::pair<Flit, Cycle>> flits_;      ///< (flit, ready_cycle)
  RingBuffer<std::pair<Credit, Cycle>> credits_;  ///< (credit, ready_cycle)
  Cycle latency_;
  Cycle last_flit_push_ = kNeverCycle;
  Cycle held_ready_ = kNeverCycle;
  Listener flit_listener_;
  Listener credit_listener_;
  EventHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
  std::uint32_t hook_flit_rec_ = 0;
  std::uint32_t hook_credit_rec_ = 0;
  NetCounters* counters_ = nullptr;
};

}  // namespace rnoc::noc
