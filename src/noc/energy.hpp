// Event-driven energy accounting (Orion-style) for the simulator.
//
// The synthesis model (synthesis/) gives *average* power from cell counts,
// matching the paper's §VI-A methodology. This module complements it with
// per-event dynamic energy so simulations report workload-dependent energy:
// every buffer write, route computation, allocation, crossbar traversal and
// link flit-hop charges its event energy, and leakage accrues per cycle.
// The correction circuitry's events (spare RC use, borrowed arbitration,
// bypass grants, VC transfers, secondary-path traversals) carry their own
// energies, so the energy cost of riding out faults is visible, not just
// the latency cost.
#pragma once

#include <cstdint>

#include "noc/router_state.hpp"

namespace rnoc::noc {

/// Per-event dynamic energies (pJ) and static power, calibrated to typical
/// 45 nm NoC router figures (Orion 2.0-class; buffer and crossbar dominate).
struct EnergyModel {
  double buffer_write_pj = 1.20;
  double buffer_read_pj = 0.95;
  double rc_compute_pj = 0.35;
  double va_arbitration_pj = 0.55;
  double sa_arbitration_pj = 0.45;
  double crossbar_traversal_pj = 2.10;
  double link_hop_pj = 1.75;

  // Correction-circuitry event energies (extra on top of the base events).
  double rc_spare_extra_pj = 0.05;       ///< spare unit select mux
  double va_borrow_extra_pj = 0.20;      ///< R2/VF/ID writes + scan
  double sa_bypass_extra_pj = 0.10;      ///< bypass mux
  double vc_transfer_pj = 5.00;          ///< parallel buffer+state move
  double xb_secondary_extra_pj = 0.80;   ///< demux + P-select stages

  /// Static (leakage) power per router in mW; protected routers leak more
  /// in proportion to the §VI-A area overhead.
  double router_leakage_mw = 1.85;
  double protected_leakage_factor = 1.31;

  double clock_ghz = 1.0;  ///< Converts leakage power to per-cycle energy.
};

/// Energy totals accumulated over a simulation.
struct EnergyReport {
  double dynamic_pj = 0.0;
  double protection_pj = 0.0;  ///< Part of dynamic spent in correction circuitry.
  double leakage_pj = 0.0;

  double total_pj() const { return dynamic_pj + leakage_pj; }
  /// Energy per delivered flit (pJ/flit); the standard NoC figure of merit.
  double per_flit_pj(std::uint64_t flits_delivered) const {
    return flits_delivered
               ? total_pj() / static_cast<double>(flits_delivered)
               : 0.0;
  }
};

/// Computes the energy report from the aggregate router event counters.
/// `router_cycles` is routers x simulated cycles (for leakage).
EnergyReport account_energy(const EnergyModel& m, const RouterStats& events,
                            std::uint64_t router_cycles, bool protected_mode);

}  // namespace rnoc::noc
