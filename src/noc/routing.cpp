#include "noc/routing.hpp"

#include <cstdlib>

namespace rnoc::noc {

int port_of(Direction d) { return static_cast<int>(d); }

Direction direction_of(int port) {
  require(port >= 0 && port < kMeshPorts, "direction_of: bad port");
  return static_cast<Direction>(port);
}

std::string direction_name(int port) {
  switch (direction_of(port)) {
    case Direction::Local: return "Local";
    case Direction::North: return "North";
    case Direction::East: return "East";
    case Direction::South: return "South";
    case Direction::West: return "West";
  }
  unreachable("direction_name: unhandled Direction");
}

int opposite_port(int port) {
  switch (direction_of(port)) {
    case Direction::Local: return port_of(Direction::Local);
    case Direction::North: return port_of(Direction::South);
    case Direction::East: return port_of(Direction::West);
    case Direction::South: return port_of(Direction::North);
    case Direction::West: return port_of(Direction::East);
  }
  unreachable("opposite_port: unhandled Direction");
}

Coord MeshDims::coord_of(NodeId n) const {
  require(n >= 0 && n < nodes(), "MeshDims::coord_of: node out of range");
  return {static_cast<int>(n) % x, static_cast<int>(n) / x};
}

NodeId MeshDims::node_of(Coord c) const {
  require(contains(c), "MeshDims::node_of: coord out of range");
  return static_cast<NodeId>(c.y * x + c.x);
}

bool MeshDims::contains(Coord c) const {
  return c.x >= 0 && c.x < x && c.y >= 0 && c.y < y;
}

int xy_route(const MeshDims& dims, NodeId current, NodeId dst) {
  const Coord cur = dims.coord_of(current);
  const Coord d = dims.coord_of(dst);
  if (cur.x < d.x) return port_of(Direction::East);
  if (cur.x > d.x) return port_of(Direction::West);
  if (cur.y < d.y) return port_of(Direction::South);
  if (cur.y > d.y) return port_of(Direction::North);
  return port_of(Direction::Local);
}

int xy_hops(const MeshDims& dims, NodeId src, NodeId dst) {
  const Coord s = dims.coord_of(src);
  const Coord d = dims.coord_of(dst);
  return std::abs(s.x - d.x) + std::abs(s.y - d.y);
}

int odd_even_candidates(const MeshDims& dims, NodeId cur, NodeId src,
                        NodeId dst, int out[kMeshPorts]) {
  // Chiu's ROUTE function, minimal version.
  const Coord c = dims.coord_of(cur);
  const Coord s = dims.coord_of(src);
  const Coord d = dims.coord_of(dst);
  const int e0 = d.x - c.x;
  const int e1 = d.y - c.y;

  if (e0 == 0 && e1 == 0) {
    out[0] = port_of(Direction::Local);
    return 1;
  }

  int n = 0;
  const int dir_v =
      e1 < 0 ? port_of(Direction::North) : port_of(Direction::South);
  if (e0 == 0) {
    out[n++] = dir_v;
  } else if (e0 > 0) {
    // Eastbound: the vertical (an EN/ES turn) is only legal in odd columns —
    // or at the source column, where no turn has been taken yet.
    if (e1 != 0 && (c.x % 2 == 1 || c.x == s.x)) out[n++] = dir_v;
    // Continuing East is fine unless the destination column is even and one
    // hop away (the final EN/ES turn would land in an even column).
    if (e1 == 0 || d.x % 2 == 1 || e0 != 1) out[n++] = port_of(Direction::East);
  } else {
    // Westbound: NW/SW turns are forbidden in odd columns, so the vertical
    // is only offered in even columns; West itself is always admissible.
    out[n++] = port_of(Direction::West);
    if (e1 != 0 && c.x % 2 == 0) out[n++] = dir_v;
  }
  require(n > 0, "odd_even_candidates: empty candidate set");
  return n;
}

std::vector<int> odd_even_candidates(const MeshDims& dims, NodeId cur,
                                     NodeId src, NodeId dst) {
  int buf[kMeshPorts];
  const int n = odd_even_candidates(dims, cur, src, dst, buf);
  return std::vector<int>(buf, buf + n);
}

}  // namespace rnoc::noc
