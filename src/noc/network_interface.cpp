#include "noc/network_interface.hpp"

#include <algorithm>

#include "common/types.hpp"
#ifdef RNOC_INVARIANTS
#include "noc/invariants.hpp"
#endif
#include "noc/vnet.hpp"

namespace rnoc::noc {

NetworkInterface::NetworkInterface(NodeId node, const NiConfig& cfg)
    : node_(node), cfg_(cfg) {
  require(cfg.vcs >= 1 && cfg.vc_depth >= 1, "NetworkInterface: bad config");
  require(cfg.vnets >= 1 && cfg.vcs % cfg.vnets == 0,
          "NetworkInterface: vcs must divide evenly into vnets");
  out_vcs_.assign(static_cast<std::size_t>(cfg.vcs),
                  OutVc{false, cfg.vc_depth});
  reassembly_.assign(static_cast<std::size_t>(cfg.vcs), Reassembly{});
}

void NetworkInterface::attach(Link* to_router, Link* from_router) {
  to_router_ = to_router;
  from_router_ = from_router;
}

void NetworkInterface::enqueue(PacketDesc p) {
  require(p.src == node_, "NetworkInterface::enqueue: src mismatch");
  require(p.dst != node_, "NetworkInterface::enqueue: self-addressed packet");
  require(p.size_flits >= 1, "NetworkInterface::enqueue: empty packet");
  const bool was_idle = injection_idle();
  queue_.push_back(p);
  ++stats_.packets_enqueued;
  stats_.queue_peak = std::max<std::uint64_t>(stats_.queue_peak, queue_.size());
  if (was_idle) {
    if (counters_) ++counters_->active_injectors;
    if (wake_hook_) wake_hook_();
  }
}

void NetworkInterface::set_measure_window(Cycle begin, Cycle end) {
  measure_begin_ = begin;
  measure_end_ = end;
}

void NetworkInterface::step(Cycle now) {
  eject(now);
  inject(now);
}

void NetworkInterface::step_event(Cycle now) {
  // Identical to step(): eject and the credit drain are no-ops when the
  // link peeks lie in the future, so gating them is exact.
  if (from_router_ != nullptr && from_router_->next_flit_ready() <= now)
    eject(now);
  if (to_router_ == nullptr) return;
  if (to_router_->next_credit_ready() <= now) drain_router_credits(now);
  inject_after_credits(now);
}

void NetworkInterface::eject(Cycle now) {
  if (from_router_ == nullptr) return;
  while (auto f = from_router_->take_flit(now)) {
    if (!poisoned_.empty() && poison_swallow(*f)) {
      // Remnant of a reclaimed fragment: return the credit and vanish —
      // reassembly and the checker never learn it existed (the sweep
      // already cleared their state for this packet).
      from_router_->push_credit({f->vc, f->is_tail()}, now);
      ++stats_.flits_dropped;
      continue;
    }
    ++stats_.flits_received;
#ifdef RNOC_INVARIANTS
    // Checker first, so a delivery-order violation is reported with full
    // cycle/node/VC context instead of the bare require() below.
    if (checker_) checker_->on_ejected(node_, *f, now);
#endif
    // Protocol-integrity check: one packet per VC, flits in order, head
    // first, tail last. A violation means the network corrupted, dropped or
    // duplicated a flit — fail loudly instead of producing silent garbage.
    Reassembly& re = reassembly_[static_cast<std::size_t>(f->vc)];
    if (f->is_head()) {
      require(!re.active,
              "NetworkInterface: head flit interleaved into an open packet");
      re.active = true;
      re.packet = f->packet;
      re.next_seq = 0;
    }
    require(re.active && re.packet == f->packet && re.next_seq == f->seq,
            "NetworkInterface: out-of-order or foreign flit in packet");
    ++re.next_seq;
    if (f->is_tail()) {
      require(re.next_seq == f->size,
              "NetworkInterface: tail arrived before all flits");
      re = Reassembly{};
    }
    // Infinite-sink model: consume immediately, return the credit at once.
    from_router_->push_credit({f->vc, f->is_tail()}, now);
    if (f->is_tail()) {
      ++stats_.packets_received;
      if (counters_) ++counters_->packets_delivered;
#ifdef RNOC_TRACE
      if (obs_)
        obs_->on_event(obs::EventKind::Eject, now, f->packet, node_, -1,
                       f->vc);
#endif
      if (f->created >= measure_begin_ && f->created < measure_end_) {
        const double total = static_cast<double>(now - f->created);
        stats_.total_latency.add(total);
        stats_.network_latency.add(static_cast<double>(now - f->injected));
        stats_.latency_hist.add(total);
      }
      if (hook_) hook_(*f, now);
    }
  }
}

void NetworkInterface::inject(Cycle now) {
  if (to_router_ == nullptr) return;
  drain_router_credits(now);
  inject_after_credits(now);
}

/// Drains credits from the router's local input port.
void NetworkInterface::drain_router_credits(Cycle now) {
  while (auto c = to_router_->take_credit(now)) {
    auto& vc = out_vcs_[static_cast<std::size_t>(c->vc)];
    ++vc.credits;
    require(vc.credits <= cfg_.vc_depth,
            "NetworkInterface: credit overflow (protocol violation)");
    if (c->vc_free) vc.busy = false;
  }
}

void NetworkInterface::inject_after_credits(Cycle now) {
  if (!sending_) {
    if (queue_.empty()) return;
    if (inject_gate_ && !inject_gate_(queue_.front())) return;
    // Allocate a free VC of the router's local input port for the next
    // packet (the NI plays the upstream router's VA role for this port),
    // restricted to the packet's virtual network.
    int vc = -1;
    for (int v = 0; v < cfg_.vcs; ++v) {
      if (v == reserved_vc_) continue;
      const auto& ov = out_vcs_[static_cast<std::size_t>(v)];
      if (!ov.busy && ov.credits > 0 &&
          vc_allowed_for_class(v, queue_.front().traffic_class, cfg_.vcs,
                               cfg_.vnets)) {
        vc = v;
        break;
      }
    }
    if (vc < 0) return;
    current_ = queue_.front();
    queue_.pop_front();
    sending_ = true;
    next_seq_ = 0;
    current_vc_ = vc;
    current_injected_ = now;
    out_vcs_[static_cast<std::size_t>(vc)].busy = true;
  }

  auto& ov = out_vcs_[static_cast<std::size_t>(current_vc_)];
  if (ov.credits <= 0) return;

  Flit f;
  f.packet = current_.id;
  f.src = current_.src;
  f.dst = current_.dst;
  f.seq = static_cast<std::uint32_t>(next_seq_);
  f.size = static_cast<std::uint16_t>(current_.size_flits);
  f.traffic_class = current_.traffic_class;
  f.vc = current_vc_;
  f.created = current_.created;
  f.injected = current_injected_;
  f.payload = current_.payload;
  const bool is_head = next_seq_ == 0;
  const bool is_tail = next_seq_ == current_.size_flits - 1;
  f.type = is_head && is_tail ? FlitType::HeadTail
           : is_head          ? FlitType::Head
           : is_tail          ? FlitType::Tail
                              : FlitType::Body;
  to_router_->push_flit(f, now);
  --ov.credits;
  ++stats_.flits_injected;
  ++next_seq_;
  if (is_head) {
    ++stats_.packets_injected;
#ifdef RNOC_TRACE
    if (obs_)
      obs_->on_event(obs::EventKind::Inject, now, f.packet, node_, -1,
                     current_vc_);
#endif
  }
  if (is_tail) {
    if (sent_hook_) sent_hook_(current_, now);
    sending_ = false;
    current_vc_ = -1;
    if (counters_ && queue_.empty()) --counters_->active_injectors;
  }
}

bool NetworkInterface::poison_swallow(const Flit& f) {
  for (std::size_t i = 0; i < poisoned_.size(); ++i) {
    if (poisoned_[i].packet != f.packet) continue;
    if (f.injected <= poisoned_[i].armed_at) return true;
    // A retransmission of the reclaimed packet: disarm and eject normally.
    poisoned_[i] = poisoned_.back();
    poisoned_.pop_back();
    return false;
  }
  return false;
}

int NetworkInterface::poison_packet(PacketId p, Cycle armed_at) {
  bool found = false;
  for (auto& e : poisoned_) {
    if (e.packet != p) continue;
    e.armed_at = armed_at;  // Re-truncated after a retransmission.
    found = true;
    break;
  }
  if (!found) poisoned_.push_back({p, armed_at});
  for (int v = 0; v < cfg_.vcs; ++v) {
    Reassembly& re = reassembly_[static_cast<std::size_t>(v)];
    if (re.active && re.packet == p) {
      re = Reassembly{};
      return v;
    }
  }
  return -1;
}

std::size_t NetworkInterface::drop_queued_if(
    const std::function<bool(const PacketDesc&)>& pred) {
  const bool was_idle = injection_idle();
  const auto it = std::remove_if(queue_.begin(), queue_.end(), pred);
  const auto dropped = static_cast<std::size_t>(queue_.end() - it);
  queue_.erase(it, queue_.end());
  if (!was_idle && injection_idle() && counters_)
    --counters_->active_injectors;
  return dropped;
}

void NetworkInterface::reset_flow_state() {
  require(!sending_,
          "NetworkInterface::reset_flow_state: packet partially injected");
  for (auto& ov : out_vcs_) ov = OutVc{false, cfg_.vc_depth};
  for (auto& re : reassembly_) re = Reassembly{};
  poisoned_.clear();
}

void NetworkInterface::reset_for_run() {
  for (auto& ov : out_vcs_) ov = OutVc{false, cfg_.vc_depth};
  for (auto& re : reassembly_) re = Reassembly{};
  poisoned_.clear();
  queue_.clear();
  sending_ = false;
  current_ = PacketDesc{};
  next_seq_ = 0;
  current_vc_ = -1;
  reserved_vc_ = -1;
  current_injected_ = 0;
  measure_begin_ = 0;
  measure_end_ = kNeverCycle;
  stats_ = NiStats{};
  hook_ = nullptr;
  inject_gate_ = nullptr;
  sent_hook_ = nullptr;
}

}  // namespace rnoc::noc
