#include "noc/link.hpp"

#include "common/types.hpp"

namespace rnoc::noc {

Link::Link(Cycle latency)
    : flits_(static_cast<std::size_t>(latency) + 1),
      credits_(2 * (static_cast<std::size_t>(latency) + 1)),
      latency_(latency) {
  require(latency >= 1, "Link: latency must be at least one cycle");
}

void Link::push_flit(const Flit& f, Cycle now) {
  require(last_flit_push_ == kNeverCycle || last_flit_push_ != now,
          "Link::push_flit: two flits pushed in one cycle");
  last_flit_push_ = now;
  flits_.push_back({f, now + latency_});
  if (counters_) ++counters_->link_flits;
  notify_flit_ready(now + latency_);
}

std::optional<Flit> Link::take_flit(Cycle now) {
  if (flits_.empty() || flits_.front().second > now) return std::nullopt;
  Flit f = flits_.front().first;
  flits_.pop_front();
  if (counters_) --counters_->link_flits;
  return f;
}

void Link::push_credit(const Credit& c, Cycle now) {
  credits_.push_back({c, now + latency_});
  notify_credit_ready(now + latency_);
}

std::optional<Credit> Link::take_credit(Cycle now) {
  if (credits_.empty() || credits_.front().second > now) return std::nullopt;
  Credit c = credits_.front().first;
  credits_.pop_front();
  return c;
}

}  // namespace rnoc::noc
