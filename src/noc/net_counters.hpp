// Incremental network-wide accounting. One NetCounters instance is owned by
// the Mesh and shared (by pointer) with every Link, InputPort and
// NetworkInterface it wires, each of which bumps the relevant counter at the
// moment a flit changes place. The simulator's per-cycle watchdog and drain
// checks then read totals in O(1) instead of sweeping every router, link and
// NI each cycle.
//
// Components constructed standalone (unit tests, harnesses) simply leave the
// pointer null and skip the accounting.
#pragma once

#include <cstdint>

namespace rnoc::noc {

struct NetCounters {
  /// Flits currently buffered in router input-port VCs.
  std::int64_t router_flits = 0;
  /// Flits currently in flight on links (including an EccLink's held
  /// retransmission slot).
  std::int64_t link_flits = 0;
  /// NIs with a queued or partially injected packet (!injection_idle()).
  std::int64_t active_injectors = 0;
  /// Total packets delivered (tail flits ejected) across all NIs.
  std::uint64_t packets_delivered = 0;

  std::int64_t flits_in_network() const { return router_flits + link_flits; }
};

}  // namespace rnoc::noc
