#include "noc/simulator.hpp"

#include <algorithm>

#ifdef RNOC_INVARIANTS
#include "noc/invariants.hpp"
#endif

namespace rnoc::noc {

Simulator::Simulator(const SimConfig& cfg,
                     std::shared_ptr<traffic::TrafficModel> traffic)
    : Simulator(cfg, std::move(traffic), std::make_unique<Mesh>(cfg.mesh),
                nullptr) {}

Simulator::Simulator(const SimConfig& cfg,
                     std::shared_ptr<traffic::TrafficModel> traffic,
                     Mesh& mesh)
    : Simulator(cfg, std::move(traffic), nullptr, &mesh) {}

Simulator::Simulator(const SimConfig& cfg,
                     std::shared_ptr<traffic::TrafficModel> traffic,
                     std::unique_ptr<Mesh> owned, Mesh* external)
    : cfg_(cfg),
      traffic_(std::move(traffic)),
      owned_mesh_(std::move(owned)),
      mesh_(owned_mesh_ ? *owned_mesh_ : *external),
      injector_(fault::FaultPlan{}),
      resp_rng_(cfg.seed ^ 0xabcdef12345ull),
      occupancy_(cfg.mesh.dims.nodes()) {
  require(traffic_ != nullptr, "Simulator: traffic model required");
  require(owned_mesh_ != nullptr || external != nullptr,
          "Simulator: no mesh");
  require(mesh_.config() == cfg_.mesh,
          "Simulator: external mesh was built from a different MeshConfig");
  traffic_->init(cfg_.mesh.dims);
  if (cfg_.degraded.enabled)
    degraded_ = std::make_unique<DegradedModeController>(mesh_, cfg_.degraded);
  Rng master(cfg_.seed);
  node_rngs_.reserve(static_cast<std::size_t>(mesh_.nodes()));
  for (int i = 0; i < mesh_.nodes(); ++i) node_rngs_.push_back(master.split());

  const Cycle mbegin = cfg_.warmup;
  const Cycle mend = cfg_.warmup + cfg_.measure;
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    NetworkInterface& ni = mesh_.ni(n);
    ni.set_measure_window(mbegin, mend);
    ni.set_delivery_hook([this, n](const Flit& tail, Cycle now) {
      // The reliability layer sees every delivery first; a duplicate from a
      // retransmission is acknowledged but hidden from the traffic model.
      if (degraded_ && !degraded_->on_delivered(tail, now)) return;
      std::vector<traffic::Response> responses;
      traffic_->on_delivered(tail, n, now, resp_rng_, responses);
      for (auto& r : responses)
        pending_responses_.push(std::max(r.ready, now + 1), std::move(r));
    });
  }
}

void Simulator::set_fault_plan(fault::FaultPlan plan) {
  require(!ran_, "Simulator::set_fault_plan: simulation already ran");
  injector_ = fault::FaultInjector(std::move(plan));
}

void Simulator::release_responses(Cycle now) {
  while (pending_responses_.next_cycle() <= now) {
    traffic::Response r = pending_responses_.pop();
    r.desc.id = next_packet_id_++;
    r.desc.created = now;
    r.desc.src = r.node;
    if (r.desc.dst == r.node) continue;  // Degenerate self-reply: drop.
    if (degraded_ && !degraded_->admit(r.desc)) continue;
    mesh_.ni(r.node).enqueue(r.desc);
  }
}

void Simulator::schedule_injection(NodeId node, Cycle from, Cycle source_end) {
  if (from >= source_end) return;
  auto& pending = pending_inj_[static_cast<std::size_t>(node)];
  const Cycle at = traffic_->next_injection(
      from, source_end, node, node_rngs_[static_cast<std::size_t>(node)],
      pending);
  if (at == kNeverCycle) return;
  traffic_events_.push(at, static_cast<std::uint64_t>(node), node);
}

SimReport Simulator::run() {
  require(!ran_, "Simulator::run: one-shot; construct a new Simulator");
  ran_ = true;
  return cfg_.mesh.core == SimCore::EventDriven ? run_event() : run_sweep();
}

SimReport Simulator::run_sweep() {
  const Cycle source_end = cfg_.warmup + cfg_.measure;
  const Cycle hard_end = source_end + cfg_.drain_limit;

  SimReport rep;
  std::uint64_t last_received = 0;
  Cycle last_progress = 0;
  std::vector<PacketDesc> created;

  Cycle now = 0;
  for (; now < hard_end; ++now) {
    if (injector_.next_due_cycle() <= now) {
      const int fresh_faults = injector_.apply_due(now, mesh_);
      if (degraded_ && fresh_faults > 0) degraded_->on_faults_injected(now);
    }
    if (now < source_end) {
      for (NodeId n = 0; n < mesh_.nodes(); ++n) {
        created.clear();
        traffic_->generate(now, n, node_rngs_[static_cast<std::size_t>(n)],
                           created);
        for (PacketDesc& p : created) {
          p.id = next_packet_id_++;
          p.src = n;
          p.created = now;
          if (p.dst == n) continue;
          if (degraded_ && !degraded_->admit(p)) continue;
          mesh_.ni(n).enqueue(p);
        }
      }
    }
    release_responses(now);
    mesh_.step(now);
    if (degraded_) degraded_->step(now);
    if (cfg_.telemetry_interval > 0 && now % cfg_.telemetry_interval == 0)
      occupancy_.sample(mesh_);

    // Progress watchdog (all checks O(1) via the mesh's running counters).
    const std::uint64_t received = mesh_.packets_delivered();
    if (received != last_received) {
      last_received = received;
      last_progress = now;
    } else if (now - last_progress >= cfg_.progress_timeout) {
      if (mesh_.flits_in_network() > 0 || !mesh_.all_injection_idle()) {
        rep.deadlock_suspected = true;
        ++now;
        break;
      }
      last_progress = now;  // Genuinely idle: nothing to deliver.
    }

    // Early exit once drained (and, in degraded mode, once every tracked
    // packet is acknowledged or dropped — a pending retransmission keeps
    // the run alive even with an empty network).
    if (now >= source_end && pending_responses_.empty() &&
        mesh_.flits_in_network() == 0 && mesh_.all_injection_idle() &&
        (!degraded_ || degraded_->quiescent())) {
      ++now;
      break;
    }
  }

  finish_report(rep, now);
  return rep;
}

SimReport Simulator::run_event() {
  const Cycle source_end = cfg_.warmup + cfg_.measure;
  const Cycle hard_end = source_end + cfg_.drain_limit;

  SimReport rep;
  std::uint64_t last_received = 0;
  Cycle last_progress = 0;
  std::vector<PacketDesc> created;

  // Traffic models that replay their RNG draws exactly (synthetic patterns)
  // let the core jump straight to each node's next injection; anything else
  // is swept per cycle while sources run, and the clock only fast-forwards
  // once the source window closes.
  const bool event_traffic = traffic_->supports_event_injection();
  if (event_traffic) {
    pending_inj_.assign(static_cast<std::size_t>(mesh_.nodes()), {});
    for (NodeId n = 0; n < mesh_.nodes(); ++n)
      schedule_injection(n, 0, source_end);
  }

  Cycle now = 0;
  while (now < hard_end) {
    if (injector_.next_due_cycle() <= now) {
      const int fresh_faults = injector_.apply_due(now, mesh_);
      if (degraded_ && fresh_faults > 0) degraded_->on_faults_injected(now);
    }
    if (now < source_end) {
      if (event_traffic) {
        while (traffic_events_.next_cycle() <= now) {
          const NodeId n = traffic_events_.pop();
          auto& pending = pending_inj_[static_cast<std::size_t>(n)];
          for (PacketDesc& p : pending) {
            p.id = next_packet_id_++;
            p.src = n;
            p.created = now;
            if (p.dst == n) continue;
            if (degraded_ && !degraded_->admit(p)) continue;
            mesh_.ni(n).enqueue(p);
          }
          pending.clear();
          schedule_injection(n, now + 1, source_end);
        }
      } else {
        for (NodeId n = 0; n < mesh_.nodes(); ++n) {
          created.clear();
          traffic_->generate(now, n, node_rngs_[static_cast<std::size_t>(n)],
                             created);
          for (PacketDesc& p : created) {
            p.id = next_packet_id_++;
            p.src = n;
            p.created = now;
            if (p.dst == n) continue;
            if (degraded_ && !degraded_->admit(p)) continue;
            mesh_.ni(n).enqueue(p);
          }
        }
      }
    }
    release_responses(now);
    mesh_.step(now);
    if (degraded_) degraded_->step(now);
    if (cfg_.telemetry_interval > 0 && now % cfg_.telemetry_interval == 0)
      occupancy_.sample(mesh_);

    // Progress watchdog — identical to the sweep's; skipped cycles cannot
    // deliver packets, so last_progress evolves identically.
    const std::uint64_t received = mesh_.packets_delivered();
    if (received != last_received) {
      last_received = received;
      last_progress = now;
    } else if (now - last_progress >= cfg_.progress_timeout) {
      if (mesh_.flits_in_network() > 0 || !mesh_.all_injection_idle()) {
        rep.deadlock_suspected = true;
        ++now;
        break;
      }
      last_progress = now;  // Genuinely idle: nothing to deliver.
    }

    if (now >= source_end && pending_responses_.empty() &&
        mesh_.flits_in_network() == 0 && mesh_.all_injection_idle() &&
        (!degraded_ || degraded_->quiescent())) {
      ++now;
      break;
    }

    // Idle fast-forward: jump to the earliest cycle at which the loop body
    // can differ from a no-op. Every candidate below is exact — a gated
    // call before its due cycle does nothing — so skipped cycles are
    // provably identical to the sweep stepping them.
    Cycle target = mesh_.next_event_cycle();
    target = std::min(target, injector_.next_due_cycle());
    target = std::min(target, pending_responses_.next_cycle());
    if (degraded_) target = std::min(target, degraded_->next_due_cycle());
    if (now < source_end) {
      if (event_traffic) {
        target = std::min(target, traffic_events_.next_cycle());
        // The cycle the source window closes flips early-exit eligibility;
        // step it even if no event lands there.
        target = std::min(target, source_end);
      } else {
        target = now + 1;  // Per-cycle generate() draws cannot be skipped.
      }
    }
    if (cfg_.telemetry_interval > 0)
      target = std::min(
          target, (now / cfg_.telemetry_interval + 1) * cfg_.telemetry_interval);
    // The watchdog check runs live at its trigger cycle.
    target = std::min(target, last_progress + cfg_.progress_timeout);
    now = std::max(now + 1, std::min(target, hard_end));
  }

  finish_report(rep, now);
  return rep;
}

void Simulator::finish_report(SimReport& rep, Cycle end) {
  rep.cycles_run = end;
#ifdef RNOC_INVARIANTS
  // Final sweep over the drained (or deadlocked) network regardless of the
  // checker's cycle cadence, so every run ends invariant-validated.
  mesh_.invariant_checker().on_run_end(end);
#endif
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    const NiStats& s = mesh_.ni(n).stats();
    rep.total_latency.merge(s.total_latency);
    rep.network_latency.merge(s.network_latency);
    rep.latency_hist.merge(s.latency_hist);
    rep.packets_received += s.packets_received;
    rep.flits_received += s.flits_received;
    rep.packets_sent += s.packets_injected;
  }
  rep.undelivered_flits = static_cast<std::uint64_t>(mesh_.flits_in_network());
  rep.throughput_flits_node_cycle =
      cfg_.measure > 0
          ? static_cast<double>(rep.flits_received) /
                (static_cast<double>(mesh_.nodes()) *
                 static_cast<double>(cfg_.measure))
          : 0.0;
  rep.router_events = mesh_.aggregate_router_stats();
  rep.energy = account_energy(
      cfg_.energy, rep.router_events,
      static_cast<std::uint64_t>(mesh_.nodes()) * rep.cycles_run,
      cfg_.mesh.router.mode == core::RouterMode::Protected);
  rep.faults_injected = injector_.injected();
  if (degraded_) {
    rep.degraded = degraded_->stats();
    rep.degraded.flits_blackholed = rep.router_events.flits_swallowed;
  }
}

}  // namespace rnoc::noc
