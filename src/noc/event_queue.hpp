// Cycle-stamped event queue for the event-driven simulator core.
//
// A thin min-heap keyed on (cycle, order, seq). `order` is the caller's
// tie-break for events due on the same cycle (e.g. node id, so same-cycle
// injections pop in the same ascending-node order the cycle sweep uses);
// `seq` is an internal monotonic counter that makes pops FIFO-stable when
// both cycle and order collide. Pop order is therefore deterministic and
// matches the oracle sweep's iteration order by construction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace rnoc::noc {

template <typename T>
class EventQueue {
 public:
  /// Schedules `payload` at `at`; `order` breaks same-cycle ties (ascending).
  void push(Cycle at, std::uint64_t order, T payload) {
    heap_.push_back(Entry{at, order, seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  /// Schedules `payload` at `at`, FIFO-stable among same-cycle pushes.
  void push(Cycle at, T payload) { push(at, seq_, std::move(payload)); }

  /// Cycle of the earliest pending event, or kNeverCycle when empty.
  Cycle next_cycle() const { return heap_.empty() ? kNeverCycle : heap_.front().at; }

  /// Removes and returns the earliest event's payload.
  T pop() {
    require(!heap_.empty(), "EventQueue::pop: queue is empty");
    T payload = std::move(heap_.front().payload);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return payload;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void clear() {
    heap_.clear();
    seq_ = 0;
  }

 private:
  struct Entry {
    Cycle at = 0;
    std::uint64_t order = 0;
    std::uint64_t seq = 0;
    T payload;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.order != b.order) return a.order < b.order;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && before(heap_[l], heap_[best])) best = l;
      if (r < n && before(heap_[r], heap_[best])) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace rnoc::noc
