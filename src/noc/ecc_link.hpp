// A link whose datapath suffers bit upsets, protected by the SECDED codec
// (codec/secded.hpp) with single-retry retransmission — the low-overhead
// datapath protection Vicis applies, as a drop-in Link replacement.
//
// Error model per delivered flit: with probability `single_ber` one codeword
// bit flips (SECDED corrects it in place, zero cost); with probability
// `double_ber` two bits flip (SECDED detects; the flit is retransmitted and
// arrives one cycle later). The payload really is encoded, corrupted and
// decoded through the codec, so the correction path is exercised, not
// assumed.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "noc/link.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

struct EccLinkStats {
  std::uint64_t flits_delivered = 0;
  std::uint64_t corrected_singles = 0;
  std::uint64_t retransmissions = 0;
};

class EccLink : public Link {
 public:
  EccLink(double single_ber, double double_ber, std::uint64_t seed,
          Cycle latency = 1);

  std::optional<Flit> take_flit(Cycle now) override;

  bool idle() const override { return Link::idle() && !held_.has_value(); }
  int flits_in_flight() const override {
    return Link::flits_in_flight() + (held_ ? 1 : 0);
  }
  void for_each_flit(
      const std::function<void(const Flit&)>& fn) const override {
    Link::for_each_flit(fn);
    if (held_) fn(held_->flit);
  }

  const EccLinkStats& stats() const { return stats_; }

  void reset_for_run() override {
    Link::reset_for_run();
    held_.reset();
    stats_ = EccLinkStats{};
    rng_ = Rng(seed_);
  }

#ifdef RNOC_TRACE
  NodeId obs_node() const { return obs_node_; }
#endif

#ifdef RNOC_TRACE
  /// Observability sink (set by the Mesh in traced builds). Links carry no
  /// endpoint identity of their own, so the mesh also passes the node the
  /// flits flow into; retransmit instants are charged to that node.
  void set_observer(obs::Observer* o, NodeId down_node) {
    obs_ = o;
    obs_node_ = down_node;
  }
#endif

 private:
  struct Held {
    Flit flit;
    Cycle ready;
  };

  double single_ber_;
  double double_ber_;
  std::uint64_t seed_;
  Rng rng_;
  std::optional<Held> held_;  ///< Flit awaiting retransmission delivery.
  EccLinkStats stats_;
#ifdef RNOC_TRACE
  obs::Observer* obs_ = nullptr;
  NodeId obs_node_ = kInvalidNode;
#endif
};

}  // namespace rnoc::noc
