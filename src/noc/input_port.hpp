// Router input port: virtual channels with their state fields (paper §II-C),
// extended with the protection fields of the modified input port (paper
// Fig. 4) and a logical->physical VC permutation that implements the SA-stage
// VC-to-VC flit transfer (paper §V-C1) without corrupting in-flight traffic.
#pragma once

#include <vector>

#include "noc/flit.hpp"
#include "noc/net_counters.hpp"
#include "noc/ring_buffer.hpp"

namespace rnoc::noc {

/// The 'G' state field: where the VC's current packet is in the pipeline.
enum class VcState : std::uint8_t {
  Idle,     ///< No packet allocated.
  Routing,  ///< Head flit waiting for / in the RC stage.
  VcAlloc,  ///< Waiting for / in the VA stage.
  Active,   ///< Allocated; flits compete in SA and traverse the crossbar.
};

const char* vc_state_name(VcState s);

/// One virtual channel. Fields mirror the paper's input-port state:
/// G (state), R (route), O (out_vc), P/C implied by the buffer and the
/// upstream credit counters; plus the new fields R2/VF/ID (VA arbiter
/// sharing) and SP/FSP (crossbar secondary path).
struct VirtualChannel {
  VcState state = VcState::Idle;  // 'G'
  int route = -1;                 // 'R': output port of the current packet
  int out_vc = -1;                // 'O': allocated downstream VC (logical id)
  RingBuffer<Flit> buffer;        ///< Fixed capacity vc_depth; see ring_buffer.hpp.

  // --- Correction-circuitry state fields (protected router only) ---
  int r2 = -1;      // 'R2': RC result a borrowing VC placed here
  bool vf = false;  // 'VF': this VC's arbiters are lent out this cycle
  int id = -1;      // 'ID': which sibling VC borrowed the arbiters
  int sp = -1;      // 'SP': output port to arbitrate for to use the
                    //        crossbar secondary path
  bool fsp = false; // 'FSP': secondary path must be used

  // Retry memory for a faulty stage-2 VA arbiter (paper §V-B3): the
  // downstream VC whose allocation failed and must be excluded next cycle.
  int excluded_out_vc = -1;

#ifdef RNOC_TRACE
  /// Cycle the current packet's head flit was buffer-written (observability:
  /// feeds the per-hop latency histogram at switch traversal).
  Cycle obs_arrived = 0;
#endif

  bool empty() const { return buffer.empty(); }

  /// Returns the VC to Idle after the tail flit departs (or on transfer).
  void reset_to_idle();

  /// Clears the borrow-request fields after a lent allocation completes.
  void clear_borrow_fields();
};

/// An input port: `vcs` virtual channels of `depth` flits each, plus the
/// logical->physical VC map. Upstream nodes address VCs by *logical* id
/// (the id carried in flits and credits); the SA-stage transfer mechanism
/// re-points a logical id at a different physical buffer, so in-flight flits
/// and credits keep working after a transfer.
class InputPort {
 public:
  InputPort(int vcs, int depth);

  int vcs() const { return static_cast<int>(vcs_.size()); }
  int depth() const { return depth_; }

  VirtualChannel& vc(int phys) { return vcs_[check(phys)]; }
  const VirtualChannel& vc(int phys) const { return vcs_[check(phys)]; }

  int physical_of(int logical) const { return l2p_[check(logical)]; }
  int logical_of(int phys) const;

  /// True when the physical VC the flit's logical id maps to has space.
  bool can_accept(const Flit& f) const;

  /// Buffer-write: places the flit in the mapped physical VC; a head flit
  /// arriving at an Idle VC moves it to Routing.
  void write(const Flit& f);

  /// Pops and returns the head flit of physical VC `phys` (switch
  /// traversal). Keeps the port's flit count and shared accounting exact.
  Flit pop_front(int phys);

  /// Moves the whole packet (flits + state fields) from physical VC `from`
  /// into the empty, Idle physical VC `to`, and swaps their logical ids so
  /// that flits/credits still in flight stay consistent (paper §V-C1;
  /// 1-cycle operation, the cost is charged by the caller).
  void transfer(int from, int to);

  int buffered_flits() const { return buffered_; }

  /// Shared accounting sink (set by the Mesh); nullptr = standalone use.
  void set_counters(NetCounters* c) { counters_ = c; }

#ifdef RNOC_INVARIANTS
  /// Test-only corruption hook (invariant-checked builds): overwrites a
  /// physical VC's G field without any of the pipeline's legality checks,
  /// so directed tests can seed an illegal state transition and assert the
  /// NocChecker catches it.
  void test_set_vc_state(int phys, VcState s) {
    vcs_[static_cast<std::size_t>(check(phys))].state = s;
  }
#endif

 private:
  // Inline: every allocator stage addresses VCs through this every cycle.
  int check(int v) const {
    require(v >= 0 && v < static_cast<int>(vcs_.size()),
            "InputPort: VC index out of range");
    return v;
  }

  std::vector<VirtualChannel> vcs_;
  std::vector<int> l2p_;  ///< logical -> physical VC index (a permutation)
  int depth_;
  int buffered_ = 0;  ///< Flits across all VCs (kept exact by write/pop).
  NetCounters* counters_ = nullptr;
};

}  // namespace rnoc::noc
