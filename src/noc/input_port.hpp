// Router input port: virtual channels with their state fields (paper §II-C),
// extended with the protection fields of the modified input port (paper
// Fig. 4) and a logical->physical VC permutation that implements the SA-stage
// VC-to-VC flit transfer (paper §V-C1) without corrupting in-flight traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/flit.hpp"
#include "noc/net_counters.hpp"
#include "noc/ring_buffer.hpp"

namespace rnoc::noc {

/// The 'G' state field: where the VC's current packet is in the pipeline.
enum class VcState : std::uint8_t {
  Idle,     ///< No packet allocated.
  Routing,  ///< Head flit waiting for / in the RC stage.
  VcAlloc,  ///< Waiting for / in the VA stage.
  Active,   ///< Allocated; flits compete in SA and traverse the crossbar.
};

const char* vc_state_name(VcState s);

/// One virtual channel. Fields mirror the paper's input-port state:
/// G (state), R (route), O (out_vc), P/C implied by the buffer and the
/// upstream credit counters; plus the new fields R2/VF/ID (VA arbiter
/// sharing) and SP/FSP (crossbar secondary path).
struct VirtualChannel {
  VcState state = VcState::Idle;  // 'G'
  int route = -1;                 // 'R': output port of the current packet
  int out_vc = -1;                // 'O': allocated downstream VC (logical id)
  RingBuffer<Flit> buffer;        ///< Fixed capacity vc_depth; see ring_buffer.hpp.

  // --- Correction-circuitry state fields (protected router only) ---
  int r2 = -1;      // 'R2': RC result a borrowing VC placed here
  bool vf = false;  // 'VF': this VC's arbiters are lent out this cycle
  int id = -1;      // 'ID': which sibling VC borrowed the arbiters
  int sp = -1;      // 'SP': output port to arbitrate for to use the
                    //        crossbar secondary path
  bool fsp = false; // 'FSP': secondary path must be used

  // Retry memory for a faulty stage-2 VA arbiter (paper §V-B3): the
  // downstream VC whose allocation failed and must be excluded next cycle.
  int excluded_out_vc = -1;

  // --- Self-healing routing state (inert unless the mode is active) ---
  // Identity of the resident packet, recorded at the head's buffer write.
  // Valid whenever state != Idle, even after every buffered flit has been
  // forwarded — which is exactly when the reclamation sweep needs it to
  // recognise the truncated remainder of a packet a dead router cut.
  PacketId packet = 0;
  NodeId dst = kInvalidNode;
  // The current packet must be allocated the escape VC downstream: either
  // RC's odd-even candidate filter came up empty and the packet fell back
  // onto the west-first escape path, or the packet arrived on the escape
  // class and must stay on it until delivery (Duato escape discipline).
  bool escape_route = false;
  // RC proved the destination unreachable even via the escape tables; the
  // packet is flagged for the controller-executed purge after the step.
  bool unroutable = false;

#ifdef RNOC_TRACE
  /// Cycle the current packet's head flit was buffer-written (observability:
  /// feeds the per-hop latency histogram at switch traversal).
  Cycle obs_arrived = 0;
#endif

  bool empty() const { return buffer.empty(); }

  /// Returns the VC to Idle after the tail flit departs (or on transfer).
  void reset_to_idle();

  /// Clears the borrow-request fields after a lent allocation completes.
  void clear_borrow_fields();
};

/// Per-router aggregate of the pipeline-state VC masks the event core's
/// allocator fast paths consult instead of scanning every VC of every port.
/// Bit v of `routing[p]` / `vcalloc[p]` / `ready[p]` is set iff physical VC v
/// of port p is in Routing / in VcAlloc / Active with a buffered flit. The
/// `*_ports` summaries have bit p set iff the corresponding per-port mask is
/// non-zero, so an idle stage costs one load. Owned by the Router behind a
/// move-stable allocation; each InputPort holds a sink pointer plus its port
/// index and keeps its slice exact on every VC mutation (InputPort::refresh_vc
/// is idempotent — it recomputes one VC's bits from the current state). Only
/// usable when vcs <= 32; routers with more VCs leave the sink unset and the
/// event stages fall back to the scanning paths.
struct RouterVcMasks {
  static constexpr int kMaxPorts = 8;
  std::uint32_t routing[kMaxPorts]{};
  std::uint32_t vcalloc[kMaxPorts]{};
  std::uint32_t ready[kMaxPorts]{};
  std::uint32_t routing_ports = 0;
  std::uint32_t vcalloc_ports = 0;
  std::uint32_t ready_ports = 0;
};

/// An input port: `vcs` virtual channels of `depth` flits each, plus the
/// logical->physical VC map. Upstream nodes address VCs by *logical* id
/// (the id carried in flits and credits); the SA-stage transfer mechanism
/// re-points a logical id at a different physical buffer, so in-flight flits
/// and credits keep working after a transfer.
class InputPort {
 public:
  InputPort(int vcs, int depth);

  int vcs() const { return static_cast<int>(vcs_.size()); }
  int depth() const { return depth_; }

  VirtualChannel& vc(int phys) { return vcs_[check(phys)]; }
  const VirtualChannel& vc(int phys) const { return vcs_[check(phys)]; }

  int physical_of(int logical) const { return l2p_[check(logical)]; }
  int logical_of(int phys) const;

  /// True when the physical VC the flit's logical id maps to has space.
  bool can_accept(const Flit& f) const;

  /// Buffer-write: places the flit in the mapped physical VC; a head flit
  /// arriving at an Idle VC moves it to Routing.
  void write(const Flit& f);

  /// Pops and returns the head flit of physical VC `phys` (switch
  /// traversal). Keeps the port's flit count and shared accounting exact.
  Flit pop_front(int phys);

  /// Moves the whole packet (flits + state fields) from physical VC `from`
  /// into the empty, Idle physical VC `to`, and swaps their logical ids so
  /// that flits/credits still in flight stay consistent (paper §V-C1;
  /// 1-cycle operation, the cost is charged by the caller).
  void transfer(int from, int to);

  int buffered_flits() const { return buffered_; }

  /// Restores the port to its just-constructed state (Mesh::reset_for_run):
  /// empties every VC, resets all state fields and the logical->physical map.
  /// The caller owns the shared counters and zeroes them wholesale.
  void reset_for_run();

  /// Shared accounting sink (set by the Mesh); nullptr = standalone use.
  void set_counters(NetCounters* c) { counters_ = c; }

  /// Self-heal purge bookkeeping, keyed by *logical* VC id (the id arriving
  /// flits carry): while set, Router::accept_flit_from swallows the rest of
  /// a purged packet — flits already in flight upstream when the head was
  /// dropped — returning credits, until the tail clears the flag. Logical
  /// keying survives the SA-stage l2p permutation and VC reset.
  bool dropping(int logical) const {
    return drop_until_tail_[static_cast<std::size_t>(check(logical))] != 0;
  }
  void set_dropping(int logical) {
    drop_until_tail_[static_cast<std::size_t>(check(logical))] = 1;
  }
  void clear_dropping(int logical) {
    drop_until_tail_[static_cast<std::size_t>(check(logical))] = 0;
  }

  /// Self-heal reclamation filter, keyed by *logical* VC id: flits of
  /// `packet` that were injected at or before `armed_at` — the in-flight
  /// remnants of a fragment the reclamation sweep purged — are swallowed on
  /// arrival with their credit returned. Any other flit (a new packet, or a
  /// retransmission of the same id, which is injected strictly after the
  /// sweep) disarms the slot and is written normally, so a stale filter can
  /// never eat live traffic.
  void arm_poison(int logical, PacketId packet, Cycle armed_at) {
    poison_[static_cast<std::size_t>(check(logical))] = {packet, armed_at};
  }

  /// True when the arriving flit is a poisoned remnant the caller must
  /// swallow (returning its credit). Disarms the slot on the fragment's
  /// final possible flit or on any non-matching arrival.
  bool poison_swallow(const Flit& f) {
    PoisonSlot& slot = poison_[static_cast<std::size_t>(check(f.vc))];
    if (slot.packet == 0) return false;
    if (slot.packet == f.packet && f.injected <= slot.armed_at) {
      if (f.is_tail()) slot = PoisonSlot{};
      return true;
    }
    slot = PoisonSlot{};
    return false;
  }

  /// Wires this port's slice of the router's VC-state mask aggregate.
  /// nullptr (standalone or > 32 VCs) disables mask maintenance.
  void set_mask_sink(RouterVcMasks* m, int port);

  /// Recomputes VC `phys`'s bits in the mask aggregate from its current
  /// state. Idempotent; a no-op without a sink. Every mutation of a VC's G
  /// field or buffer occupancy must be followed by a call for that VC.
  void refresh_vc(int phys) {
    if (masks_ == nullptr) return;
    const VirtualChannel& v = vcs_[static_cast<std::size_t>(check(phys))];
    const std::uint32_t bit = 1u << static_cast<unsigned>(phys);
    set_mask_bit(masks_->routing[port_], masks_->routing_ports, bit,
                 v.state == VcState::Routing);
    set_mask_bit(masks_->vcalloc[port_], masks_->vcalloc_ports, bit,
                 v.state == VcState::VcAlloc);
    set_mask_bit(masks_->ready[port_], masks_->ready_ports, bit,
                 v.state == VcState::Active && !v.buffer.empty());
  }

#ifdef RNOC_INVARIANTS
  /// Test-only corruption hook (invariant-checked builds): overwrites a
  /// physical VC's G field without any of the pipeline's legality checks,
  /// so directed tests can seed an illegal state transition and assert the
  /// NocChecker catches it.
  void test_set_vc_state(int phys, VcState s) {
    vcs_[static_cast<std::size_t>(check(phys))].state = s;
    refresh_vc(phys);
  }
#endif

 private:
  /// One reclamation filter slot; packet == 0 means disarmed (packet ids
  /// start at 1). See arm_poison().
  struct PoisonSlot {
    PacketId packet = 0;
    Cycle armed_at = 0;
  };

  // Inline: every allocator stage addresses VCs through this every cycle.
  int check(int v) const {
    require(v >= 0 && v < static_cast<int>(vcs_.size()),
            "InputPort: VC index out of range");
    return v;
  }

  // Sets/clears `bit` in the per-port mask and keeps the port-summary bit
  // consistent with "per-port mask non-zero".
  void set_mask_bit(std::uint32_t& mask, std::uint32_t& ports,
                    std::uint32_t bit, bool on) const {
    if (on)
      mask |= bit;
    else
      mask &= ~bit;
    if (mask != 0)
      ports |= port_bit_;
    else
      ports &= ~port_bit_;
  }

  std::vector<VirtualChannel> vcs_;
  std::vector<int> l2p_;  ///< logical -> physical VC index (a permutation)
  std::vector<std::uint8_t> drop_until_tail_;  ///< By logical id; see dropping().
  std::vector<PoisonSlot> poison_;  ///< By logical id; see arm_poison().
  int depth_;
  int buffered_ = 0;  ///< Flits across all VCs (kept exact by write/pop).
  NetCounters* counters_ = nullptr;
  RouterVcMasks* masks_ = nullptr;  ///< Event-core state masks; see above.
  int port_ = -1;                   ///< This port's index in the sink.
  std::uint32_t port_bit_ = 0;      ///< 1 << port_, cached.
};

}  // namespace rnoc::noc
