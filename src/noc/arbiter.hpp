// Round-robin arbiter — the fundamental allocator building block (paper §II-B).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace rnoc::noc {

/// Rotating-priority (round-robin) arbiter over a fixed number of request
/// inputs. After a grant, priority moves to the input after the winner, which
/// gives the strong fairness the separable VA/SA allocators rely on.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int inputs);

  int inputs() const { return inputs_; }

  /// Grants one of the asserted requests (requests.size() == inputs()),
  /// returns its index and rotates priority, or returns -1 when no request
  /// is asserted. Must not be called on a faulty arbiter. Inline: runs for
  /// every port/VC with requests every cycle.
  int arbitrate(const std::vector<bool>& requests) {
    require(static_cast<int>(requests.size()) == inputs_,
            "RoundRobinArbiter::arbitrate: request vector size mismatch");
    for (int i = 0; i < inputs_; ++i) {
      const int idx = (pointer_ + i) % inputs_;
      if (requests[static_cast<std::size_t>(idx)]) {
        pointer_ = (idx + 1) % inputs_;
        return idx;
      }
    }
    return -1;
  }

  /// Priority pointer (next input to be favoured); exposed for tests.
  int pointer() const { return pointer_; }
  void set_pointer(int p);

 private:
  int inputs_;
  int pointer_ = 0;
};

}  // namespace rnoc::noc
