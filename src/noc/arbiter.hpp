// Round-robin arbiter — the fundamental allocator building block (paper §II-B).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rnoc::noc {

/// Rotating-priority (round-robin) arbiter over a fixed number of request
/// inputs. After a grant, priority moves to the input after the winner, which
/// gives the strong fairness the separable VA/SA allocators rely on.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(int inputs);

  int inputs() const { return inputs_; }

  /// Grants one of the asserted requests (requests.size() == inputs()),
  /// returns its index and rotates priority, or returns -1 when no request
  /// is asserted. Must not be called on a faulty arbiter. Inline: runs for
  /// every port/VC with requests every cycle.
  int arbitrate(const std::vector<bool>& requests) {
    require(static_cast<int>(requests.size()) == inputs_,
            "RoundRobinArbiter::arbitrate: request vector size mismatch");
    for (int i = 0; i < inputs_; ++i) {
      const int idx = (pointer_ + i) % inputs_;
      if (requests[static_cast<std::size_t>(idx)]) {
        pointer_ = (idx + 1) % inputs_;
        return idx;
      }
    }
    return -1;
  }

  /// Bitmask variant of `arbitrate` for inputs() <= 64: bit i of `requests`
  /// asserts input i. Same winner and pointer update as the vector form —
  /// the rotated mask's lowest set bit is the first asserted input at or
  /// after the priority pointer. Avoids the per-iteration modulo of the
  /// scan loop; this is the event core's hot path.
  int arbitrate_mask(std::uint64_t requests) {
    if (requests == 0) return -1;
    const unsigned p = static_cast<unsigned>(pointer_);
    // Rotate within inputs_ bits so the pointer's input lands at bit 0
    // (guard p == 0: a shift by inputs_ can be a full-width shift, UB).
    const std::uint64_t rot =
        p == 0 ? requests
               : (requests >> p) |
                     (requests << (static_cast<unsigned>(inputs_) - p));
    int idx = pointer_ + std::countr_zero(rot);
    if (idx >= inputs_) idx -= inputs_;
    pointer_ = idx + 1 == inputs_ ? 0 : idx + 1;
    return idx;
  }

  /// Priority pointer (next input to be favoured); exposed for tests.
  int pointer() const { return pointer_; }
  void set_pointer(int p);

 private:
  int inputs_;
  int pointer_ = 0;
};

}  // namespace rnoc::noc
