// Small shared state types used by the router and its allocator submodules.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rnoc::noc {

/// Upstream-side view of one downstream (output) VC: whether this router has
/// allocated it to a packet, and how many buffer credits remain.
struct OutVcState {
  bool allocated = false;
  int credits = 0;
};

/// A switch-allocation grant: in the next cycle, the flit at the head of
/// input VC (in_port, in_vc) traverses crossbar mux `mux` to physical output
/// port `out_port` (mux != out_port means the secondary path was used),
/// heading to downstream VC `out_vc`.
struct StGrant {
  int in_port = -1;
  int in_vc = -1;   ///< Physical VC index.
  int out_port = -1;
  int mux = -1;
  int out_vc = -1;  ///< Downstream logical VC id.
};

/// Event counters for one router. The protection-mechanism counters feed the
/// ablation benches (which mechanism fired how often under which fault).
struct RouterStats {
  std::uint64_t flits_traversed = 0;
  std::uint64_t buffer_writes = 0;
  std::uint64_t va_allocations = 0;
  std::uint64_t rc_computations = 0;
  std::uint64_t rc_spare_uses = 0;
  std::uint64_t va1_borrows = 0;        ///< Successful arbiter borrows (Scenario 1/2).
  std::uint64_t va1_borrow_waits = 0;   ///< Cycles a faulty VC waited for a lender.
  std::uint64_t va2_retries = 0;        ///< Reallocation retries at a faulty stage-2 arbiter.
  std::uint64_t sa1_bypass_grants = 0;  ///< Default-winner grants through the bypass path.
  std::uint64_t sa1_transfers = 0;      ///< VC-to-VC flit/state transfers.
  std::uint64_t xb_secondary_traversals = 0;
  std::uint64_t blocked_vc_cycles = 0;  ///< Cycles a VC was stalled by an untolerated fault.
  std::uint64_t flits_swallowed = 0;    ///< Flits sunk by this router after it died.
  std::uint64_t escape_reroutes = 0;    ///< Packets diverted onto the escape VC (self-heal).
  std::uint64_t flits_dropped = 0;      ///< Flits of unroutable packets purged in-network.

  void merge(const RouterStats& o) {
    flits_traversed += o.flits_traversed;
    buffer_writes += o.buffer_writes;
    va_allocations += o.va_allocations;
    rc_computations += o.rc_computations;
    rc_spare_uses += o.rc_spare_uses;
    va1_borrows += o.va1_borrows;
    va1_borrow_waits += o.va1_borrow_waits;
    va2_retries += o.va2_retries;
    sa1_bypass_grants += o.sa1_bypass_grants;
    sa1_transfers += o.sa1_transfers;
    xb_secondary_traversals += o.xb_secondary_traversals;
    blocked_vc_cycles += o.blocked_vc_cycles;
    flits_swallowed += o.flits_swallowed;
    escape_reroutes += o.escape_reroutes;
    flits_dropped += o.flits_dropped;
  }
};

}  // namespace rnoc::noc
