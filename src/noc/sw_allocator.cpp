#include "noc/sw_allocator.hpp"

#include <algorithm>
#include <bit>

namespace rnoc::noc {

SwitchAllocator::SwitchAllocator(int ports, int vcs, core::RouterMode mode,
                                 Cycle default_winner_epoch)
    : ports_(ports), vcs_(vcs), mode_(mode), epoch_(default_winner_epoch) {
  require(ports >= 1 && vcs >= 1, "SwitchAllocator: bad geometry");
  require(default_winner_epoch >= 1, "SwitchAllocator: epoch must be >= 1");
  for (int p = 0; p < ports; ++p) {
    stage1_.emplace_back(vcs);
    stage2_.emplace_back(ports);
  }
  w1_.resize(static_cast<std::size_t>(ports), -1);
  ready_.resize(static_cast<std::size_t>(vcs), false);
  req_.resize(static_cast<std::size_t>(ports), false);
  mux_req_.resize(static_cast<std::size_t>(ports), 0);
#ifdef RNOC_TRACE
  obs_pending_.resize(static_cast<std::size_t>(ports * vcs), 0);
#endif
}

#ifdef RNOC_TRACE
void SwitchAllocator::obs_flush_pending() {
  if (obs_npending_ == 0) return;
  for (auto& pend : obs_pending_) {
    if (!pend) continue;
    pend = 0;
    if (obs_)
      obs_->metrics().add_stall(router_, obs::Stage::Sa,
                                obs::StallCause::LostSa);
  }
  obs_npending_ = 0;
}
#endif

int SwitchAllocator::default_winner(Cycle now) const {
  return static_cast<int>((now / epoch_) % static_cast<Cycle>(vcs_));
}

RoundRobinArbiter& SwitchAllocator::stage1(int port) {
  return stage1_[static_cast<std::size_t>(port)];
}

RoundRobinArbiter& SwitchAllocator::stage2(int out_port) {
  return stage2_[static_cast<std::size_t>(out_port)];
}

bool SwitchAllocator::crossbar_path_ok(
    VirtualChannel& vc, const fault::RouterFaultState& faults) const {
  // Fault-free fast path. A stale FSP (from an expired transient fault)
  // keeps pointing at the secondary path, exactly as the full evaluation
  // below would re-derive it.
  if (faults.count() == 0) return true;
  const int out = vc.route;
  using fault::SiteType;
  const bool primary_ok = !faults.has(SiteType::XbMux, out) &&
                          !faults.has(SiteType::Sa2Arbiter, out);
  if (mode_ == core::RouterMode::Baseline) {
    // The generic crossbar has exactly one path per output port.
    return primary_ok;
  }
  // Every flit leaves through the output-select mux P_out; its fault is
  // uncoverable (paper §VIII-D).
  if (faults.has(SiteType::XbPSelect, out)) return false;
  if (!vc.fsp && primary_ok) return true;
  // Need (or already committed to) the secondary path. The RC unit normally
  // sets SP/FSP (paper §V-D); a fault that appears after RC ran is resolved
  // here the same way.
  const int sec = core::secondary_mux_for_output(out, ports_);
  const bool secondary_ok = !faults.has(SiteType::XbMux, sec) &&
                            !faults.has(SiteType::Sa2Arbiter, sec) &&
                            !faults.has(SiteType::XbDemux, sec);
  if (!secondary_ok) {
    // Fall back to the primary path if it still works (e.g. stale FSP from
    // a fault combination that no longer lets the secondary work).
    if (primary_ok) {
      vc.sp = -1;
      vc.fsp = false;
      return true;
    }
    return false;
  }
  vc.sp = sec;
  vc.fsp = true;
  return true;
}

void SwitchAllocator::step(Cycle now, std::vector<InputPort>& inputs,
                           std::vector<std::vector<OutVcState>>& out_vcs,
                           const fault::RouterFaultState& faults,
                           RouterStats& stats, std::vector<StGrant>& grants) {
  using fault::SiteType;
  grants.clear();
  const bool no_faults = faults.count() == 0;

  // --- Stage 1: one winning VC per input port. ---
  bool any_winner = false;
  for (int p = 0; p < ports_; ++p) {
    w1_[static_cast<std::size_t>(p)] = -1;
    InputPort& port = inputs[static_cast<std::size_t>(p)];
    // A port with no buffered flits has no Active non-empty VC: no readiness,
    // no bypass grant, no transferable packet. Skipping it is exact (arbiter
    // pointers only move on grants, which require a ready VC).
    if (port.buffered_flits() == 0) continue;
    std::fill(ready_.begin(), ready_.end(), false);
    bool any_ready = false;
    for (int v = 0; v < vcs_; ++v) {
      VirtualChannel& vc = port.vc(v);
      if (vc.state != VcState::Active || vc.buffer.empty()) continue;
#ifdef RNOC_TRACE
      if (obs_) obs_->metrics().add_request(router_, obs::Stage::Sa);
#endif
      if (out_vcs[static_cast<std::size_t>(vc.route)]
                 [static_cast<std::size_t>(vc.out_vc)]
              .credits <= 0) {
#ifdef RNOC_TRACE
        // Ordinary credit stall.
        if (obs_)
          obs_->metrics().add_stall(router_, obs::Stage::Sa,
                                    obs::StallCause::NoCredit);
#endif
        continue;
      }
      if (!crossbar_path_ok(vc, faults)) {
        ++stats.blocked_vc_cycles;
#ifdef RNOC_TRACE
        if (obs_) {
          obs_->metrics().add_stall(router_, obs::Stage::Sa,
                                    obs::StallCause::FaultBlocked);
          obs_->on_event(obs::EventKind::FaultBlock, now,
                         vc.buffer.front().packet, router_, p, v);
        }
#endif
        continue;
      }
      ready_[static_cast<std::size_t>(v)] = true;
      any_ready = true;
#ifdef RNOC_TRACE
      if (!obs_pending_[static_cast<std::size_t>(p * vcs_ + v)]) {
        obs_pending_[static_cast<std::size_t>(p * vcs_ + v)] = 1;
        ++obs_npending_;
      }
#endif
    }

    if (no_faults || !faults.has(SiteType::Sa1Arbiter, p)) {
      if (any_ready) {
        const int w = stage1(p).arbitrate(ready_);
        w1_[static_cast<std::size_t>(p)] = w;
        any_winner = true;
      }
      continue;
    }
    if (mode_ == core::RouterMode::Baseline) {
      // No bypass: every ready VC is stuck at switch allocation.
      for (int v = 0; v < vcs_; ++v) {
        if (!ready_[static_cast<std::size_t>(v)]) continue;
        ++stats.blocked_vc_cycles;
#ifdef RNOC_TRACE
        obs_pending_[static_cast<std::size_t>(p * vcs_ + v)] = 0;
        --obs_npending_;
        if (obs_) {
          obs_->metrics().add_stall(router_, obs::Stage::Sa,
                                    obs::StallCause::FaultBlocked);
          obs_->on_event(obs::EventKind::FaultBlock, now,
                         port.vc(v).buffer.front().packet, router_, p, v);
        }
#endif
      }
      continue;
    }
    if (faults.has(SiteType::Sa1Bypass, p)) {
      for (int v = 0; v < vcs_; ++v) {
        if (!ready_[static_cast<std::size_t>(v)]) continue;
        ++stats.blocked_vc_cycles;
#ifdef RNOC_TRACE
        obs_pending_[static_cast<std::size_t>(p * vcs_ + v)] = 0;
        --obs_npending_;
        if (obs_) {
          obs_->metrics().add_stall(router_, obs::Stage::Sa,
                                    obs::StallCause::FaultBlocked);
          obs_->on_event(obs::EventKind::FaultBlock, now,
                         port.vc(v).buffer.front().packet, router_, p, v);
        }
#endif
      }
      continue;
    }
    // Bypass path (paper §V-C1): the rotating default winner is granted
    // without arbitration. If the default winner VC is empty while another
    // VC of this port holds flits, the packet (flits + state fields) is
    // transferred into it, costing this cycle.
    const int d = default_winner(now);
    if (ready_[static_cast<std::size_t>(d)]) {
      w1_[static_cast<std::size_t>(p)] = d;
      any_winner = true;
      ++stats.sa1_bypass_grants;
      continue;
    }
    VirtualChannel& dvc = port.vc(d);
    if (dvc.state == VcState::Idle && dvc.empty()) {
      for (int v = 0; v < vcs_; ++v) {
        VirtualChannel& src = port.vc(v);
        if (v == d || src.state != VcState::Active || src.empty()) continue;
        port.transfer(v, d);
        ++stats.sa1_transfers;
        break;
      }
    }
    // Default winner not ready and no transfer possible: no grant this cycle.
  }
#ifdef RNOC_TRACE
  if (!any_winner) {
    obs_flush_pending();
    return;
  }
#else
  if (!any_winner) return;
#endif

  // --- Stage 2: one grant per output mux/arbiter. ---
  for (int m = 0; m < ports_; ++m) {
    if (!no_faults && faults.has(SiteType::Sa2Arbiter, m))
      continue;  // Arbiter is dead.
    bool any = false;
    for (int p = 0; p < ports_; ++p) {
      const int v = w1_[static_cast<std::size_t>(p)];
      bool wants = false;
      if (v >= 0) {
        const VirtualChannel& vc = inputs[static_cast<std::size_t>(p)].vc(v);
        wants = (vc.fsp ? vc.sp : vc.route) == m;
      }
      req_[static_cast<std::size_t>(p)] = wants;
      any = any || wants;
    }
    if (!any) continue;
    const int g = stage2(m).arbitrate(req_);
    if (g < 0) continue;
    const int v = w1_[static_cast<std::size_t>(g)];
    VirtualChannel& vc = inputs[static_cast<std::size_t>(g)].vc(v);
    grants.push_back({g, v, vc.route, m, vc.out_vc});
    --out_vcs[static_cast<std::size_t>(vc.route)]
             [static_cast<std::size_t>(vc.out_vc)]
          .credits;
    if (m != vc.route) ++stats.xb_secondary_traversals;
#ifdef RNOC_TRACE
    if (obs_pending_[static_cast<std::size_t>(g * vcs_ + v)]) {
      obs_pending_[static_cast<std::size_t>(g * vcs_ + v)] = 0;
      --obs_npending_;
    }
    if (obs_) {
      obs_->metrics().add_grant(router_, obs::Stage::Sa);
      if (vc.buffer.front().is_head())
        obs_->on_event(obs::EventKind::Sa, now, vc.buffer.front().packet,
                       router_, g, v);
    }
#endif
  }
#ifdef RNOC_TRACE
  obs_flush_pending();
#endif
}

void SwitchAllocator::step_event(Cycle now,
                                 std::vector<InputPort>& inputs,
                                 std::vector<std::vector<OutVcState>>& out_vcs,
                                 RouterStats& stats,
                                 std::vector<StGrant>& grants,
                                 const RouterVcMasks& masks) {
  (void)now;
  grants.clear();
  // Fault-free mirror of step(): the bypass/transfer and fault-blocked
  // branches cannot trigger and crossbar_path_ok is identically true (a
  // stale FSP from an expired transient fault is honoured by the same
  // fsp ? sp : route mux selection), so only readiness, arbitration and
  // the grant commit remain. The state masks are exact (bit v of ready[p]
  // <=> VC v of port p is Active with a buffered flit), so iterating their
  // set bits ascending visits exactly the VCs the scanning loop serves, in
  // the same order; mux request slots are lazily cleared on first use, so a
  // cycle's cost never includes ports that requested nothing.
  if (masks.ready_ports == 0) return;
  std::uint32_t mux_mask = 0;
  bool any_winner = false;

  // --- Stage 1: one winning VC per input port. ---
  for (std::uint32_t pm = masks.ready_ports; pm != 0; pm &= pm - 1) {
    const int p = std::countr_zero(pm);
    InputPort& port = inputs[static_cast<std::size_t>(p)];
    std::uint64_t ready = 0;
    for (std::uint32_t vm = masks.ready[p]; vm != 0; vm &= vm - 1) {
      const int v = std::countr_zero(vm);
      const VirtualChannel& vc = port.vc(v);
#ifdef RNOC_TRACE
      if (obs_) obs_->metrics().add_request(router_, obs::Stage::Sa);
#endif
      if (out_vcs[static_cast<std::size_t>(vc.route)]
                 [static_cast<std::size_t>(vc.out_vc)]
              .credits <= 0) {
#ifdef RNOC_TRACE
        if (obs_)
          obs_->metrics().add_stall(router_, obs::Stage::Sa,
                                    obs::StallCause::NoCredit);
#endif
        continue;
      }
      ready |= std::uint64_t{1} << static_cast<unsigned>(v);
#ifdef RNOC_TRACE
      if (!obs_pending_[static_cast<std::size_t>(p * vcs_ + v)]) {
        obs_pending_[static_cast<std::size_t>(p * vcs_ + v)] = 1;
        ++obs_npending_;
      }
#endif
    }
    if (ready == 0) continue;
    const int w = stage1(p).arbitrate_mask(ready);
    w1_[static_cast<std::size_t>(p)] = w;
    const VirtualChannel& vc = port.vc(w);
    const int m = vc.fsp ? vc.sp : vc.route;
    if ((mux_mask >> static_cast<unsigned>(m) & 1u) == 0) {
      mux_mask |= 1u << static_cast<unsigned>(m);
      mux_req_[static_cast<std::size_t>(m)] = 0;
    }
    mux_req_[static_cast<std::size_t>(m)] |= std::uint64_t{1}
                                            << static_cast<unsigned>(p);
    any_winner = true;
  }
  if (!any_winner) {
#ifdef RNOC_TRACE
    obs_flush_pending();
#endif
    return;
  }

  // --- Stage 2: one grant per requested output mux, ascending. ---
  for (; mux_mask != 0; mux_mask &= mux_mask - 1) {
    const int m = std::countr_zero(mux_mask);
    const std::uint64_t req = mux_req_[static_cast<std::size_t>(m)];
    const int g = stage2(m).arbitrate_mask(req);
    const int v = w1_[static_cast<std::size_t>(g)];
    VirtualChannel& vc = inputs[static_cast<std::size_t>(g)].vc(v);
    grants.push_back({g, v, vc.route, m, vc.out_vc});
    --out_vcs[static_cast<std::size_t>(vc.route)]
             [static_cast<std::size_t>(vc.out_vc)]
          .credits;
    if (m != vc.route) ++stats.xb_secondary_traversals;
#ifdef RNOC_TRACE
    if (obs_pending_[static_cast<std::size_t>(g * vcs_ + v)]) {
      obs_pending_[static_cast<std::size_t>(g * vcs_ + v)] = 0;
      --obs_npending_;
    }
    if (obs_) {
      obs_->metrics().add_grant(router_, obs::Stage::Sa);
      if (vc.buffer.front().is_head())
        obs_->on_event(obs::EventKind::Sa, now, vc.buffer.front().packet,
                       router_, g, v);
    }
#endif
  }
#ifdef RNOC_TRACE
  obs_flush_pending();
#endif
}

void SwitchAllocator::reset_for_run() {
  for (auto& a : stage1_) a.set_pointer(0);
  for (auto& a : stage2_) a.set_pointer(0);
#ifdef RNOC_TRACE
  std::fill(obs_pending_.begin(), obs_pending_.end(), 0);
  obs_npending_ = 0;
#endif
}

}  // namespace rnoc::noc
