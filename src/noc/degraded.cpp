#include "noc/degraded.hpp"

#include <algorithm>

namespace rnoc::noc {

DegradedModeController::DegradedModeController(Mesh& mesh,
                                               const DegradedConfig& cfg)
    : mesh_(mesh),
      cfg_(cfg),
      mode_(mesh.config().router.mode),
      dead_(static_cast<std::size_t>(mesh.nodes()), 0),
      outstanding_(static_cast<std::size_t>(mesh.nodes()), 0) {
  require(cfg_.ack_delay >= 1, "DegradedConfig: ack_delay must be >= 1");
  require(cfg_.retx_timeout >= 1, "DegradedConfig: retx_timeout must be >= 1");
  require(cfg_.retx_timeout_cap >= cfg_.retx_timeout,
          "DegradedConfig: retx_timeout_cap below retx_timeout");
  require(cfg_.backoff >= 1.0, "DegradedConfig: backoff must be >= 1");
  require(cfg_.max_retries >= 0, "DegradedConfig: max_retries negative");
  require(cfg_.retx_window >= 1, "DegradedConfig: retx_window must be >= 1");
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    NetworkInterface& ni = mesh_.ni(n);
    ni.set_inject_gate(
        [this, n](const PacketDesc& p) { return allow_inject(n, p); });
    ni.set_sent_hook(
        [this, n](const PacketDesc& p, Cycle now) { on_sent(n, p, now); });
  }
}

bool DegradedModeController::pair_connected(NodeId src, NodeId dst) const {
  if (node_dead(src) || node_dead(dst)) return false;
  // During a drain the post-switch tables do not exist yet; the dead set is
  // the only thing known to be wrong, so be optimistic about the rest (the
  // epoch-switch sweep re-filters queued packets once the tables exist).
  if (tables_ == nullptr || draining_) return true;
  return tables_->reachable(src, dst);
}

bool DegradedModeController::admit(const PacketDesc& p) {
  if (pair_connected(p.src, p.dst)) return true;
  ++stats_.dropped_at_source;
  return false;
}

bool DegradedModeController::allow_inject(NodeId src,
                                          const PacketDesc& p) const {
  (void)p;
  if (draining_) return false;
  return outstanding_[static_cast<std::size_t>(src)] < cfg_.retx_window;
}

void DegradedModeController::on_sent(NodeId src, const PacketDesc& p,
                                     Cycle now) {
  auto it = entries_.find(p.id);
  if (it == entries_.end()) {
    Entry e;
    e.desc = p;
    e.timeout = cfg_.retx_timeout;
    it = entries_.emplace(p.id, std::move(e)).first;
    ++stats_.packets_tracked;
    ++outstanding_[static_cast<std::size_t>(src)];
  }
  Entry& e = it->second;
  e.in_flight = true;
  e.deadline = now + e.timeout;
  timeout_due_.push({e.deadline, p.id});
}

bool DegradedModeController::on_delivered(const Flit& tail, Cycle now) {
  if (!delivered_ids_.insert(tail.packet).second)
    return false;  // Duplicate from a retransmission: suppress.
  const auto it = entries_.find(tail.packet);
  if (it != entries_.end()) {
    it->second.delivered = true;
    it->second.deadline = kNeverCycle;  // Disarm pending timeouts.
    ack_due_.push({now + cfg_.ack_delay, tail.packet});
  }
  return true;
}

void DegradedModeController::drop_entry(
    std::map<PacketId, Entry>::iterator it) {
  --outstanding_[static_cast<std::size_t>(it->second.desc.src)];
  entries_.erase(it);
}

void DegradedModeController::on_faults_injected(Cycle now) {
  bool killed = false;
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    if (node_dead(n)) continue;
    if (!core::router_failed(mesh_.router(n).faults(), mode_)) continue;
    mesh_.kill_router(n, now);
    dead_[static_cast<std::size_t>(n)] = 1;
    ++stats_.router_deaths;
    killed = true;
#ifdef RNOC_TRACE
    mesh_.observer().on_event(obs::EventKind::RouterDeath, now, 0, n, -1, -1);
#endif
  }
  if (killed && !draining_) begin_drain(now);
}

void DegradedModeController::begin_drain(Cycle now) {
  (void)now;
  // The inject gates consult draining_, so flipping it freezes every NI at
  // its next packet boundary; packets already serializing run out into the
  // network (or the dead routers' black holes).
  draining_ = true;
}

void DegradedModeController::switch_epoch(Cycle now) {
  mesh_.reset_flow_control();

  // Every link touching a dead router is gone: its own four outgoing
  // directions plus each live neighbour's link toward it.
  std::vector<DeadLink> dead_links;
  const MeshDims& dims = mesh_.dims();
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    if (!node_dead(n)) continue;
    const Coord c = dims.coord_of(n);
    const Coord neighbours[] = {{c.x, c.y - 1}, {c.x + 1, c.y},
                                {c.x, c.y + 1}, {c.x - 1, c.y}};
    const Direction dirs[] = {Direction::North, Direction::East,
                              Direction::South, Direction::West};
    for (int d = 0; d < 4; ++d) {
      if (!dims.contains(neighbours[d])) continue;
      const int out = port_of(dirs[d]);
      dead_links.push_back({n, out});
      dead_links.push_back({dims.node_of(neighbours[d]), opposite_port(out)});
    }
  }
  auto next = std::make_unique<FaultAwareTables>(
      FaultAwareTables::build(dims, dead_links));
  mesh_.set_routing_tables(next.get());
  tables_ = std::move(next);  // Old epoch's tables die after the re-point.
  ++epoch_;
  ++stats_.reroute_epochs;
  draining_ = false;  // Thaws the gates; pair_connected now uses the tables.

  // Queued packets that the new epoch cannot serve are dropped now. A
  // queued retransmission still has a tracked entry — erase it with the
  // packet or it would wait on a deadline that will never be armed. Only
  // tracked packets (sent at least once) count as dropped_unreachable;
  // a never-sent packet is a source-side refusal, exactly like admit(),
  // which keeps dropped_unreachable <= packets_tracked and the delivery
  // ratio's denominator consistent.
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    mesh_.ni(n).drop_queued_if([&](const PacketDesc& p) {
      if (pair_connected(n, p.dst)) return false;
      const auto it = entries_.find(p.id);
      if (it != entries_.end()) {
        ++stats_.dropped_unreachable;
        drop_entry(it);
      } else {
        ++stats_.dropped_at_source;
      }
      return true;
    });
  }

#ifdef RNOC_TRACE
  mesh_.observer().on_event(obs::EventKind::Reroute, now, 0, kInvalidNode, -1,
                            -1);
#endif
  (void)now;
}

void DegradedModeController::step(Cycle now) {
  if (draining_) {
    // Timeouts are deferred while draining (retransmissions could not be
    // injected anyway); acknowledgements keep flowing below.
    if (mesh_.flits_in_network() == 0 && mesh_.links_idle() &&
        !mesh_.any_ni_sending())
      switch_epoch(now);
  }

  while (!ack_due_.empty() && ack_due_.top().first <= now) {
    const PacketId id = ack_due_.top().second;
    ack_due_.pop();
    const auto it = entries_.find(id);
    if (it == entries_.end() || !it->second.delivered) continue;
    ++stats_.packets_acked;
    drop_entry(it);
  }

  if (draining_) return;
  while (!timeout_due_.empty() && timeout_due_.top().first <= now) {
    const auto [deadline, id] = timeout_due_.top();
    timeout_due_.pop();
    const auto it = entries_.find(id);
    // Lazy invalidation: honour the pop only if it matches the armed
    // deadline (acked/delivered/re-armed entries moved on without us).
    if (it == entries_.end() || it->second.deadline != deadline) continue;
    Entry& e = it->second;
    if (!pair_connected(e.desc.src, e.desc.dst)) {
      ++stats_.dropped_unreachable;
      drop_entry(it);
      continue;
    }
    if (e.retries >= cfg_.max_retries) {
      ++stats_.gave_up;
      drop_entry(it);
      continue;
    }
    ++e.retries;
    ++stats_.retransmits;
    e.timeout = std::min<Cycle>(
        cfg_.retx_timeout_cap,
        static_cast<Cycle>(static_cast<double>(e.timeout) * cfg_.backoff));
    e.in_flight = false;
    e.deadline = kNeverCycle;  // Re-armed when the tail re-enters the wire.
#ifdef RNOC_TRACE
    mesh_.observer().on_event(obs::EventKind::E2eRetx, now, e.desc.id,
                              e.desc.src, -1, -1);
#endif
    mesh_.ni(e.desc.src).enqueue(e.desc);
  }
}

}  // namespace rnoc::noc
