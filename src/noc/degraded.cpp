#include "noc/degraded.hpp"

#include <algorithm>

namespace rnoc::noc {

const char* degraded_strategy_name(DegradedStrategy s) {
  switch (s) {
    case DegradedStrategy::DrainReroute: return "drain_reroute";
    case DegradedStrategy::SelfHeal: return "self_heal";
  }
  unreachable("degraded_strategy_name: unhandled DegradedStrategy");
}

void validate_degraded_config(const DegradedConfig& cfg) {
  require(cfg.ack_delay >= 1, "DegradedConfig: ack_delay must be >= 1");
  require(cfg.retx_timeout >= 1, "DegradedConfig: retx_timeout must be >= 1");
  require(cfg.retx_timeout_cap >= cfg.retx_timeout,
          "DegradedConfig: retx_timeout_cap below retx_timeout");
  require(cfg.backoff >= 1.0, "DegradedConfig: backoff must be >= 1");
  require(cfg.max_retries >= 0, "DegradedConfig: max_retries negative");
  require(cfg.retx_window >= 1, "DegradedConfig: retx_window must be >= 1");
}

DegradedModeController::DegradedModeController(Mesh& mesh,
                                               const DegradedConfig& cfg)
    : mesh_(mesh),
      cfg_(cfg),
      mode_(mesh.config().router.mode),
      dead_(static_cast<std::size_t>(mesh.nodes()), 0),
      outstanding_(static_cast<std::size_t>(mesh.nodes()), 0) {
  validate_degraded_config(cfg_);
  if (cfg_.strategy == DegradedStrategy::SelfHeal) {
    // The escape discipline leans on odd-even's any-subset legality and
    // reserves one whole VC as the west-first escape class.
    require(mesh.config().router.routing == RoutingAlgo::OddEven,
            "DegradedConfig: SelfHeal requires odd-even adaptive routing");
    require(mesh.config().router.vnets == 1,
            "DegradedConfig: SelfHeal requires a single virtual network");
    require(mesh.config().router.vcs >= 2,
            "DegradedConfig: SelfHeal needs >= 2 VCs (one escape)");
    updated_scratch_.reserve(static_cast<std::size_t>(mesh.nodes()));
  }
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    NetworkInterface& ni = mesh_.ni(n);
    ni.set_inject_gate(
        [this, n](const PacketDesc& p) { return allow_inject(n, p); });
    ni.set_sent_hook(
        [this, n](const PacketDesc& p, Cycle now) { on_sent(n, p, now); });
  }
}

bool DegradedModeController::pair_connected(NodeId src, NodeId dst) const {
  if (node_dead(src) || node_dead(dst)) return false;
  // During a drain the post-switch tables do not exist yet; the dead set is
  // the only thing known to be wrong, so be optimistic about the rest (the
  // epoch-switch sweep re-filters queued packets once the tables exist).
  if (tables_ == nullptr || draining_) return true;
  if (cfg_.strategy == DegradedStrategy::SelfHeal && !serveable_.empty()) {
    const std::size_t bit =
        static_cast<std::size_t>(src) * static_cast<std::size_t>(mesh_.nodes()) +
        static_cast<std::size_t>(dst);
    return (serveable_[bit >> 6] >> (bit & 63)) & 1u;
  }
  return tables_->reachable(src, dst);
}

void DegradedModeController::compute_serveable() {
  // The timeout path must distinguish "temporarily lost" from "the healed
  // datapath can never serve this pair". Escape-table reachability from the
  // source is too weak: minimal-adaptive RC steers by downstream credits,
  // so a packet can be forced down the single minimal direction into a node
  // whose candidates are all dead and whose west-first detour is illegal
  // from there (west-after-east) — a deterministic purge/retransmit loop
  // that burns every retry. A pair is serveable only if every adaptive
  // excursion ends at the destination or at a node the RC filter hands to
  // the escape tables with a complete route. Minimal moves strictly shrink
  // the distance, so each pair's walk is a DAG and a memoised DFS settles
  // it in one pass.
  const NodeId n = mesh_.nodes();
  serveable_.assign((static_cast<std::size_t>(n) * n + 63) / 64, 0);
  std::vector<std::uint8_t> memo(static_cast<std::size_t>(n), 0);
  for (NodeId s = 0; s < n; ++s) {
    if (node_dead(s)) continue;
    for (NodeId d = 0; d < n; ++d) {
      if (d == s || node_dead(d)) continue;
      std::fill(memo.begin(), memo.end(), 0);
      if (serveable_dfs(s, d, s, memo)) {
        const std::size_t bit = static_cast<std::size_t>(s) * n + d;
        serveable_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    }
  }
}

bool DegradedModeController::serveable_dfs(
    NodeId src, NodeId dst, NodeId at, std::vector<std::uint8_t>& memo) const {
  if (at == dst) return true;
  std::uint8_t& m = memo[static_cast<std::size_t>(at)];
  if (m != 0) return m == 1;  // 1 = serveable, 2 = trapped.
  const MeshDims& dims = mesh_.dims();
  int cands[kMeshPorts];
  const int nc = odd_even_candidates(dims, at, src, dst, cands);
  const Coord c = dims.coord_of(at);
  int live = 0;
  bool ok = true;
  for (int i = 0; i < nc; ++i) {
    Coord nb = c;
    switch (direction_of(cands[i])) {
      case Direction::Local: continue;  // Emitted only at dst (handled above).
      case Direction::North: --nb.y; break;
      case Direction::East: ++nb.x; break;
      case Direction::South: ++nb.y; break;
      case Direction::West: --nb.x; break;
    }
    const NodeId next = dims.node_of(nb);
    if (node_dead(next)) continue;  // The RC filter drops this candidate.
    ++live;
    if (ok && !serveable_dfs(src, dst, next, memo)) ok = false;
  }
  // Whole minimal set filtered: RC diverts onto the escape VC, which needs
  // a complete west-first route from here (a mid-chain gap purges).
  if (live == 0) ok = tables_ != nullptr && tables_->reachable(at, dst);
  m = ok ? 1 : 2;
  return ok;
}

bool DegradedModeController::admit(const PacketDesc& p) {
  if (pair_connected(p.src, p.dst)) return true;
  ++stats_.dropped_at_source;
  return false;
}

bool DegradedModeController::allow_inject(NodeId src,
                                          const PacketDesc& p) const {
  (void)p;
  if (draining_) return false;
  return outstanding_[static_cast<std::size_t>(src)] < cfg_.retx_window;
}

void DegradedModeController::on_sent(NodeId src, const PacketDesc& p,
                                     Cycle now) {
  auto it = entries_.find(p.id);
  if (it == entries_.end()) {
    Entry e;
    e.desc = p;
    e.timeout = cfg_.retx_timeout;
    it = entries_.emplace(p.id, std::move(e)).first;
    ++stats_.packets_tracked;
    ++outstanding_[static_cast<std::size_t>(src)];
  }
  Entry& e = it->second;
  e.in_flight = true;
  e.deadline = now + e.timeout;
  timeout_due_.push({e.deadline, p.id});
}

bool DegradedModeController::on_delivered(const Flit& tail, Cycle now) {
  if (!delivered_ids_.insert(tail.packet).second)
    return false;  // Duplicate from a retransmission: suppress.
  const auto it = entries_.find(tail.packet);
  if (it != entries_.end()) {
    it->second.delivered = true;
    it->second.deadline = kNeverCycle;  // Disarm pending timeouts.
    ack_due_.push({now + cfg_.ack_delay, tail.packet});
  }
  return true;
}

void DegradedModeController::drop_entry(
    std::map<PacketId, Entry>::iterator it) {
  --outstanding_[static_cast<std::size_t>(it->second.desc.src)];
  entries_.erase(it);
}

void DegradedModeController::on_faults_injected(Cycle now) {
  bool killed = false;
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    if (node_dead(n)) continue;
    if (!core::router_failed(mesh_.router(n).faults(), mode_)) continue;
    mesh_.kill_router(n, now);
    dead_[static_cast<std::size_t>(n)] = 1;
    ++stats_.router_deaths;
    killed = true;
#ifdef RNOC_TRACE
    mesh_.observer().on_event(obs::EventKind::RouterDeath, now, 0, n, -1, -1);
#endif
    if (cfg_.strategy == DegradedStrategy::SelfHeal) {
      // Lazy arming: the first death reserves the escape VC and starts the
      // RC filter; before it, the enabled-but-unfaulted run is bit-identical
      // to a disabled one.
      if (!mesh_.self_heal().active())
        mesh_.activate_self_heal(mesh_.config().router.vcs - 1);
      mesh_.self_heal().mark_dead(n);
    }
  }
  if (!killed) return;
  if (cfg_.strategy == DegradedStrategy::SelfHeal) {
    // Reclaim the packets the decommission purges truncated mid-forward:
    // their headless remainders would otherwise wedge a VC at every hop
    // they touch (no drain barrier cleans them here), starving the escape
    // class of its install condition. Their end-to-end entries retransmit
    // them over the healed topology.
    mesh_.reclaim_truncated(now);
    // No barrier: keep injecting. Restart the knowledge flood; a death
    // during a pending install supersedes that generation (the rebuilt
    // tables will cover the full dead set). The class stays frozen if it
    // was — sticky continuations keep the currently installed tables.
    converging_ = true;
    pending_install_ = false;
    pending_tables_.reset();
  } else if (!draining_) {
    begin_drain(now);
  }
}

void DegradedModeController::begin_drain(Cycle now) {
  (void)now;
  // The inject gates consult draining_, so flipping it freezes every NI at
  // its next packet boundary; packets already serializing run out into the
  // network (or the dead routers' black holes).
  draining_ = true;
}

std::vector<DeadLink> DegradedModeController::collect_dead_links() const {
  // Every link touching a dead router is gone: its own four outgoing
  // directions plus each live neighbour's link toward it.
  std::vector<DeadLink> dead_links;
  const MeshDims& dims = mesh_.dims();
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    if (!node_dead(n)) continue;
    const Coord c = dims.coord_of(n);
    const Coord neighbours[] = {{c.x, c.y - 1}, {c.x + 1, c.y},
                                {c.x, c.y + 1}, {c.x - 1, c.y}};
    const Direction dirs[] = {Direction::North, Direction::East,
                              Direction::South, Direction::West};
    for (int d = 0; d < 4; ++d) {
      if (!dims.contains(neighbours[d])) continue;
      const int out = port_of(dirs[d]);
      dead_links.push_back({n, out});
      dead_links.push_back({dims.node_of(neighbours[d]), opposite_port(out)});
    }
  }
  return dead_links;
}

void DegradedModeController::switch_epoch(Cycle now) {
  mesh_.reset_flow_control();

  auto next = std::make_unique<FaultAwareTables>(
      FaultAwareTables::build(mesh_.dims(), collect_dead_links()));
  mesh_.set_routing_tables(next.get());
  tables_ = std::move(next);  // Old epoch's tables die after the re-point.
  ++epoch_;
  ++stats_.reroute_epochs;
  draining_ = false;  // Thaws the gates; pair_connected now uses the tables.

  // Queued packets that the new epoch cannot serve are dropped now. A
  // queued retransmission still has a tracked entry — erase it with the
  // packet or it would wait on a deadline that will never be armed. Only
  // tracked packets (sent at least once) count as dropped_unreachable;
  // a never-sent packet is a source-side refusal, exactly like admit(),
  // which keeps dropped_unreachable <= packets_tracked and the delivery
  // ratio's denominator consistent.
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    mesh_.ni(n).drop_queued_if([&](const PacketDesc& p) {
      if (pair_connected(n, p.dst)) return false;
      const auto it = entries_.find(p.id);
      if (it != entries_.end()) {
        ++stats_.dropped_unreachable;
        drop_entry(it);
      } else {
        ++stats_.dropped_at_source;
      }
      return true;
    });
  }

#ifdef RNOC_TRACE
  mesh_.observer().on_event(obs::EventKind::Reroute, now, 0, kInvalidNode, -1,
                            -1);
#endif
  (void)now;
}

void DegradedModeController::self_heal_converge(Cycle now) {
  (void)now;
  SelfHealNet& sh = mesh_.self_heal();
  updated_scratch_.clear();
  const bool changed = sh.propagate(updated_scratch_);
#ifdef RNOC_TRACE
  for (const NodeId r : updated_scratch_)
    mesh_.observer().on_event(obs::EventKind::SelfHealVector, now, 0, r, -1,
                              -1);
#endif
  if (changed) return;
  // Fixpoint: every live router knows every death it can learn of. Build
  // the next escape-table generation and freeze the class until it empties
  // (routes of two west-first generations must never mix in the escape VCs;
  // a mixed pair can compose a turn the model forbids).
  pending_tables_ = std::make_unique<FaultAwareTables>(
      FaultAwareTables::build(mesh_.dims(), collect_dead_links()));
  sh.set_frozen(true);
  converging_ = false;
  pending_install_ = true;
}

void DegradedModeController::try_install_escape_tables(Cycle now) {
  SelfHealNet& sh = mesh_.self_heal();
  if (!mesh_.escape_class_clear(sh.escape_vc())) return;
  sh.set_escape_tables(pending_tables_.get());
  sh.set_frozen(false);
  tables_ = std::move(pending_tables_);  // Old generation dies here.
  pending_install_ = false;
  ++epoch_;
  ++stats_.reroute_epochs;
  compute_serveable();  // Before the sweep below: it consults the bitset.
#ifdef RNOC_TRACE
  mesh_.observer().on_event(obs::EventKind::Reroute, now, 0, kInvalidNode, -1,
                            -1);
#endif
  (void)now;

  // Queued packets the healed topology cannot serve are dropped, exactly as
  // at a drain-reroute epoch switch (see that sweep for the accounting
  // rationale); everything else kept flowing throughout.
  for (NodeId n = 0; n < mesh_.nodes(); ++n) {
    mesh_.ni(n).drop_queued_if([&](const PacketDesc& p) {
      if (pair_connected(n, p.dst)) return false;
      const auto it = entries_.find(p.id);
      if (it != entries_.end()) {
        ++stats_.dropped_unreachable;
        drop_entry(it);
      } else {
        ++stats_.dropped_at_source;
      }
      return true;
    });
  }
}

void DegradedModeController::step(Cycle now) {
  if (draining_) {
    ++stats_.frozen_cycles;
    // Timeouts are deferred while draining (retransmissions could not be
    // injected anyway); acknowledgements keep flowing below.
    if (mesh_.flits_in_network() == 0 && mesh_.links_idle() &&
        !mesh_.any_ni_sending())
      switch_epoch(now);
  }
  if (cfg_.strategy == DegradedStrategy::SelfHeal) {
    if (converging_) self_heal_converge(now);
    if (pending_install_) try_install_escape_tables(now);
    // Packets the RC stage flagged unroutable this cycle (even west-first
    // cannot reach their destination) are purged with credit refunds; the
    // end-to-end layer retransmits them when their timeout fires.
    if (mesh_.self_heal().active()) mesh_.purge_unroutable(now);
  }

  while (!ack_due_.empty() && ack_due_.top().first <= now) {
    const PacketId id = ack_due_.top().second;
    ack_due_.pop();
    const auto it = entries_.find(id);
    if (it == entries_.end() || !it->second.delivered) continue;
    ++stats_.packets_acked;
    drop_entry(it);
  }

  if (draining_) return;
  while (!timeout_due_.empty() && timeout_due_.top().first <= now) {
    const auto [deadline, id] = timeout_due_.top();
    timeout_due_.pop();
    const auto it = entries_.find(id);
    // Lazy invalidation: honour the pop only if it matches the armed
    // deadline (acked/delivered/re-armed entries moved on without us).
    if (it == entries_.end() || it->second.deadline != deadline) continue;
    Entry& e = it->second;
    if (!pair_connected(e.desc.src, e.desc.dst)) {
      ++stats_.dropped_unreachable;
      drop_entry(it);
      continue;
    }
    if (e.retries >= cfg_.max_retries) {
      ++stats_.gave_up;
      drop_entry(it);
      continue;
    }
    ++e.retries;
    ++stats_.retransmits;
    e.timeout = std::min<Cycle>(
        cfg_.retx_timeout_cap,
        static_cast<Cycle>(static_cast<double>(e.timeout) * cfg_.backoff));
    e.in_flight = false;
    e.deadline = kNeverCycle;  // Re-armed when the tail re-enters the wire.
#ifdef RNOC_TRACE
    mesh_.observer().on_event(obs::EventKind::E2eRetx, now, e.desc.id,
                              e.desc.src, -1, -1);
#endif
    mesh_.ni(e.desc.src).enqueue(e.desc);
  }
}

Cycle DegradedModeController::next_due_cycle() {
  if (draining_ || converging_ || pending_install_) return 0;
  // Compact lazily-invalidated heads: a stale entry would report a due
  // cycle nothing acts on, under-jumping the event core's idle
  // fast-forward. An ack head is live only while its entry exists and is
  // delivered; a timeout head only while it matches the armed deadline
  // (acked, dropped and re-armed packets moved on without their heap
  // entries). Popping stale heads is invisible to step(), which skips them
  // by the same predicates.
  while (!ack_due_.empty()) {
    const auto it = entries_.find(ack_due_.top().second);
    if (it != entries_.end() && it->second.delivered) break;
    ack_due_.pop();
  }
  while (!timeout_due_.empty()) {
    const auto it = entries_.find(timeout_due_.top().second);
    if (it != entries_.end() && it->second.deadline == timeout_due_.top().first)
      break;
    timeout_due_.pop();
  }
  Cycle due = kNeverCycle;
  if (!ack_due_.empty()) due = ack_due_.top().first;
  if (!timeout_due_.empty() && timeout_due_.top().first < due)
    due = timeout_due_.top().first;
  return due;
}

}  // namespace rnoc::noc
