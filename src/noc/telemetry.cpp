#include "noc/telemetry.hpp"

#include <algorithm>
#include <sstream>

#include "common/types.hpp"

namespace rnoc::noc {
namespace {

/// Renders values (row-major over the mesh) as digit rows plus a legend.
std::string render_grid(const MeshDims& dims, const std::vector<double>& v,
                        const char* label) {
  require(static_cast<int>(v.size()) == dims.nodes(),
          "render_grid: value count mismatch");
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());
  std::ostringstream os;
  for (int y = 0; y < dims.y; ++y) {
    os << "  ";
    for (int x = 0; x < dims.x; ++x) {
      const double val = v[static_cast<std::size_t>(dims.node_of({x, y}))];
      const int digit =
          hi > lo ? static_cast<int>(9.999 * (val - lo) / (hi - lo)) : 0;
      os << static_cast<char>('0' + digit);
      if (x + 1 < dims.x) os << ' ';
    }
    os << '\n';
  }
  // A flat field has no scale to map; say so instead of the misleading
  // "0=x .. 9=x" a naive legend would print.
  if (hi > lo)
    os << "  [" << label << ": 0=" << lo << " .. 9=" << hi << "]\n";
  else
    os << "  [" << label << ": all=" << lo << "]\n";
  return os.str();
}

}  // namespace

std::string heatmap(const Mesh& mesh, HeatmapMetric metric) {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(mesh.nodes()));
  const char* label = "";
  if (metric == HeatmapMetric::StallCycles) {
    for (auto cycles : mesh.stall_cycles_per_router())
      v.push_back(static_cast<double>(cycles));
    return render_grid(mesh.dims(), v, "stall cycles");
  }
  for (NodeId n = 0; n < mesh.nodes(); ++n) {
    const Router& r = mesh.router(n);
    switch (metric) {
      case HeatmapMetric::Traversals:
        v.push_back(static_cast<double>(r.stats().flits_traversed));
        label = "crossbar traversals";
        break;
      case HeatmapMetric::BlockedCycles:
        v.push_back(static_cast<double>(r.stats().blocked_vc_cycles));
        label = "blocked VC cycles";
        break;
      case HeatmapMetric::Faults:
        v.push_back(static_cast<double>(r.faults().count()));
        label = "injected faults";
        break;
      case HeatmapMetric::StallCycles:
        break;  // Handled above.
    }
  }
  return render_grid(mesh.dims(), v, label);
}

OccupancySampler::OccupancySampler(int nodes) {
  require(nodes >= 1, "OccupancySampler: need at least one node");
  totals_.assign(static_cast<std::size_t>(nodes), 0);
}

void OccupancySampler::sample(const Mesh& mesh) {
  require(static_cast<int>(totals_.size()) == mesh.nodes(),
          "OccupancySampler: mesh size mismatch");
  for (NodeId n = 0; n < mesh.nodes(); ++n)
    totals_[static_cast<std::size_t>(n)] += static_cast<std::uint64_t>(
        mesh.router(n).buffered_flits());
  ++samples_;
}

double OccupancySampler::average(NodeId node) const {
  require(node >= 0 && node < static_cast<NodeId>(totals_.size()),
          "OccupancySampler: node out of range");
  return samples_ ? static_cast<double>(totals_[static_cast<std::size_t>(node)]) /
                        static_cast<double>(samples_)
                  : 0.0;
}

double OccupancySampler::network_average() const {
  if (samples_ == 0) return 0.0;
  std::uint64_t sum = 0;
  for (auto t : totals_) sum += t;
  return static_cast<double>(sum) /
         (static_cast<double>(samples_) * static_cast<double>(totals_.size()));
}

std::string OccupancySampler::heatmap(const MeshDims& dims) const {
  std::vector<double> v;
  v.reserve(totals_.size());
  for (NodeId n = 0; n < static_cast<NodeId>(totals_.size()); ++n)
    v.push_back(average(n));
  return render_grid(dims, v, "avg buffered flits");
}

std::string OccupancySampler::to_csv(const MeshDims& dims) const {
  require(static_cast<int>(totals_.size()) == dims.nodes(),
          "OccupancySampler::to_csv: mesh size mismatch");
  std::ostringstream os;
  os << "node,x,y,avg_buffered_flits\n";
  for (NodeId n = 0; n < static_cast<NodeId>(totals_.size()); ++n) {
    const Coord c = dims.coord_of(n);
    os << n << ',' << c.x << ',' << c.y << ',' << average(n) << '\n';
  }
  return os.str();
}

}  // namespace rnoc::noc
