// Self-healing adaptive routing state (degraded-mode SelfHeal strategy):
// per-router local fault vectors propagated hop-by-hop — each router learns
// of dead neighbours within a cycle (link-level detection) and of remote
// deaths within a few more (one-hop flood per cycle) — plus the shared
// west-first escape tables the RC stage falls back to when filtering the
// odd-even candidate set by known-dead ports would leave a packet with no
// legal productive output.
//
// Ownership: the DegradedModeController owns one SelfHealNet per mesh and
// drives mark_dead / propagate / table installs; every Router holds a const
// pointer and only reads (dead_ports, escape_tables, frozen) during RC.
// While the pointer is unset or inactive the router's fault-free path is
// untouched — bit-identical to a build without the mode (test-enforced).
#pragma once

#include <cstdint>
#include <vector>

#include "noc/routing.hpp"
#include "noc/table_routing.hpp"

namespace rnoc::noc {

class SelfHealNet {
 public:
  explicit SelfHealNet(const MeshDims& dims);

  /// Lazily armed at the first router death: before activation every query
  /// path is inert, so an enabled-but-unfaulted run stays bit-identical to a
  /// disabled one (the escape VC is not reserved, RC does not filter).
  bool active() const { return active_; }
  void activate(int escape_vc);
  int escape_vc() const { return escape_vc_; }

  /// Oracle view (the controller's kill sweep): is node `n` dead?
  bool dead(NodeId n) const;

  /// Kill notification: records `n` in the global dead set and seeds each
  /// live neighbour's local fault vector (link-level detection — a dead
  /// neighbour stops answering within one cycle).
  void mark_dead(NodeId n);

  /// One hop of the knowledge flood: every live router merges its live
  /// neighbours' fault vectors from the previous cycle. Appends the routers
  /// whose vector changed to `updated` (ascending node order) and returns
  /// true when anything changed; at fixpoint (false) every live router knows
  /// every death reachable through live paths.
  bool propagate(std::vector<NodeId>& updated);
  bool converged() const { return converged_; }

  /// Bit p set iff router `r` knows the neighbour behind its port p is dead
  /// (the RC candidate filter mask).
  std::uint8_t dead_ports(NodeId r) const {
    return dead_ports_[static_cast<std::size_t>(r)];
  }

  /// Local fault-vector introspection (tests/obs): does router `r` know
  /// about node `n`'s death yet?
  bool knows(NodeId r, NodeId n) const;

  /// West-first escape tables currently installed (nullptr before the first
  /// install). `frozen` is set while a newer table generation awaits the
  /// escape class running empty: RC then blocks *new* escape entrants so
  /// routes of two table generations never mix in the escape VCs (a mixed
  /// pair can compose a turn the west-first model forbids).
  const FaultAwareTables* escape_tables() const { return tables_; }
  void set_escape_tables(const FaultAwareTables* t) { tables_ = t; }
  bool frozen() const { return frozen_; }
  void set_frozen(bool f) { frozen_ = f; }

  /// Restores the just-constructed state (Mesh::reset_for_run).
  void reset();

 private:
  std::size_t words() const { return words_; }
  std::size_t word_of(NodeId r, NodeId n) const {
    return static_cast<std::size_t>(r) * words_ +
           static_cast<std::size_t>(n) / 64;
  }
  static std::uint64_t bit_of(NodeId n) {
    return 1ull << (static_cast<unsigned>(n) % 64);
  }
  void refresh_dead_ports(NodeId r);

  MeshDims dims_;
  std::size_t words_;  ///< 64-bit words per fault vector.
  bool active_ = false;
  int escape_vc_ = -1;
  bool frozen_ = false;
  bool converged_ = true;
  const FaultAwareTables* tables_ = nullptr;
  std::vector<std::uint64_t> global_;  ///< Oracle dead bitmap.
  std::vector<std::uint64_t> know_;    ///< Per-router fault vectors.
  std::vector<std::uint64_t> next_;    ///< Flood double buffer.
  std::vector<std::uint8_t> dead_ports_;
};

}  // namespace rnoc::noc
