#include "noc/sweep.hpp"

namespace rnoc::noc {

std::vector<SimReport> SweepRunner::run(
    const std::vector<SweepJob>& jobs) const {
  std::vector<SimReport> reports(jobs.size());
  ThreadPool& pool = pool_ ? *pool_ : global_pool();
  // Per-worker mesh cache. Worker indices are stable in [0, pool.size())
  // and only one job runs per worker at a time, so slots are race-free.
  std::vector<std::unique_ptr<Mesh>> mesh_cache(pool.size());
  pool.parallel_for(jobs.size(), [&](std::size_t i, std::size_t w) {
    const SweepJob& job = jobs[i];
    require(static_cast<bool>(job.make_traffic),
            "SweepRunner: job without a traffic factory");
    auto run_job = [&](Simulator& sim) {
      if (job.tables) sim.mesh().set_routing_tables(job.tables);
      if (!job.faults.entries().empty()) sim.set_fault_plan(job.faults);
      reports[i] = sim.run();
    };
    if (reuse_mesh_) {
      std::unique_ptr<Mesh>& slot = mesh_cache[w];
      if (slot && slot->config() == job.cfg.mesh)
        slot->reset_for_run();
      else
        slot = std::make_unique<Mesh>(job.cfg.mesh);
      Simulator sim(job.cfg, job.make_traffic(), *slot);
      run_job(sim);
    } else {
      Simulator sim(job.cfg, job.make_traffic());
      run_job(sim);
    }
  });
  return reports;
}

SimReport SweepRunner::merge(const std::vector<SimReport>& reports) {
  SimReport m;
  for (const SimReport& r : reports) {
    m.total_latency.merge(r.total_latency);
    m.network_latency.merge(r.network_latency);
    m.latency_hist.merge(r.latency_hist);
    m.packets_sent += r.packets_sent;
    m.packets_received += r.packets_received;
    m.flits_received += r.flits_received;
    m.throughput_flits_node_cycle += r.throughput_flits_node_cycle;
    m.deadlock_suspected = m.deadlock_suspected || r.deadlock_suspected;
    m.undelivered_flits += r.undelivered_flits;
    m.cycles_run += r.cycles_run;
    m.router_events.merge(r.router_events);
    m.energy.dynamic_pj += r.energy.dynamic_pj;
    m.energy.protection_pj += r.energy.protection_pj;
    m.energy.leakage_pj += r.energy.leakage_pj;
    m.faults_injected += r.faults_injected;
  }
  if (!reports.empty())
    m.throughput_flits_node_cycle /= static_cast<double>(reports.size());
  return m;
}

}  // namespace rnoc::noc
