// Two-stage separable switch allocator (paper §II-B3, Fig. 3b) with the
// paper's fault-tolerance extensions (§V-C): a per-port bypass path with a
// rotating default winner plus VC-to-VC flit transfer for stage 1, and
// secondary-path arbitration (shared with the crossbar protection) for
// stage 2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protection.hpp"
#include "fault/fault_model.hpp"
#include "noc/arbiter.hpp"
#include "noc/input_port.hpp"
#include "noc/router_state.hpp"
#include "obs/observer.hpp"

namespace rnoc::noc {

class SwitchAllocator {
 public:
  /// `default_winner_epoch`: cycles each VC spends as the bypass path's
  /// default winner before rotation (starvation avoidance, paper §V-C1).
  SwitchAllocator(int ports, int vcs, core::RouterMode mode,
                  Cycle default_winner_epoch);

  /// Runs one SA cycle; fills `grants` (cleared first) with the crossbar
  /// grants to execute next cycle. Decrements the credit of each granted
  /// flit's downstream VC. Out-param (not a returned vector) so the caller's
  /// grant buffer is reused across cycles without reallocating.
  void step(Cycle now, std::vector<InputPort>& inputs,
            std::vector<std::vector<OutVcState>>& out_vcs,
            const fault::RouterFaultState& faults, RouterStats& stats,
            std::vector<StGrant>& grants);

  /// Fault-free mirror of step() for the event core: bit-identical grants,
  /// credits, stats and trace events when the router carries no fault, but
  /// stage 1 visits only the VCs set in the router's Active-ready state
  /// masks, arbitration runs on request bitmasks and stage 2 only visits
  /// requested muxes. The caller must fall back to step() whenever the
  /// router's fault count is non-zero or !mask_capable().
  void step_event(Cycle now, std::vector<InputPort>& inputs,
                  std::vector<std::vector<OutVcState>>& out_vcs,
                  RouterStats& stats, std::vector<StGrant>& grants,
                  const RouterVcMasks& masks);

  /// Whether the geometry fits the masks step_event uses (32-bit VC-state
  /// and mux masks).
  bool mask_capable() const { return vcs_ <= 32 && ports_ <= 32; }

  /// Resets arbiter pointers and trace scratch (Mesh::reset_for_run).
  void reset_for_run();

  /// The bypass path's default winner at cycle `now` (physical VC index).
  int default_winner(Cycle now) const;

  RoundRobinArbiter& stage1(int port);
  RoundRobinArbiter& stage2(int out_port);

#ifdef RNOC_TRACE
  /// Observability sink for SA stall attribution (set by the owning Router).
  void set_observer(obs::Observer* o, NodeId router) {
    obs_ = o;
    router_ = router;
  }
#endif

 private:
#ifdef RNOC_TRACE
  /// Charges every still-pending ready VC a lost-arbitration stall and
  /// clears the pending set (end of the SA cycle).
  void obs_flush_pending();
#endif
  /// True when the flit in (p, v) can reach its output port through the
  /// crossbar this cycle; resolves/validates the secondary path and updates
  /// the VC's SP/FSP fields for faults that appeared after RC ran.
  bool crossbar_path_ok(VirtualChannel& vc,
                        const fault::RouterFaultState& faults) const;

  int ports_;
  int vcs_;
  core::RouterMode mode_;
  Cycle epoch_;
  std::vector<RoundRobinArbiter> stage1_;  ///< per input port, over VCs
  std::vector<RoundRobinArbiter> stage2_;  ///< per output mux, over input ports

  // Scratch reused across step() calls to keep the per-cycle hot path
  // allocation-free.
  std::vector<int> w1_;      ///< stage-1 winner VC per input port, or -1
  std::vector<bool> ready_;  ///< per-VC readiness of the port being scanned
  std::vector<bool> req_;    ///< per-input-port requests for one output mux
  std::vector<std::uint64_t> mux_req_;  ///< step_event: port mask per mux
#ifdef RNOC_TRACE
  obs::Observer* obs_ = nullptr;
  NodeId router_ = kInvalidNode;
  /// [port * vcs + vc]: ready this cycle, stall not yet attributed. Whatever
  /// is still set after stage 2 lost an arbitration.
  std::vector<std::uint8_t> obs_pending_;
  int obs_npending_ = 0;
#endif
};

}  // namespace rnoc::noc
