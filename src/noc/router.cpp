#include "noc/router.hpp"

#include <algorithm>

namespace rnoc::noc {

Router::Router(NodeId id, const MeshDims& dims, const RouterConfig& cfg)
    : id_(id),
      dims_(dims),
      cfg_(cfg),
      faults_({kMeshPorts, cfg.vcs, cfg.vnets}),
      va_(kMeshPorts, cfg.vcs, cfg.mode, cfg.vnets),
      sa_(kMeshPorts, cfg.vcs, cfg.mode, cfg.default_winner_epoch),
      xb_(kMeshPorts, cfg.mode),
      rc_rr_(kMeshPorts, 0) {
  require(id >= 0 && id < dims.nodes(), "Router: id outside mesh");
  require(cfg.vcs >= 1 && cfg.vc_depth >= 1, "Router: bad VC config");
  inputs_.reserve(kMeshPorts);
  // SA grants at most one input VC per output port, so kMeshPorts bounds
  // st_pending_; reserving here keeps the per-cycle push_backs in
  // SwitchAllocator::step growth-free (hotpath-alloc rule).
  st_pending_.reserve(kMeshPorts);
  for (int p = 0; p < kMeshPorts; ++p)
    inputs_.emplace_back(cfg.vcs, cfg.vc_depth);
  if (cfg.vcs <= 32) {
    vc_masks_ = std::make_unique<RouterVcMasks>();
    for (int p = 0; p < kMeshPorts; ++p)
      inputs_[static_cast<std::size_t>(p)].set_mask_sink(vc_masks_.get(), p);
  }
  out_vcs_.assign(kMeshPorts, std::vector<OutVcState>(
                                  static_cast<std::size_t>(cfg.vcs),
                                  OutVcState{false, cfg.vc_depth}));
  in_links_.assign(kMeshPorts, nullptr);
  out_links_.assign(kMeshPorts, nullptr);
}

void Router::attach_input(int port, Link* link) {
  require(port >= 0 && port < kMeshPorts, "Router::attach_input: bad port");
  in_links_[static_cast<std::size_t>(port)] = link;
}

void Router::attach_output(int port, Link* link) {
  require(port >= 0 && port < kMeshPorts, "Router::attach_output: bad port");
  out_links_[static_cast<std::size_t>(port)] = link;
}

void Router::set_routing_tables(const FaultAwareTables* tables) {
  route_tables_ = tables;
}

void Router::decommission(Cycle now) {
  if (dead_) return;
  dead_ = true;
  // Cancel pending switch traversals: SA already consumed a downstream
  // credit for each grant, and the flit will never be sent, so refund it.
  for (const StGrant& g : st_pending_)
    ++out_vcs_[static_cast<std::size_t>(g.out_port)]
              [static_cast<std::size_t>(g.out_vc)]
          .credits;
  st_pending_.clear();
  // Purge every buffered flit, returning its credit upstream (naming the
  // logical VC the upstream targeted) so neighbour flow control stays
  // conserved. A purged mid-packet leaves a truncated fragment downstream;
  // the drain barrier cleans those up wholesale, while the self-heal
  // strategy consumes the truncated_ record below for a targeted
  // reclamation sweep (it has no barrier).
  for (int p = 0; p < kMeshPorts; ++p) {
    InputPort& ip = inputs_[static_cast<std::size_t>(p)];
    for (int v = 0; v < cfg_.vcs; ++v) {
      VirtualChannel& vc = ip.vc(v);
      // The head is already beyond this router exactly when the VC reached
      // Active and the head is no longer at the buffer front (Routing and
      // VcAlloc hold it at the front; an empty Active VC forwarded it all).
      if (vc.state == VcState::Active &&
          (vc.buffer.empty() || !vc.buffer.front().is_head()))
        truncated_.push_back({vc.packet, vc.dst, vc.route, vc.out_vc});
      while (!vc.buffer.empty()) {
        const Flit f = ip.pop_front(v);
        if (Link* l = in_links_[static_cast<std::size_t>(p)])
          l->push_credit({f.vc, f.is_tail()}, now);
        ++stats_.flits_swallowed;
      }
      vc.reset_to_idle();
      ip.refresh_vc(v);
    }
  }
}

int Router::purge_unroutable(Cycle now) {
  if (!has_unroutable_) return 0;
  has_unroutable_ = false;
  int purged = 0;
  for (int p = 0; p < kMeshPorts; ++p) {
    InputPort& ip = inputs_[static_cast<std::size_t>(p)];
    for (int v = 0; v < cfg_.vcs; ++v) {
      VirtualChannel& vc = ip.vc(v);
      if (!vc.unroutable) continue;
      require(vc.state == VcState::Routing,
              "Router::purge_unroutable: flagged VC left Routing");
      // Drop the buffered flits with upstream credit returns (naming the
      // logical VC the upstream targeted, exactly like decommission). If
      // the tail has not arrived yet, arm the drop filter so the in-flight
      // remainder is swallowed on arrival.
      bool tail_seen = false;
      while (!vc.buffer.empty()) {
        const Flit f = ip.pop_front(v);
        tail_seen = f.is_tail();
        if (Link* l = in_links_[static_cast<std::size_t>(p)])
          l->push_credit({f.vc, f.is_tail()}, now);
        ++stats_.flits_dropped;
      }
      if (!tail_seen) ip.set_dropping(ip.logical_of(v));
      vc.reset_to_idle();
      ip.refresh_vc(v);
      ++purged;
    }
  }
  return purged;
}

int Router::purge_poisoned(const std::vector<PacketId>& ids, Cycle now,
                           std::vector<TruncatedStream>& downstream) {
  int purged = 0;
  for (int p = 0; p < kMeshPorts; ++p) {
    InputPort& ip = inputs_[static_cast<std::size_t>(p)];
    for (int v = 0; v < cfg_.vcs; ++v) {
      VirtualChannel& vc = ip.vc(v);
      if (vc.state == VcState::Idle) continue;
      if (std::find(ids.begin(), ids.end(), vc.packet) == ids.end()) continue;
      if (vc.state == VcState::Active) {
        // Cancel the fragment's pending switch grant (SA consumed a
        // downstream credit for it) and release the downstream VC it holds
        // — its vc_free can never arrive, the tail died at the dead router.
        for (std::size_t g = 0; g < st_pending_.size();) {
          if (st_pending_[g].in_port == p && st_pending_[g].in_vc == v) {
            ++out_vcs_[static_cast<std::size_t>(st_pending_[g].out_port)]
                      [static_cast<std::size_t>(st_pending_[g].out_vc)]
                  .credits;
            st_pending_.erase(st_pending_.begin() +
                              static_cast<std::ptrdiff_t>(g));
          } else {
            ++g;
          }
        }
        out_vcs_[static_cast<std::size_t>(vc.route)]
                [static_cast<std::size_t>(vc.out_vc)]
            .allocated = false;
        if (vc.buffer.empty() || !vc.buffer.front().is_head())
          downstream.push_back({vc.packet, vc.dst, vc.route, vc.out_vc});
      }
      while (!vc.buffer.empty()) {
        const Flit f = ip.pop_front(v);
        if (Link* l = in_links_[static_cast<std::size_t>(p)])
          l->push_credit({f.vc, f.is_tail()}, now);
        ++stats_.flits_dropped;
      }
      // Anything of this fragment still in flight from upstream (itself a
      // purged chain node, or the dead router) lands in the poison filter.
      ip.arm_poison(ip.logical_of(v), vc.packet, now);
      vc.reset_to_idle();
      ip.refresh_vc(v);
      ++purged;
    }
  }
  return purged;
}

void Router::reset_flow_state() {
  for (auto& ip : inputs_) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      VirtualChannel& vc = ip.vc(v);
      require(vc.buffer.empty(),
              "Router::reset_flow_state: network not drained");
      vc.reset_to_idle();
      ip.refresh_vc(v);
    }
  }
  for (auto& port : out_vcs_)
    for (auto& ov : port) ov = OutVcState{false, cfg_.vc_depth};
  st_pending_.clear();
}

InputPort& Router::input_port(int p) {
  require(p >= 0 && p < kMeshPorts, "Router::input_port: bad port");
  return inputs_[static_cast<std::size_t>(p)];
}

const InputPort& Router::input_port(int p) const {
  require(p >= 0 && p < kMeshPorts, "Router::input_port: bad port");
  return inputs_[static_cast<std::size_t>(p)];
}

const OutVcState& Router::out_vc(int port, int vc) const {
  require(port >= 0 && port < kMeshPorts && vc >= 0 && vc < cfg_.vcs,
          "Router::out_vc: out of range");
  return out_vcs_[static_cast<std::size_t>(port)][static_cast<std::size_t>(vc)];
}

int Router::buffered_flits() const {
  int n = 0;
  for (const auto& ip : inputs_) n += ip.buffered_flits();
  return n;
}

void Router::accept_flit_from(Link& l, int p, Cycle now) {
  auto f = l.take_flit(now);
  if (!f) return;
  if (dead_) {
    // Black hole: swallow the flit but return its credit at once, so
    // the upstream neighbour's flow control stays conserved.
    l.push_credit({f->vc, f->is_tail()}, now);
    ++stats_.flits_swallowed;
  } else if (inputs_[static_cast<std::size_t>(p)].dropping(f->vc)) {
    // Remainder of a packet purge_unroutable dropped: the head is gone, so
    // swallow the stragglers with an immediate credit; the tail closes the
    // filter and frees the upstream VC (its credit carries vc_free).
    l.push_credit({f->vc, f->is_tail()}, now);
    if (f->is_tail()) inputs_[static_cast<std::size_t>(p)].clear_dropping(f->vc);
    ++stats_.flits_dropped;
  } else if (inputs_[static_cast<std::size_t>(p)].poison_swallow(*f)) {
    // In-flight remnant of a fragment the reclamation sweep purged. No tail
    // will ever close this stream (it died at the dead router), so the
    // upstream allocation was released by the sweep itself; the credit here
    // only refunds the buffer slot.
    l.push_credit({f->vc, f->is_tail()}, now);
    ++stats_.flits_dropped;
  } else {
    inputs_[static_cast<std::size_t>(p)].write(*f);
    ++stats_.buffer_writes;
#ifdef RNOC_TRACE
    if (obs_ && f->is_head()) {
      InputPort& ip = inputs_[static_cast<std::size_t>(p)];
      ip.vc(ip.physical_of(f->vc)).obs_arrived = now;
      obs_->on_event(obs::EventKind::BufWrite, now, f->packet, id_, p,
                     ip.physical_of(f->vc));
    }
#endif
  }
}

void Router::drain_credits_from(Link& l, int p, Cycle now) {
  while (auto c = l.take_credit(now)) {
    auto& ov = out_vcs_[static_cast<std::size_t>(p)]
                       [static_cast<std::size_t>(c->vc)];
    ++ov.credits;
    require(ov.credits <= cfg_.vc_depth,
            "Router: credit overflow (protocol violation)");
    if (c->vc_free) ov.allocated = false;
  }
}

void Router::step_accept(Cycle now) {
  for (int p = 0; p < kMeshPorts; ++p) {
    if (Link* l = in_links_[static_cast<std::size_t>(p)])
      accept_flit_from(*l, p, now);
    if (Link* l = out_links_[static_cast<std::size_t>(p)])
      drain_credits_from(*l, p, now);
  }
}

void Router::step_accept_event(Cycle now) {
  // Identical to step_accept: a take_flit / take_credit call whose peek lies
  // in the future returns nullopt without side effects (the EccLink error
  // roll only happens on an actual in-ring delivery, which the peek covers),
  // so gating the calls is exact.
  for (int p = 0; p < kMeshPorts; ++p) {
    if (Link* l = in_links_[static_cast<std::size_t>(p)];
        l && l->next_flit_ready() <= now)
      accept_flit_from(*l, p, now);
    if (Link* l = out_links_[static_cast<std::size_t>(p)];
        l && l->next_credit_ready() <= now)
      drain_credits_from(*l, p, now);
  }
}

Cycle Router::accept_flit_due(int p, Cycle now) {
  Link* l = in_links_[static_cast<std::size_t>(p)];
  if (l == nullptr) return kNeverCycle;
  // The peek guard keeps spurious deliveries (an already-taken or retimed
  // flit) side-effect free, exactly like step_accept_event.
  if (l->next_flit_ready() <= now) accept_flit_from(*l, p, now);
  return l->next_flit_ready();
}

void Router::drain_credits_due(int p, Cycle now) {
  if (Link* l = out_links_[static_cast<std::size_t>(p)];
      l && l->next_credit_ready() <= now)
    drain_credits_from(*l, p, now);
}

bool Router::step_cycle_event(Cycle now) {
  if (dead_) return false;
  if (faults_.count() != 0 || vc_masks_ == nullptr) {
    // Faulty (or mask-less) routers run every stage and never stall-retire:
    // they are re-evaluated every cycle while they hold work, exactly like
    // the stage-major path. Over-staying is always bit-identical — the
    // stages are idempotent no-ops on a stalled router.
    step_st(now);
    step_sa_event(now);
    step_va_event(now);
    step_rc_event(now);
    return has_pending_work();
  }
  // Fault-free masked fast path: each stage runs only when its mask says
  // some VC is in that stage (the allocators early-return on empty masks,
  // so the skip is exact), and `progressed` tracks whether any stage did
  // something this cycle without summing the stats digest:
  //  - pending ST grants always traverse when fault-free (can_traverse is
  //    identically true), so entering ST with grants is progress;
  //  - SA progress is visible as new grants in st_pending_;
  //  - VA progress means va_allocations moved (an allocation also needs a
  //    downstream VC, so a non-empty mask alone does not imply progress);
  //  - a non-empty routing mask guarantees RC serves at least one VC
  //    (compute_route always counts as progress, Granted or not — a
  //    Blocked/Unreachable retry repeats every cycle, like the sweep).
  // Retirement (return false) therefore fires exactly when the digest
  // comparison would have found zero progress: a stalled fault-free router
  // whose every un-stalling input (flit, credit, fault) arrives through a
  // wake or delivery.
  bool progressed = !st_pending_.empty();
  if (progressed) step_st(now);
  if (vc_masks_->ready_ports != 0) step_sa_event(now);
  if (vc_masks_->vcalloc_ports != 0) {
    const std::uint64_t va_before = stats_.va_allocations;
    step_va_event(now);
    progressed |= stats_.va_allocations != va_before;
  }
  if (vc_masks_->routing_ports != 0) {
    step_rc_event(now);
    progressed = true;
  }
  if (!st_pending_.empty()) return true;
  return progressed && has_pending_work();
}

void Router::step_st(Cycle now) {
  if (dead_ || st_pending_.empty()) return;
  for (const StGrant& g : st_pending_) {
    InputPort& ip = inputs_[static_cast<std::size_t>(g.in_port)];
    VirtualChannel& vc = ip.vc(g.in_vc);
    require(!vc.buffer.empty(), "Router::step_st: granted VC has no flit");

#ifdef RNOC_TRACE
    if (obs_) obs_->metrics().add_request(id_, obs::Stage::St);
#endif
    if (!xb_.can_traverse(g, faults_)) {
      // A fault struck between SA and ST: cancel the traversal, refund the
      // credit; the flit re-arbitrates with the fault now visible.
      ++out_vcs_[static_cast<std::size_t>(g.out_port)]
                [static_cast<std::size_t>(g.out_vc)]
            .credits;
      ++stats_.blocked_vc_cycles;
#ifdef RNOC_TRACE
      if (obs_) {
        obs_->metrics().add_stall(id_, obs::Stage::St,
                                  obs::StallCause::FaultBlocked);
        obs_->on_event(obs::EventKind::FaultBlock, now,
                       vc.buffer.front().packet, id_, g.in_port, g.in_vc);
      }
#endif
      continue;
    }

#ifdef RNOC_TRACE
    if (obs_) {
      obs_->metrics().add_grant(id_, obs::Stage::St);
      if (vc.buffer.front().is_head()) {
        obs_->metrics().add_hop_latency(now - vc.obs_arrived);
        obs_->on_event(obs::EventKind::St, now, vc.buffer.front().packet, id_,
                       g.in_port, g.in_vc);
      }
    }
#endif
    Flit f = ip.pop_front(g.in_vc);
    if (Link* l = in_links_[static_cast<std::size_t>(g.in_port)])
      l->push_credit({f.vc, f.is_tail()}, now);
    const int out_vc = vc.out_vc;
    if (f.is_tail()) {
      vc.reset_to_idle();
      ip.refresh_vc(g.in_vc);
    }
    f.vc = out_vc;
    Link* out = out_links_[static_cast<std::size_t>(g.out_port)];
    require(out != nullptr, "Router::step_st: unwired output port");
    out->push_flit(f, now);
    ++stats_.flits_traversed;
  }
  st_pending_.clear();
}

void Router::step_sa(Cycle now) {
  if (dead_) return;
  sa_.step(now, inputs_, out_vcs_, faults_, stats_, st_pending_);
}

void Router::step_va(Cycle now) {
  if (dead_) return;
  va_.step(now, inputs_, out_vcs_, faults_, stats_);
}

void Router::step_sa_event(Cycle now) {
  if (dead_) return;
  if (faults_.count() != 0 || vc_masks_ == nullptr || !sa_.mask_capable()) {
    sa_.step(now, inputs_, out_vcs_, faults_, stats_, st_pending_);
    return;
  }
  sa_.step_event(now, inputs_, out_vcs_, stats_, st_pending_, *vc_masks_);
}

void Router::step_va_event(Cycle now) {
  if (dead_) return;
  if (faults_.count() != 0 || vc_masks_ == nullptr || !va_.mask_capable()) {
    va_.step(now, inputs_, out_vcs_, faults_, stats_);
    return;
  }
  va_.step_event(now, inputs_, out_vcs_, stats_, *vc_masks_);
}

int Router::free_credits(int out) const {
  int total = 0;
  for (const auto& ov : out_vcs_[static_cast<std::size_t>(out)])
    total += ov.credits;
  return total;
}

bool Router::try_output(VirtualChannel& vc, int out) {
  using fault::SiteType;
  vc.route = out;
  vc.sp = -1;
  vc.fsp = false;
  if (faults_.count() == 0) return true;  // Primary path trivially works.
  const bool primary_ok = !faults_.has(SiteType::XbMux, out) &&
                          !faults_.has(SiteType::Sa2Arbiter, out);
  if (cfg_.mode != core::RouterMode::Protected) return primary_ok;
  if (faults_.has(SiteType::XbPSelect, out)) return false;
  if (primary_ok) return true;
  // Secondary-path determination (paper §V-D): if the regular path to `out`
  // is unreachable, point SP at the neighbouring mux and set FSP.
  const int sec = core::secondary_mux_for_output(out, kMeshPorts);
  const bool secondary_ok = !faults_.has(SiteType::XbMux, sec) &&
                            !faults_.has(SiteType::Sa2Arbiter, sec) &&
                            !faults_.has(SiteType::XbDemux, sec);
  if (!secondary_ok) return false;
  vc.sp = sec;
  vc.fsp = true;
  return true;
}

RcOutcome Router::compute_route(VirtualChannel& vc, const Flit& head,
                                int in_port, int in_phys, Cycle now) {
  (void)in_phys;
  (void)now;  // Consumed by the self-heal path / traced builds only.
  using fault::SiteType;
  // Select a working RC unit for this input port (paper §V-A).
  if (faults_.count() != 0 && faults_.has(SiteType::RcPrimary, in_port)) {
    if (cfg_.mode == core::RouterMode::Baseline ||
        faults_.has(SiteType::RcSpare, in_port))
      return RcOutcome::Blocked;
    ++stats_.rc_spare_uses;
  }
  ++stats_.rc_computations;

  // Candidate outputs: one for deterministic routing, possibly several for
  // adaptive odd-even. Fixed-size scratch — RC runs once per port per cycle,
  // so a heap allocation here is pure overhead.
  int candidates[kMeshPorts];
  int ncand = 0;
  if (route_tables_) {
    const int out = route_tables_->next_port(id_, head.dst);
    if (out < 0)  // a dead router partitioned the mesh
      return RcOutcome::Unreachable;
    candidates[ncand++] = out;
  } else if (cfg_.routing == RoutingAlgo::OddEven) {
    ncand = odd_even_candidates(dims_, id_, head.src, head.dst, candidates);
    bool escape = false;
    if (sh_ != nullptr && sh_->active()) {
      const FaultAwareTables* esc = sh_->escape_tables();
      const bool on_escape_vc =
          inputs_[static_cast<std::size_t>(in_port)].logical_of(in_phys) ==
          sh_->escape_vc();
      if (on_escape_vc && esc != nullptr) {
        // Escape discipline (Duato): a packet that arrived on the escape VC
        // stays on the west-first escape network until delivery. While a
        // newer table generation awaits install (frozen), continuations
        // keep using the installed one — single-generation paths are safe.
        const int out = esc->next_port(id_, head.dst);
        if (out < 0) {
          // Even west-first cannot reach the destination from here: flag
          // the packet for the controller's purge after this step (the
          // end-to-end layer retransmits it over a fresh adaptive route).
          vc.unroutable = true;
          has_unroutable_ = true;
          return RcOutcome::Unreachable;
        }
        candidates[0] = out;
        ncand = 1;
        escape = true;
      } else if (!on_escape_vc && !sh_->dead(head.dst)) {
        // Filter ports this router knows lead into a dead neighbour. Any
        // subset of odd-even candidates stays turn-model legal, so the
        // filtered set needs no re-legalisation.
        const std::uint8_t dp = sh_->dead_ports(id_);
        int kept = 0;
        for (int i = 0; i < ncand; ++i)
          if ((dp >> static_cast<unsigned>(candidates[i]) & 1u) == 0)
            candidates[kept++] = candidates[i];
        if (kept > 0) {
          ncand = kept;
        } else {
          // Every minimal direction is known faulty: divert onto the
          // west-first escape VC. Before the first table generation exists,
          // waiting here can deadlock against the install itself — this
          // packet's own tail may be a pre-activation resident of the
          // escape class whose drain the install waits for — so purge it
          // for end-to-end retransmission instead. Once a generation is
          // installed, escape packets always progress on it, the class
          // reliably drains, and waiting out a pending generation (frozen)
          // is safe; mixing routes of two west-first generations could
          // compose a forbidden turn, so new entrants must wait it out.
          if (esc == nullptr) {
            vc.unroutable = true;
            has_unroutable_ = true;
            return RcOutcome::Unreachable;
          }
          if (sh_->frozen()) return RcOutcome::Blocked;
          const int out = esc->next_port(id_, head.dst);
          if (out < 0) {
            vc.unroutable = true;
            has_unroutable_ = true;
            return RcOutcome::Unreachable;
          }
          candidates[0] = out;
          ncand = 1;
          escape = true;
          ++stats_.escape_reroutes;
#ifdef RNOC_TRACE
          if (obs_)
            obs_->on_event(obs::EventKind::SelfHealReroute, now, head.packet,
                           id_, in_port, in_phys);
#endif
        }
      }
      // A dead destination keeps the unfiltered minimal set: the packet
      // black-holes at the dead router with credits returned, and the
      // end-to-end layer then accounts the pair unreachable. An escape-VC
      // arrival before the first table install is a pre-activation
      // adaptive packet: it keeps the unfiltered set and vacates the class
      // (the VA filter hands it a regular VC downstream).
    }
    vc.escape_route = escape;
    // Adaptive selection: prefer the candidate with the most free
    // downstream buffer space (congestion look-ahead). Stable insertion
    // sort over <= kMeshPorts entries.
    for (int i = 1; i < ncand; ++i) {
      const int cand = candidates[i];
      const int credit = free_credits(cand);
      int j = i;
      while (j > 0 && free_credits(candidates[j - 1]) < credit) {
        candidates[j] = candidates[j - 1];
        --j;
      }
      candidates[j] = cand;
    }
  } else {
    candidates[ncand++] = xy_route(dims_, id_, head.dst);
  }

  // Commit the first candidate whose crossbar path works; adaptivity thus
  // doubles as fault avoidance when an alternative minimal direction exists.
  for (int i = 0; i < ncand; ++i)
    if (try_output(vc, candidates[i])) return RcOutcome::Granted;
  vc.route = candidates[0];  // blocked; keep a stable R field
  vc.sp = -1;
  vc.fsp = false;
  return RcOutcome::Blocked;
}

void Router::step_rc(Cycle now) {
  if (dead_) return;
  // One RC computation per input port per cycle (one RC unit per port),
  // round-robin over the VCs waiting in Routing state.
  for (int p = 0; p < kMeshPorts; ++p) {
    InputPort& ip = inputs_[static_cast<std::size_t>(p)];
    // Routing state implies a buffered head flit; an empty port has no RC
    // work and its round-robin pointer only moves when a VC is served.
    if (ip.buffered_flits() == 0) continue;
    int& ptr = rc_rr_[static_cast<std::size_t>(p)];
#ifdef RNOC_TRACE
    int routing_vcs = 0;
    if (obs_) {
      for (int i = 0; i < cfg_.vcs; ++i)
        if (ip.vc(i).state == VcState::Routing) ++routing_vcs;
      if (routing_vcs != 0) {
        obs_->metrics().add_request(id_, obs::Stage::Rc,
                                    static_cast<std::uint64_t>(routing_vcs));
        // The single per-port RC unit serves exactly one VC; the rest never
        // reach it this cycle.
        if (routing_vcs > 1)
          obs_->metrics().add_stall(id_, obs::Stage::Rc,
                                    obs::StallCause::Starved,
                                    static_cast<std::uint64_t>(routing_vcs - 1));
      }
    }
#endif
    for (int i = 0; i < cfg_.vcs; ++i) {
      const int v = (ptr + i) % cfg_.vcs;
      VirtualChannel& vc = ip.vc(v);
      if (vc.state != VcState::Routing) continue;
      require(!vc.buffer.empty() && vc.buffer.front().is_head(),
              "Router::step_rc: Routing VC without a head flit");
      const RcOutcome outcome = compute_route(vc, vc.buffer.front(), p, v, now);
      if (outcome == RcOutcome::Granted) {
        vc.state = VcState::VcAlloc;
        ip.refresh_vc(v);
#ifdef RNOC_TRACE
        if (obs_) {
          obs_->metrics().add_grant(id_, obs::Stage::Rc);
          obs_->on_event(obs::EventKind::Rc, now, vc.buffer.front().packet,
                         id_, p, v);
        }
#endif
      } else {
        ++stats_.blocked_vc_cycles;
#ifdef RNOC_TRACE
        if (obs_) {
          obs_->metrics().add_stall(id_, obs::Stage::Rc,
                                    outcome == RcOutcome::Unreachable
                                        ? obs::StallCause::RouterDead
                                        : obs::StallCause::FaultBlocked);
          obs_->on_event(obs::EventKind::FaultBlock, now,
                         vc.buffer.front().packet, id_, p, v);
        }
#endif
      }
      ptr = (v + 1) % cfg_.vcs;
      break;
    }
  }
}

void Router::step_rc_event(Cycle now) {
  if (dead_) return;
  // Identical to step_rc (including under faults: compute_route carries the
  // RC-unit fault logic internally). Ports are pre-filtered through the
  // routing mask where available — a port with no Routing VC does nothing in
  // step_rc (the round-robin scan finds no candidate and the pointer only
  // moves when a VC is served), so the skip is exact — and the round-robin
  // modulo is replaced by conditional subtraction.
  const std::uint32_t routing_ports =
      vc_masks_ != nullptr ? vc_masks_->routing_ports : ~0u;
  for (int p = 0; p < kMeshPorts; ++p) {
    if ((routing_ports >> static_cast<unsigned>(p) & 1u) == 0) continue;
    InputPort& ip = inputs_[static_cast<std::size_t>(p)];
    if (ip.buffered_flits() == 0) continue;
    int& ptr = rc_rr_[static_cast<std::size_t>(p)];
#ifdef RNOC_TRACE
    int routing_vcs = 0;
    if (obs_) {
      for (int i = 0; i < cfg_.vcs; ++i)
        if (ip.vc(i).state == VcState::Routing) ++routing_vcs;
      if (routing_vcs != 0) {
        obs_->metrics().add_request(id_, obs::Stage::Rc,
                                    static_cast<std::uint64_t>(routing_vcs));
        if (routing_vcs > 1)
          obs_->metrics().add_stall(id_, obs::Stage::Rc,
                                    obs::StallCause::Starved,
                                    static_cast<std::uint64_t>(routing_vcs - 1));
      }
    }
#endif
    for (int i = 0; i < cfg_.vcs; ++i) {
      int v = ptr + i;
      if (v >= cfg_.vcs) v -= cfg_.vcs;
      VirtualChannel& vc = ip.vc(v);
      if (vc.state != VcState::Routing) continue;
      require(!vc.buffer.empty() && vc.buffer.front().is_head(),
              "Router::step_rc: Routing VC without a head flit");
      const RcOutcome outcome = compute_route(vc, vc.buffer.front(), p, v, now);
      if (outcome == RcOutcome::Granted) {
        vc.state = VcState::VcAlloc;
        ip.refresh_vc(v);
#ifdef RNOC_TRACE
        if (obs_) {
          obs_->metrics().add_grant(id_, obs::Stage::Rc);
          obs_->on_event(obs::EventKind::Rc, now, vc.buffer.front().packet,
                         id_, p, v);
        }
#endif
      } else {
        ++stats_.blocked_vc_cycles;
#ifdef RNOC_TRACE
        if (obs_) {
          obs_->metrics().add_stall(id_, obs::Stage::Rc,
                                    outcome == RcOutcome::Unreachable
                                        ? obs::StallCause::RouterDead
                                        : obs::StallCause::FaultBlocked);
          obs_->on_event(obs::EventKind::FaultBlock, now,
                         vc.buffer.front().packet, id_, p, v);
        }
#endif
      }
      ptr = v + 1 == cfg_.vcs ? 0 : v + 1;
      break;
    }
  }
}

void Router::reset_for_run() {
  for (auto& ip : inputs_) ip.reset_for_run();
  for (auto& port : out_vcs_)
    for (auto& ov : port) ov = OutVcState{false, cfg_.vc_depth};
  faults_ = fault::RouterFaultState({kMeshPorts, cfg_.vcs, cfg_.vnets});
  route_tables_ = nullptr;
  has_unroutable_ = false;
  va_.reset_for_run();
  sa_.reset_for_run();
  std::fill(rc_rr_.begin(), rc_rr_.end(), 0);
  st_pending_.clear();
  truncated_.clear();
  stats_ = RouterStats{};
  dead_ = false;
}

}  // namespace rnoc::noc
