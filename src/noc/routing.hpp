// Mesh topology helpers and dimension-order (XY) routing (paper §V-A).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rnoc::noc {

/// Router port indices. Port 0 is the local (NI) port; the rest are the four
/// mesh directions. Matches the paper's 5-port router.
enum class Direction : int {
  Local = 0,
  North = 1,
  East = 2,
  South = 3,
  West = 4,
};

inline constexpr int kMeshPorts = 5;

int port_of(Direction d);
Direction direction_of(int port);
std::string direction_name(int port);

/// Opposite mesh direction (North <-> South, East <-> West). Local maps to
/// Local (an NI's link "comes back" at the local port of the same router).
int opposite_port(int port);

/// Mesh dimensions and node/coordinate conversions (row-major node ids).
struct MeshDims {
  int x = 8;
  int y = 8;

  int nodes() const { return x * y; }
  Coord coord_of(NodeId n) const;
  NodeId node_of(Coord c) const;
  bool contains(Coord c) const;

  friend bool operator==(const MeshDims&, const MeshDims&) = default;
};

/// Dimension-order XY routing: correct X (East/West) first, then Y
/// (North/South), then eject at Local. Deadlock-free on a mesh.
/// Returns the output port at `current` toward `dst`.
int xy_route(const MeshDims& dims, NodeId current, NodeId dst);

/// Number of hops an XY-routed packet takes (Manhattan distance).
int xy_hops(const MeshDims& dims, NodeId src, NodeId dst);

/// Minimal adaptive routing under the odd-even turn model (Chiu, IEEE TPDS
/// 2000): East-to-North/East-to-South turns are forbidden in even columns
/// and North-to-West/South-to-West turns in odd columns, which keeps the
/// channel-dependency graph acyclic without virtual channels. Returns the
/// admissible minimal output ports at `cur` for a packet injected at `src`
/// heading to `dst`; never empty, and a singleton {Local} at the
/// destination. The router picks among candidates adaptively (by downstream
/// credit count — and, on the protected router, by path health).
std::vector<int> odd_even_candidates(const MeshDims& dims, NodeId cur,
                                     NodeId src, NodeId dst);

/// Allocation-free variant for the router's RC hot path: writes up to
/// kMeshPorts candidate ports into `out` and returns the count (>= 1).
int odd_even_candidates(const MeshDims& dims, NodeId cur, NodeId src,
                        NodeId dst, int out[kMeshPorts]);

}  // namespace rnoc::noc
