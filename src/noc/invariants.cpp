#include "noc/invariants.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/protection.hpp"
#include "noc/link.hpp"
#include "noc/mesh.hpp"
#include "noc/network_interface.hpp"
#include "noc/router.hpp"

namespace rnoc::noc {

namespace {

/// Legal one-cycle VC state transitions, observed cycle end to cycle end.
/// Within one mesh step the stages run accept, ST, SA, VA, RC — so a head
/// flit arriving at an Idle VC is routed the same cycle (Idle -> VcAlloc),
/// while VA and SA each take a full cycle. Self-transitions are always
/// legal (stalls). Transfers (paper §V-C1) are invisible here because the
/// shadow tracks *logical* VC ids and a transfer swaps the logical map
/// together with the packet.
bool legal_transition(VcState from, VcState to) {
  if (from == to) return true;
  switch (from) {
    case VcState::Idle:
      return to == VcState::Routing || to == VcState::VcAlloc;
    case VcState::Routing:
      return to == VcState::VcAlloc;
    case VcState::VcAlloc:
      return to == VcState::Active;
    case VcState::Active:
      return to == VcState::Idle;
  }
  return false;
}

}  // namespace

NocChecker::NocChecker() : NocChecker(Config{}) {}

NocChecker::NocChecker(Config cfg) : cfg_(cfg) {
  require(cfg_.check_interval >= 1, "NocChecker: check_interval must be >= 1");
  require(cfg_.stall_limit >= 1, "NocChecker: stall_limit must be >= 1");
}

NocChecker::Handler NocChecker::throwing_handler() {
  return [](const InvariantViolation& v) {
    throw InvariantViolationError(v);
  };
}

void NocChecker::add_router(const Router* r) {
  RouterEntry e;
  e.router = r;
  const std::size_t slots =
      static_cast<std::size_t>(r->ports()) * static_cast<std::size_t>(r->vcs());
  e.shadow.assign(slots, VcShadow{});
  e.watch.assign(slots, WatchSlot{});
  routers_.push_back(std::move(e));
}

void NocChecker::add_ni(const NetworkInterface* ni) {
  NiEntry e;
  e.ni = ni;
  e.tracks.assign(static_cast<std::size_t>(ni->config().vcs), SeqTrack{});
  nis_.push_back(std::move(e));
}

void NocChecker::add_channel(const Channel& ch) {
  require(ch.link != nullptr, "NocChecker: channel without a link");
  require((ch.up_router != nullptr) != (ch.up_ni != nullptr),
          "NocChecker: channel needs exactly one upstream endpoint");
  require((ch.down_router != nullptr) != (ch.down_ni != nullptr),
          "NocChecker: channel needs exactly one downstream endpoint");
  channels_.push_back(ch);
}

void NocChecker::unreachable_after_handler(const InvariantViolation& v) {
  // The installed handler returned normally; a violated network cannot be
  // trusted to keep simulating, so this path always terminates.
  std::fprintf(stderr, "rnoc invariant violation: %s\n", v.message.c_str());
  std::abort();
}

void NocChecker::fail(const char* kind, Cycle cycle, NodeId router, int port,
                      int vc, const std::string& detail) {
  InvariantViolation v;
  v.kind = kind;
  v.cycle = cycle;
  v.router = router;
  v.port = port;
  v.vc = vc;
  std::ostringstream os;
  os << "NoC invariant violated [" << kind << "] cycle=" << cycle;
  if (router != kInvalidNode) os << " router=" << router;
  if (port >= 0) os << " port=" << port;
  if (vc >= 0) os << " vc=" << vc;
  os << ": " << detail;
  v.message = os.str();
  if (handler_) {
    handler_(v);
    unreachable_after_handler(v);
  }
  std::fprintf(stderr, "%s\n", v.message.c_str());
  std::abort();
}

void NocChecker::on_cycle_end(Cycle now) {
  if (cfg_.check_interval > 1 && now % cfg_.check_interval != 0) return;
  run_sweep(now);
}

void NocChecker::on_run_end(Cycle now) { run_sweep(now); }

void NocChecker::reset_history(bool clear_delivery_tracks) {
  shadow_primed_ = false;
  for (RouterEntry& e : routers_) {
    for (auto& s : e.shadow) s = VcShadow{};
    for (auto& w : e.watch) w = WatchSlot{};
  }
  if (clear_delivery_tracks)
    for (NiEntry& e : nis_)
      for (auto& t : e.tracks) t = SeqTrack{};
}

void NocChecker::clear_delivery_track(NodeId node, int vc) {
  for (NiEntry& e : nis_) {
    if (e.ni->node() != node) continue;
    require(vc >= 0 && vc < static_cast<int>(e.tracks.size()),
            "NocChecker::clear_delivery_track: VC out of range");
    e.tracks[static_cast<std::size_t>(vc)] = SeqTrack{};
    return;
  }
}

void NocChecker::run_sweep(Cycle now) {
  check_channels(now);
  check_router_states(now);
  check_grants(now);
  check_counters(now);
  shadow_primed_ = true;
  ++sweeps_run_;
}

void NocChecker::check_channels(Cycle now) {
  for (const Channel& ch : channels_) {
    const NodeId at = ch.up_router    ? ch.up_router->id()
                      : ch.down_router ? ch.down_router->id()
                                       : ch.up_ni->node();
    const int vcs = ch.down_router ? ch.down_router->vcs()
                                   : ch.up_router->config().vcs;
    const int depth = ch.down_router
                          ? ch.down_router->input_port(ch.down_port).depth()
                          : ch.up_router->config().vc_depth;
    for (int v = 0; v < vcs; ++v) {
      // Upstream credit counter for logical downstream VC v.
      int credits = 0;
      if (ch.up_router) {
        credits = ch.up_router->out_vc(ch.up_port, v).credits;
      } else {
        credits = ch.up_ni->out_vc_credits(v);
      }
      // Credits consumed by SA grants whose flit has not yet traversed.
      int pending = 0;
      if (ch.up_router) {
        for (const StGrant& g : ch.up_router->pending_grants())
          if (g.out_port == ch.up_port && g.out_vc == v) ++pending;
      }
      // Flits in flight toward the downstream buffer.
      int in_flight = 0;
      ch.link->for_each_flit([&](const Flit& f) {
        if (f.vc == v) ++in_flight;
      });
      // Flits sitting in the downstream buffer (an NI consumes instantly).
      int occupancy = 0;
      if (ch.down_router) {
        const InputPort& ip = ch.down_router->input_port(ch.down_port);
        occupancy =
            static_cast<int>(ip.vc(ip.physical_of(v)).buffer.size());
      }
      // Credits riding back upstream.
      int returning = 0;
      ch.link->for_each_credit([&](const Credit& c) {
        if (c.vc == v) ++returning;
      });
      const int total = credits + pending + in_flight + occupancy + returning;
      if (total != depth) {
        std::ostringstream os;
        os << "credit conservation broken on "
           << (ch.up_router ? "router" : "NI") << "->"
           << (ch.down_router ? "router" : "NI") << " channel: credits="
           << credits << " pending_grants=" << pending << " in_flight="
           << in_flight << " occupancy=" << occupancy << " returning="
           << returning << " sum=" << total << " != depth=" << depth;
        fail("credit-conservation", now, at,
             ch.up_router ? ch.up_port : ch.down_port, v, os.str());
      }
    }
  }
}

void NocChecker::check_router_states(Cycle now) {
  for (RouterEntry& e : routers_) {
    const Router& r = *e.router;
    const int vcs = r.vcs();
    for (int p = 0; p < r.ports(); ++p) {
      const InputPort& ip = r.input_port(p);
      for (int v = 0; v < vcs; ++v) {
        const std::size_t slot = static_cast<std::size_t>(p * vcs + v);

        // State legality, tracked per logical VC id.
        const VirtualChannel& lvc = ip.vc(ip.physical_of(v));
        const auto cur = lvc.state;
        if (shadow_primed_) {
          const auto prev = static_cast<VcState>(e.shadow[slot].state);
          if (!legal_transition(prev, cur))
            fail("vc-state", now, r.id(), p, v,
                 std::string("illegal G-field transition ") +
                     vc_state_name(prev) + " -> " + vc_state_name(cur));
        }
        e.shadow[slot].state = static_cast<std::uint8_t>(cur);
        if ((cur == VcState::Routing || cur == VcState::VcAlloc) &&
            (lvc.buffer.empty() || !lvc.buffer.front().is_head()))
          fail("vc-state", now, r.id(), p, v,
               std::string(vc_state_name(cur)) +
                   " VC without a head flit at the buffer front");

        // Starvation watchdog, tracked per physical VC (buffer identity).
        const VirtualChannel& pvc = ip.vc(v);
        WatchSlot& w = e.watch[slot];
        const bool empty = pvc.buffer.empty();
        const PacketId fp = empty ? 0 : pvc.buffer.front().packet;
        const std::uint32_t fs = empty ? 0 : pvc.buffer.front().seq;
        if (empty || fp != w.front_packet || fs != w.front_seq ||
            pvc.buffer.size() != w.occupancy ||
            static_cast<std::uint8_t>(pvc.state) != w.state) {
          w.front_packet = fp;
          w.front_seq = fs;
          w.occupancy = pvc.buffer.size();
          w.state = static_cast<std::uint8_t>(pvc.state);
          w.last_change = now;
        } else if (now - w.last_change > cfg_.stall_limit) {
          std::ostringstream os;
          os << "flit of packet " << fp << " (seq " << fs
             << ") stalled with no progress since cycle " << w.last_change
             << " (state " << vc_state_name(pvc.state)
             << ", occupancy " << pvc.buffer.size() << ")";
          fail("starvation-watchdog", now, r.id(), p, v, os.str());
        }
      }
    }
  }
}

void NocChecker::check_grants(Cycle now) {
  // kMeshPorts-sized scratch; routers are registered with ports() == 5.
  bool in_used[kMeshPorts];
  bool out_used[kMeshPorts];
  bool mux_used[kMeshPorts];
  for (RouterEntry& e : routers_) {
    const Router& r = *e.router;
    const auto& grants = r.pending_grants();
    if (grants.empty()) continue;
    for (int i = 0; i < kMeshPorts; ++i)
      in_used[i] = out_used[i] = mux_used[i] = false;
    for (const StGrant& g : grants) {
      if (g.in_port < 0 || g.in_port >= r.ports() || g.out_port < 0 ||
          g.out_port >= r.ports() || g.mux < 0 || g.mux >= r.ports() ||
          g.in_vc < 0 || g.in_vc >= r.vcs() || g.out_vc < 0 ||
          g.out_vc >= r.vcs())
        fail("sa-grant", now, r.id(), g.in_port, g.in_vc,
             "grant indices out of range");
      if (in_used[g.in_port])
        fail("sa-grant", now, r.id(), g.in_port, g.in_vc,
             "two grants issued to one input port in a single cycle");
      if (out_used[g.out_port])
        fail("sa-grant", now, r.id(), g.out_port, g.out_vc,
             "two grants issued for one output port in a single cycle");
      if (mux_used[g.mux])
        fail("sa-grant", now, r.id(), g.mux, g.out_vc,
             "two grants traverse one crossbar mux in a single cycle");
      in_used[g.in_port] = out_used[g.out_port] = mux_used[g.mux] = true;
      if (g.mux != g.out_port &&
          g.mux != core::secondary_mux_for_output(g.out_port, r.ports()))
        fail("sa-grant", now, r.id(), g.out_port, g.out_vc,
             "grant mux is neither the primary nor the secondary path");
      const VirtualChannel& vc = r.input_port(g.in_port).vc(g.in_vc);
      if (vc.buffer.empty())
        fail("sa-grant", now, r.id(), g.in_port, g.in_vc,
             "grant issued to an empty VC");
      if (vc.state != VcState::Active)
        fail("sa-grant", now, r.id(), g.in_port, g.in_vc,
             std::string("grant issued to a VC in state ") +
                 vc_state_name(vc.state));
      if (vc.route != g.out_port || vc.out_vc != g.out_vc)
        fail("sa-grant", now, r.id(), g.in_port, g.in_vc,
             "grant disagrees with the VC's R/O fields");
      if (!r.out_vc(g.out_port, g.out_vc).allocated)
        fail("sa-grant", now, r.id(), g.out_port, g.out_vc,
             "grant targets a downstream VC that is not allocated");
    }
  }
}

void NocChecker::check_counters(Cycle now) {
  if (!mesh_) return;
  const int incremental = mesh_->flits_in_network();
  const int recount = mesh_->recount_flits_in_network();
  if (incremental != recount) {
    std::ostringstream os;
    os << "incremental NetCounters report " << incremental
       << " flits in the network but a full recount finds " << recount
       << " (a flit was dropped, duplicated or double-counted)";
    fail("flit-conservation", now, kInvalidNode, -1, -1, os.str());
  }
}

void NocChecker::on_ejected(NodeId node, const Flit& f, Cycle now) {
  for (NiEntry& e : nis_) {
    if (e.ni->node() != node) continue;
    if (f.vc < 0 || f.vc >= static_cast<int>(e.tracks.size()))
      fail("in-order-delivery", now, node, -1, f.vc,
           "ejected flit names a VC outside the NI's range");
    SeqTrack& t = e.tracks[static_cast<std::size_t>(f.vc)];
    if (f.is_head()) {
      if (t.active)
        fail("in-order-delivery", now, node, -1, f.vc,
             "head flit ejected while another packet is still open");
      t.active = true;
      t.packet = f.packet;
      t.next_seq = 0;
    }
    if (!t.active || t.packet != f.packet)
      fail("in-order-delivery", now, node, -1, f.vc,
           "flit of a foreign packet interleaved into an open packet");
    if (t.next_seq != f.seq) {
      std::ostringstream os;
      os << "flit of packet " << f.packet << " ejected out of order (seq "
         << f.seq << ", expected " << t.next_seq << ")";
      fail("in-order-delivery", now, node, -1, f.vc, os.str());
    }
    ++t.next_seq;
    if (f.is_tail()) {
      if (t.next_seq != f.size)
        fail("in-order-delivery", now, node, -1, f.vc,
             "tail flit ejected before the packet was complete");
      t = SeqTrack{};
    }
    return;
  }
}

}  // namespace rnoc::noc
