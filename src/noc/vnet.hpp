// Virtual networks: partitioning the VCs of every port into protocol
// classes (request/response/...), the standard GARNET mechanism for
// protocol-level deadlock avoidance. A packet of traffic class c may only
// occupy VCs of virtual network (c mod vnets).
//
// Note on the protection mechanisms: vnet isolation governs *downstream
// buffer allocation* (the VA stage). The SA-stage transfer mechanism
// (paper §V-C1) moves an already-allocated packet between physical input
// buffers and keeps its downstream VC binding, so it does not violate the
// allocation isolation even when the bypass path's default winner belongs
// to a different vnet.
#pragma once

#include "common/types.hpp"

namespace rnoc::noc {

/// Virtual network a traffic class maps to.
inline int vnet_of_class(std::uint8_t traffic_class, int vnets) {
  require(vnets >= 1, "vnet_of_class: need at least one vnet");
  return static_cast<int>(traffic_class) % vnets;
}

/// Virtual network a VC index belongs to (contiguous ranges).
inline int vnet_of_vc(int vc, int vcs, int vnets) {
  require(vnets >= 1 && vcs % vnets == 0,
          "vnet_of_vc: vcs must divide evenly into vnets");
  require(vc >= 0 && vc < vcs, "vnet_of_vc: vc out of range");
  return vc / (vcs / vnets);
}

/// True when a packet of `traffic_class` may occupy VC `vc`.
inline bool vc_allowed_for_class(int vc, std::uint8_t traffic_class, int vcs,
                                 int vnets) {
  return vnet_of_vc(vc, vcs, vnets) == vnet_of_class(traffic_class, vnets);
}

}  // namespace rnoc::noc
