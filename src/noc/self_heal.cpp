#include "noc/self_heal.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace rnoc::noc {

namespace {

/// Coordinate of the neighbour behind `port` of `c`, or nullopt-style
/// out-of-mesh coordinates the caller screens with dims.contains().
Coord neighbour_coord(Coord c, int port) {
  switch (direction_of(port)) {
    case Direction::Local: break;
    case Direction::North: --c.y; break;
    case Direction::East: ++c.x; break;
    case Direction::South: ++c.y; break;
    case Direction::West: --c.x; break;
  }
  return c;
}

}  // namespace

SelfHealNet::SelfHealNet(const MeshDims& dims)
    : dims_(dims),
      words_((static_cast<std::size_t>(dims.nodes()) + 63) / 64) {
  require(dims.nodes() >= 1, "SelfHealNet: empty mesh");
  global_.assign(words_, 0);
  know_.assign(static_cast<std::size_t>(dims.nodes()) * words_, 0);
  next_.assign(know_.size(), 0);
  dead_ports_.assign(static_cast<std::size_t>(dims.nodes()), 0);
}

void SelfHealNet::activate(int escape_vc) {
  require(escape_vc >= 0, "SelfHealNet::activate: bad escape VC");
  active_ = true;
  escape_vc_ = escape_vc;
}

bool SelfHealNet::dead(NodeId n) const {
  require(n >= 0 && n < dims_.nodes(), "SelfHealNet::dead: node out of range");
  return (global_[static_cast<std::size_t>(n) / 64] & bit_of(n)) != 0;
}

bool SelfHealNet::knows(NodeId r, NodeId n) const {
  require(r >= 0 && r < dims_.nodes() && n >= 0 && n < dims_.nodes(),
          "SelfHealNet::knows: node out of range");
  return (know_[word_of(r, n)] & bit_of(n)) != 0;
}

void SelfHealNet::refresh_dead_ports(NodeId r) {
  const Coord c = dims_.coord_of(r);
  std::uint8_t mask = 0;
  for (int p = 0; p < kMeshPorts; ++p) {
    if (p == port_of(Direction::Local)) continue;
    const Coord nc = neighbour_coord(c, p);
    if (!dims_.contains(nc)) continue;
    const NodeId m = dims_.node_of(nc);
    if ((know_[word_of(r, m)] & bit_of(m)) != 0)
      mask |= static_cast<std::uint8_t>(1u << static_cast<unsigned>(p));
  }
  dead_ports_[static_cast<std::size_t>(r)] = mask;
}

void SelfHealNet::mark_dead(NodeId n) {
  require(n >= 0 && n < dims_.nodes(),
          "SelfHealNet::mark_dead: node out of range");
  if (dead(n)) return;
  global_[static_cast<std::size_t>(n) / 64] |= bit_of(n);
  // Link-level detection: each live neighbour learns of the death at once.
  const Coord c = dims_.coord_of(n);
  for (int p = 0; p < kMeshPorts; ++p) {
    if (p == port_of(Direction::Local)) continue;
    const Coord nc = neighbour_coord(c, p);
    if (!dims_.contains(nc)) continue;
    const NodeId m = dims_.node_of(nc);
    if (dead(m)) continue;
    know_[word_of(m, n)] |= bit_of(n);
    refresh_dead_ports(m);
  }
  converged_ = false;
}

bool SelfHealNet::propagate(std::vector<NodeId>& updated) {
  if (converged_) return false;
  const std::size_t first = updated.size();
  bool changed = false;
  for (NodeId r = 0; r < dims_.nodes(); ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * words_;
    if (dead(r)) {
      // A dead router neither learns nor forwards; its vector is frozen.
      std::copy(know_.begin() + static_cast<std::ptrdiff_t>(base),
                know_.begin() + static_cast<std::ptrdiff_t>(base + words_),
                next_.begin() + static_cast<std::ptrdiff_t>(base));
      continue;
    }
    const Coord c = dims_.coord_of(r);
    bool r_changed = false;
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t merged = know_[base + w];
      for (int p = 0; p < kMeshPorts; ++p) {
        if (p == port_of(Direction::Local)) continue;
        const Coord nc = neighbour_coord(c, p);
        if (!dims_.contains(nc)) continue;
        const NodeId m = dims_.node_of(nc);
        if (dead(m)) continue;
        merged |= know_[static_cast<std::size_t>(m) * words_ + w];
      }
      next_[base + w] = merged;
      r_changed |= merged != know_[base + w];
    }
    if (r_changed) {
      changed = true;
      updated.push_back(r);
    }
  }
  know_.swap(next_);
  for (std::size_t i = first; i < updated.size(); ++i)
    refresh_dead_ports(updated[i]);
  converged_ = !changed;
  return changed;
}

void SelfHealNet::reset() {
  active_ = false;
  escape_vc_ = -1;
  frozen_ = false;
  converged_ = true;
  tables_ = nullptr;
  std::fill(global_.begin(), global_.end(), 0);
  std::fill(know_.begin(), know_.end(), 0);
  std::fill(next_.begin(), next_.end(), 0);
  std::fill(dead_ports_.begin(), dead_ports_.end(), 0);
}

}  // namespace rnoc::noc
