// Stall-cause metrics registry: named counters/gauges/histograms plus a
// structured per-router, per-stage stall-attribution matrix.
//
// The registry is the metrics half of the observability layer (the tracing
// half lives in obs/trace.hpp). It is deterministic — every value derives
// from simulation cycles and flit counts, never from wall-clock time — and
// it only exists in builds configured with -DRNOC_TRACE=ON; the hooks that
// feed it compile to nothing otherwise.
//
// Attribution contract (enforced by tests/test_obs.cpp): for every router
// and pipeline stage, each requester that fails to advance in a cycle is
// charged exactly one stall cause, so
//
//   requests(r, stage) - grants(r, stage) == sum over causes of
//                                            stalls(r, stage, cause).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rnoc::obs {

/// Router pipeline stages that can stall a flit.
enum class Stage : std::uint8_t { Rc = 0, Va, Sa, St };
inline constexpr int kStageCount = 4;

/// Why a requester failed to advance through a stage this cycle.
enum class StallCause : std::uint8_t {
  NoCredit = 0,  ///< No downstream VC/credit available (congestion).
  LostVa,        ///< Lost VC-allocation arbitration to another VC.
  LostSa,        ///< Lost switch-allocation arbitration to another VC.
  FaultBlocked,  ///< A hardware fault blocked the stage this cycle.
  Starved,       ///< Never reached the arbiter (e.g. RC serves 1 VC/port).
  RouterDead     ///< Destination unreachable: a dead router partitioned it.
};
inline constexpr int kStallCauseCount = 6;

const char* stage_name(Stage s);
const char* stall_cause_name(StallCause c);

/// Per-simulator metrics store. All mutators are O(1) array updates on the
/// structured paths; the named-instrument API is map-backed and meant for
/// occasional (per-run, not per-cycle) use.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int nodes);

  // --- Structured stall attribution (hot path) ---
  void add_request(NodeId router, Stage s, std::uint64_t n = 1);
  void add_grant(NodeId router, Stage s, std::uint64_t n = 1);
  void add_stall(NodeId router, Stage s, StallCause c, std::uint64_t n = 1);
  void add_hop_latency(Cycle cycles);

  std::uint64_t requests(NodeId router, Stage s) const;
  std::uint64_t grants(NodeId router, Stage s) const;
  std::uint64_t stalls(NodeId router, Stage s, StallCause c) const;
  /// Sum of all stall causes charged to `router` across all stages.
  std::uint64_t stall_cycles(NodeId router) const;
  /// stall_cycles() for every router, indexed by NodeId.
  std::vector<std::uint64_t> stall_cycles_per_router() const;
  /// Network-wide sum of one cause across routers and stages.
  std::uint64_t total_stalls(StallCause c) const;
  const Histogram& hop_latency() const { return hop_latency_; }

  // --- Named instruments ---
  void counter_add(const std::string& name, std::uint64_t n = 1);
  void gauge_set(const std::string& name, double value);
  /// Creates the histogram on first use with the given shape; later calls
  /// with the same name ignore the shape and just add the sample.
  void histogram_add(const std::string& name, double value, double lo = 0.0,
                     double hi = 1024.0, std::size_t bins = 64);

  std::uint64_t counter(const std::string& name) const;  ///< 0 when absent.
  double gauge(const std::string& name) const;           ///< 0 when absent.

  // --- Snapshots ---
  /// Human-readable stall breakdown: one block per router with nonzero
  /// activity, plus network totals and the hop-latency quantiles.
  std::string snapshot_text() const;
  /// The same data as a deterministic JSON document.
  std::string snapshot_json() const;

 private:
  std::size_t cell(NodeId r, Stage s) const;

  int nodes_;
  std::vector<std::uint64_t> requests_;  ///< [router * kStageCount + stage]
  std::vector<std::uint64_t> grants_;    ///< [router * kStageCount + stage]
  std::vector<std::uint64_t> stalls_;    ///< [cell * kStallCauseCount + cause]
  Histogram hop_latency_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rnoc::obs
