#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace rnoc::obs {
namespace {

/// Reconstructed duration span on one (pid, tid) lane.
struct Span {
  Cycle begin = 0;
  Cycle end = 0;
  const char* name = "";
  PacketId packet = 0;
};

struct Instant {
  Cycle cycle = 0;
  const char* name = "";
  PacketId packet = 0;
};

struct Lane {
  std::vector<Span> spans;
  std::vector<Instant> instants;
};

using LaneKey = std::pair<int, int>;  ///< (pid = router, tid)

int lane_tid(const TraceEvent& e, int vcs) {
  if (e.port < 0) return 0;  // NI lane
  return 1 + e.port * vcs + e.vc;
}

void append_event(std::string& out, const char* name, const char* ph,
                  Cycle ts, int pid, int tid, PacketId packet) {
  out += "{\"name\": \"";
  out += name;
  out += "\", \"cat\": \"flit\", \"ph\": \"";
  out += ph;
  out += "\"";
  if (ph[0] == 'i') out += ", \"s\": \"t\"";
  out += ", \"ts\": " + std::to_string(ts) +
         ", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) +
         ", \"args\": {\"packet\": " + std::to_string(packet) + "}},\n";
}

void append_metadata(std::string& out, const char* what, int pid, int tid,
                     const std::string& name) {
  out += "{\"name\": \"";
  out += what;
  out += "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) +
         ", \"args\": {\"name\": \"" + name + "\"}},\n";
}

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Inject: return "Inject";
    case EventKind::BufWrite: return "BufWrite";
    case EventKind::Rc: return "RC";
    case EventKind::Va: return "VA";
    case EventKind::Sa: return "SA";
    case EventKind::St: return "XB";
    case EventKind::Eject: return "Eject";
    case EventKind::FaultBlock: return "FaultBlock";
    case EventKind::EccRetx: return "EccRetx";
    case EventKind::RouterDeath: return "RouterDeath";
    case EventKind::Reroute: return "Reroute";
    case EventKind::E2eRetx: return "E2eRetx";
    case EventKind::SelfHealVector: return "SelfHealVector";
    case EventKind::SelfHealReroute: return "SelfHealReroute";
  }
  unreachable("event_kind_name: unhandled EventKind");
}

TraceBuffer::TraceBuffer(std::uint64_t sample, std::size_t capacity)
    : sample_(sample), capacity_(capacity) {
  require(capacity > 0, "TraceBuffer: capacity must be positive");
  if (sample_ != 0) ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceBuffer::record(const TraceEvent& e) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  return recorded_ - ring_.size();
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events, int ports,
                              int vcs) {
  require(ports > 0 && vcs > 0, "chrome_trace_json: bad geometry");
  const int link_tid = 1 + ports * vcs;

  // Group events per packet, preserving recording (cycle) order.
  std::map<PacketId, std::vector<TraceEvent>> by_packet;
  for (const TraceEvent& e : events) by_packet[e.packet].push_back(e);

  // Walk each packet's lifecycle and rebuild per-hop spans. The exporter
  // tolerates missing predecessors (ring overwrite, packets still in
  // flight): a span is only drawn when both endpoints were retained.
  std::map<LaneKey, Lane> lanes;
  for (const auto& [packet, evs] : by_packet) {
    Cycle move = 0;   // last crossbar traversal / injection
    Cycle stage = 0;  // last completed stage on the current hop
    bool have_move = false, have_stage = false;
    for (const TraceEvent& e : evs) {
      Lane& lane = lanes[{e.router, e.kind == EventKind::EccRetx
                                        ? link_tid
                                        : lane_tid(e, vcs)}];
      switch (e.kind) {
        case EventKind::Inject:
          lane.instants.push_back({e.cycle, "Inject", packet});
          move = e.cycle;
          have_move = true;
          have_stage = false;
          break;
        case EventKind::BufWrite:
          if (have_move) lane.spans.push_back({move, e.cycle, "link", packet});
          stage = e.cycle;
          have_stage = true;
          break;
        case EventKind::Rc:
        case EventKind::Va:
        case EventKind::Sa:
          if (have_stage)
            lane.spans.push_back(
                {stage, e.cycle, event_kind_name(e.kind), packet});
          stage = e.cycle;
          have_stage = true;
          break;
        case EventKind::St:
          if (have_stage)
            lane.spans.push_back({stage, e.cycle, "XB", packet});
          move = e.cycle;
          have_move = true;
          have_stage = false;
          break;
        case EventKind::Eject:
          if (have_move) lane.spans.push_back({move, e.cycle, "link", packet});
          lane.instants.push_back({e.cycle, "Eject", packet});
          have_move = false;
          have_stage = false;
          break;
        case EventKind::FaultBlock:
          lane.instants.push_back({e.cycle, "FaultBlock", packet});
          break;
        case EventKind::EccRetx:
          lane.instants.push_back({e.cycle, "EccRetx", packet});
          break;
        case EventKind::RouterDeath:
          lane.instants.push_back({e.cycle, "RouterDeath", packet});
          break;
        case EventKind::Reroute:
          lane.instants.push_back({e.cycle, "Reroute", packet});
          break;
        case EventKind::E2eRetx:
          lane.instants.push_back({e.cycle, "E2eRetx", packet});
          break;
        case EventKind::SelfHealVector:
          lane.instants.push_back({e.cycle, "SelfHealVector", packet});
          break;
        case EventKind::SelfHealReroute:
          lane.instants.push_back({e.cycle, "SelfHealReroute", packet});
          break;
      }
    }
  }

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Metadata: stable names for every lane that carries data.
  int last_pid = kInvalidNode;
  for (const auto& [key, lane] : lanes) {
    const auto [pid, tid] = key;
    if (pid != last_pid) {
      append_metadata(out, "process_name", pid, 0,
                      "router " + std::to_string(pid));
      last_pid = pid;
    }
    std::string tname;
    if (tid == 0) {
      tname = "NI";
    } else if (tid == link_tid) {
      tname = "link";
    } else {
      tname = "in p" + std::to_string((tid - 1) / vcs) + " vc" +
              std::to_string((tid - 1) % vcs);
    }
    append_metadata(out, "thread_name", pid, tid, tname);
    (void)lane;
  }

  // Spans, one lane at a time. Within a lane spans never overlap (a VC
  // buffer holds one packet at a time), but clamp defensively so the output
  // is well-nested even for exotic protection-event interleavings.
  for (auto& [key, lane] : lanes) {
    const auto [pid, tid] = key;
    std::stable_sort(lane.spans.begin(), lane.spans.end(),
                     [](const Span& a, const Span& b) {
                       return a.begin != b.begin ? a.begin < b.begin
                                                 : a.end < b.end;
                     });
    Cycle last_end = 0;
    for (Span& s : lane.spans) {
      s.begin = std::max(s.begin, last_end);
      s.end = std::max(s.end, s.begin);
      last_end = s.end;
      append_event(out, s.name, "B", s.begin, pid, tid, s.packet);
      append_event(out, s.name, "E", s.end, pid, tid, s.packet);
    }
    for (const Instant& i : lane.instants)
      append_event(out, i.name, "i", i.cycle, pid, tid, i.packet);
  }

  // Chrome's parser accepts trailing commas in traceEvents, but emit a
  // strictly valid document anyway so any JSON tool can read it.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

}  // namespace rnoc::obs
