// Observability facade: one Observer per Mesh, owning the trace ring and
// the metrics registry. NoC components hold a raw pointer and call the
// inline hooks; every hook call site is compiled out unless the build was
// configured with -DRNOC_TRACE=ON (same gating pattern as the invariant
// checker), so the default build's hot path is untouched.
//
// Depends only on src/common — the NoC layer includes this header, never
// the other way around.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rnoc::obs {

/// Runtime configuration, embedded in MeshConfig unconditionally (a couple
/// of PODs; the Observer itself only exists in traced builds).
struct ObsConfig {
  /// Trace packets whose id % trace_sample == 0; 0 disables tracing
  /// (metrics are still collected in traced builds).
  std::uint64_t trace_sample = 0;
  /// Trace ring capacity in events; oldest events are overwritten.
  std::size_t trace_capacity = std::size_t{1} << 20;

  friend bool operator==(const ObsConfig&, const ObsConfig&) = default;
};

class Observer {
 public:
  Observer(int nodes, int ports, int vcs, const ObsConfig& cfg)
      : ports_(ports),
        vcs_(vcs),
        metrics_(nodes),
        trace_(cfg.trace_sample, cfg.trace_capacity) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  /// Records a lifecycle event for `packet` if it is sampled.
  void on_event(EventKind k, Cycle now, PacketId packet, NodeId router,
                int port, int vc) {
    if (trace_.sampled(packet))
      trace_.record({now, packet, router, static_cast<std::int16_t>(port),
                     static_cast<std::int16_t>(vc), k});
  }

  /// Chrome trace-event JSON of everything retained in the ring.
  std::string chrome_trace_json() const {
    return obs::chrome_trace_json(trace_.events(), ports_, vcs_);
  }

 private:
  int ports_;
  int vcs_;
  MetricsRegistry metrics_;
  TraceBuffer trace_;
};

}  // namespace rnoc::obs
