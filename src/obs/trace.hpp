// Flit-lifecycle tracing: cycle-stamped event records in a per-simulator
// ring buffer, sampled by packet id, exported as Chrome trace-event JSON
// that loads directly in ui.perfetto.dev.
//
// Recording is deliberately dumb and cheap — a POD append into a
// preallocated ring — so the hooks stay off the critical path even in
// traced builds. All reconstruction (turning per-stage timestamps into
// Perfetto duration spans) happens at export time.
//
// Export layout: pid = router (NIs share their router's pid), tid 0 = the
// network interface, tids 1.. = one lane per input (port, vc) buffer, and a
// final per-router "link" lane for ECC retransmit instants. Per-hop spans
// rendered on the flit's input lane: link -> RC -> VA -> SA -> XB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rnoc::obs {

/// One cycle-stamped lifecycle event. Kept POD-small: the ring holds a
/// million of these by default.
enum class EventKind : std::uint8_t {
  Inject = 0,  ///< Head flit entered the network at the source NI.
  BufWrite,    ///< Head flit written into an input VC buffer.
  Rc,          ///< Route computed for the packet.
  Va,          ///< Output VC allocated.
  Sa,          ///< Switch allocation granted (head flit).
  St,          ///< Head flit traversed the crossbar onto the output link.
  Eject,       ///< Tail flit left the network at the destination NI.
  FaultBlock,  ///< A fault blocked this packet's pipeline stage this cycle.
  EccRetx,     ///< ECC link detected a double error; flit retransmitted.
  RouterDeath, ///< Router declared dead; it now swallows traffic (packet 0).
  Reroute,     ///< Epoch switch: fault-aware tables installed (packet 0).
  E2eRetx,     ///< End-to-end timeout fired; packet retransmitted at the NI.
  SelfHealVector,   ///< Router's local fault vector updated (packet 0).
  SelfHealReroute,  ///< RC diverted this packet onto the escape VC.
};

const char* event_kind_name(EventKind k);

struct TraceEvent {
  Cycle cycle = 0;
  PacketId packet = 0;
  NodeId router = kInvalidNode;
  std::int16_t port = -1;  ///< Input port, -1 at the NI.
  std::int16_t vc = -1;    ///< Physical VC, -1 when not applicable.
  EventKind kind = EventKind::Inject;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Fixed-capacity ring of TraceEvents. When full, the oldest records are
/// overwritten — the exporter tolerates packets whose early events are gone.
class TraceBuffer {
 public:
  /// `sample` selects packets with id % sample == 0; 0 disables recording
  /// entirely. `capacity` is the ring size in events.
  TraceBuffer(std::uint64_t sample, std::size_t capacity);

  bool enabled() const { return sample_ != 0; }
  bool sampled(PacketId p) const { return sample_ != 0 && p % sample_ == 0; }
  void record(const TraceEvent& e);

  /// Retained events, oldest first (recording order, cycles nondecreasing).
  std::vector<TraceEvent> events() const;
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring overwrite.
  std::uint64_t dropped() const;
  std::uint64_t sample() const { return sample_; }

 private:
  std::uint64_t sample_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< Next write slot once the ring has wrapped.
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Renders events as a Chrome trace-event JSON document ("traceEvents"
/// object form, ts in microseconds == cycles). `ports`/`vcs` shape the
/// tid layout. Deterministic: equal event lists produce equal strings.
std::string chrome_trace_json(const std::vector<TraceEvent>& events, int ports,
                              int vcs);

}  // namespace rnoc::obs
