#include "obs/metrics.hpp"

#include <charconv>
#include <stdexcept>

namespace rnoc::obs {
namespace {

// Shortest exact round-trip form, locale-independent (the same contract as
// the campaign JSON writer; obs must not depend on src/campaign, so the few
// lines are duplicated here).
std::string fmt_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec != std::errc{}) throw std::runtime_error("fmt_double failed");
  return std::string(buf, res.ptr);
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
  if (comma) out += ", ";
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::Rc: return "RC";
    case Stage::Va: return "VA";
    case Stage::Sa: return "SA";
    case Stage::St: return "ST";
  }
  return "?";
}

const char* stall_cause_name(StallCause c) {
  switch (c) {
    case StallCause::NoCredit: return "no_credit";
    case StallCause::LostVa: return "lost_va";
    case StallCause::LostSa: return "lost_sa";
    case StallCause::FaultBlocked: return "fault_blocked";
    case StallCause::Starved: return "starved";
    case StallCause::RouterDead: return "router_dead";
  }
  return "?";
}

MetricsRegistry::MetricsRegistry(int nodes)
    : nodes_(nodes),
      requests_(static_cast<std::size_t>(nodes) * kStageCount, 0),
      grants_(static_cast<std::size_t>(nodes) * kStageCount, 0),
      stalls_(static_cast<std::size_t>(nodes) * kStageCount * kStallCauseCount,
              0),
      hop_latency_(0.0, 256.0, 64) {
  require(nodes > 0, "MetricsRegistry: nodes must be positive");
}

std::size_t MetricsRegistry::cell(NodeId r, Stage s) const {
  return static_cast<std::size_t>(r) * kStageCount + static_cast<int>(s);
}

void MetricsRegistry::add_request(NodeId router, Stage s, std::uint64_t n) {
  requests_[cell(router, s)] += n;
}

void MetricsRegistry::add_grant(NodeId router, Stage s, std::uint64_t n) {
  grants_[cell(router, s)] += n;
}

void MetricsRegistry::add_stall(NodeId router, Stage s, StallCause c,
                                std::uint64_t n) {
  stalls_[cell(router, s) * kStallCauseCount + static_cast<int>(c)] += n;
}

void MetricsRegistry::add_hop_latency(Cycle cycles) {
  hop_latency_.add(static_cast<double>(cycles));
}

std::uint64_t MetricsRegistry::requests(NodeId router, Stage s) const {
  return requests_[cell(router, s)];
}

std::uint64_t MetricsRegistry::grants(NodeId router, Stage s) const {
  return grants_[cell(router, s)];
}

std::uint64_t MetricsRegistry::stalls(NodeId router, Stage s,
                                      StallCause c) const {
  return stalls_[cell(router, s) * kStallCauseCount + static_cast<int>(c)];
}

std::uint64_t MetricsRegistry::stall_cycles(NodeId router) const {
  std::uint64_t sum = 0;
  for (int s = 0; s < kStageCount; ++s)
    for (int c = 0; c < kStallCauseCount; ++c)
      sum += stalls_[cell(router, static_cast<Stage>(s)) * kStallCauseCount +
                     c];
  return sum;
}

std::vector<std::uint64_t> MetricsRegistry::stall_cycles_per_router() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(nodes_), 0);
  for (int r = 0; r < nodes_; ++r) out[r] = stall_cycles(r);
  return out;
}

std::uint64_t MetricsRegistry::total_stalls(StallCause c) const {
  std::uint64_t sum = 0;
  for (int r = 0; r < nodes_; ++r)
    for (int s = 0; s < kStageCount; ++s)
      sum += stalls(r, static_cast<Stage>(s), c);
  return sum;
}

void MetricsRegistry::counter_add(const std::string& name, std::uint64_t n) {
  counters_[name] += n;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::histogram_add(const std::string& name, double value,
                                    double lo, double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, Histogram(lo, hi, bins)).first;
  it->second.add(value);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::string MetricsRegistry::snapshot_text() const {
  std::string out = "stall-cause breakdown (cycles):\n";
  for (int r = 0; r < nodes_; ++r) {
    std::uint64_t active = stall_cycles(r);
    for (int s = 0; s < kStageCount; ++s)
      active += requests(r, static_cast<Stage>(s));
    if (active == 0) continue;
    out += "  router " + std::to_string(r) + ":\n";
    for (int s = 0; s < kStageCount; ++s) {
      const Stage st = static_cast<Stage>(s);
      out += "    " + std::string(stage_name(st)) +
             ": requests=" + std::to_string(requests(r, st)) +
             " grants=" + std::to_string(grants(r, st));
      for (int c = 0; c < kStallCauseCount; ++c) {
        const StallCause cc = static_cast<StallCause>(c);
        const std::uint64_t v = stalls(r, st, cc);
        if (v != 0) {
          out += ' ';
          out += stall_cause_name(cc);
          out += '=';
          out += std::to_string(v);
        }
      }
      out += '\n';
    }
  }
  out += "  totals:";
  for (int c = 0; c < kStallCauseCount; ++c) {
    const StallCause cc = static_cast<StallCause>(c);
    out += ' ';
    out += stall_cause_name(cc);
    out += '=';
    out += std::to_string(total_stalls(cc));
  }
  out += '\n';
  if (hop_latency_.total() != 0) {
    out += "  hop latency: n=" + std::to_string(hop_latency_.total()) +
           " p50=" + fmt_double(hop_latency_.quantile(0.5)) +
           " p99=" + fmt_double(hop_latency_.quantile(0.99)) + '\n';
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\n  \"routers\": [\n";
  for (int r = 0; r < nodes_; ++r) {
    out += "    {\"router\": " + std::to_string(r) + ", \"stages\": {";
    for (int s = 0; s < kStageCount; ++s) {
      const Stage st = static_cast<Stage>(s);
      if (s != 0) out += ", ";
      out += '"';
      out += stage_name(st);
      out += "\": {";
      append_kv(out, "requests", requests(r, st));
      append_kv(out, "grants", grants(r, st));
      for (int c = 0; c < kStallCauseCount; ++c) {
        const StallCause cc = static_cast<StallCause>(c);
        append_kv(out, stall_cause_name(cc), stalls(r, st, cc),
                  c + 1 != kStallCauseCount);
      }
      out += '}';
    }
    out += "}}";
    if (r + 1 != nodes_) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"totals\": {";
  for (int c = 0; c < kStallCauseCount; ++c) {
    const StallCause cc = static_cast<StallCause>(c);
    append_kv(out, stall_cause_name(cc), total_stalls(cc),
              c + 1 != kStallCauseCount);
  }
  out += "},\n  \"hop_latency\": {";
  append_kv(out, "count", hop_latency_.total());
  out += "\"p50\": " + fmt_double(hop_latency_.quantile(0.5)) +
         ", \"p99\": " + fmt_double(hop_latency_.quantile(0.99)) + "},\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + std::to_string(v);
  }
  out += "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + fmt_double(v);
  }
  out += "}\n}\n";
  return out;
}

}  // namespace rnoc::obs
