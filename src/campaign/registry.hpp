// The campaign registry: one declarative CampaignSpec per paper artifact.
//
// Every table, figure and ablation the repo reproduces is registered here —
// Tables I-III, the MTTF equations, the SPF Monte Carlo, the 45 nm
// area/power/critical-path synthesis, the SPLASH-2/PARSEC latency figures,
// and the load/VC/environment sweeps. The `rnoc_campaign` CLI drives the
// registry end to end; the per-figure bench binaries are thin wrappers over
// `run_registry_inline`.
#pragma once

#include <string>
#include <vector>

#include "campaign/engine.hpp"

namespace rnoc::campaign {

/// All registered campaigns, in stable presentation order.
const std::vector<CampaignSpec>& campaign_registry();

/// Lookup by name; null when unknown.
const CampaignSpec* find_campaign(const std::string& name);

/// Runs a registered campaign to completion in-process (no checkpointing)
/// and returns its result. Throws on unknown names.
CampaignResult run_registry_inline(const std::string& name,
                                   bool smoke = false);

}  // namespace rnoc::campaign
