// Minimal JSON reader/writer for campaign result and checkpoint files.
//
// The campaign engine needs exact double round-trips: a shard result written
// to a checkpoint, read back after a crash and re-serialized must be
// byte-identical to the uninterrupted run (the resume-determinism contract,
// test-enforced). Doubles are therefore written with std::to_chars (shortest
// round-trip form) and read with std::from_chars — exact and, unlike
// printf/strtod, independent of LC_NUMERIC — and the writer is the only
// producer of the files the parser consumes, so the dialect can stay small:
// objects, arrays, strings (with the common escapes), finite numbers, bools
// and null.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rnoc::campaign {

/// Parsed JSON value. Object member order is preserved (serialization must
/// be deterministic).
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Type type() const { return type_; }
  bool is(Type t) const { return type_ == t; }

  /// Typed accessors; throw std::invalid_argument on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< Number checked to be integral.
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;             ///< Array.
  std::vector<JsonValue>& items();                         ///< Array.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  void push_back(JsonValue v);                       ///< Array append.
  void set(const std::string& key, JsonValue v);     ///< Object append.
  /// Object member lookup; throws when the key is absent.
  const JsonValue& at(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;  ///< Null if absent.

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses a complete JSON document; throws std::invalid_argument with a
/// character offset on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

/// Serializes with 2-space indentation and deterministic layout.
std::string to_json_text(const JsonValue& v);

/// Formats a double so that parsing the result returns the same bits.
/// Requires a finite value (campaign metrics must be finite).
std::string json_double(double v);

/// Escapes and quotes a string for JSON embedding.
std::string json_quote(const std::string& s);

}  // namespace rnoc::campaign
