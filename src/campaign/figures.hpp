// Shared simulation setup for the Figure 7 / Figure 8 latency campaigns and
// the load/ablation sweeps: the paper's 8x8 protected mesh, its §IX fault
// schedule, and the (fault-free, faulted) job pair per application.
//
// This used to live in bench/latency_common.hpp; it moved into the library
// so the campaign registry and the bench wrappers share one definition of
// the experiment (bench/latency_common.hpp now forwards here).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "fault/fault_injector.hpp"
#include "noc/simulator.hpp"
#include "noc/sweep.hpp"
#include "traffic/app_profiles.hpp"

namespace rnoc::campaign {

/// The paper's 64-core mesh configuration. Smoke mode shrinks the
/// simulation windows so a full-registry CI run stays seconds-sized per
/// campaign while exercising the same code paths.
noc::SimConfig figure_sim_config(bool smoke = false);

/// The paper's §IX schedule scaled to simulation length: one permanent
/// fault per pipeline stage on every router, staggered through warmup.
fault::FaultPlan figure_fault_plan(const noc::SimConfig& cfg,
                                   std::uint64_t seed);

/// The fault-free/faulted job pair for one application. The two jobs share
/// a config and seed but own separate traffic-model instances, so they can
/// run on different workers.
std::vector<noc::SweepJob> figure_app_jobs(const traffic::AppProfile& profile,
                                           const noc::SimConfig& cfg,
                                           std::uint64_t seed);

struct AppLatency {
  std::string name;
  double fault_free = 0.0;
  double with_faults = 0.0;
  /// Aggregate router events of the faulted run (source of the obs block).
  noc::RouterStats faulted_events;
  double increase() const { return with_faults / fault_free - 1.0; }
};

/// Observability block for a campaign point, derived from a run's aggregate
/// RouterStats. RouterStats is collected in every build configuration, so
/// result files are byte-identical whether or not RNOC_TRACE is on.
std::vector<Metric> obs_metrics(const noc::RouterStats& ev);

/// Validates a (fault-free, faulted) report pair — no deadlock, no lost
/// flits — and extracts the two latencies. Throws on violation.
AppLatency check_app_pair(const std::string& name, const noc::SimReport& clean,
                          const noc::SimReport& faulty);

/// Runs the pair for one application and returns its latencies.
AppLatency run_figure_app(const traffic::AppProfile& profile,
                          const noc::SimConfig& cfg, std::uint64_t seed);

}  // namespace rnoc::campaign
