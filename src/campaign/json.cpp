#include "campaign/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/types.hpp"

namespace rnoc::campaign {

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::Number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.type_ = Type::Array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.type_ = Type::Object;
  return v;
}

bool JsonValue::as_bool() const {
  require(type_ == Type::Bool, "json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  require(type_ == Type::Number, "json: not a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(d);
  require(static_cast<double>(i) == d, "json: number is not integral");
  return i;
}

const std::string& JsonValue::as_string() const {
  require(type_ == Type::String, "json: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  require(type_ == Type::Array, "json: not an array");
  return arr_;
}

std::vector<JsonValue>& JsonValue::items() {
  require(type_ == Type::Array, "json: not an array");
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  require(type_ == Type::Object, "json: not an object");
  return obj_;
}

void JsonValue::push_back(JsonValue v) {
  require(type_ == Type::Array, "json: push_back on non-array");
  arr_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  require(type_ == Type::Object, "json: set on non-object");
  obj_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  require(type_ == Type::Object, "json: find on non-object");
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  require(v != nullptr, "json: missing key '" + key + "'");
  return *v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(),
            "json: trailing characters at offset " + std::to_string(pos_));
    return v;
  }

 private:
  void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("bad literal");
        break;
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("bad literal");
        break;
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("bad literal");
        break;
      default:
        return parse_number();
    }
    return JsonValue();  // unreachable
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::make_object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::make_array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: fail("unsupported string escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    // std::from_chars, not strtod: strtod honours LC_NUMERIC, so an
    // embedding binary with a ',' decimal locale would misparse our own
    // checkpoints. from_chars is locale-independent and exact.
    const char* start = text_.c_str() + pos_;
    const char* end = text_.c_str() + text_.size();
    double v = 0.0;
    const auto res = std::from_chars(start, end, v);
    if (res.ec != std::errc() || res.ptr == start) fail("malformed number");
    require(std::isfinite(v), "json: non-finite number");
    pos_ += static_cast<std::size_t>(res.ptr - start);
    return JsonValue::make_number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void serialize(const JsonValue& v, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.type()) {
    case JsonValue::Type::Null:
      out += "null";
      break;
    case JsonValue::Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::Number:
      out += json_double(v.as_number());
      break;
    case JsonValue::Type::String:
      out += json_quote(v.as_string());
      break;
    case JsonValue::Type::Array: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items.size(); ++i) {
        out += pad_in;
        serialize(items[i], out, indent + 1);
        out += i + 1 < items.size() ? ",\n" : "\n";
      }
      out += pad + "]";
      break;
    }
    case JsonValue::Type::Object: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members.size(); ++i) {
        out += pad_in + json_quote(members[i].first) + ": ";
        serialize(members[i].second, out, indent + 1);
        out += i + 1 < members.size() ? ",\n" : "\n";
      }
      out += pad + "}";
      break;
    }
  }
}

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

std::string to_json_text(const JsonValue& v) {
  std::string out;
  serialize(v, out, 0);
  out += "\n";
  return out;
}

std::string json_double(double v) {
  require(std::isfinite(v), "json: campaign metric value is not finite");
  // std::to_chars (shortest form) is locale-independent — snprintf %g obeys
  // LC_NUMERIC and can emit ',' decimals, which is invalid JSON — and
  // guarantees from_chars recovers the identical bit pattern.
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  require(res.ec == std::errc(), "json: double formatting failed");
  return std::string(buf, res.ptr);
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace rnoc::campaign
