#include "campaign/figures.hpp"

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rnoc::campaign {

noc::SimConfig figure_sim_config(bool smoke) {
  noc::SimConfig cfg;
  cfg.mesh.dims = {8, 8};  // the paper's 64-core mesh
  cfg.mesh.router.mode = core::RouterMode::Protected;
  if (smoke) {
    cfg.warmup = 500;
    cfg.measure = 1500;
    cfg.drain_limit = 5000;
  } else {
    cfg.warmup = 3000;
    cfg.measure = 10000;
    cfg.drain_limit = 20000;
  }
  return cfg;
}

fault::FaultPlan figure_fault_plan(const noc::SimConfig& cfg,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> all;
  for (NodeId n = 0; n < cfg.mesh.dims.nodes(); ++n) all.push_back(n);
  return fault::FaultPlan::per_stage(
      cfg.mesh.dims, {noc::kMeshPorts, cfg.mesh.router.vcs}, all,
      cfg.warmup / 5, rng);
}

std::vector<noc::SweepJob> figure_app_jobs(const traffic::AppProfile& profile,
                                           const noc::SimConfig& cfg,
                                           std::uint64_t seed) {
  noc::SweepJob clean;
  clean.cfg = cfg;
  clean.make_traffic = [profile] { return traffic::make_traffic(profile); };
  noc::SweepJob faulty = clean;
  faulty.faults = figure_fault_plan(cfg, seed);
  return {std::move(clean), std::move(faulty)};
}

AppLatency check_app_pair(const std::string& name, const noc::SimReport& clean,
                          const noc::SimReport& faulty) {
  require(!clean.deadlock_suspected,
          "latency figure: fault-free run deadlocked (" + name + ")");
  require(!faulty.deadlock_suspected,
          "latency figure: faulty run deadlocked (" + name + ")");
  require(faulty.undelivered_flits == 0,
          "latency figure: protected run lost flits (" + name + ")");
  return {name, clean.avg_total_latency(), faulty.avg_total_latency(),
          faulty.router_events};
}

std::vector<Metric> obs_metrics(const noc::RouterStats& ev) {
  const auto e = [](const char* name, std::uint64_t v) {
    return exact_metric(name, static_cast<double>(v));
  };
  return {e("blocked_vc_cycles", ev.blocked_vc_cycles),
          e("rc_spare_uses", ev.rc_spare_uses),
          e("va1_borrows", ev.va1_borrows),
          e("va2_retries", ev.va2_retries),
          e("sa1_bypass_grants", ev.sa1_bypass_grants),
          e("sa1_transfers", ev.sa1_transfers),
          e("xb_secondary_traversals", ev.xb_secondary_traversals)};
}

AppLatency run_figure_app(const traffic::AppProfile& profile,
                          const noc::SimConfig& cfg, std::uint64_t seed) {
  const auto reports =
      noc::SweepRunner().run(figure_app_jobs(profile, cfg, seed));
  return check_app_pair(profile.name, reports[0], reports[1]);
}

}  // namespace rnoc::campaign
