#include "campaign/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <utility>

#include "campaign/json.hpp"
#include "common/types.hpp"

namespace fs = std::filesystem;

namespace rnoc::campaign {

Metric exact_metric(std::string name, double value) {
  return {std::move(name), value, 0.0, MetricKind::Exact};
}

Metric stat_metric(std::string name, double value, double ci95) {
  return {std::move(name), value, ci95, MetricKind::Statistical};
}

Metric stat_metric(std::string name, const RunningStats& s) {
  return {std::move(name), s.mean(), s.ci95_halfwidth(),
          MetricKind::Statistical};
}

const PointResult* CampaignResult::find_point(const std::string& id) const {
  for (const auto& p : points)
    if (p.id == id) return &p;
  return nullptr;
}

double CampaignResult::value(const std::string& point_id,
                             const std::string& metric) const {
  const PointResult* p = find_point(point_id);
  require(p != nullptr, "campaign " + campaign + ": no point '" + point_id +
                            "'");
  for (const auto& m : p->metrics)
    if (m.name == metric) return m.value;
  throw std::invalid_argument("campaign " + campaign + ": point '" + point_id +
                              "' has no metric '" + metric + "'");
}

std::uint64_t derive_point_seed(std::uint64_t campaign_seed,
                                std::size_t point_index) {
  // SplitMix64 over the combined key: consecutive indices map to
  // statistically independent streams, and the mapping depends on nothing
  // but (seed, index) — not the shard layout, not the thread schedule.
  std::uint64_t z =
      campaign_seed + 0x9e3779b97f4a7c15ull * (point_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // Separator so {"ab","c"} and {"a","bc"} hash differently.
  h ^= 0xff;
  h *= 0x100000001b3ull;
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* kind_name(MetricKind k) {
  return k == MetricKind::Exact ? "exact" : "stat";
}

MetricKind kind_from_name(const std::string& s) {
  if (s == "exact") return MetricKind::Exact;
  require(s == "stat", "campaign: unknown metric kind '" + s + "'");
  return MetricKind::Statistical;
}

JsonValue metric_to_json(const Metric& m) {
  JsonValue o = JsonValue::make_object();
  o.set("name", JsonValue::make_string(m.name));
  o.set("value", JsonValue::make_number(m.value));
  o.set("ci95", JsonValue::make_number(m.ci95));
  o.set("kind", JsonValue::make_string(kind_name(m.kind)));
  return o;
}

Metric metric_from_json(const JsonValue& v) {
  Metric m;
  m.name = v.at("name").as_string();
  m.value = v.at("value").as_number();
  m.ci95 = v.at("ci95").as_number();
  m.kind = kind_from_name(v.at("kind").as_string());
  return m;
}

JsonValue point_to_json(const PointResult& p) {
  JsonValue o = JsonValue::make_object();
  o.set("id", JsonValue::make_string(p.id));
  JsonValue metrics = JsonValue::make_array();
  for (const auto& m : p.metrics) metrics.push_back(metric_to_json(m));
  o.set("metrics", std::move(metrics));
  // Points without an observability block serialize without the key, so the
  // analytic campaigns' files are unchanged apart from the version line.
  if (!p.obs.empty()) {
    JsonValue obs = JsonValue::make_array();
    for (const auto& m : p.obs) obs.push_back(metric_to_json(m));
    o.set("obs", std::move(obs));
  }
  return o;
}

PointResult point_from_json(const JsonValue& v) {
  PointResult p;
  p.id = v.at("id").as_string();
  for (const auto& m : v.at("metrics").items())
    p.metrics.push_back(metric_from_json(m));
  if (const JsonValue* obs = v.find("obs"))
    for (const auto& m : obs->items()) p.obs.push_back(metric_from_json(m));
  return p;
}

}  // namespace

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "campaign: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

/// Writes atomically: tmp file in the target directory, then rename, so a
/// kill mid-write never leaves a truncated checkpoint behind.
void write_text_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "campaign: cannot write " + tmp);
    out << text;
    out.flush();
    require(out.good(), "campaign: short write to " + tmp);
  }
  fs::rename(tmp, path);
}

namespace {

std::string shard_path(const std::string& dir, const std::string& campaign,
                       int shard) {
  return (fs::path(dir) / (campaign + ".shard" + std::to_string(shard) +
                           ".json"))
      .string();
}

std::string shard_to_json_text(const std::string& campaign,
                               const std::string& config_hash, int shard,
                               std::size_t first,
                               const std::vector<PointResult>& points) {
  JsonValue o = JsonValue::make_object();
  o.set("schema_version", JsonValue::make_number(kSchemaVersion));
  o.set("campaign", JsonValue::make_string(campaign));
  o.set("config_hash", JsonValue::make_string(config_hash));
  o.set("shard", JsonValue::make_number(shard));
  o.set("first_point", JsonValue::make_number(static_cast<double>(first)));
  JsonValue arr = JsonValue::make_array();
  for (const auto& p : points) arr.push_back(point_to_json(p));
  o.set("points", std::move(arr));
  return to_json_text(o);
}

/// Loads a shard checkpoint; returns false (and leaves `points` empty) when
/// the file is absent, unparsable, or was written for a different expanded
/// spec — any of which just means the shard reruns.
bool load_shard_checkpoint(const std::string& path,
                           const std::string& campaign,
                           const std::string& config_hash, int shard,
                           const std::vector<std::string>& expected_ids,
                           std::vector<PointResult>& points) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return false;
  try {
    const JsonValue v = parse_json(read_text(path));
    if (v.at("schema_version").as_int() != kSchemaVersion) return false;
    if (v.at("campaign").as_string() != campaign) return false;
    if (v.at("config_hash").as_string() != config_hash) return false;
    if (v.at("shard").as_int() != shard) return false;
    const auto& arr = v.at("points").items();
    if (arr.size() != expected_ids.size()) return false;
    std::vector<PointResult> loaded;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      PointResult p = point_from_json(arr[i]);
      if (p.id != expected_ids[i]) return false;
      loaded.push_back(std::move(p));
    }
    points = std::move(loaded);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

struct ShardRange {
  std::size_t first = 0;
  std::size_t last = 0;  ///< One past the end.
};

ShardRange shard_range(std::size_t points, int shards, int k) {
  const auto s = static_cast<std::size_t>(shards);
  const auto i = static_cast<std::size_t>(k);
  return {points * i / s, points * (i + 1) / s};
}

int effective_shards(std::size_t points, int requested) {
  int shards = requested > 0
                   ? requested
                   : static_cast<int>(std::min<std::size_t>(points, 8));
  if (static_cast<std::size_t>(shards) > points)
    shards = static_cast<int>(points);
  return std::max(shards, 1);
}

}  // namespace

std::string spec_config_hash(const CampaignSpec& spec, bool smoke,
                             const std::vector<std::string>& ids) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, spec.name);
  h = fnv1a(h, spec.config_tag);
  h = fnv1a(h, std::to_string(spec.seed));
  h = fnv1a(h, smoke ? "smoke" : "full");
  for (const auto& id : ids) h = fnv1a(h, id);
  return hex64(h);
}

std::string fnv1a_hex(const std::string& data) {
  return hex64(fnv1a(0xcbf29ce484222325ull, data));
}

std::string point_to_json_text(const PointResult& p) {
  return to_json_text(point_to_json(p));
}

PointResult point_from_json_text(const std::string& text) {
  return point_from_json(parse_json(text));
}

std::vector<PointUnit> expand_point_units(const CampaignSpec& spec,
                                          bool smoke) {
  require(!spec.name.empty(), "campaign: spec has no name");
  require(static_cast<bool>(spec.point_ids), "campaign " + spec.name +
                                                 ": no point_ids function");
  std::vector<std::string> ids = spec.point_ids(smoke);
  require(!ids.empty(), "campaign " + spec.name + ": empty point grid");
  std::vector<PointUnit> units;
  units.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    units.push_back({i, std::move(ids[i]), derive_point_seed(spec.seed, i)});
  return units;
}

PointResult run_point_unit(const CampaignSpec& spec, const PointUnit& u,
                           bool smoke) {
  require(static_cast<bool>(spec.run_point), "campaign " + spec.name +
                                                 ": no run_point function");
  PointOutput po = spec.run_point(u.index, u.seed, smoke);
  return {u.id, std::move(po.metrics), std::move(po.obs)};
}

RunOutcome run_campaign(const CampaignSpec& spec, const RunOptions& opts) {
  require(!spec.name.empty(), "campaign: spec has no name");
  require(static_cast<bool>(spec.point_ids), "campaign " + spec.name +
                                                 ": no point_ids function");
  require(static_cast<bool>(spec.run_point), "campaign " + spec.name +
                                                 ": no run_point function");
  const std::vector<std::string> ids = spec.point_ids(opts.smoke);
  require(!ids.empty(), "campaign " + spec.name + ": empty point grid");
  const int shards = effective_shards(ids.size(), opts.shards);
  const std::string hash = spec_config_hash(spec, opts.smoke, ids);
  const bool checkpointing = !opts.checkpoint_dir.empty();
  if (checkpointing) fs::create_directories(opts.checkpoint_dir);

  RunOutcome out;
  out.shards_total = shards;
  std::vector<std::vector<PointResult>> shard_points(
      static_cast<std::size_t>(shards));
  // vector<char>, not vector<bool>: pool workers set their own shard's flag
  // concurrently, and vector<bool> packs bits so distinct indices share a
  // word — a data race. Distinct char elements are distinct objects.
  std::vector<char> have(static_cast<std::size_t>(shards), 0);

  std::vector<int> to_run;
  for (int k = 0; k < shards; ++k) {
    const ShardRange r = shard_range(ids.size(), shards, k);
    if (checkpointing) {
      const std::vector<std::string> slice(ids.begin() + r.first,
                                           ids.begin() + r.last);
      if (load_shard_checkpoint(shard_path(opts.checkpoint_dir, spec.name, k),
                                spec.name, hash, k, slice,
                                shard_points[static_cast<std::size_t>(k)])) {
        have[static_cast<std::size_t>(k)] = 1;
        ++out.shards_resumed;
        continue;
      }
    }
    to_run.push_back(k);
  }

  bool stopped = false;
  if (opts.stop_after_shards >= 0 &&
      to_run.size() > static_cast<std::size_t>(opts.stop_after_shards)) {
    to_run.resize(static_cast<std::size_t>(opts.stop_after_shards));
    stopped = true;
  }

  // Progress accounting: resumed checkpoints count as already done; the
  // mutex serializes callback invocations across pool workers and guards
  // the cache hit/computed counters.
  std::mutex progress_mu;
  std::size_t points_done = 0;
  std::size_t points_cached = 0;
  std::size_t points_computed = 0;
  for (int k = 0; k < shards; ++k)
    if (have[static_cast<std::size_t>(k)])
      points_done += shard_points[static_cast<std::size_t>(k)].size();

  const auto run_shard = [&](int k) {
    const ShardRange r = shard_range(ids.size(), shards, k);
    std::vector<PointResult> pts;
    pts.reserve(r.last - r.first);
    for (std::size_t i = r.first; i < r.last; ++i) {
      PointResult p;
      // The id check defends against a hook returning a stale or foreign
      // entry: a mismatch is a miss, never an error.
      bool hit = opts.cache_lookup && opts.cache_lookup(hash, ids[i], p) &&
                 p.id == ids[i];
      if (!hit) {
        PointOutput po =
            spec.run_point(i, derive_point_seed(spec.seed, i), opts.smoke);
        p = {ids[i], std::move(po.metrics), std::move(po.obs)};
        if (opts.cache_store) opts.cache_store(hash, p);
      }
      pts.push_back(std::move(p));
      {
        const std::lock_guard<std::mutex> lock(progress_mu);
        ++(hit ? points_cached : points_computed);
        if (opts.progress) opts.progress(++points_done, ids.size(), k, ids[i]);
      }
    }
    if (checkpointing)
      write_text_atomic(shard_path(opts.checkpoint_dir, spec.name, k),
                             shard_to_json_text(spec.name, hash, k, r.first,
                                                pts));
    shard_points[static_cast<std::size_t>(k)] = std::move(pts);
    have[static_cast<std::size_t>(k)] = 1;
  };

  if (to_run.size() <= 1) {
    for (const int k : to_run) run_shard(k);
  } else {
    ThreadPool* pool = opts.pool ? opts.pool : &global_pool();
    pool->parallel_for(to_run.size(), [&](std::size_t j, std::size_t) {
      run_shard(to_run[static_cast<std::size_t>(j)]);
    });
  }
  out.shards_run = static_cast<int>(to_run.size());
  out.points_cached = points_cached;
  out.points_computed = points_computed;
  if (stopped) return out;

  CampaignResult res;
  res.campaign = spec.name;
  res.artifact = spec.artifact;
  res.config_hash = hash;
  res.git_sha = opts.git_sha;
  res.smoke = opts.smoke;
  res.seed = spec.seed;
  for (int k = 0; k < shards; ++k) {
    require(have[static_cast<std::size_t>(k)],
            "campaign " + spec.name + ": shard " + std::to_string(k) +
                " missing after run");
    for (auto& p : shard_points[static_cast<std::size_t>(k)])
      res.points.push_back(std::move(p));
  }
  out.result = std::move(res);
  out.complete = true;
  return out;
}

CampaignResult run_inline(const CampaignSpec& spec, bool smoke) {
  RunOptions opts;
  opts.smoke = smoke;
  const RunOutcome out = run_campaign(spec, opts);
  return out.result;
}

void remove_checkpoints(const CampaignSpec& spec, const RunOptions& opts) {
  if (opts.checkpoint_dir.empty()) return;
  const std::vector<std::string> ids = spec.point_ids(opts.smoke);
  const int shards = effective_shards(ids.size(), opts.shards);
  std::error_code ec;
  for (int k = 0; k < shards; ++k)
    fs::remove(shard_path(opts.checkpoint_dir, spec.name, k), ec);
}

std::string to_json(const CampaignResult& r) {
  JsonValue o = JsonValue::make_object();
  o.set("schema_version", JsonValue::make_number(r.schema_version));
  o.set("campaign", JsonValue::make_string(r.campaign));
  o.set("artifact", JsonValue::make_string(r.artifact));
  o.set("config_hash", JsonValue::make_string(r.config_hash));
  o.set("git_sha", JsonValue::make_string(r.git_sha));
  o.set("smoke", JsonValue::make_bool(r.smoke));
  // Decimal string, not a JSON number: a double only represents integers
  // exactly up to 2^53, and the full uint64 seed range must round-trip.
  o.set("seed", JsonValue::make_string(std::to_string(r.seed)));
  JsonValue points = JsonValue::make_array();
  for (const auto& p : r.points) points.push_back(point_to_json(p));
  o.set("points", std::move(points));
  return to_json_text(o);
}

CampaignResult result_from_json(const std::string& text) {
  const JsonValue v = parse_json(text);
  CampaignResult r;
  r.schema_version = static_cast<int>(v.at("schema_version").as_int());
  // v1 files are a strict subset of v2 (no per-point "obs" block), so they
  // still parse; anything newer than this build is rejected.
  require(r.schema_version >= 1 && r.schema_version <= kSchemaVersion,
          "campaign: unsupported schema_version " +
              std::to_string(r.schema_version));
  r.campaign = v.at("campaign").as_string();
  r.artifact = v.at("artifact").as_string();
  r.config_hash = v.at("config_hash").as_string();
  r.git_sha = v.at("git_sha").as_string();
  r.smoke = v.at("smoke").as_bool();
  const JsonValue& seed = v.at("seed");
  if (seed.is(JsonValue::Type::String)) {
    std::size_t used = 0;
    r.seed = std::stoull(seed.as_string(), &used);
    require(used == seed.as_string().size(),
            "campaign: malformed seed '" + seed.as_string() + "'");
  } else {
    // Legacy files serialized the seed as a JSON number (exact < 2^53).
    r.seed = static_cast<std::uint64_t>(seed.as_int());
  }
  for (const auto& p : v.at("points").items())
    r.points.push_back(point_from_json(p));
  return r;
}

void write_result_file(const CampaignResult& r, const std::string& path) {
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path());
  write_text_atomic(path, to_json(r));
}

CampaignResult read_result_file(const std::string& path) {
  return result_from_json(read_text(path));
}

std::string format_result(const CampaignResult& r) {
  std::string out = "== " + r.campaign;
  if (!r.artifact.empty()) out += " (" + r.artifact + ")";
  out += r.smoke ? " [smoke]\n" : "\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-22s %-34s %16s %12s\n", "point", "metric",
                "value", "ci95");
  out += buf;
  for (const auto& p : r.points) {
    for (const auto& m : p.metrics) {
      if (m.kind == MetricKind::Statistical)
        std::snprintf(buf, sizeof buf, "%-22s %-34s %16.6g %12.3g\n",
                      p.id.c_str(), m.name.c_str(), m.value, m.ci95);
      else
        std::snprintf(buf, sizeof buf, "%-22s %-34s %16.6g %12s\n",
                      p.id.c_str(), m.name.c_str(), m.value, "");
      out += buf;
    }
  }
  return out;
}

std::string read_git_sha(const std::string& start_dir) {
  std::error_code ec;
  fs::path dir = fs::absolute(start_dir, ec);
  if (ec) return "unknown";
  for (int depth = 0; depth < 16 && !dir.empty(); ++depth) {
    const fs::path git = dir / ".git";
    if (fs::is_directory(git, ec)) {
      try {
        std::string head = read_text((git / "HEAD").string());
        while (!head.empty() && (head.back() == '\n' || head.back() == '\r'))
          head.pop_back();
        if (head.rfind("ref: ", 0) == 0) {
          std::string ref = read_text((git / head.substr(5)).string());
          while (!ref.empty() && (ref.back() == '\n' || ref.back() == '\r'))
            ref.pop_back();
          return ref.empty() ? "unknown" : ref;
        }
        return head.empty() ? "unknown" : head;
      } catch (const std::exception&) {
        return "unknown";
      }
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return "unknown";
}

}  // namespace rnoc::campaign
