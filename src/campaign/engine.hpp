// Experiment-campaign engine: one resumable, schema-versioned driver for
// every paper figure and table.
//
// A campaign is declared as a CampaignSpec — a list of point ids plus a pure
// function mapping (point index, derived seed, smoke flag) to a metric list.
// The engine shards the points, runs shards on the shared thread pool,
// checkpoints each completed shard to disk, and assembles a CampaignResult
// whose JSON serialization is deterministic:
//
//  * per-point RNG streams derive from (campaign seed, point index), never
//    from the shard layout or thread schedule, so results are invariant
//    under the shard count and worker interleaving;
//  * checkpoints round-trip doubles exactly (std::to_chars shortest form,
//    locale-independent), so a killed run that
//    resumes from its shard files emits a byte-identical result file to an
//    uninterrupted run (test-enforced in tests/test_campaign_engine.cpp);
//  * result files carry schema_version, the git SHA, and a config hash over
//    the expanded spec, so tools/compare_results.py can tell "number moved"
//    from "experiment changed".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace rnoc::campaign {

// Version 2 added the optional per-point "obs" metric block (stall/protection
// observability counters; absent when a point does not produce one).
inline constexpr int kSchemaVersion = 2;

enum class MetricKind {
  Exact,       ///< Deterministic output; compared bit-for-bit (latency, FIT).
  Statistical  ///< Monte-Carlo estimate; compared within its CI.
};

struct Metric {
  std::string name;
  double value = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width; 0 for exact metrics.
  MetricKind kind = MetricKind::Exact;
};

Metric exact_metric(std::string name, double value);
Metric stat_metric(std::string name, double value, double ci95);
/// Mean + CI of a finished accumulator.
Metric stat_metric(std::string name, const RunningStats& s);

struct PointResult {
  std::string id;
  std::vector<Metric> metrics;
  /// Observability block (schema v2): auxiliary counters that describe *how*
  /// the point ran (stall cycles, protection events), kept separate from the
  /// headline metrics so figure tooling can ignore them wholesale. Must be
  /// derived from build-invariant sources (RouterStats), never from
  /// RNOC_TRACE-only state, so result files stay byte-identical across
  /// traced and untraced builds.
  std::vector<Metric> obs;
};

/// What run_point returns. Implicitly constructible from a bare metric list
/// so existing specs (`return Metrics{...};`) keep compiling; specs that
/// attach an observability block build one explicitly.
struct PointOutput {
  std::vector<Metric> metrics;
  std::vector<Metric> obs;

  PointOutput() = default;
  PointOutput(std::vector<Metric> m)  // NOLINT: implicit by design
      : metrics(std::move(m)) {}
};

/// One schedulable unit of campaign work — the atom the serve layer ships
/// between workers and caches on disk. index and seed are engine-derived
/// (derive_point_seed), so a unit run anywhere, in any order, reproduces
/// the exact point the sharded local run would have produced.
struct PointUnit {
  std::size_t index = 0;
  std::string id;
  std::uint64_t seed = 0;
};

/// Declarative description of one experiment campaign.
struct CampaignSpec {
  std::string name;         ///< Registry key and result-file stem.
  std::string artifact;     ///< Paper artifact, e.g. "Table I", "Figure 7".
  std::string description;  ///< One line for --list.
  std::uint64_t seed = 1;   ///< Root of every per-point RNG stream.
  /// Bumped by the campaign author whenever the runner's internals change
  /// in a value-affecting way that point ids do not capture (trial counts,
  /// simulation windows); invalidates stale checkpoints and golden files.
  std::string config_tag = "v1";
  /// Expands the (possibly smoke-shrunk) parameter grid into point ids.
  std::function<std::vector<std::string>(bool smoke)> point_ids;
  /// Computes one point. Must be a pure function of its arguments — no
  /// wall-clock, no global RNG, no cross-point state — so points can run
  /// in any order, on any shard, and reproduce bit-identically.
  std::function<PointOutput(std::size_t index, std::uint64_t seed, bool smoke)>
      run_point;
};

struct CampaignResult {
  int schema_version = kSchemaVersion;
  std::string campaign;
  std::string artifact;
  std::string config_hash;  ///< 16 hex digits over the expanded spec.
  std::string git_sha = "unknown";
  bool smoke = false;
  std::uint64_t seed = 1;
  std::vector<PointResult> points;

  const PointResult* find_point(const std::string& id) const;
  /// Metric lookup by point and name; throws when absent.
  double value(const std::string& point_id, const std::string& metric) const;
};

struct RunOptions {
  bool smoke = false;
  /// 0 = one shard per point, capped at 8.
  int shards = 0;
  /// Directory for shard checkpoints; empty disables checkpointing (and
  /// therefore resume).
  std::string checkpoint_dir;
  std::string git_sha = "unknown";
  /// Test hook: run at most this many not-yet-checkpointed shards, then
  /// return with complete == false (simulates a killed run). -1 = no limit.
  int stop_after_shards = -1;
  /// Pool to fan shards out on; null = global_pool().
  ThreadPool* pool = nullptr;
  /// Optional live-progress callback, invoked after every completed point.
  /// Calls come from whichever worker ran the point but are serialized by
  /// the engine (no two calls overlap), so a plain printf body is safe.
  /// `done`/`total` count points; resumed checkpoints count as done.
  std::function<void(std::size_t done, std::size_t total, int shard,
                     const std::string& point_id)>
      progress;
  /// Optional persistent point cache (serve::ResultCache adapts to these
  /// two hooks so the engine never depends on the serve layer). lookup is
  /// consulted before a point runs; a hit whose id matches skips the run.
  /// store receives every freshly computed point. Both get the expanded
  /// spec's config hash, which keys the cache together with the schema
  /// version and git SHA. Hooks may be called concurrently from shard
  /// workers and must synchronize internally.
  std::function<bool(const std::string& config_hash,
                     const std::string& point_id, PointResult& out)>
      cache_lookup;
  std::function<void(const std::string& config_hash, const PointResult& p)>
      cache_store;
};

struct RunOutcome {
  CampaignResult result;  ///< Valid only when complete.
  bool complete = false;
  int shards_total = 0;
  int shards_resumed = 0;  ///< Loaded from valid checkpoints.
  int shards_run = 0;      ///< Newly computed by this invocation.
  /// Point-level accounting for the cache hooks: hits served from
  /// cache_lookup vs. points computed by run_point this invocation.
  /// Points restored from shard checkpoints count as neither.
  std::size_t points_cached = 0;
  std::size_t points_computed = 0;
};

/// Runs (or resumes) a campaign. Throws std::invalid_argument on malformed
/// specs; propagates exceptions from run_point.
RunOutcome run_campaign(const CampaignSpec& spec, const RunOptions& opts);

/// Convenience for in-process consumers (the bench wrappers): run to
/// completion with no checkpointing and return the result.
CampaignResult run_inline(const CampaignSpec& spec, bool smoke = false);

/// Deletes the spec's shard checkpoint files (used after a successful run).
void remove_checkpoints(const CampaignSpec& spec, const RunOptions& opts);

// --- Serialization ---
std::string to_json(const CampaignResult& r);
CampaignResult result_from_json(const std::string& text);
void write_result_file(const CampaignResult& r, const std::string& path);
CampaignResult read_result_file(const std::string& path);

/// Human-readable table of every point and metric (the bench wrappers print
/// this; the library itself never writes to stdout).
std::string format_result(const CampaignResult& r);

/// Serialization of a single point (the cache-entry payload). The text is
/// deterministic and round-trips exactly, so a re-serialized parse is
/// byte-identical — serve::ResultCache checksums rely on that.
std::string point_to_json_text(const PointResult& p);
PointResult point_from_json_text(const std::string& text);

// --- Point-unit decomposition (the serve layer's schedulable atoms) ---
/// Expands the spec's (possibly smoke-shrunk) grid into units carrying the
/// engine-derived per-point seeds. Throws on malformed specs.
std::vector<PointUnit> expand_point_units(const CampaignSpec& spec,
                                          bool smoke);
/// Runs one unit to a finished PointResult. Pure: safe to call from any
/// thread, in any order, and bit-reproducible for a given (spec, unit).
PointResult run_point_unit(const CampaignSpec& spec, const PointUnit& u,
                           bool smoke);

// --- Determinism plumbing (exposed for tests) ---
/// SplitMix64-style mix of the campaign seed and point index.
std::uint64_t derive_point_seed(std::uint64_t campaign_seed,
                                std::size_t point_index);
/// FNV-1a over name, tag, seed, smoke flag and the expanded point ids.
std::string spec_config_hash(const CampaignSpec& spec, bool smoke,
                             const std::vector<std::string>& ids);
/// 16-hex-digit FNV-1a over arbitrary bytes (the hash family behind
/// spec_config_hash), exposed for cache keys and entry checksums.
std::string fnv1a_hex(const std::string& data);
/// Whole-file text I/O with the engine's atomicity discipline: write goes
/// to a same-directory temp file then renames, so a kill mid-write never
/// leaves a truncated file at the target path. Both throw on I/O errors.
std::string read_text(const std::string& path);
void write_text_atomic(const std::string& path, const std::string& text);
/// Best-effort HEAD commit hash found by walking up from `start_dir` to the
/// enclosing .git; "unknown" when not in a repository.
std::string read_git_sha(const std::string& start_dir);

}  // namespace rnoc::campaign
